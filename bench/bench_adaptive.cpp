// bench_adaptive: calibration + auto-vs-fixed harness for the adaptive
// dispatch layer (dtucker/adaptive/, `--solver=auto`).
//
// Two stages:
//
//   1. Calibration. Times each dispatchable kernel in isolation (the three
//      eigensolvers on a Gram-sized symmetric matrix, the two QR variants
//      on a tall panel, the two carrier schedules on a real slice
//      approximation, the exact stacked-factor Gram, and the rSVD
//      approximation pipeline) and converts the measurements into the cost
//      model's effective-GFLOP/s coefficients using the model's own FLOP
//      formulas (CostModel::EigSolveFlops / QrPanelFlops — so a formula
//      change recalibrates automatically). The result is written as the
//      flat JSON that CostModel::LoadCalibration reads; the
//      bench_adaptive_json target points --calibration_out at
//      bench/snapshots/CALIBRATION.seed.json to regenerate the committed
//      seed.
//
//   2. Comparison. For every dataset in --datasets (the EXPERIMENTS.md E1
//      shapes at --scale), runs the full D-Tucker solve through the Engine
//      under `--solver=auto` (fed the stage-1 calibration) and under every
//      fixed single-axis variant plan, and reports wall seconds + final
//      relative error per configuration. The acceptance block at the end
//      checks the adaptive-dispatch contract: auto within a few percent of
//      the static defaults everywhere, and beating the worst fixed variant
//      decisively on at least one shape.
//
// Output: a table on stdout plus --json (default BENCH_adaptive.json).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "dtucker/adaptive/cost_model.h"
#include "dtucker/dtucker.h"
#include "dtucker/engine.h"
#include "dtucker/slice_approximation.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/qr.h"

namespace dtucker {
namespace {

template <typename Fn>
double BestSecondsOf(int reps, Fn&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    body();
    best = std::min(best, t.Seconds());
  }
  return best;
}

// ---------------------------------------------------------------------------
// Stage 1: calibration microkernels. All run with a 1-thread BLAS pool so
// every coefficient is a per-thread rate; the model applies its analytic
// parallel factors on top.
// ---------------------------------------------------------------------------

void CalibrateEig(adaptive::CostModel* model, int reps) {
  // Size-matched to where the eig decision actually bites: the contested
  // solves (init Grams, per-sweep factor updates) are ~100-200 wide, and
  // the dense solvers' effective rate is strongly size-dependent (small
  // problems are overhead-bound, large ones amortize the blocked
  // tridiagonalization), so calibrating at the decision size keeps the
  // n^3 extrapolation honest where it matters.
  const Index n = 128, k = 10;
  Rng rng(11);
  // Full-rank PSD with a spread spectrum (2n samples): the iterative
  // solvers' sweep counts depend on the spectrum, and a rank-deficient
  // test matrix (zero cluster) converges unrealistically fast.
  const Matrix g = Matrix::GaussianRandom(n, 2 * n, rng);
  const Matrix a = Gram(MultiplyNT(g, g));  // (G G^T)^2: PSD, decaying.
  const EigSolverVariant variants[] = {
      EigSolverVariant::kJacobi, EigSolverVariant::kQl,
      EigSolverVariant::kSubspace};
  const char* keys[] = {"eig.jacobi", "eig.ql", "eig.subspace"};
  for (int i = 0; i < 3; ++i) {
    SubspaceIterationOptions opt;
    opt.solver = variants[i];
    const double sec = BestSecondsOf(
        reps, [&] { (void)TopEigenvectorsSym(a, k, nullptr, opt); });
    const double flops = adaptive::CostModel::EigSolveFlops(
        variants[i], static_cast<double>(n), static_cast<double>(k));
    model->SetCoefficient(keys[i], flops / (1e9 * sec));
  }
}

void CalibrateQr(adaptive::CostModel* model, int reps) {
  const Index m = 512, n = 40;
  Rng rng(13);
  const Matrix a = Matrix::GaussianRandom(m, n, rng);
  const double flops = adaptive::CostModel::QrPanelFlops(
      static_cast<double>(m), static_cast<double>(n));
  const double blocked = BestSecondsOf(
      reps, [&] { (void)QrOrthonormalize(a, QrVariant::kBlocked); });
  const double scalar = BestSecondsOf(
      reps, [&] { (void)QrOrthonormalize(a, QrVariant::kScalar); });
  model->SetCoefficient("qr.blocked", flops / (1e9 * blocked));
  model->SetCoefficient("qr.scalar", flops / (1e9 * scalar));
}

// Carrier + Gram + rSVD rates come from a real slice approximation of a
// mid-sized dataset so the memory behavior matches production slices.
void CalibrateSlicePhases(adaptive::CostModel* model, int reps) {
  Result<Tensor> data = MakeDataset("video", 0.5);
  if (!data.ok()) return;
  const Tensor& x = data.value();
  SliceApproximationOptions aopt;
  aopt.slice_rank = 10;
  aopt.adaptive_tolerance = 0;  // Fixed rank: deterministic FLOP count.

  // approx.rsvd via fixed point against the model's own phase prediction:
  // the prediction is monotone in 1/coefficient and GEMM-dominated, so
  // iterating c *= predicted/measured converges to the coefficient that
  // makes the prediction match the measurement.
  const double approx_sec =
      BestSecondsOf(reps, [&] { (void)ApproximateSlices(x, aopt); });
  adaptive::WorkloadSignature w;
  w.shape = x.shape();
  w.ranks = {10, 10, 10};
  w.slice_rank = aopt.slice_rank;
  w.power_iterations = aopt.power_iterations;
  w.num_threads = 1;
  for (int it = 0; it < 8; ++it) {
    const double pred = model->PredictApproxSeconds(w, QrVariant::kAuto);
    const double c = model->Coefficient("approx.rsvd");
    model->SetCoefficient(
        "approx.rsvd",
        std::clamp(c * pred / approx_sec, 0.05, 200.0));
  }

  Result<SliceApproximation> approx = ApproximateSlices(x, aopt);
  if (!approx.ok()) return;
  const SliceApproximation& ap = approx.value();
  const double l = static_cast<double>(ap.NumSlices());
  const double i1 = static_cast<double>(ap.Dim(0));
  const double i2 = static_cast<double>(ap.Dim(1));
  const double js = static_cast<double>(ap.slices[0].u.cols());
  const double j2 = 10.0;
  Rng rng(17);
  const Matrix a2 =
      QrOrthonormalize(Matrix::GaussianRandom(ap.Dim(1), 10, rng));

  // T1 slices are (U S)(V^T A2): same 2*(I2*Js*J2 + I1*Js*J2) per slice the
  // model charges. Serial pool => parallel factor 1 for both schedules.
  const double t1_flops = l * 2.0 * (i2 * js * j2 + i1 * js * j2);
  Tensor t1;
  const double slice_par = BestSecondsOf(reps, [&] {
    internal_dtucker::BuildModeOneCarrierInto(
        ap, a2, 1.0, &t1, adaptive::CarrierBuilderVariant::kSliceParallel);
  });
  const double gemm_par = BestSecondsOf(reps, [&] {
    internal_dtucker::BuildModeOneCarrierInto(
        ap, a2, 1.0, &t1, adaptive::CarrierBuilderVariant::kGemmParallel);
  });
  model->SetCoefficient("carrier.slice_parallel",
                        t1_flops / (1e9 * slice_par));
  model->SetCoefficient("carrier.gemm_parallel", t1_flops / (1e9 * gemm_par));

  // Exact stacked-factor Gram: 2*I1^2*Js per slice (the model's term).
  const double gram_flops = 2.0 * l * i1 * i1 * js;
  Matrix gram(ap.Dim(0), ap.Dim(0));
  const double gram_sec = BestSecondsOf(reps, [&] {
    for (Index s = 0; s < ap.NumSlices(); ++s) {
      internal_dtucker::AccumulateScaledFactorGram(
          ap.slices[static_cast<std::size_t>(s)], 0, 1.0,
          s == 0 ? 0.0 : 1.0, &gram);
    }
  });
  model->SetCoefficient("gram.exact", gram_flops / (1e9 * gram_sec));
  // gram.sketched stays at its built-in default: the sketch is memory-bound
  // scatter, and the rung is gated behind an explicit error budget anyway.
}

// ---------------------------------------------------------------------------
// Stage 2: auto vs fixed plans through the Engine.
// ---------------------------------------------------------------------------

struct RunConfig {
  std::string name;  // Row label ("auto", "default", "eig=jacobi", ...).
  std::string spec;  // solver_spec for fixed configs; unused for auto.
  bool is_auto = false;
};

struct RunResult {
  double seconds = 0;
  double error = 0;
  std::string selected;
  std::string rationale;
  bool ok = false;
};

RunResult RunOne(const Tensor& x, const RunConfig& cfg,
                 const std::string& calibration_path, Index rank, int iters,
                 int threads, int reps) {
  RunResult out;
  for (int rep = 0; rep < reps; ++rep) {
    // Fresh engine per repetition: no online-refinement cross-talk between
    // configurations, and each measurement is a cold plan decision.
    EngineOptions eopt;
    eopt.method = TuckerMethod::kDTucker;
    for (Index n = 0; n < x.order(); ++n) {
      eopt.method_options.tucker.ranks.push_back(
          std::min<Index>(rank, x.dim(n)));
    }
    eopt.method_options.tucker.max_iterations = iters;
    eopt.method_options.num_threads = threads;
    eopt.blas_threads = threads;
    eopt.measure_error = false;
    if (cfg.is_auto) {
      eopt.solver_policy = SolverPolicy::kAuto;
      eopt.calibration_path = calibration_path;
    } else {
      eopt.solver_spec = cfg.spec;
    }
    Engine engine(std::move(eopt));
    Timer t;
    Result<EngineRun> run = engine.Solve(x);
    const double sec = t.Seconds();
    if (!run.ok()) {
      std::fprintf(stderr, "  %s failed: %s\n", cfg.name.c_str(),
                   run.status().ToString().c_str());
      return out;
    }
    if (rep == 0 || sec < out.seconds) out.seconds = sec;
    out.error = run.value().relative_error;
    if (out.error == 0 && !run.value().stats.error_history.empty()) {
      out.error = run.value().stats.error_history.back();
    }
    out.selected = run.value().stats.selected_variants;
    out.rationale = run.value().stats.solver_rationale;
    out.ok = true;
  }
  return out;
}

std::string ShapeString(const Tensor& x) {
  std::string s;
  for (Index n = 0; n < x.order(); ++n) {
    if (n) s += "x";
    s += std::to_string(x.dim(n));
  }
  return s;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("json", "BENCH_adaptive.json", "output JSON path");
  flags.AddString("calibration_out", "",
                  "also write the measured calibration JSON here "
                  "(bench/snapshots/CALIBRATION.seed.json for the seed)");
  flags.AddString("datasets", DatasetNames(),
                  "comma-separated dataset list for the comparison stage");
  flags.AddDouble("scale", 0.8, "dataset size multiplier in (0, 1]");
  flags.AddInt("rank", 10, "Tucker rank per mode (clamped to dims)");
  flags.AddInt("iters", 5, "max HOOI sweeps per run");
  flags.AddInt("threads", 4, "BLAS pool width for the comparison runs");
  flags.AddInt("reps", 3, "repetitions per configuration (min is reported)");
  flags.AddInt("calib_reps", 3, "repetitions per calibration microkernel");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int reps = static_cast<int>(flags.GetInt("reps"));
  const int threads = static_cast<int>(flags.GetInt("threads"));

  // ---- Stage 1: calibrate on a serial pool. ----
  SetBlasThreads(1);
  adaptive::CostModel model;
  const int calib_reps = static_cast<int>(flags.GetInt("calib_reps"));
  std::printf("calibrating (1 thread, best of %d)...\n", calib_reps);
  CalibrateEig(&model, calib_reps);
  CalibrateQr(&model, calib_reps);
  CalibrateSlicePhases(&model, calib_reps);
  const std::string calibration_json = model.ToJson();
  std::printf("%s", calibration_json.c_str());

  // The comparison stage's auto runs read the calibration the way
  // production does: from a file next to the JSON output.
  const std::string calibration_path = flags.GetString("json") + ".calibration";
  std::vector<std::string> calib_paths = {calibration_path};
  if (!flags.GetString("calibration_out").empty()) {
    calib_paths.push_back(flags.GetString("calibration_out"));
  }
  for (const std::string& path : calib_paths) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fputs(calibration_json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

  // ---- Stage 2: auto vs fixed single-axis plans. ----
  const std::vector<RunConfig> configs = {
      {"auto", "", true},
      {"default", "", false},
      {"eig=jacobi", "eig=jacobi", false},
      {"eig=ql", "eig=ql", false},
      {"eig=subspace", "eig=subspace", false},
      {"qr=scalar", "qr=scalar", false},
      {"qr=blocked", "qr=blocked", false},
      {"carrier=slice_parallel", "carrier=slice_parallel", false},
      {"carrier=gemm_parallel", "carrier=gemm_parallel", false},
  };

  std::FILE* out = std::fopen(flags.GetString("json").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.GetString("json").c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"threads\": %d,\n  \"scale\": %g,\n", threads,
               flags.GetDouble("scale"));
  std::fprintf(out, "  \"calibration\": %s,\n",
               [&] {
                 // Inline the flat object (strip the trailing newline).
                 std::string c = calibration_json;
                 while (!c.empty() && (c.back() == '\n' || c.back() == ' ')) {
                   c.pop_back();
                 }
                 return c;
               }()
                   .c_str());
  std::fprintf(out, "  \"shapes\": [\n");

  double max_auto_over_default = 0.0;
  double max_worst_over_auto = 0.0;
  std::vector<std::string> names;
  {
    std::string list = flags.GetString("datasets");
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string name = list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!name.empty()) names.push_back(name);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  bool first_shape = true;
  for (const std::string& name : names) {
    Result<Tensor> data = MakeDataset(name, flags.GetDouble("scale"));
    if (!data.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   data.status().ToString().c_str());
      continue;
    }
    const Tensor& x = data.value();
    std::printf("\n%s (%s), rank %lld, %d sweeps, %d threads:\n", name.c_str(),
                ShapeString(x).c_str(),
                static_cast<long long>(flags.GetInt("rank")),
                static_cast<int>(flags.GetInt("iters")), threads);

    // One discarded warmup solve per shape: the first run pays dataset
    // first-touch faults and pool spin-up that would otherwise land on
    // whichever configuration happens to go first.
    (void)RunOne(x, configs[1], calibration_path,
                 static_cast<Index>(flags.GetInt("rank")),
                 static_cast<int>(flags.GetInt("iters")), threads, 1);
    double auto_sec = 0, default_sec = 0, worst_sec = 0;
    std::string worst_name;
    if (!first_shape) std::fprintf(out, ",\n");
    first_shape = false;
    std::fprintf(out, "    {\"dataset\": \"%s\", \"shape\": \"%s\",\n",
                 name.c_str(), ShapeString(x).c_str());
    std::fprintf(out, "     \"configs\": [\n");
    bool first_cfg = true;
    for (const RunConfig& cfg : configs) {
      // The acceptance ratio compares auto against the defaults at the
      // percent level, so those two rows get extra repetitions to push
      // scheduler noise below the comparison threshold.
      const int cfg_reps =
          (cfg.is_auto || cfg.name == "default") ? reps + 3 : reps;
      const RunResult r =
          RunOne(x, cfg, calibration_path,
                 static_cast<Index>(flags.GetInt("rank")),
                 static_cast<int>(flags.GetInt("iters")), threads, cfg_reps);
      if (!r.ok) continue;
      std::printf("  %-24s %8.1f ms  err %.3e  [%s]\n", cfg.name.c_str(),
                  r.seconds * 1e3, r.error, r.selected.c_str());
      if (!first_cfg) std::fprintf(out, ",\n");
      first_cfg = false;
      std::fprintf(out,
                   "      {\"name\": \"%s\", \"seconds\": %.6f, "
                   "\"error\": %.6e, \"selected\": \"%s\"}",
                   cfg.name.c_str(), r.seconds, r.error, r.selected.c_str());
      if (cfg.is_auto) {
        auto_sec = r.seconds;
        if (!r.rationale.empty()) {
          std::printf("    rationale: %s\n", r.rationale.c_str());
        }
      } else if (cfg.name == "default") {
        default_sec = r.seconds;
      }
      if (!cfg.is_auto && r.seconds > worst_sec) {
        worst_sec = r.seconds;
        worst_name = cfg.name;
      }
    }
    std::fprintf(out, "\n     ],\n");
    const double auto_over_default =
        default_sec > 0 ? auto_sec / default_sec : 0.0;
    const double worst_over_auto = auto_sec > 0 ? worst_sec / auto_sec : 0.0;
    max_auto_over_default = std::max(max_auto_over_default, auto_over_default);
    max_worst_over_auto = std::max(max_worst_over_auto, worst_over_auto);
    std::printf("  auto/default %.3f, worst(%s)/auto %.2fx\n",
                auto_over_default, worst_name.c_str(), worst_over_auto);
    std::fprintf(out,
                 "     \"auto_over_default\": %.4f, "
                 "\"worst_over_auto\": %.4f, \"worst_config\": \"%s\"}",
                 auto_over_default, worst_over_auto, worst_name.c_str());
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out,
               "  \"acceptance\": {\"max_auto_over_default\": %.4f, "
               "\"max_worst_over_auto\": %.4f, "
               "\"auto_within_3pct_of_default\": %s, "
               "\"auto_beats_worst_1p5x_somewhere\": %s}\n}\n",
               max_auto_over_default, max_worst_over_auto,
               max_auto_over_default <= 1.03 ? "true" : "false",
               max_worst_over_auto >= 1.5 ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s (max auto/default %.3f, best worst/auto %.2fx)\n",
              flags.GetString("json").c_str(), max_auto_over_default,
              max_worst_over_auto);
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Main(argc, argv); }
