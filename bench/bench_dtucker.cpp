// Microbenchmarks for the D-Tucker iteration phase: the matricization-free
// mode-n Gram kernel, the slice-parallel carrier builders, one HOOI sweep
// with a persistent workspace, and the end-to-end pipeline. The binary
// installs a global allocation probe so BM_ModeGram can assert the kernel
// never materializes an unfolding-sized copy.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "dtucker/dtucker.h"
#include "linalg/blas.h"
#include "tensor/tensor_ops.h"

namespace {

// Process-wide allocation byte counter (atomic, so worker-thread
// allocations are captured too). Deliberately counts every operator new in
// the binary: the probe brackets a single kernel call on a quiet process.
std::atomic<std::size_t> g_allocated_bytes{0};

std::size_t AllocatedBytes() {
  return g_allocated_bytes.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dtucker {
namespace {

Tensor BenchTensor(Index side) {
  Rng rng(1);
  return Tensor::GaussianRandom({side, side, 32}, rng);
}

SliceApproximation BenchApprox(const Tensor& x) {
  SliceApproximationOptions opt;
  opt.slice_rank = 10;
  return ApproximateSlices(x, opt).value();
}

DTuckerOptions BenchOptions() {
  DTuckerOptions opt;
  opt.tucker.ranks = {10, 10, 10};
  opt.tucker.max_iterations = 3;
  opt.tucker.tolerance = 0.0;
  return opt;
}

// args: {side, mode}. Asserts the matricization-free contract: one call
// allocates strictly less than one unfolding copy of the tensor.
void BM_ModeGram(benchmark::State& state) {
  const Index side = state.range(0);
  const Index mode = state.range(1);
  Tensor x = BenchTensor(side);
  // Warm-up (also grows any lazy TLS buffers), then probe one call.
  { Matrix g = ModeGram(x, mode); benchmark::DoNotOptimize(g.data()); }
  const std::size_t before = AllocatedBytes();
  { Matrix g = ModeGram(x, mode); benchmark::DoNotOptimize(g.data()); }
  const std::size_t probe = AllocatedBytes() - before;
  const std::size_t unfold_bytes = x.ByteSize();
  if (probe >= unfold_bytes) {
    state.SkipWithError("ModeGram allocated an unfolding-sized copy");
    return;
  }
  for (auto _ : state) {
    Matrix g = ModeGram(x, mode);
    benchmark::DoNotOptimize(g.data());
  }
  const double flops = 2.0 * static_cast<double>(x.size()) * x.dim(mode);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["alloc_bytes"] = static_cast<double>(probe);
  state.counters["unfold_bytes"] = static_cast<double>(unfold_bytes);
  // Mirror the probe into the registry so a metrics snapshot of this
  // binary reports the same number the benchmark counter shows.
  MetricGauge("alloc.probe_bytes").SetMax(static_cast<double>(probe));
}
BENCHMARK(BM_ModeGram)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2});

// args: {side, which} — which 0: T1 builder, 1: T2 builder, 2: Z builder.
void BM_BuildCarrier(benchmark::State& state) {
  const Index side = state.range(0);
  const int which = static_cast<int>(state.range(1));
  Tensor x = BenchTensor(side);
  SliceApproximation approx = BenchApprox(x);
  Rng rng(2);
  Matrix a1 = Matrix::GaussianRandom(side, 10, rng);
  Matrix a2 = Matrix::GaussianRandom(side, 10, rng);
  Tensor out;
  for (auto _ : state) {
    switch (which) {
      case 0:
        internal_dtucker::BuildModeOneCarrierInto(approx, a2, 1.0, &out);
        break;
      case 1:
        internal_dtucker::BuildModeTwoCarrierInto(approx, a1, 1.0, &out);
        break;
      default:
        internal_dtucker::BuildProjectedCoreInto(approx, a1, a2, 1.0, &out);
        break;
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BuildCarrier)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2});

// args: {side, threads}. One full HOOI sweep on the slice structure with a
// persistent workspace — the steady-state iteration cost.
void BM_DTuckerSweep(benchmark::State& state) {
  const Index side = state.range(0);
  SetBlasThreads(static_cast<int>(state.range(1)));
  Tensor x = BenchTensor(side);
  SliceApproximation approx = BenchApprox(x);
  DTuckerOptions opt = BenchOptions();
  TuckerDecomposition dec =
      DTuckerInitializeOnly(approx, opt).value();
  internal_dtucker::SweepWorkspace ws;
  for (auto _ : state) {
    internal_dtucker::DTuckerSweep(approx, opt.tucker.ranks, &dec.factors, &dec.core,
                                   &ws, 1.0);
    benchmark::DoNotOptimize(dec.core.data());
  }
  SetBlasThreads(1);
}
BENCHMARK(BM_DTuckerSweep)
    ->Args({64, 1})
    ->Args({64, 8})
    ->Args({128, 1})
    ->Args({128, 8})
    ->Args({256, 1})
    ->Args({256, 8});

// args: {side, threads}. Same sweep with a live RunContext attached: the
// per-mode cancellation checks (relaxed atomic load + branch) are on, so
// the delta against BM_DTuckerSweep is the armed execution-control
// overhead. Must stay within run-to-run noise (±3%) of the un-armed
// number — see EXPERIMENTS.md.
void BM_DTuckerSweepArmed(benchmark::State& state) {
  const Index side = state.range(0);
  SetBlasThreads(static_cast<int>(state.range(1)));
  Tensor x = BenchTensor(side);
  SliceApproximation approx = BenchApprox(x);
  DTuckerOptions opt = BenchOptions();
  TuckerDecomposition dec =
      DTuckerInitializeOnly(approx, opt).value();
  internal_dtucker::SweepWorkspace ws;
  RunContext ctx;
  ctx.SetDeadlineAfter(3600.0);  // Armed but never firing.
  for (auto _ : state) {
    internal_dtucker::DTuckerSweep(approx, opt.tucker.ranks, &dec.factors,
                                   &dec.core, &ws, 1.0, &ctx);
    benchmark::DoNotOptimize(dec.core.data());
  }
  SetBlasThreads(1);
}
BENCHMARK(BM_DTuckerSweepArmed)
    ->Args({128, 1})
    ->Args({128, 8})
    ->Args({256, 1})
    ->Args({256, 8});

// args: {side, threads}. Approximation + initialization + iteration.
void BM_DTuckerEndToEnd(benchmark::State& state) {
  const Index side = state.range(0);
  SetBlasThreads(static_cast<int>(state.range(1)));
  Tensor x = BenchTensor(side);
  DTuckerOptions opt = BenchOptions();
  opt.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto dec = DTucker(x, opt);
    benchmark::DoNotOptimize(dec.ok());
  }
  SetBlasThreads(1);
}
BENCHMARK(BM_DTuckerEndToEnd)
    ->Args({64, 1})
    ->Args({64, 8})
    ->Args({128, 1})
    ->Args({128, 8})
    ->Args({256, 1})
    ->Args({256, 8});

// arg: {enabled}. Cost of one DT_TRACE_SPAN bracket. Disabled (the
// default, arg 0) this is the price every instrumented kernel pays in
// production: one relaxed load plus two predicted branches. Enabled
// (arg 1) it adds two clock reads and a ring-buffer store.
void BM_TraceSpan(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  SetTraceEnabled(enabled);
  for (auto _ : state) {
    DT_TRACE_SPAN("bench.span");
  }
  SetTraceEnabled(false);
  ClearTrace();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan)->Arg(0)->Arg(1);

// Cost of one Histogram::Record: a log2 bucket index (clz), two relaxed
// fetch_adds, and a CAS-max on the caller's shard. This is the per-sample
// price of every comm-wait / sweep-stage / pool-task latency site.
void BM_HistogramRecord(benchmark::State& state) {
  Histogram& hist = MetricHistogram("bench.histogram_ns");
  std::uint64_t ns = 1;
  for (auto _ : state) {
    hist.Record(ns);
    ns = ns * 2654435761u % 1000000007u;  // Spread samples across buckets.
  }
  benchmark::DoNotOptimize(hist.Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace dtucker

BENCHMARK_MAIN();
