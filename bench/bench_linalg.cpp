// Microbenchmarks for the hand-written linear-algebra substrate.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fft/fft.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/eigen_tridiag.h"
#include "linalg/lanczos.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "linalg/svd_golub_kahan.h"
#include "rsvd/rsvd.h"

namespace dtucker {
namespace {

// Reports GEMM throughput as a GFLOP/s counter (2*m*n*k flops per product)
// so BENCH_gemm.json tracks the kernel's absolute efficiency across PRs.
void SetGemmCounters(benchmark::State& state, Index m, Index n, Index k) {
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(flops));
}

void BM_GemmSquare(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  Matrix b = Matrix::GaussianRandom(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  SetGemmCounters(state, n, n, n);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Same product, pool sized per the second argument: the threads/1-thread
// ratio at a fixed size is the kernel's parallel efficiency.
void BM_GemmSquareThreaded(benchmark::State& state) {
  const Index n = state.range(0);
  SetBlasThreads(static_cast<int>(state.range(1)));
  Rng rng(1);
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  Matrix b = Matrix::GaussianRandom(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  SetGemmCounters(state, n, n, n);
  SetBlasThreads(1);
}
BENCHMARK(BM_GemmSquareThreaded)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

// Transposed operands: packing absorbs the transpose, so these should
// track BM_GemmSquare closely (the seed kernel paid an extra materialized
// copy here).
void BM_GemmTransposed(benchmark::State& state) {
  const Index n = state.range(0);
  const Trans ta = state.range(1) != 0 ? Trans::kYes : Trans::kNo;
  const Trans tb = state.range(2) != 0 ? Trans::kYes : Trans::kNo;
  Rng rng(1);
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  Matrix b = Matrix::GaussianRandom(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    Gemm(ta, tb, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  SetGemmCounters(state, n, n, n);
}
BENCHMARK(BM_GemmTransposed)
    ->Args({256, 1, 0})
    ->Args({256, 0, 1})
    ->Args({512, 1, 0})
    ->Args({512, 0, 1})
    ->Args({512, 1, 1});

void BM_GemmTallSkinny(benchmark::State& state) {
  // The shape dominating D-Tucker: (I x I) times (I x J), J small.
  const Index m = state.range(0);
  const Index j = 10;
  Rng rng(2);
  Matrix a = Matrix::GaussianRandom(m, m, rng);
  Matrix b = Matrix::GaussianRandom(m, j, rng);
  Matrix c(m, j);
  for (auto _ : state) {
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.data());
  }
  SetGemmCounters(state, m, j, m);
}
BENCHMARK(BM_GemmTallSkinny)->Arg(128)->Arg(512)->Arg(1024);

// Householder QR flop model (LAPACK working notes): factoring an m x n
// matrix costs 2n^2(m - n/3), and forming the thin Q costs the same again.
// The GFLOP/s counter makes BENCH_qr.json comparable across PRs the same
// way BENCH_gemm.json is.
void SetQrCounters(benchmark::State& state, Index m, Index n, bool forms_q) {
  const double mn = static_cast<double>(m) - static_cast<double>(n) / 3.0;
  double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) * mn;
  if (forms_q) flops *= 2.0;
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(flops));
}

// Shapes mirror what the phases feed the QR: (I1 x sketch) tall-skinny
// panels from the range finder, and the wider stacked [Y<1> ... Y<L>]
// blocks of the init phase.
void BM_ThinQr(benchmark::State& state) {
  const Index m = state.range(0);
  const Index n = state.range(1);
  Rng rng(3);
  Matrix a = Matrix::GaussianRandom(m, n, rng);
  for (auto _ : state) {
    QrResult qr = ThinQr(a);
    benchmark::DoNotOptimize(qr.q.data());
  }
  SetQrCounters(state, m, n, /*forms_q=*/true);
}
BENCHMARK(BM_ThinQr)
    ->Args({100, 15})
    ->Args({400, 15})
    ->Args({1600, 15})
    ->Args({4096, 64})
    ->Args({1024, 256});

void BM_QrOrthonormalize(benchmark::State& state) {
  const Index m = state.range(0);
  const Index n = state.range(1);
  Rng rng(3);
  Matrix a = Matrix::GaussianRandom(m, n, rng);
  for (auto _ : state) {
    Matrix q = QrOrthonormalize(a);
    benchmark::DoNotOptimize(q.data());
  }
  SetQrCounters(state, m, n, /*forms_q=*/true);
}
BENCHMARK(BM_QrOrthonormalize)
    ->Args({1024, 15})
    ->Args({4096, 15})
    ->Args({4096, 64})
    ->Args({8192, 128})
    ->Args({1024, 256});

// The level-2 reference: the ratio to BM_QrOrthonormalize at the same
// shape is the speedup delivered by the compact-WY blocking.
void BM_QrOrthonormalizeUnblocked(benchmark::State& state) {
  const Index m = state.range(0);
  const Index n = state.range(1);
  Rng rng(3);
  Matrix a = Matrix::GaussianRandom(m, n, rng);
  for (auto _ : state) {
    Matrix q = QrOrthonormalizeUnblocked(a);
    benchmark::DoNotOptimize(q.data());
  }
  SetQrCounters(state, m, n, /*forms_q=*/true);
}
BENCHMARK(BM_QrOrthonormalizeUnblocked)
    ->Args({1024, 15})
    ->Args({4096, 64})
    ->Args({8192, 128})
    ->Args({1024, 256});

// Blocked QR on the shared pool: same product, pool sized per the third
// argument (compare to the single-thread row at the same shape).
void BM_QrOrthonormalizeThreaded(benchmark::State& state) {
  const Index m = state.range(0);
  const Index n = state.range(1);
  SetBlasThreads(static_cast<int>(state.range(2)));
  Rng rng(3);
  Matrix a = Matrix::GaussianRandom(m, n, rng);
  for (auto _ : state) {
    Matrix q = QrOrthonormalize(a);
    benchmark::DoNotOptimize(q.data());
  }
  SetQrCounters(state, m, n, /*forms_q=*/true);
  SetBlasThreads(1);
}
BENCHMARK(BM_QrOrthonormalizeThreaded)
    ->Args({8192, 128, 1})
    ->Args({8192, 128, 2})
    ->Args({8192, 128, 4});

void BM_ThinSvdSmall(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(4);
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  for (auto _ : state) {
    SvdResult svd = ThinSvd(a);
    benchmark::DoNotOptimize(svd.u.data());
  }
}
BENCHMARK(BM_ThinSvdSmall)->Arg(10)->Arg(30)->Arg(60);

// The approximation-phase primitive on slice-shaped inputs. The flop
// counter models the dominant cost — (2q + 1) dense passes over the
// (m x n) slice at 2 m n sketch flops each — so GFLOP/s tracks how much
// of the packed kernel's throughput the restructured rSVD reaches.
void BM_RandomizedSvd(benchmark::State& state) {
  const Index m = state.range(0);
  const Index n = state.range(1);
  Rng rng(5);
  Matrix a = Matrix::GaussianRandom(m, n, rng);
  RsvdOptions opt;
  opt.rank = 10;
  for (auto _ : state) {
    SvdResult svd = RandomizedSvd(a, opt);
    benchmark::DoNotOptimize(svd.u.data());
  }
  const Index sketch = opt.rank + opt.oversampling;
  const double passes = 2.0 * opt.power_iterations + 1.0;
  const double flops = passes * 2.0 * static_cast<double>(m) *
                       static_cast<double>(n) * static_cast<double>(sketch);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(flops));
}
BENCHMARK(BM_RandomizedSvd)
    ->Args({128, 64})
    ->Args({256, 128})
    ->Args({512, 256})
    ->Args({1024, 1024})
    ->Args({4096, 512});

void BM_ThinSvdGolubKahan(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(4);
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  for (auto _ : state) {
    auto svd = ThinSvdGolubKahan(a);
    benchmark::DoNotOptimize(svd.ok());
  }
}
BENCHMARK(BM_ThinSvdGolubKahan)->Arg(10)->Arg(30)->Arg(60)->Arg(120);

Matrix BenchSymmetric(Index n) {
  Rng rng(11);
  Matrix g = Matrix::GaussianRandom(n, n / 2 + 1, rng);
  return Gram(g.Transposed());
}

void BM_EigenSymJacobi(benchmark::State& state) {
  Matrix a = BenchSymmetric(state.range(0));
  for (auto _ : state) {
    EigenSymResult eig = EigenSym(a);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_EigenSymJacobi)->Arg(30)->Arg(60)->Arg(120);

void BM_EigenSymQl(benchmark::State& state) {
  Matrix a = BenchSymmetric(state.range(0));
  for (auto _ : state) {
    auto eig = EigenSymQr(a);
    benchmark::DoNotOptimize(eig.ok());
  }
}
BENCHMARK(BM_EigenSymQl)->Arg(30)->Arg(60)->Arg(120)->Arg(240);

void BM_TopEigSubspace(benchmark::State& state) {
  Matrix a = BenchSymmetric(state.range(0));
  for (auto _ : state) {
    Matrix v = TopEigenvectorsSym(a, 10);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_TopEigSubspace)->Arg(120)->Arg(240)->Arg(480);

void BM_TopEigLanczos(benchmark::State& state) {
  Matrix a = BenchSymmetric(state.range(0));
  for (auto _ : state) {
    auto r = LanczosTopEigenpairs(a, 10);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_TopEigLanczos)->Arg(120)->Arg(240)->Arg(480);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Gaussian(), 0);
  for (auto _ : state) {
    std::vector<Complex> y = x;
    Fft(&y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(4096)->Arg(1000)->Arg(4100);

}  // namespace
}  // namespace dtucker

BENCHMARK_MAIN();
