// bench_serve: serving-layer benchmark for the multi-tenant
// DecompositionServer (src/serve/).
//
// Four measurements on a --dim^3 synthetic low-rank tensor at Tucker rank
// --rank (defaults 256^3, rank 10 — the acceptance configuration):
//
//   1. Cold solve: one Solve() through the job queue and Engine with an
//      empty cache — the price of materializing a model.
//   2. Cache-hit solve: the identical Solve() again. Answered from the LRU
//      model cache with no Engine run; the ratio is the cache's headline.
//   3. Factor-space query latency: repeated QueryElement batches of
//      --query_batch random indices against the resident model, reporting
//      p50/p99 batch seconds and per-element nanoseconds. The
//      cache_hit_query_speedup ratio (cold solve seconds / p50 batch
//      seconds) is the serving claim: answering from factors is orders of
//      magnitude cheaper than recomputing — the gate requires >= 100x.
//   4. Sustained mixed load: --clients threads issue cache-hit Solves and
//      query batches for --duration seconds against --workers workers,
//      reporting overall QPS and job-latency p50/p99 — queue + dedup +
//      cache overheads under concurrency, not solver time.
//
// Plus a single-flight probe: --fanout identical Submits while the model
// is not yet cached must produce exactly one Engine run.
//
// Output: a table on stdout and --json (default BENCH_serve.json) with one
// object per line, consumed by check_serve_regression.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/generators.h"
#include "serve/server.h"

namespace dtucker {
namespace {

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("json", "BENCH_serve.json", "JSON output path");
  flags.AddInt("dim", 256, "cube dimension of the synthetic tensor");
  flags.AddInt("rank", 10, "Tucker rank per mode");
  flags.AddInt("iters", 2, "HOOI iterations per solve");
  flags.AddInt("workers", 2, "server worker threads");
  flags.AddInt("clients", 4, "client threads in the sustained-load phase");
  flags.AddDouble("duration", 1.0, "sustained-load window seconds");
  flags.AddInt("query_batch", 64, "elements per QueryElement batch");
  flags.AddInt("query_rounds", 200, "query batches timed");
  flags.AddInt("fanout", 8, "identical Submits in the single-flight probe");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  const Index dim = static_cast<Index>(flags.GetInt("dim"));
  const Index rank = static_cast<Index>(flags.GetInt("rank"));
  const int iters = static_cast<int>(flags.GetInt("iters"));
  const int clients = static_cast<int>(flags.GetInt("clients"));
  const double duration = flags.GetDouble("duration");
  const int query_batch = static_cast<int>(flags.GetInt("query_batch"));
  const int query_rounds = static_cast<int>(flags.GetInt("query_rounds"));
  const int fanout = static_cast<int>(flags.GetInt("fanout"));

  std::printf("generating %td^3 low-rank tensor...\n", dim);
  auto tensor = std::make_shared<Tensor>(
      MakeLowRankTensor({dim, dim, dim}, {rank, rank, rank}, 0.1, 7));

  ServerOptions sopt;
  sopt.num_workers = static_cast<int>(flags.GetInt("workers"));
  sopt.queue_capacity = 256;
  sopt.engine.measure_error = false;  // Pure serving timings.
  DecompositionServer server(sopt);

  ModelSpec spec;
  spec.dataset_id = "bench";
  spec.ranks = {rank, rank, rank};
  spec.max_iterations = iters;

  auto request = [&](const std::string& id) {
    SolveRequest r;
    r.model = spec;
    r.model.dataset_id = id;
    r.tensor = tensor;
    return r;
  };

  // 1. Cold solve.
  Timer cold_timer;
  Result<JobResult> cold = server.Solve(request("bench"));
  const double cold_s = cold_timer.Seconds();
  if (!cold.ok() || !cold.value().status.ok()) {
    std::fprintf(stderr, "cold solve failed: %s\n",
                 (cold.ok() ? cold.value().status : cold.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  // 2. Cache-hit solve.
  Timer hit_timer;
  Result<JobResult> hit = server.Solve(request("bench"));
  const double hit_s = hit_timer.Seconds();
  if (!hit.ok() || !hit.value().from_cache) {
    std::fprintf(stderr, "cache-hit solve did not hit the cache\n");
    return 1;
  }
  const double solve_speedup = cold_s / hit_s;

  // 3. Query latency.
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  auto next_index = [&lcg](Index extent) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Index>((lcg >> 33) % static_cast<std::uint64_t>(extent));
  };
  std::vector<double> batch_seconds;
  batch_seconds.reserve(static_cast<std::size_t>(query_rounds));
  for (int round = 0; round < query_rounds; ++round) {
    ElementQueryRequest q;
    q.indices.reserve(static_cast<std::size_t>(query_batch));
    for (int b = 0; b < query_batch; ++b) {
      q.indices.push_back({next_index(dim), next_index(dim), next_index(dim)});
    }
    Timer qt;
    Result<ElementQueryResponse> resp = server.QueryElement(spec, q);
    const double qs = qt.Seconds();
    if (!resp.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    batch_seconds.push_back(qs);
  }
  const double batch_p50 = Percentile(batch_seconds, 0.50);
  const double batch_p99 = Percentile(batch_seconds, 0.99);
  const double query_speedup = cold_s / batch_p50;

  // 4. Sustained mixed load.
  std::atomic<std::uint64_t> requests{0};
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t seed = 0x2545f4914f6cdd1dull + static_cast<std::uint64_t>(c);
      auto local_index = [&seed](Index extent) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<Index>((seed >> 33) %
                                  static_cast<std::uint64_t>(extent));
      };
      while (!stop.load(std::memory_order_relaxed)) {
        Timer t;
        Result<JobResult> r = server.Solve(request("bench"));
        if (!r.ok()) break;
        latencies[static_cast<std::size_t>(c)].push_back(t.Seconds());
        requests.fetch_add(1, std::memory_order_relaxed);
        ElementQueryRequest q;
        for (int b = 0; b < 8; ++b) {
          q.indices.push_back(
              {local_index(dim), local_index(dim), local_index(dim)});
        }
        if (!server.QueryElement(spec, q).ok()) break;
        requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  Timer window;
  while (window.Seconds() < duration) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double window_s = window.Seconds();
  const double qps = static_cast<double>(requests.load()) / window_s;
  std::vector<double> all_lat;
  for (const auto& v : latencies) {
    all_lat.insert(all_lat.end(), v.begin(), v.end());
  }
  const double job_p50_ns = Percentile(all_lat, 0.50) * 1e9;
  const double job_p99_ns = Percentile(all_lat, 0.99) * 1e9;

  // 5. Single-flight probe on an uncached model: fanout concurrent
  // identical Submits, exactly one Engine run.
  const std::uint64_t executed_before = server.Stats().executed;
  std::vector<JobId> ids;
  {
    std::vector<std::thread> submitters;
    std::mutex ids_mutex;
    for (int f = 0; f < fanout; ++f) {
      submitters.emplace_back([&] {
        Result<JobId> id = server.Submit(request("dedup"));
        if (id.ok()) {
          std::lock_guard<std::mutex> lock(ids_mutex);
          ids.push_back(id.value());
        }
      });
    }
    for (std::thread& t : submitters) t.join();
  }
  for (JobId id : ids) {
    Result<JobResult> r = server.Wait(id);
    if (!r.ok() || !r.value().status.ok()) {
      std::fprintf(stderr, "single-flight job failed\n");
      return 1;
    }
  }
  const std::uint64_t dedup_executed =
      server.Stats().executed - executed_before;

  TablePrinter table({"measurement", "value"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f s", cold_s);
  table.AddRow({"cold solve", buf});
  std::snprintf(buf, sizeof(buf), "%.1f us (%.0fx)", hit_s * 1e6,
                solve_speedup);
  table.AddRow({"cache-hit solve", buf});
  std::snprintf(buf, sizeof(buf), "%.1f us p50 / %.1f us p99",
                batch_p50 * 1e6, batch_p99 * 1e6);
  table.AddRow({"query batch (" + std::to_string(query_batch) + " elems)",
                buf});
  std::snprintf(buf, sizeof(buf), "%.0fx", query_speedup);
  table.AddRow({"cache-hit query speedup", buf});
  std::snprintf(buf, sizeof(buf), "%.0f req/s", qps);
  table.AddRow({"sustained throughput", buf});
  std::snprintf(buf, sizeof(buf), "%.0f us p50 / %.0f us p99",
                job_p50_ns / 1e3, job_p99_ns / 1e3);
  table.AddRow({"job latency", buf});
  std::snprintf(buf, sizeof(buf), "%d submits -> %llu runs", fanout,
                static_cast<unsigned long long>(dedup_executed));
  table.AddRow({"single-flight", buf});
  table.Print();

  FILE* json = std::fopen(flags.GetString("json").c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n",
                 flags.GetString("json").c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json,
               "  \"config\": {\"dim\": %td, \"rank\": %td, \"iters\": %d, "
               "\"workers\": %d, \"clients\": %d, \"query_batch\": %d},\n",
               dim, rank, iters, sopt.num_workers, clients, query_batch);
  std::fprintf(json, "  \"cold_solve_seconds\": %.6f,\n", cold_s);
  std::fprintf(json, "  \"cache_hit_solve_seconds\": %.9f,\n", hit_s);
  std::fprintf(json, "  \"cache_hit_solve_speedup\": %.1f,\n", solve_speedup);
  std::fprintf(json, "  \"query_batch_seconds_p50\": %.9f,\n", batch_p50);
  std::fprintf(json, "  \"query_batch_seconds_p99\": %.9f,\n", batch_p99);
  std::fprintf(json, "  \"per_element_ns_p50\": %.0f,\n",
               batch_p50 * 1e9 / query_batch);
  std::fprintf(json, "  \"cache_hit_query_speedup\": %.1f,\n", query_speedup);
  std::fprintf(json, "  \"sustained_qps\": %.1f,\n", qps);
  std::fprintf(json, "  \"job_p50_ns\": %.0f,\n", job_p50_ns);
  std::fprintf(json, "  \"job_p99_ns\": %.0f,\n", job_p99_ns);
  std::fprintf(json, "  \"dedup_submitted\": %d,\n", fanout);
  std::fprintf(json, "  \"dedup_executed\": %llu\n",
               static_cast<unsigned long long>(dedup_executed));
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", flags.GetString("json").c_str());
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
