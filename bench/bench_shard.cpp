// bench_shard: multi-process sharded D-Tucker scaling harness.
//
// Three phases, all over real fork()ed rank processes (rank 0 stays in the
// parent) with one BLAS thread per rank:
//
//   1. Scaling: for each rank count R in --rank_counts, decompose a
//      DTNSR001 scratch file whose raw slab stack exceeds the per-rank
//      memory budget. Each rank streams and compresses only its own slice
//      shard, so its resident tensor data is one slice plus the compressed
//      shard. Runs on the file transport (the conservative multi-process
//      baseline) and checks the core is bitwise identical to the 1-rank
//      run.
//   2. Transport wait probe: at --wait_ranks multi-process ranks, a tight
//      loop of small collectives on the file and shm transports, reporting
//      rank 0's mean blocked time per collective from the comm.wait_ns.* /
//      comm.ops.* metrics. This isolates rendezvous latency (compute skew
//      is negligible), which is where the shm transport's mmap'd-atomic
//      mailboxes beat the file transport's stat/rename polling.
//   3. Trailing comparison: on a --trailing_dim^3 cube at Tucker rank
//      --trailing_rank, iteration-phase seconds for the new stack (shm
//      transport + sharded trailing updates) against the prior
//      replicated-trailing baseline stack (file transport + gathered-Z
//      updates, the PR 6 configuration), with a same-transport ablation
//      (shm + replicated) isolating the trailing change alone and a
//      1-rank sharded run for the bitwise check. At modest slice counts
//      the trailing compute is milliseconds, so the headline win is
//      dropping the per-sweep gathered-Z collectives from the slow
//      transport; the sharded update's compute advantage grows with the
//      slice count (the replicated Gram and eig scale as L^2 and L^3).
//
// Timing model: the approximation phase is reported as the *busiest rank's
// CPU seconds* (reduced with AllReduceMax), not parent wall-clock. With
// one core per rank — the configuration the scaling claim is about — the
// busiest rank's CPU time IS the phase's wall time; on a machine with
// fewer cores than ranks the OS timeshares the ranks and wall-clock
// measures the scheduler, not the algorithm. Wall times are also recorded
// for reference. Init/iteration wall seconds come from rank 0's
// TuckerStats (those phases are collective-synchronized, so every rank
// agrees on them).
//
// Output: a table on stdout plus --json (default BENCH_shard.json) with
// per-rank-count phase times, approximation speedup vs 1 rank, parallel
// efficiency, per-rank resident bytes, bitwise-identity checks against the
// 1-rank run, the per-transport mean collective wait (and the shm-vs-file
// ratio), and the trailing-update speedup.
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "comm/communicator.h"
#include "comm/sharding.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "data/tensor_file.h"
#include "dtucker/out_of_core.h"
#include "dtucker/sharded_dtucker.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

double CpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

// Writes a synthetic low-rank-plus-noise tensor slice by slice (never
// resident; same construction as exp11).
Status WriteSyntheticTensor(const std::string& path, Index i1, Index i2,
                            Index slices, Index rank, uint64_t seed) {
  Rng rng(seed);
  Matrix u = Matrix::GaussianRandom(i1, rank, rng);
  Matrix v = Matrix::GaussianRandom(i2, rank, rng);
  Result<TensorFileWriter> writer =
      TensorFileWriter::Create(path, {i1, i2, slices});
  DT_RETURN_NOT_OK(writer.status());
  TensorFileWriter w = std::move(writer).ValueOrDie();
  Matrix slice(i1, i2);
  for (Index l = 0; l < slices; ++l) {
    Matrix us = u;
    for (Index r = 0; r < rank; ++r) {
      const double weight = 1.0 + std::sin(0.05 * static_cast<double>(l) + r);
      Scal(weight, us.col_data(r), i1);
    }
    GemmRaw(Trans::kNo, Trans::kYes, i1, i2, rank, 1.0, us.data(), i1,
            v.data(), i2, 0.0, slice.data(), i1);
    for (Index i = 0; i < slice.size(); ++i) {
      slice.data()[i] += 0.05 * rng.Gaussian();
    }
    DT_RETURN_NOT_OK(w.AppendSlice(slice));
  }
  return w.Finish();
}

// Sum of the per-op comm wait gauges and op counters in this process's
// metrics registry. Deltas around a bracket give that bracket's blocked
// nanoseconds and outermost-collective count (OpScope attribution: nested
// collectives fold into the outermost op).
struct WaitStats {
  double wait_ns = 0;
  double ops = 0;
};

WaitStats SnapshotWaitStats() {
  static const char* kOps[] = {"barrier",       "broadcast", "allreduce_sum",
                               "allreduce_max", "gather",    "allgatherv"};
  WaitStats s;
  for (const char* op : kOps) {
    s.wait_ns += MetricGauge(std::string("comm.wait_ns.") + op).Value();
    s.ops +=
        static_cast<double>(MetricCounter(std::string("comm.ops.") + op).Value());
  }
  return s;
}

// Creates this rank's communicator on the requested multi-process
// transport. `scratch` is the shared directory (file) or the shm_open
// name (shm). Rank processes fork *before* creating, so shm peers poll
// for rank 0's segment (bounded by the setup timeout).
Result<std::unique_ptr<Communicator>> CreateBenchCommunicator(
    CommTransport transport, const std::string& scratch, int rank, int size) {
  switch (transport) {
    case CommTransport::kFile:
      return CreateFileCommunicator(scratch, rank, size);
    case CommTransport::kShm:
      return CreateShmCommunicator(scratch, rank, size);
    case CommTransport::kInProcess:
      break;
  }
  return Status::InvalidArgument(
      "bench_shard runs rank processes; inproc is thread-only");
}

// What one rank measures; max-reduced across the group so rank 0 reports
// the phase critical path.
struct RankReport {
  double approx_cpu = 0;       // CPU seconds in the approximation phase.
  double approx_wall = 0;      // Wall seconds in the approximation phase.
  double init_seconds = 0;     // Initialization phase (collective wall).
  double iterate_seconds = 0;  // Iteration phase (collective wall).
  double resident_bytes = 0;   // Compressed shard + one streaming slice.
  Tensor core;                 // For the bitwise determinism check.
};

Result<RankReport> RunRank(const std::string& path, CommTransport transport,
                           const std::string& scratch, int rank, int size,
                           const std::vector<Index>& full_shape, Index rank_j,
                           int iters, bool shard_trailing) {
  SetBlasThreads(1);  // The claim under test: R ranks x 1 thread each.
  Result<std::unique_ptr<Communicator>> comm_r =
      CreateBenchCommunicator(transport, scratch, rank, size);
  DT_RETURN_NOT_OK(comm_r.status());
  Communicator* comm = comm_r.value().get();

  Index l_total = 1;
  for (std::size_t n = 2; n < full_shape.size(); ++n) l_total *= full_shape[n];
  DT_ASSIGN_OR_RETURN(ShardPlan plan, MakeShardPlan(l_total, size, rank));

  SliceApproximationOptions aopt;
  aopt.slice_rank = rank_j;
  Timer wall;
  const double cpu0 = CpuSeconds();
  DT_ASSIGN_OR_RETURN(std::vector<SliceSvd> slices,
                      ApproximateSliceRangeFromFile(
                          path, plan.slice_begin, plan.NumLocalSlices(), aopt));
  RankReport report;
  report.approx_cpu = CpuSeconds() - cpu0;
  report.approx_wall = wall.Seconds();

  SliceApproximation local;
  local.shape = {full_shape[0], full_shape[1], plan.NumLocalSlices()};
  local.slice_rank = rank_j;
  local.slices = std::move(slices);
  report.resident_bytes =
      static_cast<double>(local.ByteSize()) +
      static_cast<double>(full_shape[0] * full_shape[1]) * sizeof(double);

  DTuckerOptions opt;
  opt.tucker.ranks.assign(full_shape.size(), rank_j);
  opt.tucker.max_iterations = iters;
  opt.tucker.tolerance = 0;  // Fixed sweep count: every run does the same work.
  opt.shard_trailing_updates = shard_trailing;
  TuckerStats stats;
  DT_ASSIGN_OR_RETURN(TuckerDecomposition dec,
                      ShardedDTuckerFromLocalApproximation(
                          local, full_shape, plan, opt, comm, &stats));
  report.init_seconds = stats.init_seconds;
  report.iterate_seconds = stats.iterate_seconds;
  report.core = std::move(dec.core);

  // Phase critical path: the busiest rank's numbers, on every rank.
  double buf[5] = {report.approx_cpu, report.approx_wall, report.init_seconds,
                   report.iterate_seconds, report.resident_bytes};
  DT_RETURN_NOT_OK(comm->AllReduceMax(buf, 5));
  report.approx_cpu = buf[0];
  report.approx_wall = buf[1];
  report.init_seconds = buf[2];
  report.iterate_seconds = buf[3];
  report.resident_bytes = buf[4];
  DT_RETURN_NOT_OK(comm->Barrier());
  return report;
}

// Forks ranks 1..size-1 running `body`, runs rank 0 in the parent, and
// joins the children. Returns rank 0's status; a child failure turns an
// OK parent into an error.
Status RunRankProcesses(int size, const std::function<Status(int)>& body) {
  std::vector<pid_t> children;
  for (int r = 1; r < size; ++r) {
    pid_t pid = ::fork();
    if (pid < 0) return Status::Internal("fork failed");
    if (pid == 0) {
      Status st = body(r);
      if (!st.ok()) {
        std::fprintf(stderr, "rank %d: %s\n", r, st.ToString().c_str());
      }
      ::_exit(st.ok() ? 0 : 1);
    }
    children.push_back(pid);
  }
  Status root = body(0);
  bool peers_ok = true;
  for (pid_t pid : children) {
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    peers_ok &= WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
  }
  if (root.ok() && !peers_ok) return Status::Internal("peer rank failed");
  return root;
}

// Phase 2 worker: after a warmup, a tight loop of small collectives; rank
// 0 reports its mean blocked nanoseconds per collective from the metric
// deltas. Every collective counts two outermost ops per iteration (one
// AllReduceSum, one Barrier).
Result<double> RunWaitProbe(CommTransport transport, const std::string& scratch,
                            int rank, int size, int iters) {
  Result<std::unique_ptr<Communicator>> comm_r =
      CreateBenchCommunicator(transport, scratch, rank, size);
  DT_RETURN_NOT_OK(comm_r.status());
  Communicator* comm = comm_r.value().get();
  double payload[64];
  for (int i = 0; i < 64; ++i) {
    payload[i] = static_cast<double>(rank + i);
  }
  for (int w = 0; w < 4; ++w) DT_RETURN_NOT_OK(comm->Barrier());
  const WaitStats before = SnapshotWaitStats();
  for (int it = 0; it < iters; ++it) {
    DT_RETURN_NOT_OK(comm->AllReduceSum(payload, 64));
    DT_RETURN_NOT_OK(comm->Barrier());
  }
  const WaitStats after = SnapshotWaitStats();
  DT_RETURN_NOT_OK(comm->Barrier());
  const double ops = after.ops - before.ops;
  if (ops <= 0) return Status::Internal("wait probe recorded no collectives");
  return (after.wait_ns - before.wait_ns) / ops;
}

struct RunRecord {
  int ranks = 0;
  RankReport report;
  double rank0_wait_ns_per_collective = 0;
  bool bitwise_match = true;
};

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (Index i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("i1", 384, "slice rows (scaling phase)");
  flags.AddInt("i2", 256, "slice cols (scaling phase)");
  flags.AddInt("slices", 96, "number of frontal slices (scaling phase)");
  flags.AddInt("rank", 10, "Tucker rank per mode (scaling phase)");
  flags.AddInt("iters", 3, "ALS sweeps (fixed; tolerance 0)");
  flags.AddString("rank_counts", "1,2,4", "comma-separated rank counts");
  flags.AddInt("wait_ranks", 4, "rank count for the transport wait probe");
  flags.AddInt("wait_iters", 300,
               "collective pairs per transport in the wait probe");
  flags.AddInt("trailing_dim", 256,
               "cube side for the trailing-update comparison (0 = skip)");
  flags.AddInt("trailing_rank", 10, "Tucker rank for the trailing comparison");
  flags.AddInt("trailing_ranks", 4, "rank count for the trailing comparison");
  flags.AddInt("trailing_iters", 3, "ALS sweeps in the trailing comparison");
  flags.AddString("path", "/tmp/dtucker_bench_shard.dtnsr", "scratch tensor");
  flags.AddString("scratch", "/tmp/dtucker_bench_shard_comm",
                  "communicator scratch directory prefix");
  flags.AddString("json", "BENCH_shard.json", "JSON output path");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);

  const Index i1 = flags.GetInt("i1");
  const Index i2 = flags.GetInt("i2");
  const Index slices = flags.GetInt("slices");
  const Index rank_j = flags.GetInt("rank");
  const int iters = static_cast<int>(flags.GetInt("iters"));
  const std::string path = flags.GetString("path");
  const std::vector<Index> full_shape = {i1, i2, slices};
  const double slab_stack_bytes =
      static_cast<double>(i1 * i2 * slices) * sizeof(double);
  const std::string shm_base = "/dtucker-bench-" + std::to_string(::getpid());

  std::vector<int> rank_counts;
  {
    const std::string& spec = flags.GetString("rank_counts");
    int value = 0;
    for (char c : spec + ",") {
      if (c >= '0' && c <= '9') {
        value = value * 10 + (c - '0');
      } else if (value > 0) {
        rank_counts.push_back(value);
        value = 0;
      }
    }
  }

  std::printf("=== bench_shard: %td x %td x %td (%.0f MiB slab stack), "
              "J = %td, %d sweeps ===\n\n",
              i1, i2, slices, slab_stack_bytes / (1 << 20), rank_j, iters);
  Timer write_timer;
  Status ws = WriteSyntheticTensor(path, i1, i2, slices, rank_j, 9);
  if (!ws.ok()) {
    std::fprintf(stderr, "writing failed: %s\n", ws.ToString().c_str());
    return 1;
  }
  std::printf("wrote scratch tensor in %.1fs\n\n", write_timer.Seconds());

  // --- Phase 1: scaling on the file transport. --------------------------
  std::vector<RunRecord> records;
  Tensor reference_core;  // Copy, not a pointer: `records` reallocates.
  for (std::size_t ci = 0; ci < rank_counts.size(); ++ci) {
    const int size = rank_counts[ci];
    const std::string dir =
        flags.GetString("scratch") + "_" + std::to_string(size);
    RunRecord record;
    record.ranks = size;
    const WaitStats wait0 = SnapshotWaitStats();
    Status run_st = RunRankProcesses(size, [&](int r) -> Status {
      Result<RankReport> rep =
          RunRank(path, CommTransport::kFile, dir, r, size, full_shape, rank_j,
                  iters, /*shard_trailing=*/true);
      DT_RETURN_NOT_OK(rep.status());
      if (r == 0) record.report = std::move(rep).ValueOrDie();
      return Status::OK();
    });
    const WaitStats wait1 = SnapshotWaitStats();
    std::string cleanup = "rm -rf '" + dir + "'";
    if (std::system(cleanup.c_str()) != 0) {
      std::fprintf(stderr, "warning: failed to remove %s\n", dir.c_str());
    }
    if (!run_st.ok()) {
      std::fprintf(stderr, "rank count %d failed: %s\n", size,
                   run_st.ToString().c_str());
      return 1;
    }
    if (wait1.ops > wait0.ops) {
      record.rank0_wait_ns_per_collective =
          (wait1.wait_ns - wait0.wait_ns) / (wait1.ops - wait0.ops);
    }
    if (records.empty()) {
      reference_core = record.report.core;
    } else {
      record.bitwise_match = BitwiseEqual(record.report.core, reference_core);
    }
    records.push_back(std::move(record));
    std::printf("ranks=%d done (approx %.2fs cpu/rank, %.2fs wall)\n", size,
                records.back().report.approx_cpu,
                records.back().report.approx_wall);
  }

  // --- Phase 2: transport wait probe (file vs shm). ---------------------
  const int wait_ranks = static_cast<int>(flags.GetInt("wait_ranks"));
  const int wait_iters = static_cast<int>(flags.GetInt("wait_iters"));
  double file_wait_ns = 0;
  double shm_wait_ns = 0;
  {
    const std::string dir = flags.GetString("scratch") + "_waitprobe";
    Status probe_st = RunRankProcesses(wait_ranks, [&](int r) -> Status {
      Result<double> mean =
          RunWaitProbe(CommTransport::kFile, dir, r, wait_ranks, wait_iters);
      DT_RETURN_NOT_OK(mean.status());
      if (r == 0) file_wait_ns = std::move(mean).ValueOrDie();
      return Status::OK();
    });
    std::string cleanup = "rm -rf '" + dir + "'";
    if (std::system(cleanup.c_str()) != 0) {
      std::fprintf(stderr, "warning: failed to remove %s\n", dir.c_str());
    }
    if (probe_st.ok()) {
      const std::string name = shm_base + "-waitprobe";
      probe_st = RunRankProcesses(wait_ranks, [&](int r) -> Status {
        Result<double> mean =
            RunWaitProbe(CommTransport::kShm, name, r, wait_ranks, wait_iters);
        DT_RETURN_NOT_OK(mean.status());
        if (r == 0) shm_wait_ns = std::move(mean).ValueOrDie();
        return Status::OK();
      });
    }
    if (!probe_st.ok()) {
      std::fprintf(stderr, "wait probe failed: %s\n",
                   probe_st.ToString().c_str());
      return 1;
    }
  }
  const double wait_speedup =
      shm_wait_ns > 0 ? file_wait_ns / shm_wait_ns : 0.0;
  std::printf(
      "\nwait probe (%d ranks, %d collective pairs): file %.1f us, shm "
      "%.1f us per collective -> shm %.1fx lower wait\n",
      wait_ranks, wait_iters, file_wait_ns * 1e-3, shm_wait_ns * 1e-3,
      wait_speedup);

  // --- Phase 3: sharded vs replicated trailing updates. -----------------
  const Index tdim = flags.GetInt("trailing_dim");
  const Index trank = flags.GetInt("trailing_rank");
  const int tranks = static_cast<int>(flags.GetInt("trailing_ranks"));
  const int titers = static_cast<int>(flags.GetInt("trailing_iters"));
  double trailing_sharded_s = 0;        // new stack: shm + sharded trailing
  double trailing_repl_shm_s = 0;       // ablation: shm + replicated trailing
  double trailing_repl_file_s = 0;      // baseline stack: file + replicated
  bool trailing_bitwise = true;
  if (tdim > 0) {
    const std::string tpath = path + ".trail";
    const std::vector<Index> tshape = {tdim, tdim, tdim};
    Status tws = WriteSyntheticTensor(tpath, tdim, tdim, tdim, trank, 9);
    if (!tws.ok()) {
      std::fprintf(stderr, "writing failed: %s\n", tws.ToString().c_str());
      return 1;
    }
    Tensor trailing_cores[4];
    struct TrailingConfig {
      int size;
      bool shard_trailing;
      CommTransport transport;
      double* seconds;
    };
    double reference_seconds = 0;
    const TrailingConfig configs[4] = {
        {tranks, true, CommTransport::kShm, &trailing_sharded_s},
        {tranks, false, CommTransport::kShm, &trailing_repl_shm_s},
        {tranks, false, CommTransport::kFile, &trailing_repl_file_s},
        {1, true, CommTransport::kShm, &reference_seconds},
    };
    for (int c = 0; c < 4; ++c) {
      const bool is_file = configs[c].transport == CommTransport::kFile;
      const std::string scratch =
          is_file ? flags.GetString("scratch") + "_trail" + std::to_string(c)
                  : shm_base + "-trail" + std::to_string(c);
      Status run_st = RunRankProcesses(configs[c].size, [&](int r) -> Status {
        Result<RankReport> rep =
            RunRank(tpath, configs[c].transport, scratch, r, configs[c].size,
                    tshape, trank, titers, configs[c].shard_trailing);
        DT_RETURN_NOT_OK(rep.status());
        if (r == 0) {
          *configs[c].seconds = rep.value().iterate_seconds;
          trailing_cores[c] = std::move(rep).ValueOrDie().core;
        }
        return Status::OK();
      });
      if (is_file) {
        std::string cleanup = "rm -rf '" + scratch + "'";
        if (std::system(cleanup.c_str()) != 0) {
          std::fprintf(stderr, "warning: failed to remove %s\n",
                       scratch.c_str());
        }
      }
      if (!run_st.ok()) {
        std::fprintf(stderr, "trailing config %d failed: %s\n", c,
                     run_st.ToString().c_str());
        return 1;
      }
    }
    std::remove(tpath.c_str());
    trailing_bitwise = BitwiseEqual(trailing_cores[0], trailing_cores[3]);
    std::printf(
        "trailing updates (%td^3, J=%td, %d ranks, %d sweeps): sharded+shm "
        "%.3fs, replicated+shm %.3fs, replicated+file (PR 6 stack) %.3fs -> "
        "%.2fx vs baseline stack (%.2fx same-transport); bitwise=1rank: %s\n",
        tdim, trank, tranks, titers, trailing_sharded_s, trailing_repl_shm_s,
        trailing_repl_file_s,
        trailing_sharded_s > 0 ? trailing_repl_file_s / trailing_sharded_s
                               : 0.0,
        trailing_sharded_s > 0 ? trailing_repl_shm_s / trailing_sharded_s
                               : 0.0,
        trailing_bitwise ? "yes" : "NO");
  }

  const double base_cpu = records.front().report.approx_cpu;
  TablePrinter table({"ranks", "approx cpu/rank", "approx speedup",
                      "efficiency", "init", "iterate", "resident/rank",
                      "bitwise=1rank"});
  for (const RunRecord& r : records) {
    const double speedup = base_cpu / r.report.approx_cpu;
    char cpu_s[32], sp_s[32], eff_s[32], init_s[32], it_s[32];
    std::snprintf(cpu_s, sizeof(cpu_s), "%.3fs", r.report.approx_cpu);
    std::snprintf(sp_s, sizeof(sp_s), "%.2fx", speedup);
    std::snprintf(eff_s, sizeof(eff_s), "%.0f%%", 100.0 * speedup / r.ranks);
    std::snprintf(init_s, sizeof(init_s), "%.3fs", r.report.init_seconds);
    std::snprintf(it_s, sizeof(it_s), "%.3fs", r.report.iterate_seconds);
    table.AddRow({std::to_string(r.ranks), cpu_s, sp_s, eff_s, init_s, it_s,
                  TablePrinter::FormatBytes(
                      static_cast<std::size_t>(r.report.resident_bytes)),
                  r.bitwise_match ? "yes" : "NO"});
  }
  std::printf("\n");
  table.Print();

  FILE* json = std::fopen(flags.GetString("json").c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.GetString("json").c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"tensor\": {\"i1\": %td, \"i2\": %td, \"slices\": %td, "
               "\"slab_stack_bytes\": %.0f},\n  \"note\": "
               "\"approx_cpu_seconds is the busiest rank's CPU time in the "
               "approximation phase (== phase wall time at one core per "
               "rank); speedup/efficiency derive from it\",\n  \"runs\": [\n",
               i1, i2, slices, slab_stack_bytes);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    const double speedup = base_cpu / r.report.approx_cpu;
    std::fprintf(
        json,
        "    {\"ranks\": %d, \"approx_cpu_seconds\": %.6f, "
        "\"approx_wall_seconds\": %.6f, \"approx_speedup\": %.3f, "
        "\"parallel_efficiency\": %.3f, \"init_seconds\": %.6f, "
        "\"iterate_seconds\": %.6f, \"resident_bytes_per_rank\": %.0f, "
        "\"rank0_wait_ns_per_collective\": %.0f, "
        "\"core_bitwise_matches_1rank\": %s}%s\n",
        r.ranks, r.report.approx_cpu, r.report.approx_wall, speedup,
        speedup / r.ranks, r.report.init_seconds, r.report.iterate_seconds,
        r.report.resident_bytes, r.rank0_wait_ns_per_collective,
        r.bitwise_match ? "true" : "false",
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"wait_probe\": {\"ranks\": %d, "
               "\"collective_pairs\": %d, \"file_mean_wait_ns\": %.0f, "
               "\"shm_mean_wait_ns\": %.0f, "
               "\"shm_wait_speedup_vs_file\": %.2f},\n",
               wait_ranks, wait_iters, file_wait_ns, shm_wait_ns,
               wait_speedup);
  std::fprintf(json,
               "  \"trailing\": {\"dim\": %td, \"tucker_rank\": %td, "
               "\"ranks\": %d, \"sweeps\": %d, "
               "\"sharded_shm_iterate_seconds\": %.6f, "
               "\"replicated_shm_iterate_seconds\": %.6f, "
               "\"replicated_file_iterate_seconds\": %.6f, "
               "\"trailing_speedup\": %.3f, "
               "\"trailing_speedup_same_transport\": %.3f, "
               "\"note\": \"trailing_speedup compares the new stack (shm "
               "transport + sharded trailing updates) against the prior "
               "replicated-trailing baseline stack (file transport, the "
               "only multi-process transport before shm); the "
               "same-transport ablation isolates the trailing change "
               "alone\", "
               "\"core_bitwise_matches_1rank\": %s}\n}\n",
               tdim, trank, tranks, titers, trailing_sharded_s,
               trailing_repl_shm_s, trailing_repl_file_s,
               trailing_sharded_s > 0
                   ? trailing_repl_file_s / trailing_sharded_s
                   : 0.0,
               trailing_sharded_s > 0
                   ? trailing_repl_shm_s / trailing_sharded_s
                   : 0.0,
               trailing_bitwise ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote %s\n", flags.GetString("json").c_str());
  std::remove(path.c_str());
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
