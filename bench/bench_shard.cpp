// bench_shard: multi-process sharded D-Tucker scaling harness.
//
// For each rank count R in --rank_counts, forks R real processes (rank 0
// stays in the parent) that meet through the FileCommunicator — the no-MPI
// multi-process transport — and decompose a DTNSR001 scratch file whose
// raw slab stack exceeds the per-rank memory budget. Each rank streams and
// compresses only its own slice shard, so its resident tensor data is one
// slice plus the compressed shard.
//
// Timing model: the approximation phase is reported as the *busiest rank's
// CPU seconds* (reduced with AllReduceMax), not parent wall-clock. With
// one core per rank — the configuration the scaling claim is about — the
// busiest rank's CPU time IS the phase's wall time; on a machine with
// fewer cores than ranks the OS timeshares the ranks and wall-clock
// measures the scheduler, not the algorithm. Wall times are also recorded
// for reference. Init/iteration wall seconds come from rank 0's
// TuckerStats (those phases are collective-synchronized, so every rank
// agrees on them).
//
// Output: a table on stdout plus --json (default BENCH_shard.json) with
// per-rank-count phase times, approximation speedup vs 1 rank, parallel
// efficiency, per-rank resident bytes, and a bitwise-identity check of the
// core tensor against the 1-rank run.
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "comm/communicator.h"
#include "comm/sharding.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "data/tensor_file.h"
#include "dtucker/out_of_core.h"
#include "dtucker/sharded_dtucker.h"
#include "linalg/blas.h"

namespace dtucker {
namespace {

double CpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

// Writes a synthetic low-rank-plus-noise tensor slice by slice (never
// resident; same construction as exp11).
Status WriteSyntheticTensor(const std::string& path, Index i1, Index i2,
                            Index slices, Index rank, uint64_t seed) {
  Rng rng(seed);
  Matrix u = Matrix::GaussianRandom(i1, rank, rng);
  Matrix v = Matrix::GaussianRandom(i2, rank, rng);
  Result<TensorFileWriter> writer =
      TensorFileWriter::Create(path, {i1, i2, slices});
  DT_RETURN_NOT_OK(writer.status());
  TensorFileWriter w = std::move(writer).ValueOrDie();
  Matrix slice(i1, i2);
  for (Index l = 0; l < slices; ++l) {
    Matrix us = u;
    for (Index r = 0; r < rank; ++r) {
      const double weight = 1.0 + std::sin(0.05 * static_cast<double>(l) + r);
      Scal(weight, us.col_data(r), i1);
    }
    GemmRaw(Trans::kNo, Trans::kYes, i1, i2, rank, 1.0, us.data(), i1,
            v.data(), i2, 0.0, slice.data(), i1);
    for (Index i = 0; i < slice.size(); ++i) {
      slice.data()[i] += 0.05 * rng.Gaussian();
    }
    DT_RETURN_NOT_OK(w.AppendSlice(slice));
  }
  return w.Finish();
}

// What one rank measures; max-reduced across the group so rank 0 reports
// the phase critical path.
struct RankReport {
  double approx_cpu = 0;       // CPU seconds in the approximation phase.
  double approx_wall = 0;      // Wall seconds in the approximation phase.
  double init_seconds = 0;     // Initialization phase (collective wall).
  double iterate_seconds = 0;  // Iteration phase (collective wall).
  double resident_bytes = 0;   // Compressed shard + one streaming slice.
  Tensor core;                 // For the bitwise determinism check.
};

Result<RankReport> RunRank(const std::string& path, const std::string& dir,
                           int rank, int size,
                           const std::vector<Index>& full_shape, Index rank_j,
                           int iters) {
  SetBlasThreads(1);  // The claim under test: R ranks x 1 thread each.
  Result<std::unique_ptr<Communicator>> comm_r =
      CreateFileCommunicator(dir, rank, size);
  DT_RETURN_NOT_OK(comm_r.status());
  Communicator* comm = comm_r.value().get();

  Index l_total = 1;
  for (std::size_t n = 2; n < full_shape.size(); ++n) l_total *= full_shape[n];
  DT_ASSIGN_OR_RETURN(ShardPlan plan, MakeShardPlan(l_total, size, rank));

  SliceApproximationOptions aopt;
  aopt.slice_rank = rank_j;
  Timer wall;
  const double cpu0 = CpuSeconds();
  DT_ASSIGN_OR_RETURN(std::vector<SliceSvd> slices,
                      ApproximateSliceRangeFromFile(
                          path, plan.slice_begin, plan.NumLocalSlices(), aopt));
  RankReport report;
  report.approx_cpu = CpuSeconds() - cpu0;
  report.approx_wall = wall.Seconds();

  SliceApproximation local;
  local.shape = {full_shape[0], full_shape[1], plan.NumLocalSlices()};
  local.slice_rank = rank_j;
  local.slices = std::move(slices);
  report.resident_bytes =
      static_cast<double>(local.ByteSize()) +
      static_cast<double>(full_shape[0] * full_shape[1]) * sizeof(double);

  DTuckerOptions opt;
  opt.tucker.ranks.assign(full_shape.size(), rank_j);
  opt.tucker.max_iterations = iters;
  opt.tucker.tolerance = 0;  // Fixed sweep count: every run does the same work.
  TuckerStats stats;
  DT_ASSIGN_OR_RETURN(TuckerDecomposition dec,
                      ShardedDTuckerFromLocalApproximation(
                          local, full_shape, plan, opt, comm, &stats));
  report.init_seconds = stats.init_seconds;
  report.iterate_seconds = stats.iterate_seconds;
  report.core = std::move(dec.core);

  // Phase critical path: the busiest rank's numbers, on every rank.
  double buf[5] = {report.approx_cpu, report.approx_wall, report.init_seconds,
                   report.iterate_seconds, report.resident_bytes};
  DT_RETURN_NOT_OK(comm->AllReduceMax(buf, 5));
  report.approx_cpu = buf[0];
  report.approx_wall = buf[1];
  report.init_seconds = buf[2];
  report.iterate_seconds = buf[3];
  report.resident_bytes = buf[4];
  DT_RETURN_NOT_OK(comm->Barrier());
  return report;
}

struct RunRecord {
  int ranks = 0;
  RankReport report;
  bool bitwise_match = true;
};

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("i1", 384, "slice rows");
  flags.AddInt("i2", 256, "slice cols");
  flags.AddInt("slices", 96, "number of frontal slices");
  flags.AddInt("rank", 10, "Tucker rank per mode");
  flags.AddInt("iters", 3, "ALS sweeps (fixed; tolerance 0)");
  flags.AddString("rank_counts", "1,2,4", "comma-separated rank counts");
  flags.AddString("path", "/tmp/dtucker_bench_shard.dtnsr", "scratch tensor");
  flags.AddString("scratch", "/tmp/dtucker_bench_shard_comm",
                  "communicator scratch directory prefix");
  flags.AddString("json", "BENCH_shard.json", "JSON output path");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);

  const Index i1 = flags.GetInt("i1");
  const Index i2 = flags.GetInt("i2");
  const Index slices = flags.GetInt("slices");
  const Index rank_j = flags.GetInt("rank");
  const int iters = static_cast<int>(flags.GetInt("iters"));
  const std::string path = flags.GetString("path");
  const std::vector<Index> full_shape = {i1, i2, slices};
  const double slab_stack_bytes =
      static_cast<double>(i1 * i2 * slices) * sizeof(double);

  std::vector<int> rank_counts;
  {
    const std::string& spec = flags.GetString("rank_counts");
    int value = 0;
    for (char c : spec + ",") {
      if (c >= '0' && c <= '9') {
        value = value * 10 + (c - '0');
      } else if (value > 0) {
        rank_counts.push_back(value);
        value = 0;
      }
    }
  }

  std::printf("=== bench_shard: %td x %td x %td (%.0f MiB slab stack), "
              "J = %td, %d sweeps ===\n\n",
              i1, i2, slices, slab_stack_bytes / (1 << 20), rank_j, iters);
  Timer write_timer;
  Status ws = WriteSyntheticTensor(path, i1, i2, slices, rank_j, 9);
  if (!ws.ok()) {
    std::fprintf(stderr, "writing failed: %s\n", ws.ToString().c_str());
    return 1;
  }
  std::printf("wrote scratch tensor in %.1fs\n\n", write_timer.Seconds());

  std::vector<RunRecord> records;
  Tensor reference_core;  // Copy, not a pointer: `records` reallocates.
  for (std::size_t ci = 0; ci < rank_counts.size(); ++ci) {
    const int size = rank_counts[ci];
    const std::string dir =
        flags.GetString("scratch") + "_" + std::to_string(size);
    std::vector<pid_t> children;
    for (int r = 1; r < size; ++r) {
      pid_t pid = ::fork();
      if (pid < 0) {
        std::fprintf(stderr, "fork failed\n");
        return 1;
      }
      if (pid == 0) {
        Result<RankReport> peer =
            RunRank(path, dir, r, size, full_shape, rank_j, iters);
        if (!peer.ok()) {
          std::fprintf(stderr, "rank %d: %s\n", r,
                       peer.status().ToString().c_str());
        }
        ::_exit(peer.ok() ? 0 : 1);
      }
      children.push_back(pid);
    }
    Result<RankReport> root =
        RunRank(path, dir, 0, size, full_shape, rank_j, iters);
    bool peers_ok = true;
    for (pid_t pid : children) {
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
      peers_ok &= WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    }
    std::string cleanup = "rm -rf '" + dir + "'";
    if (std::system(cleanup.c_str()) != 0) {
      std::fprintf(stderr, "warning: failed to remove %s\n", dir.c_str());
    }
    if (!root.ok() || !peers_ok) {
      std::fprintf(stderr, "rank count %d failed: %s\n", size,
                   root.ok() ? "(peer process)" : root.status().ToString().c_str());
      return 1;
    }
    RunRecord record;
    record.ranks = size;
    record.report = std::move(root).ValueOrDie();
    if (records.empty()) {
      reference_core = record.report.core;
    } else {
      record.bitwise_match =
          record.report.core.shape() == reference_core.shape();
      for (Index i = 0; record.bitwise_match && i < reference_core.size();
           ++i) {
        record.bitwise_match =
            record.report.core.data()[i] == reference_core.data()[i];
      }
    }
    records.push_back(std::move(record));
    std::printf("ranks=%d done (approx %.2fs cpu/rank, %.2fs wall)\n", size,
                records.back().report.approx_cpu,
                records.back().report.approx_wall);
  }

  const double base_cpu = records.front().report.approx_cpu;
  TablePrinter table({"ranks", "approx cpu/rank", "approx speedup",
                      "efficiency", "init", "iterate", "resident/rank",
                      "bitwise=1rank"});
  for (const RunRecord& r : records) {
    const double speedup = base_cpu / r.report.approx_cpu;
    char cpu_s[32], sp_s[32], eff_s[32], init_s[32], it_s[32];
    std::snprintf(cpu_s, sizeof(cpu_s), "%.3fs", r.report.approx_cpu);
    std::snprintf(sp_s, sizeof(sp_s), "%.2fx", speedup);
    std::snprintf(eff_s, sizeof(eff_s), "%.0f%%", 100.0 * speedup / r.ranks);
    std::snprintf(init_s, sizeof(init_s), "%.3fs", r.report.init_seconds);
    std::snprintf(it_s, sizeof(it_s), "%.3fs", r.report.iterate_seconds);
    table.AddRow({std::to_string(r.ranks), cpu_s, sp_s, eff_s, init_s, it_s,
                  TablePrinter::FormatBytes(
                      static_cast<std::size_t>(r.report.resident_bytes)),
                  r.bitwise_match ? "yes" : "NO"});
  }
  std::printf("\n");
  table.Print();

  FILE* json = std::fopen(flags.GetString("json").c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.GetString("json").c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"tensor\": {\"i1\": %td, \"i2\": %td, \"slices\": %td, "
               "\"slab_stack_bytes\": %.0f},\n  \"note\": "
               "\"approx_cpu_seconds is the busiest rank's CPU time in the "
               "approximation phase (== phase wall time at one core per "
               "rank); speedup/efficiency derive from it\",\n  \"runs\": [\n",
               i1, i2, slices, slab_stack_bytes);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    const double speedup = base_cpu / r.report.approx_cpu;
    std::fprintf(
        json,
        "    {\"ranks\": %d, \"approx_cpu_seconds\": %.6f, "
        "\"approx_wall_seconds\": %.6f, \"approx_speedup\": %.3f, "
        "\"parallel_efficiency\": %.3f, \"init_seconds\": %.6f, "
        "\"iterate_seconds\": %.6f, \"resident_bytes_per_rank\": %.0f, "
        "\"core_bitwise_matches_1rank\": %s}%s\n",
        r.ranks, r.report.approx_cpu, r.report.approx_wall, speedup,
        speedup / r.ranks, r.report.init_seconds, r.report.iterate_seconds,
        r.report.resident_bytes, r.bitwise_match ? "true" : "false",
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", flags.GetString("json").c_str());
  std::remove(path.c_str());
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
