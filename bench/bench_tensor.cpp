// Microbenchmarks for tensor operations and the D-Tucker phases.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dtucker/dtucker.h"
#include "tensor/tensor_ops.h"

namespace dtucker {
namespace {

Tensor BenchTensor(Index side) {
  Rng rng(1);
  return Tensor::GaussianRandom({side, side, side}, rng);
}

void BM_UnfoldMode(benchmark::State& state) {
  Tensor x = BenchTensor(64);
  const Index mode = state.range(0);
  for (auto _ : state) {
    Matrix u = Unfold(x, mode);
    benchmark::DoNotOptimize(u.data());
  }
  state.SetBytesProcessed(state.iterations() * x.ByteSize());
}
BENCHMARK(BM_UnfoldMode)->Arg(0)->Arg(1)->Arg(2);

void BM_ModeProduct(benchmark::State& state) {
  Tensor x = BenchTensor(64);
  const Index mode = state.range(0);
  Rng rng(2);
  Matrix a = Matrix::GaussianRandom(64, 10, rng);
  for (auto _ : state) {
    Tensor y = ModeProduct(x, a, mode, Trans::kYes);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * x.size() * 10);
}
BENCHMARK(BM_ModeProduct)->Arg(0)->Arg(1)->Arg(2);

void BM_SliceApproximation(benchmark::State& state) {
  const Index side = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::GaussianRandom({side, side, 32}, rng);
  SliceApproximationOptions opt;
  opt.slice_rank = 10;
  for (auto _ : state) {
    auto approx = ApproximateSlices(x, opt);
    benchmark::DoNotOptimize(approx.ok());
  }
}
BENCHMARK(BM_SliceApproximation)->Arg(64)->Arg(128)->Arg(256);

void BM_DTuckerSweepCost(benchmark::State& state) {
  // One full query-phase fit at fixed small iterations.
  const Index side = state.range(0);
  Rng rng(4);
  Tensor x = Tensor::GaussianRandom({side, side, 32}, rng);
  SliceApproximationOptions sopt;
  sopt.slice_rank = 10;
  auto approx = ApproximateSlices(x, sopt);
  DTuckerOptions opt;
  opt.tucker.ranks = {10, 10, 10};
  opt.tucker.max_iterations = 3;
  opt.tucker.tolerance = 0.0;
  for (auto _ : state) {
    auto dec = DTuckerFromApproximation(approx.value(), opt);
    benchmark::DoNotOptimize(dec.ok());
  }
}
BENCHMARK(BM_DTuckerSweepCost)->Arg(64)->Arg(128)->Arg(256);

void BM_Kronecker(benchmark::State& state) {
  Rng rng(5);
  const Index n = state.range(0);
  Matrix a = Matrix::GaussianRandom(n, 10, rng);
  Matrix b = Matrix::GaussianRandom(n, 10, rng);
  for (auto _ : state) {
    Matrix k = Kronecker(a, b);
    benchmark::DoNotOptimize(k.data());
  }
}
BENCHMARK(BM_Kronecker)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace dtucker

BENCHMARK_MAIN();
