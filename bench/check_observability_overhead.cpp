// check_observability_overhead: ctest gate over the bench_dtucker output
// (build/BENCH_dtucker.json) enforcing the observability overhead budget
// against the committed seed snapshot
// (bench/snapshots/BENCH_dtucker.seed.json).
//
//   check_observability_overhead <current.json> <seed.json> [tolerance]
//
// Exit codes: 0 pass, 1 regression/parse failure, 77 skip (no current
// JSON — the bench is run manually via `cmake --build build --target
// bench_dtucker_json`; ctest maps 77 to SKIP via SKIP_RETURN_CODE).
//
// Checks:
//   - BM_TraceSpan/0 (tracing disabled): absolute ceiling of 5 ns/site.
//     The instrumented build must stay "one relaxed load + branches"
//     cheap whether or not anyone ever turns the tracer on.
//   - BM_HistogramRecord (when present): absolute ceiling of 50 ns per
//     Record. Sharded bucket counters keep this in single digits; a
//     blowup here means a lock or a false-sharing regression on the
//     comm-wait hot path.
//   - BM_DTuckerSweep/*: the geometric mean of current/seed cpu_time
//     ratios over every shape present in both files must stay <=
//     1 + tolerance (default 0.03, the ±3% acceptance budget). Single
//     shapes swing ±5% run-to-run on shared hardware, which is noise,
//     not regression; a real slowdown moves every shape and survives
//     the geomean, so the aggregate is what the budget binds. Per-shape
//     ratios are printed for diagnosis. Faster than seed never fails.
//
// Deliberately dependency-free: google-benchmark JSON emits "name" and
// "cpu_time" on separate lines of one benchmark object, so a two-line
// stateful scan suffices, and the gate must not inherit the library's
// own build to judge it.
#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

namespace {

// Extracts the string value of `"key": "..."` from a line.
bool FindString(const std::string& line, const std::string& key,
                std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

// Extracts `"key": <number>` from a line.
bool FindNumber(const std::string& line, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

// name -> cpu_time in ns for every benchmark entry in a google-benchmark
// JSON file.
bool Load(const std::string& path, std::map<std::string, double>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line, name;
  while (std::getline(in, line)) {
    std::string candidate;
    if (FindString(line, "name", &candidate)) {
      name = candidate;
      continue;
    }
    double cpu = 0;
    if (!name.empty() && FindNumber(line, "cpu_time", &cpu)) {
      (*out)[name] = cpu;
      name.clear();
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <current.json> <seed.json> [tolerance]\n",
                 argv[0]);
    return 1;
  }
  const std::string current_path = argv[1];
  const std::string seed_path = argv[2];
  const double tolerance = argc > 3 ? std::atof(argv[3]) : 0.03;

  {
    std::ifstream probe(current_path);
    if (!probe) {
      std::printf("SKIP: %s not found (run the bench_dtucker_json target)\n",
                  current_path.c_str());
      return 77;
    }
  }
  std::map<std::string, double> current, seed;
  if (!Load(current_path, &current)) {
    std::fprintf(stderr, "FAIL: cannot read %s\n", current_path.c_str());
    return 1;
  }
  if (!Load(seed_path, &seed)) {
    std::fprintf(stderr, "FAIL: cannot read seed snapshot %s\n",
                 seed_path.c_str());
    return 1;
  }

  int failures = 0;

  const auto span_disabled = current.find("BM_TraceSpan/0");
  if (span_disabled != current.end()) {
    constexpr double kDisabledCeilingNs = 5.0;
    if (span_disabled->second > kDisabledCeilingNs) {
      std::fprintf(stderr,
                   "FAIL: BM_TraceSpan/0 (tracing disabled) %.2f ns/site "
                   "exceeds the %.1f ns ceiling\n",
                   span_disabled->second, kDisabledCeilingNs);
      ++failures;
    } else {
      std::printf("ok: BM_TraceSpan/0 %.2f ns/site (ceiling 5 ns)\n",
                  span_disabled->second);
    }
  } else {
    std::printf("note: BM_TraceSpan/0 not in %s; disabled-overhead check "
                "skipped\n",
                current_path.c_str());
  }

  const auto hist = current.find("BM_HistogramRecord");
  if (hist != current.end()) {
    constexpr double kRecordCeilingNs = 50.0;
    if (hist->second > kRecordCeilingNs) {
      std::fprintf(stderr,
                   "FAIL: BM_HistogramRecord %.2f ns exceeds the %.1f ns "
                   "ceiling\n",
                   hist->second, kRecordCeilingNs);
      ++failures;
    } else {
      std::printf("ok: BM_HistogramRecord %.2f ns (ceiling 50 ns)\n",
                  hist->second);
    }
  } else {
    std::printf("note: BM_HistogramRecord not in %s; record-overhead check "
                "skipped\n",
                current_path.c_str());
  }

  int sweeps_checked = 0;
  double log_ratio_sum = 0;
  for (const auto& [name, seed_ns] : seed) {
    if (name.rfind("BM_DTuckerSweep/", 0) != 0) continue;
    const auto it = current.find(name);
    if (it == current.end()) continue;
    ++sweeps_checked;
    const double ratio = it->second / seed_ns;
    log_ratio_sum += std::log(ratio);
    std::printf("  %s %.0f ns vs seed %.0f ns (%+.1f%%)\n", name.c_str(),
                it->second, seed_ns, (ratio - 1.0) * 100.0);
  }
  if (sweeps_checked == 0) {
    std::printf("note: no BM_DTuckerSweep entries shared with the seed; "
                "sweep check skipped\n");
  } else {
    const double geomean = std::exp(log_ratio_sum / sweeps_checked);
    if (geomean > 1.0 + tolerance) {
      std::fprintf(stderr,
                   "FAIL: BM_DTuckerSweep geomean ratio %.3f over %d shapes "
                   "(%.1f%% slower, budget %.0f%%)\n",
                   geomean, sweeps_checked, (geomean - 1.0) * 100.0,
                   tolerance * 100.0);
      ++failures;
    } else {
      std::printf("ok: BM_DTuckerSweep geomean ratio %.3f over %d shapes "
                  "(budget +%.0f%%)\n",
                  geomean, sweeps_checked, tolerance * 100.0);
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d observability overhead regression(s)\n",
                 failures);
    return 1;
  }
  std::printf("PASS: observability overhead within budget\n");
  return 0;
}
