// check_serve_regression: ctest gate comparing the current BENCH_serve.json
// against the committed seed snapshot (bench/snapshots/BENCH_serve.seed.json).
//
//   check_serve_regression <current.json> <seed.json> [tolerance]
//
// Exit codes: 0 pass, 1 regression/parse failure, 77 skip (no current JSON
// — the bench is run manually via `cmake --build build --target
// bench_serve_json`, so a fresh checkout skips rather than fails; ctest
// maps 77 to SKIP via SKIP_RETURN_CODE).
//
// Checks:
//   - cache_hit_query_speedup >= 100 unconditionally (the serving
//     acceptance floor: answering a query batch from cached factors must
//     be at least two orders of magnitude faster than a cold 256^3 solve)
//     AND >= (1 - tolerance) * seed value (default tolerance 0.25 —
//     latency ratios on shared machines are noisier than CPU-time
//     ratios).
//   - sustained_qps >= (1 - tolerance) * seed value.
//   - dedup_executed == 1: N identical concurrent Submits must collapse
//     to exactly one Engine run — a violated single-flight invariant is a
//     correctness bug, never tolerable.
//
// Deliberately dependency-free line scanning rather than a JSON parser:
// bench_serve emits one scalar per line with fixed key spelling, and the
// gate must not inherit the library's own build to judge it.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

struct BenchFile {
  double query_speedup = -1;
  double qps = -1;
  double dedup_executed = -1;
};

bool FindNumber(const std::string& line, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

bool Load(const std::string& path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    FindNumber(line, "cache_hit_query_speedup", &out->query_speedup);
    FindNumber(line, "sustained_qps", &out->qps);
    FindNumber(line, "dedup_executed", &out->dedup_executed);
  }
  return out->query_speedup >= 0 && out->qps >= 0 &&
         out->dedup_executed >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <current.json> <seed.json> [tolerance]\n",
                 argv[0]);
    return 1;
  }
  const double tolerance = argc > 3 ? std::atof(argv[3]) : 0.25;

  BenchFile current;
  {
    std::ifstream probe(argv[1]);
    if (!probe) {
      std::fprintf(stderr,
                   "SKIP: %s not found (run `cmake --build . --target "
                   "bench_serve_json` first)\n",
                   argv[1]);
      return 77;
    }
  }
  if (!Load(argv[1], &current)) {
    std::fprintf(stderr, "FAIL: cannot parse %s\n", argv[1]);
    return 1;
  }
  BenchFile seed;
  if (!Load(argv[2], &seed)) {
    std::fprintf(stderr, "FAIL: cannot parse seed snapshot %s\n", argv[2]);
    return 1;
  }

  int failures = 0;

  if (current.query_speedup < 100.0) {
    std::fprintf(stderr,
                 "FAIL: cache_hit_query_speedup %.1fx is below the 100x "
                 "acceptance floor\n",
                 current.query_speedup);
    ++failures;
  }
  const double query_floor = (1.0 - tolerance) * seed.query_speedup;
  if (current.query_speedup < query_floor) {
    std::fprintf(stderr,
                 "FAIL: cache_hit_query_speedup %.1fx < %.1fx "
                 "(seed %.1fx - %.0f%%)\n",
                 current.query_speedup, query_floor, seed.query_speedup,
                 tolerance * 100);
    ++failures;
  } else {
    std::printf("ok: cache_hit_query_speedup %.1fx (seed %.1fx)\n",
                current.query_speedup, seed.query_speedup);
  }

  const double qps_floor = (1.0 - tolerance) * seed.qps;
  if (current.qps < qps_floor) {
    std::fprintf(stderr, "FAIL: sustained_qps %.1f < %.1f (seed %.1f - %.0f%%)\n",
                 current.qps, qps_floor, seed.qps, tolerance * 100);
    ++failures;
  } else {
    std::printf("ok: sustained_qps %.1f (seed %.1f)\n", current.qps,
                seed.qps);
  }

  if (current.dedup_executed != 1.0) {
    std::fprintf(stderr,
                 "FAIL: dedup_executed %.0f != 1 (single-flight invariant "
                 "violated)\n",
                 current.dedup_executed);
    ++failures;
  } else {
    std::printf("ok: single-flight collapsed identical submits to 1 run\n");
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d serving regression(s)\n", failures);
    return 1;
  }
  std::printf("serving benchmarks within tolerance of the seed\n");
  return 0;
}
