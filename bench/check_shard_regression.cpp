// check_shard_regression: ctest gate comparing the current BENCH_shard.json
// against the committed seed snapshot (bench/snapshots/BENCH_shard.seed.json).
//
//   check_shard_regression <current.json> <seed.json> [tolerance]
//
// Exit codes: 0 pass, 1 regression/parse failure, 77 skip (no current JSON
// — the bench is run manually via `cmake --build build --target
// bench_shard_json`, so a fresh checkout skips rather than fails; ctest
// maps 77 to SKIP via SKIP_RETURN_CODE).
//
// Checks, per scaling run matched by rank count:
//   - approx_speedup >= (1 - tolerance) * seed value (default tolerance
//     0.15). The speedup is CPU-seconds based, so it is stable even when
//     the ranks timeshare fewer cores. Exceeding the seed is never a
//     failure (a faster build is not a regression); a gain beyond the
//     tolerance is printed as a note.
//   - every "core_bitwise_matches_1rank" in the current JSON (scaling runs
//     AND the trailing comparison) must be true — a bitwise mismatch is a
//     determinism bug, never tolerable.
//
// Deliberately dependency-free line scanning rather than a JSON parser:
// bench_shard emits one object per line with fixed key spelling, and the
// gate must not inherit the library's own build to judge it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// Extracts `"key": <number>` from a line; returns false if absent.
bool FindNumber(const std::string& line, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

struct ScalingRun {
  double speedup = 0;
};

struct BenchFile {
  std::map<int, ScalingRun> runs;  // keyed by rank count
  int bitwise_false = 0;           // occurrences of a false bitwise check
};

bool Load(const std::string& path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"core_bitwise_matches_1rank\": false") !=
        std::string::npos) {
      ++out->bitwise_false;
    }
    double ranks = 0, speedup = 0;
    if (FindNumber(line, "approx_speedup", &speedup) &&
        FindNumber(line, "ranks", &ranks)) {
      out->runs[static_cast<int>(ranks)].speedup = speedup;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <current.json> <seed.json> [tolerance]\n",
                 argv[0]);
    return 1;
  }
  const std::string current_path = argv[1];
  const std::string seed_path = argv[2];
  const double tolerance = argc > 3 ? std::atof(argv[3]) : 0.15;

  {
    std::ifstream probe(current_path);
    if (!probe) {
      std::printf("SKIP: %s not found (run the bench_shard_json target)\n",
                  current_path.c_str());
      return 77;
    }
  }
  BenchFile current, seed;
  if (!Load(current_path, &current)) {
    std::fprintf(stderr, "FAIL: cannot read %s\n", current_path.c_str());
    return 1;
  }
  if (!Load(seed_path, &seed)) {
    std::fprintf(stderr, "FAIL: cannot read seed snapshot %s\n",
                 seed_path.c_str());
    return 1;
  }
  if (current.runs.empty() || seed.runs.empty()) {
    std::fprintf(stderr, "FAIL: no scaling runs parsed (current %zu, seed %zu)\n",
                 current.runs.size(), seed.runs.size());
    return 1;
  }

  int failures = 0;
  if (current.bitwise_false > 0) {
    std::fprintf(stderr,
                 "FAIL: %d bitwise determinism check(s) are false in %s\n",
                 current.bitwise_false, current_path.c_str());
    ++failures;
  }
  for (const auto& entry : seed.runs) {
    const int ranks = entry.first;
    const auto it = current.runs.find(ranks);
    if (it == current.runs.end()) {
      std::fprintf(stderr, "FAIL: current JSON has no ranks=%d run\n", ranks);
      ++failures;
      continue;
    }
    const double seed_speedup = entry.second.speedup;
    const double cur_speedup = it->second.speedup;
    const double floor = (1.0 - tolerance) * seed_speedup;
    if (cur_speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: ranks=%d approx_speedup %.3f < %.3f "
                   "(seed %.3f - %.0f%%)\n",
                   ranks, cur_speedup, floor, seed_speedup, 100 * tolerance);
      ++failures;
    } else {
      std::printf("ok: ranks=%d approx_speedup %.3f (seed %.3f)\n", ranks,
                  cur_speedup, seed_speedup);
      if (cur_speedup > (1.0 + tolerance) * seed_speedup) {
        std::printf("note: ranks=%d improved beyond +%.0f%%; consider "
                    "refreshing the seed snapshot\n",
                    ranks, 100 * tolerance);
      }
    }
  }
  if (failures > 0) return 1;
  std::printf("PASS: %zu scaling run(s) within tolerance, bitwise checks "
              "clean\n",
              seed.runs.size());
  return 0;
}
