// Experiment E10 (DESIGN.md §4 extension): the intermediate-data argument.
// D-Tucker's challenge C3 — "imprudent computation provokes huge
// intermediate data" — quantified: the textbook factor update materializes
// a Kronecker operand of (prod_{k != n} I_k) x (prod_{k != n} J_k), while
// the TTM-chain update's largest intermediate is one partially contracted
// tensor. This harness charts both the bytes and the wall-clock gap as the
// cube side grows.
#include <cstdio>

#include "common/flags.h"
#include "common/telemetry.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/generators.h"
#include "tucker/naive_tucker.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("rank", 10, "Tucker rank per mode");
  flags.AddInt("iters", 2, "fixed sweep count");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);
  const Index rank = flags.GetInt("rank");

  std::printf(
      "=== E10: intermediate data of naive (explicit Kronecker) vs "
      "TTM-chain factor updates ===\n\n");
  TablePrinter table({"cube side I", "tensor", "naive peak intermediate",
                      "TTM-chain peak intermediate", "naive time",
                      "TTM-chain time", "slowdown"});
  for (Index side : {20, 30, 40, 60, 80, 100}) {
    Tensor x = MakeLowRankTensor({side, side, side}, {rank, rank, rank}, 0.2,
                                 100 + static_cast<uint64_t>(side));
    TuckerAlsOptions opt;
    opt.ranks = {rank, rank, rank};
    opt.max_iterations = static_cast<int>(flags.GetInt("iters"));
    opt.tolerance = 0.0;

    std::size_t naive_peak = 0;
    Timer naive_timer;
    Result<TuckerDecomposition> naive =
        TuckerAlsNaiveKronecker(x, opt, nullptr, &naive_peak);
    const double naive_seconds = naive_timer.Seconds();

    Timer fast_timer;
    Result<TuckerDecomposition> fast = TuckerAls(x, opt);
    const double fast_seconds = fast_timer.Seconds();
    if (!naive.ok() || !fast.ok()) {
      std::fprintf(stderr, "side %td failed\n", side);
      continue;
    }

    // The TTM chain's largest intermediate for a cube is the first
    // partially contracted tensor: I x I x J.
    const std::size_t ttm_peak =
        static_cast<std::size_t>(side * side * rank) * sizeof(double);
    table.AddRow({std::to_string(side),
                  TablePrinter::FormatBytes(x.ByteSize()),
                  TablePrinter::FormatBytes(naive_peak),
                  TablePrinter::FormatBytes(ttm_peak),
                  TablePrinter::FormatSeconds(naive_seconds),
                  TablePrinter::FormatSeconds(fast_seconds),
                  TablePrinter::FormatDouble(naive_seconds / fast_seconds,
                                             1) +
                      "x"});
  }
  table.Print();
  std::printf(
      "\nnaive peak grows ~quadratically in the tensor size; the TTM chain "
      "never materializes anything larger than one partially contracted "
      "tensor.\n");
  Status telemetry = FlushTelemetryFromFlags(flags);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
