// Experiment E11 (DESIGN.md §4 extension): out-of-core D-Tucker.
// The strongest form of the paper's memory claim: a tensor is generated
// straight to disk (never resident), stream-compressed one slice at a
// time, and decomposed from the compressed form. We report the file size,
// the compressed size, and the process's peak RSS growth during the
// streamed compression — which stays near one-slice-sized.
#include <cmath>
#include <cstdio>

#include "common/flags.h"
#include "common/telemetry.h"
#include "linalg/blas.h"
#include "common/memory.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/tensor_file.h"
#include "dtucker/out_of_core.h"

namespace dtucker {
namespace {

// Writes a synthetic low-rank-plus-noise tensor slice by slice: slice l is
// U * diag(w(l)) * V^T + noise with smoothly rotating weights, so the
// stream is compressible but never materialized.
Status WriteSyntheticTensor(const std::string& path, Index i1, Index i2,
                            Index slices, Index rank, uint64_t seed) {
  Rng rng(seed);
  Matrix u = Matrix::GaussianRandom(i1, rank, rng);
  Matrix v = Matrix::GaussianRandom(i2, rank, rng);
  Result<TensorFileWriter> writer =
      TensorFileWriter::Create(path, {i1, i2, slices});
  DT_RETURN_NOT_OK(writer.status());
  TensorFileWriter w = std::move(writer).ValueOrDie();
  Matrix slice(i1, i2);
  for (Index l = 0; l < slices; ++l) {
    Matrix us = u;
    for (Index r = 0; r < rank; ++r) {
      const double weight =
          1.0 + std::sin(0.05 * static_cast<double>(l) + r);
      Scal(weight, us.col_data(r), i1);
    }
    GemmRaw(Trans::kNo, Trans::kYes, i1, i2, rank, 1.0, us.data(), i1,
            v.data(), i2, 0.0, slice.data(), i1);
    for (Index i = 0; i < slice.size(); ++i) {
      slice.data()[i] += 0.05 * rng.Gaussian();
    }
    DT_RETURN_NOT_OK(w.AppendSlice(slice));
  }
  return w.Finish();
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("i1", 400, "slice rows");
  flags.AddInt("i2", 300, "slice cols");
  flags.AddInt("slices", 400, "number of frontal slices");
  flags.AddInt("rank", 10, "Tucker rank per mode");
  flags.AddString("path", "/tmp/dtucker_ooc_bench.dtnsr", "scratch file");
  flags.AddInt("inject_every", 16,
               "fault-injection demo: fail the first attempt of every Nth "
               "slice read and re-run the solve through the retry layer "
               "(0 disables)");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);

  const Index i1 = flags.GetInt("i1");
  const Index i2 = flags.GetInt("i2");
  const Index slices = flags.GetInt("slices");
  const Index rank = flags.GetInt("rank");
  const std::string path = flags.GetString("path");
  const double tensor_bytes =
      static_cast<double>(i1 * i2 * slices) * sizeof(double);

  std::printf("=== E11: out-of-core D-Tucker (%td x %td x %td, %.0f MiB on "
              "disk) ===\n\n",
              i1, i2, slices, tensor_bytes / (1 << 20));

  Timer write_timer;
  Status ws = WriteSyntheticTensor(path, i1, i2, slices, rank, 9);
  if (!ws.ok()) {
    std::fprintf(stderr, "writing failed: %s\n", ws.ToString().c_str());
    return 1;
  }
  const double write_seconds = write_timer.Seconds();

  const std::size_t rss_before = CurrentRssBytes();
  DTuckerOptions opt;
  opt.tucker.ranks = {rank, rank, rank};
  opt.tucker.max_iterations = 10;
  TuckerStats stats;
  Result<TuckerDecomposition> dec = DTuckerFromFile(path, opt, &stats);
  const std::size_t rss_after = CurrentRssBytes();
  if (!dec.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 dec.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"quantity", "value"});
  table.AddRow({"tensor on disk",
                TablePrinter::FormatBytes(static_cast<std::size_t>(
                    tensor_bytes))});
  table.AddRow({"one slice",
                TablePrinter::FormatBytes(static_cast<std::size_t>(i1) * i2 *
                                          sizeof(double))});
  table.AddRow({"compressed slice factors",
                TablePrinter::FormatBytes(stats.working_bytes)});
  table.AddRow({"decomposition",
                TablePrinter::FormatBytes(dec.value().ByteSize())});
  table.AddRow({"RSS growth during run",
                TablePrinter::FormatBytes(
                    rss_after > rss_before ? rss_after - rss_before : 0)});
  table.AddRow({"generate-to-disk time",
                TablePrinter::FormatSeconds(write_seconds)});
  table.AddRow({"stream-compress time",
                TablePrinter::FormatSeconds(stats.preprocess_seconds)});
  table.AddRow({"init + iterate time",
                TablePrinter::FormatSeconds(stats.init_seconds +
                                            stats.iterate_seconds)});
  table.Print();
  std::printf(
      "\nthe raw tensor is never resident: RSS growth stays near the "
      "compressed-factor footprint, not the %.0f MiB tensor.\n",
      tensor_bytes / (1 << 20));

  // Fault-injection demonstration: the same solve over deliberately flaky
  // reads. Every Nth slice read fails its first attempt; the bounded
  // retry + backoff layer (RunContext::io_retry) absorbs the faults and
  // the final model must match the clean run to 4 significant digits.
  const Index inject_every = flags.GetInt("inject_every");
  if (inject_every > 0) {
    RunContext ctx;
    ctx.io_retry.initial_backoff_seconds = 1e-4;  // Keep the demo quick.
    ctx.io_retry.max_backoff_seconds = 1e-3;
    long reads = 0;
    long injected = 0;
    ctx.fault_hook = [&](const char*, int attempt) -> Status {
      if (attempt > 0) return Status::OK();  // Retries succeed.
      ++reads;
      if (reads % inject_every == 0) {
        ++injected;
        return Status::IoError("injected transient fault");
      }
      return Status::OK();
    };
    DTuckerOptions faulty_opt = opt;
    faulty_opt.tucker.run_context = &ctx;
    Timer faulty_timer;
    TuckerStats faulty_stats;
    Result<TuckerDecomposition> faulty =
        DTuckerFromFile(path, faulty_opt, &faulty_stats);
    if (!faulty.ok()) {
      std::fprintf(stderr, "fault-injected run failed: %s\n",
                   faulty.status().ToString().c_str());
      return 1;
    }
    const double clean_err = stats.error_history.back();
    const double faulty_err = faulty_stats.error_history.back();
    const double rel_delta =
        std::fabs(clean_err - faulty_err) / std::max(clean_err, 1e-300);
    std::printf(
        "\n--- fault injection (every %td-th read fails once) ---\n"
        "injected faults: %ld over %ld reads, run time %s\n"
        "final error clean %.6e vs faulty %.6e (relative delta %.1e — "
        "%s to 4 significant digits)\n",
        inject_every, injected, reads,
        TablePrinter::FormatSeconds(faulty_timer.Seconds()).c_str(),
        clean_err, faulty_err, rel_delta,
        rel_delta < 1e-4 ? "unchanged" : "CHANGED");
    if (rel_delta >= 1e-4) return 1;
  }
  std::remove(path.c_str());
  Status telemetry = FlushTelemetryFromFlags(flags);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
