// Experiment E1 + E2 (DESIGN.md §4): running time and reconstruction error
// of every method on every dataset analog — the paper's headline
// "method x dataset" comparison (its Figures on speed and accuracy).
//
// Prints one table per dataset: per-method preprocessing time, iteration
// time, total time, speedup over Tucker-ALS, and relative error.
//
// Flags: --scale (dataset size multiplier), --rank, --iters, --datasets.
#include <cstdio>
#include <sstream>

#include "baselines/registry.h"
#include "common/flags.h"
#include "common/telemetry.h"
#include "common/table_printer.h"
#include "data/datasets.h"

namespace dtucker {
namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset size multiplier in (0, 1]");
  flags.AddInt("rank", 10, "Tucker rank per mode (clamped to dims)");
  flags.AddInt("iters", 10, "max ALS iterations");
  flags.AddString("datasets", DatasetNames(), "comma-separated dataset list");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);

  std::printf(
      "=== E1/E2: running time and reconstruction error, all methods ===\n"
      "(paper: D-Tucker fastest among accurate methods, error ~= "
      "Tucker-ALS)\n\n");

  for (const std::string& name : SplitCsv(flags.GetString("datasets"))) {
    Result<Tensor> data = MakeDataset(name, flags.GetDouble("scale"));
    if (!data.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", name.c_str(),
                   data.status().ToString().c_str());
      continue;
    }
    const Tensor& x = data.value();

    MethodOptions opt;
    opt.tucker.max_iterations = static_cast<int>(flags.GetInt("iters"));
    for (Index n = 0; n < x.order(); ++n) {
      opt.tucker.ranks.push_back(std::min<Index>(flags.GetInt("rank"), x.dim(n)));
    }

    std::printf("dataset %s %s, %s\n", name.c_str(),
                x.ShapeString().c_str(),
                TablePrinter::FormatBytes(x.ByteSize()).c_str());
    TablePrinter table({"method", "preprocess", "iterate", "total",
                        "speedup vs ALS", "rel. error"});
    Index core_volume = 1;
    for (Index r : opt.tucker.ranks) core_volume *= r;
    double als_total = 0;
    std::vector<std::pair<TuckerMethod, MethodRun>> runs;
    std::vector<TuckerMethod> skipped;
    for (TuckerMethod m : AllTuckerMethods()) {
      // Tucker-ts solves a least-squares system with prod(J) unknowns per
      // sweep; past a few thousand unknowns (order-4 tensors at rank 10)
      // it is out of time — mirroring the paper family's o.o.t. entries.
      if (m == TuckerMethod::kTuckerTs && core_volume > 5000) {
        skipped.push_back(m);
        continue;
      }
      Result<MethodRun> run = RunTuckerMethod(m, x, opt);
      if (!run.ok()) {
        std::fprintf(stderr, "  %s failed: %s\n", TuckerMethodName(m),
                     run.status().ToString().c_str());
        continue;
      }
      if (m == TuckerMethod::kTuckerAls) {
        als_total = run.value().stats.TotalSeconds();
      }
      runs.emplace_back(m, std::move(run).ValueOrDie());
    }
    for (const auto& [m, run] : runs) {
      const double total = run.stats.TotalSeconds();
      table.AddRow(
          {TuckerMethodName(m),
           TablePrinter::FormatSeconds(run.stats.preprocess_seconds),
           TablePrinter::FormatSeconds(run.stats.init_seconds +
                                       run.stats.iterate_seconds),
           TablePrinter::FormatSeconds(total),
           als_total > 0
               ? TablePrinter::FormatDouble(als_total / total, 1) + "x"
               : "-",
           TablePrinter::FormatScientific(run.relative_error)});
    }
    for (TuckerMethod m : skipped) {
      table.AddRow({TuckerMethodName(m), "o.o.t.", "o.o.t.", "o.o.t.", "-",
                    "-"});
    }
    table.Print();
    std::printf("\n");
  }
  Status telemetry = FlushTelemetryFromFlags(flags);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
