// Experiment E3 (DESIGN.md §4): space cost of what each method must keep
// resident to (re-)answer decompositions — the paper's storage figure.
//
// Preprocessing methods (D-Tucker, MACH, Tucker-ts/ttmts) are charged
// their compressed/sketched representation; from-scratch methods
// (Tucker-ALS, HOSVD, RTD) are charged the raw tensor. Only the cheap
// preprocessing passes are executed.
#include <cstdio>

#include "baselines/mach.h"
#include "common/flags.h"
#include "common/telemetry.h"
#include "common/table_printer.h"
#include "data/datasets.h"
#include "dtucker/slice_approximation.h"
#include "sketch/tensor_sketch.h"

namespace dtucker {
namespace {

Index NextPowerOfTwo(Index n) {
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 1.0, "dataset size multiplier in (0, 1]");
  flags.AddInt("rank", 10, "Tucker rank per mode (clamped)");
  flags.AddDouble("mach_rate", 0.1, "MACH keep probability");
  flags.AddDouble("sketch_factor", 4.0, "Tucker-ts sketch multiplier");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);

  std::printf(
      "=== E3: storage for preprocessed/compressed representations ===\n"
      "(paper: D-Tucker's slice factors are the smallest footprint)\n\n");

  TablePrinter table({"dataset", "raw tensor (ALS/HOSVD/RTD)", "D-Tucker",
                      "MACH sample", "Tucker-ts sketches",
                      "D-Tucker ratio"});
  for (const auto& spec : BenchmarkDatasets()) {
    Result<Tensor> data = MakeDataset(spec.name, flags.GetDouble("scale"));
    if (!data.ok()) continue;
    const Tensor& x = data.value();
    const Index rank = flags.GetInt("rank");

    // D-Tucker: run the (one-pass) approximation.
    SliceApproximationOptions sopt;
    sopt.slice_rank = std::min<Index>(rank, std::min(x.dim(0), x.dim(1)));
    Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
    const std::size_t dtucker_bytes =
        approx.ok() ? approx.value().ByteSize() : 0;

    // MACH: expected COO size (index + value per kept element).
    Result<SparseTensor> sample =
        MachSample(x, flags.GetDouble("mach_rate"), 7);
    const std::size_t mach_bytes = sample.ok() ? sample.value().ByteSize() : 0;

    // Tucker-ts: N sketched unfoldings (s1 x I_n) plus the core sketch.
    std::size_t ts_bytes = 0;
    Index core_vol = 1;
    for (Index n = 0; n < x.order(); ++n) {
      Index jrest = 1;
      for (Index k = 0; k < x.order(); ++k) {
        if (k != n) jrest *= std::min<Index>(rank, x.dim(k));
      }
      const Index s1 = NextPowerOfTwo(static_cast<Index>(
          flags.GetDouble("sketch_factor") * static_cast<double>(jrest)));
      ts_bytes += static_cast<std::size_t>(s1 * x.dim(n)) * sizeof(double);
      core_vol *= std::min<Index>(rank, x.dim(n));
    }
    ts_bytes += static_cast<std::size_t>(NextPowerOfTwo(static_cast<Index>(
                    flags.GetDouble("sketch_factor") *
                    static_cast<double>(core_vol)))) *
                sizeof(double);

    table.AddRow(
        {spec.name, TablePrinter::FormatBytes(x.ByteSize()),
         TablePrinter::FormatBytes(dtucker_bytes),
         TablePrinter::FormatBytes(mach_bytes),
         TablePrinter::FormatBytes(ts_bytes),
         TablePrinter::FormatDouble(
             static_cast<double>(x.ByteSize()) /
                 static_cast<double>(std::max<std::size_t>(1, dtucker_bytes)),
             1) +
             "x smaller"});
  }
  table.Print();
  Status telemetry = FlushTelemetryFromFlags(flags);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
