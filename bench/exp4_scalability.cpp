// Experiments E4/E5/E6 (DESIGN.md §4): scalability of D-Tucker vs
// Tucker-ALS with respect to (E4) dimensionality I, (E5) target rank J,
// and (E6) tensor order N — the paper's scalability figures. Synthetic
// cubes with known low rank plus noise.
//
// Flags: --sweep=dim|rank|order|all.
#include <cstdio>
#include <string>

#include "baselines/registry.h"
#include "common/flags.h"
#include "common/telemetry.h"
#include "common/table_printer.h"
#include "data/generators.h"

namespace dtucker {
namespace {

MethodOptions BaseOptions(std::vector<Index> ranks, int iters) {
  MethodOptions opt;
  opt.tucker.ranks = std::move(ranks);
  opt.tucker.max_iterations = iters;
  opt.tucker.tolerance = 0.0;  // Fixed sweep count: clean scaling curves.
  return opt;
}

void RunPair(const Tensor& x, const MethodOptions& opt, double* dt_seconds,
             double* als_seconds, double* dt_err, double* als_err) {
  Result<MethodRun> dt = RunTuckerMethod(TuckerMethod::kDTucker, x, opt);
  Result<MethodRun> als = RunTuckerMethod(TuckerMethod::kTuckerAls, x, opt);
  *dt_seconds = dt.ok() ? dt.value().stats.TotalSeconds() : -1;
  *als_seconds = als.ok() ? als.value().stats.TotalSeconds() : -1;
  *dt_err = dt.ok() ? dt.value().relative_error : -1;
  *als_err = als.ok() ? als.value().relative_error : -1;
}

void SweepDimensionality(int iters) {
  std::printf(
      "--- E4: time vs dimensionality I (cube I x I x I, J = 10) ---\n");
  TablePrinter table({"I", "D-Tucker", "Tucker-ALS", "speedup",
                      "D-Tucker err", "ALS err"});
  for (Index i : {50, 100, 150, 200, 300}) {
    Tensor x = MakeLowRankTensor({i, i, i}, {10, 10, 10}, 0.1,
                                 1000 + static_cast<uint64_t>(i));
    MethodOptions opt = BaseOptions({10, 10, 10}, iters);
    double dt, als, dte, alse;
    RunPair(x, opt, &dt, &als, &dte, &alse);
    table.AddRow({std::to_string(i), TablePrinter::FormatSeconds(dt),
                  TablePrinter::FormatSeconds(als),
                  TablePrinter::FormatDouble(als / dt, 1) + "x",
                  TablePrinter::FormatScientific(dte),
                  TablePrinter::FormatScientific(alse)});
  }
  table.Print();
  std::printf("\n");
}

void SweepRank(int iters) {
  std::printf("--- E5: time vs target rank J (cube 150^3) ---\n");
  TablePrinter table({"J", "D-Tucker", "Tucker-ALS", "speedup",
                      "D-Tucker err", "ALS err"});
  Tensor x = MakeLowRankTensor({150, 150, 150}, {20, 20, 20}, 0.1, 2000);
  for (Index j : {2, 5, 10, 15, 20}) {
    MethodOptions opt = BaseOptions({j, j, j}, iters);
    double dt, als, dte, alse;
    RunPair(x, opt, &dt, &als, &dte, &alse);
    table.AddRow({std::to_string(j), TablePrinter::FormatSeconds(dt),
                  TablePrinter::FormatSeconds(als),
                  TablePrinter::FormatDouble(als / dt, 1) + "x",
                  TablePrinter::FormatScientific(dte),
                  TablePrinter::FormatScientific(alse)});
  }
  table.Print();
  std::printf("\n");
}

void SweepOrder(int iters) {
  std::printf(
      "--- E6: time vs order N (equal volume ~2.1M elements, J = 5) ---\n");
  TablePrinter table({"N", "shape", "D-Tucker", "Tucker-ALS", "speedup"});
  const std::vector<std::vector<Index>> shapes = {
      {160, 130, 100},            // N = 3.
      {80, 64, 20, 20},           // N = 4.
      {48, 40, 10, 10, 11},       // N = 5.
  };
  for (const auto& shape : shapes) {
    std::vector<Index> ranks(shape.size(), 5);
    Tensor x = MakeLowRankTensor(shape, ranks, 0.1,
                                 3000 + shape.size());
    MethodOptions opt = BaseOptions(ranks, iters);
    double dt, als, dte, alse;
    RunPair(x, opt, &dt, &als, &dte, &alse);
    std::string shape_str;
    for (std::size_t k = 0; k < shape.size(); ++k) {
      shape_str += std::to_string(shape[k]);
      if (k + 1 < shape.size()) shape_str += "x";
    }
    table.AddRow({std::to_string(shape.size()), shape_str,
                  TablePrinter::FormatSeconds(dt),
                  TablePrinter::FormatSeconds(als),
                  TablePrinter::FormatDouble(als / dt, 1) + "x"});
  }
  table.Print();
  std::printf("\n");
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("sweep", "all", "dim | rank | order | all");
  flags.AddInt("iters", 3, "fixed ALS sweep count");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);
  const std::string sweep = flags.GetString("sweep");
  const int iters = static_cast<int>(flags.GetInt("iters"));
  std::printf("=== E4/E5/E6: scalability of D-Tucker vs Tucker-ALS ===\n\n");
  if (sweep == "dim" || sweep == "all") SweepDimensionality(iters);
  if (sweep == "rank" || sweep == "all") SweepRank(iters);
  if (sweep == "order" || sweep == "all") SweepOrder(iters);
  Status telemetry = FlushTelemetryFromFlags(flags);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
