// Experiment E7 (DESIGN.md §4): convergence — relative error after each
// ALS sweep for D-Tucker vs Tucker-ALS. The paper's claim: D-Tucker's
// SVD-based initialization starts close to the fixed point, so it needs
// very few sweeps.
#include <cstdio>

#include "common/flags.h"
#include "common/telemetry.h"
#include "common/table_printer.h"
#include "data/datasets.h"
#include "dtucker/dtucker.h"
#include "tucker/tucker_als.h"

namespace dtucker {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.4, "dataset size multiplier");
  flags.AddInt("rank", 10, "Tucker rank per mode (clamped)");
  flags.AddInt("iters", 8, "sweeps to record");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);

  std::printf(
      "=== E7: error vs sweep (proxy errors from each solver's own "
      "objective) ===\n\n");
  for (const char* name : {"video", "stock"}) {
    Result<Tensor> data = MakeDataset(name, flags.GetDouble("scale"));
    if (!data.ok()) continue;
    const Tensor& x = data.value();

    std::vector<Index> ranks;
    for (Index n = 0; n < x.order(); ++n) {
      ranks.push_back(std::min<Index>(flags.GetInt("rank"), x.dim(n)));
    }

    DTuckerOptions dopt;
    dopt.tucker.ranks = ranks;
    dopt.tucker.max_iterations = static_cast<int>(flags.GetInt("iters"));
    dopt.tucker.tolerance = 0.0;
    TuckerStats dstats;
    Result<TuckerDecomposition> dt = DTucker(x, dopt, &dstats);

    TuckerAlsOptions aopt;
    aopt.ranks = ranks;
    aopt.max_iterations = static_cast<int>(flags.GetInt("iters"));
    aopt.tolerance = 0.0;
    // Random init shows HOOI's own convergence (HOSVD init would hide it).
    aopt.init = TuckerInit::kRandom;
    TuckerStats astats;
    Result<TuckerDecomposition> als = TuckerAls(x, aopt, &astats);

    if (!dt.ok() || !als.ok()) {
      std::fprintf(stderr, "%s failed\n", name);
      continue;
    }

    std::printf("dataset %s %s\n", name, x.ShapeString().c_str());
    TablePrinter table({"sweep", "D-Tucker rel. err",
                        "Tucker-ALS (random init) rel. err"});
    const std::size_t rows =
        std::max(dstats.error_history.size(), astats.error_history.size());
    for (std::size_t i = 0; i < rows; ++i) {
      table.AddRow(
          {i == 0 ? "init" : std::to_string(i),
           i < dstats.error_history.size()
               ? TablePrinter::FormatScientific(dstats.error_history[i])
               : "-",
           i < astats.error_history.size()
               ? TablePrinter::FormatScientific(astats.error_history[i])
               : "-"});
    }
    table.Print();
    std::printf("final true errors: D-Tucker %.4e, Tucker-ALS %.4e\n\n",
                dt.value().RelativeErrorAgainst(x),
                als.value().RelativeErrorAgainst(x));
  }
  Status telemetry = FlushTelemetryFromFlags(flags);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
