// Experiment E8 (DESIGN.md §4): ablation of D-Tucker's design choices.
//   (a) phases: initialization only vs initialization + iteration;
//   (b) rSVD power iterations q and oversampling p in the approximation;
//   (c) randomized vs exact slice SVD;
//   (d) adaptive (error-bounded) per-slice ranks;
//   (e) slice rank Js relative to the target rank.
#include <cstdio>

#include "common/flags.h"
#include "common/telemetry.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "dtucker/dtucker.h"

namespace dtucker {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.4, "dataset size multiplier");
  flags.AddInt("rank", 10, "target Tucker rank per mode (clamped)");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);

  Result<Tensor> data = MakeDataset("video", flags.GetDouble("scale"));
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Tensor& x = data.value();
  std::vector<Index> ranks;
  for (Index n = 0; n < x.order(); ++n) {
    ranks.push_back(std::min<Index>(flags.GetInt("rank"), x.dim(n)));
  }
  std::printf("=== E8: D-Tucker ablations on video %s ===\n\n",
              x.ShapeString().c_str());

  // (a) Phase ablation.
  {
    std::printf("--- (a) phases: init-only vs full iteration ---\n");
    SliceApproximationOptions sopt;
    sopt.slice_rank = std::min<Index>(ranks[0], std::min(x.dim(0), x.dim(1)));
    Timer t;
    Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
    const double approx_seconds = t.Seconds();
    DTuckerOptions opt;
    opt.tucker.ranks = ranks;
    opt.tucker.max_iterations = 10;

    Timer t_init;
    Result<TuckerDecomposition> init_only =
        DTuckerInitializeOnly(approx.value(), opt);
    const double init_seconds = t_init.Seconds();
    Timer t_full;
    Result<TuckerDecomposition> full =
        DTuckerFromApproximation(approx.value(), opt);
    const double full_seconds = t_full.Seconds();

    TablePrinter table({"variant", "time (after approx.)", "rel. error"});
    table.AddRow({"approximation only", TablePrinter::FormatSeconds(0),
                  TablePrinter::FormatScientific(
                      approx.value().RelativeErrorAgainst(x))});
    table.AddRow({"+ initialization", TablePrinter::FormatSeconds(init_seconds),
                  TablePrinter::FormatScientific(
                      init_only.value().RelativeErrorAgainst(x))});
    table.AddRow({"+ iteration (full)",
                  TablePrinter::FormatSeconds(full_seconds),
                  TablePrinter::FormatScientific(
                      full.value().RelativeErrorAgainst(x))});
    table.Print();
    std::printf("(approximation pass itself: %s)\n\n",
                TablePrinter::FormatSeconds(approx_seconds).c_str());
  }

  // (b) rSVD knobs.
  {
    std::printf("--- (b) rSVD power iterations q / oversampling p ---\n");
    TablePrinter table({"q", "p", "approx time", "total time", "rel. error"});
    for (int q : {0, 1, 2}) {
      for (Index p : {0, 5, 10}) {
        DTuckerOptions opt;
        opt.tucker.ranks = ranks;
        opt.tucker.max_iterations = 10;
        opt.power_iterations = q;
        opt.oversampling = p;
        TuckerStats stats;
        Result<TuckerDecomposition> dec = DTucker(x, opt, &stats);
        if (!dec.ok()) continue;
        table.AddRow({std::to_string(q), std::to_string(p),
                      TablePrinter::FormatSeconds(stats.preprocess_seconds),
                      TablePrinter::FormatSeconds(stats.TotalSeconds()),
                      TablePrinter::FormatScientific(
                          dec.value().RelativeErrorAgainst(x))});
      }
    }
    table.Print();
    std::printf("\n");
  }

  // (d) Randomized vs exact slice SVD.
  {
    std::printf("--- (c) slice SVD: randomized vs exact ---\n");
    TablePrinter table({"method", "approx time", "rel. error"});
    for (SliceSvdMethod method :
         {SliceSvdMethod::kRandomized, SliceSvdMethod::kExact}) {
      SliceApproximationOptions sopt;
      sopt.slice_rank =
          std::min<Index>(ranks[0], std::min(x.dim(0), x.dim(1)));
      sopt.method = method;
      Timer t;
      Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
      const double approx_seconds = t.Seconds();
      if (!approx.ok()) continue;
      DTuckerOptions opt;
      opt.tucker.ranks = ranks;
      opt.tucker.max_iterations = 10;
      Result<TuckerDecomposition> dec =
          DTuckerFromApproximation(approx.value(), opt);
      if (!dec.ok()) continue;
      table.AddRow({method == SliceSvdMethod::kRandomized ? "randomized"
                                                          : "exact SVD",
                    TablePrinter::FormatSeconds(approx_seconds),
                    TablePrinter::FormatScientific(
                        dec.value().RelativeErrorAgainst(x))});
    }
    table.Print();
    std::printf("\n");
  }

  // (e) Adaptive per-slice ranks.
  {
    std::printf("--- (d) adaptive slice rank (cap 2x target) ---\n");
    TablePrinter table({"slice tolerance", "avg slice rank",
                        "compressed size", "rel. error"});
    for (double tol : {0.0, 1e-2, 1e-3, 1e-4}) {
      SliceApproximationOptions sopt;
      sopt.slice_rank =
          std::min<Index>(2 * ranks[0], std::min(x.dim(0), x.dim(1)));
      sopt.adaptive_tolerance = tol;
      Result<SliceApproximation> approx = ApproximateSlices(x, sopt);
      if (!approx.ok()) continue;
      double avg_rank = 0;
      for (const auto& sl : approx.value().slices) {
        avg_rank += static_cast<double>(sl.s.size());
      }
      avg_rank /= static_cast<double>(approx.value().NumSlices());
      DTuckerOptions opt;
      opt.tucker.ranks = ranks;
      opt.tucker.max_iterations = 10;
      Result<TuckerDecomposition> dec =
          DTuckerFromApproximation(approx.value(), opt);
      if (!dec.ok()) continue;
      table.AddRow({tol == 0.0 ? "off (fixed)"
                               : TablePrinter::FormatScientific(tol, 0),
                    TablePrinter::FormatDouble(avg_rank, 1),
                    TablePrinter::FormatBytes(approx.value().ByteSize()),
                    TablePrinter::FormatScientific(
                        dec.value().RelativeErrorAgainst(x))});
    }
    table.Print();
    std::printf("\n");
  }

  // (c) Slice rank vs target rank.
  {
    std::printf("--- (e) slice rank Js (target rank %td) ---\n", ranks[0]);
    TablePrinter table({"Js", "compressed size", "total time", "rel. error"});
    for (Index js : {ranks[0] / 2, ranks[0], 2 * ranks[0]}) {
      if (js < 1) continue;
      DTuckerOptions opt;
      opt.tucker.ranks = ranks;
      opt.tucker.max_iterations = 10;
      opt.slice_rank = std::min<Index>(js, std::min(x.dim(0), x.dim(1)));
      TuckerStats stats;
      Result<TuckerDecomposition> dec = DTucker(x, opt, &stats);
      if (!dec.ok()) continue;
      table.AddRow({std::to_string(opt.slice_rank),
                    TablePrinter::FormatBytes(stats.working_bytes),
                    TablePrinter::FormatSeconds(stats.TotalSeconds()),
                    TablePrinter::FormatScientific(
                        dec.value().RelativeErrorAgainst(x))});
    }
    table.Print();
  }
  Status telemetry = FlushTelemetryFromFlags(flags);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
