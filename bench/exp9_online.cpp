// Experiment E9 (DESIGN.md §4): the streaming extension. D-TuckerO's
// per-chunk ingest cost stays flat (only new slices are compressed) while
// batch re-decomposition grows linearly with the stream length, at
// matching accuracy.
#include <cstdio>

#include "common/flags.h"
#include "common/telemetry.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/generators.h"
#include "dtucker/dtucker.h"
#include "dtucker/online_dtucker.h"

namespace dtucker {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("height", 120, "frame height");
  flags.AddInt("width", 100, "frame width");
  flags.AddInt("total", 320, "total frames in the stream");
  flags.AddInt("chunk", 40, "frames per arriving chunk");
  flags.AddInt("rank", 8, "Tucker rank per mode");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);

  const Index height = flags.GetInt("height");
  const Index width = flags.GetInt("width");
  const Index total = flags.GetInt("total");
  const Index chunk = flags.GetInt("chunk");
  const Index rank = flags.GetInt("rank");

  std::printf("=== E9: streaming D-TuckerO vs batch re-decomposition ===\n");
  std::printf("video stream %td x %td, %td frames in chunks of %td\n\n",
              height, width, total, chunk);
  Tensor full = MakeVideoAnalog(height, width, total, 6, 0.05, 21);

  OnlineDTuckerOptions opt;
  opt.dtucker.tucker.ranks = {rank, rank, rank};
  opt.dtucker.tucker.max_iterations = 10;
  opt.refit_sweeps = 3;
  OnlineDTucker online(opt);

  TablePrinter table({"frames", "online ingest", "batch redo", "speedup",
                      "online err", "batch err"});
  Index seen = 0;
  while (seen < total) {
    const Index take = std::min(chunk, total - seen);
    Tensor piece = full.LastModeSlice(seen, take);
    Timer online_timer;
    Status s = seen == 0 ? online.Initialize(piece) : online.Append(piece);
    if (!s.ok()) {
      std::fprintf(stderr, "online failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const double online_seconds = online_timer.Seconds();
    seen += take;

    Tensor so_far = full.LastModeSlice(0, seen);
    DTuckerOptions bopt;
    bopt = opt.dtucker;
    Timer batch_timer;
    Result<TuckerDecomposition> batch = DTucker(so_far, bopt);
    const double batch_seconds = batch_timer.Seconds();
    if (!batch.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }

    table.AddRow({std::to_string(seen),
                  TablePrinter::FormatSeconds(online_seconds),
                  TablePrinter::FormatSeconds(batch_seconds),
                  TablePrinter::FormatDouble(batch_seconds / online_seconds,
                                             1) +
                      "x",
                  TablePrinter::FormatScientific(
                      online.decomposition().RelativeErrorAgainst(so_far)),
                  TablePrinter::FormatScientific(
                      batch.value().RelativeErrorAgainst(so_far))});
  }
  table.Print();
  Status telemetry = FlushTelemetryFromFlags(flags);
  if (!telemetry.ok()) {
    std::fprintf(stderr, "%s\n", telemetry.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
