// Climate explorer: a 4-order workload (longitude x latitude x altitude x
// time), mirroring the paper's Absorb dataset. Demonstrates:
//   * automatic rank selection from mode energy spectra,
//   * D-Tucker on an order-4 tensor,
//   * reading physics out of the factors (altitude decay profile and the
//     seasonal cycle in the temporal factor).
//
// Run: ./build/examples/climate_explorer
#include <cmath>
#include <cstdio>

#include "common/table_printer.h"
#include "data/generators.h"
#include "dtucker/api.h"

int main() {
  using namespace dtucker;

  const Index lon = 72, lat = 96, alt = 12, months = 72;
  std::printf("generating climate tensor %td x %td x %td x %td...\n", lon,
              lat, alt, months);
  Tensor x = MakeClimateAnalog(lon, lat, alt, months, /*noise=*/0.05,
                               /*seed=*/77);

  // 1. Pick ranks automatically: keep 99.9% of each mode's energy.
  Result<RankSuggestion> suggestion = SuggestRanks(x, 0.999, /*max_rank=*/12);
  if (!suggestion.ok()) {
    std::fprintf(stderr, "rank suggestion failed: %s\n",
                 suggestion.status().ToString().c_str());
    return 1;
  }
  TablePrinter rank_table({"mode", "dim", "suggested rank", "energy kept"});
  const char* mode_names[] = {"longitude", "latitude", "altitude", "time"};
  for (std::size_t n = 0; n < 4; ++n) {
    rank_table.AddRow(
        {mode_names[n], std::to_string(x.dim(static_cast<Index>(n))),
         std::to_string(suggestion.value().ranks[n]),
         TablePrinter::FormatDouble(
             suggestion.value().retained_energy[n] * 100, 2) +
             "%"});
  }
  rank_table.Print();

  // 2. Decompose with D-Tucker at the suggested ranks.
  DTuckerOptions options;
  options.tucker.ranks = suggestion.value().ranks;
  options.tucker.max_iterations = 15;
  TuckerStats stats;
  Result<TuckerDecomposition> result = DTucker(x, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const TuckerDecomposition& dec = result.value();
  std::printf(
      "\ndecomposed in %.2fs (compress %.2fs), relative error %.3e, "
      "compressed %s -> %s\n",
      stats.TotalSeconds(), stats.preprocess_seconds,
      dec.RelativeErrorAgainst(x),
      TablePrinter::FormatBytes(x.ByteSize()).c_str(),
      TablePrinter::FormatBytes(dec.ByteSize()).c_str());

  // 3. Physics in the factors. The dominant altitude factor should decay
  //    with height (absorption concentrates near the surface).
  const Matrix& alt_factor = dec.factors[2];
  std::printf("\ndominant altitude profile (|first column|):\n");
  for (Index a = 0; a < alt; ++a) {
    const double v = std::fabs(alt_factor(a, 0));
    const int bars = static_cast<int>(v * 120);
    std::printf("  level %2td  %6.3f  %.*s\n", a, v, bars,
                "########################################");
  }

  // 4. The dominant temporal factor should oscillate with the season.
  const Matrix& time_factor = dec.factors[3];
  std::printf("\ndominant temporal factor (sign per month):\n  ");
  double mean = 0;
  for (Index t = 0; t < months; ++t) mean += time_factor(t, 0);
  mean /= static_cast<double>(months);
  for (Index t = 0; t < months; ++t) {
    std::printf("%c", time_factor(t, 0) > mean ? '+' : '-');
  }
  std::printf("\n(seasonal blocks of +/- reflect the annual cycle)\n");
  return 0;
}
