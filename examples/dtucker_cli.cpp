// dtucker_cli: a command-line tool around the library.
//
// Modes:
//   --op=generate  write a synthetic dataset tensor to --tensor
//   --op=ranks     suggest Tucker ranks for --tensor at --energy
//   --op=compress  run the D-Tucker approximation phase, save to --approx
//   --op=decompose decompose --tensor (or a saved --approx) with --method,
//                  save the decomposition to --output
//   --op=round     recompress a saved decomposition (--output) to --rank,
//                  writing --round_output
//   --op=info      describe a saved tensor / approximation / decomposition
//
// Examples:
//   dtucker_cli --op=generate --dataset=stock --scale=0.3 --tensor=/tmp/s.dtnsr
//   dtucker_cli --op=ranks --tensor=/tmp/s.dtnsr --energy=0.9
//   dtucker_cli --op=compress --tensor=/tmp/s.dtnsr --approx=/tmp/s.dtsa
//   dtucker_cli --op=decompose --approx=/tmp/s.dtsa --rank=8 --output=/tmp/s.dtdc
//   dtucker_cli --op=decompose --tensor=/tmp/s.dtnsr --method=Tucker-ALS
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/table_printer.h"
#include "common/telemetry.h"
#include "data/datasets.h"
#include "data/decomposition_io.h"
#include "data/tensor_io.h"
#include "dtucker/api.h"

namespace dtucker {
namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

// spmd_rank >= 0 means this process is one rank of a fork()ed --rank-procs
// group rendezvousing at comm_scratch; ranks > 0 run quietly (rank 0 owns
// stdout and the saved output, every rank computes the same decomposition).
int RunOp(const FlagParser& flags, int spmd_rank = -1,
          const std::string& comm_scratch = {}) {
  // 0 = all hardware threads, mirroring the engine/BLAS-pool convention.
  int num_threads = static_cast<int>(flags.GetInt("threads"));
  if (num_threads == 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  const std::string op = flags.GetString("op");

  if (op == "generate") {
    if (flags.GetString("tensor").empty()) {
      return Fail(Status::InvalidArgument("--tensor output path required"));
    }
    Result<Tensor> t =
        MakeDataset(flags.GetString("dataset"), flags.GetDouble("scale"));
    if (!t.ok()) return Fail(t.status());
    Status save = SaveTensor(t.value(), flags.GetString("tensor"));
    if (!save.ok()) return Fail(save);
    std::printf("wrote %s %s (%s)\n", flags.GetString("tensor").c_str(),
                t.value().ShapeString().c_str(),
                TablePrinter::FormatBytes(t.value().ByteSize()).c_str());
    return 0;
  }

  if (op == "ranks") {
    Result<Tensor> t = LoadTensor(flags.GetString("tensor"));
    if (!t.ok()) return Fail(t.status());
    Result<RankSuggestion> sug =
        SuggestRanks(t.value(), flags.GetDouble("energy"));
    if (!sug.ok()) return Fail(sug.status());
    TablePrinter table({"mode", "dim", "suggested rank", "energy kept"});
    for (std::size_t n = 0; n < sug.value().ranks.size(); ++n) {
      table.AddRow({std::to_string(n + 1),
                    std::to_string(t.value().dim(static_cast<Index>(n))),
                    std::to_string(sug.value().ranks[n]),
                    TablePrinter::FormatDouble(
                        sug.value().retained_energy[n] * 100, 2) +
                        "%"});
    }
    table.Print();
    return 0;
  }

  if (op == "compress") {
    Result<Tensor> t = LoadTensor(flags.GetString("tensor"));
    if (!t.ok()) return Fail(t.status());
    if (flags.GetString("approx").empty()) {
      return Fail(Status::InvalidArgument("--approx output path required"));
    }
    SliceApproximationOptions opt;
    opt.slice_rank = std::min<Index>(
        flags.GetInt("rank"), std::min(t.value().dim(0), t.value().dim(1)));
    opt.num_threads = num_threads;
    Result<SliceApproximation> approx = ApproximateSlices(t.value(), opt);
    if (!approx.ok()) return Fail(approx.status());
    Status save =
        SaveSliceApproximation(approx.value(), flags.GetString("approx"));
    if (!save.ok()) return Fail(save);
    std::printf("compressed %s -> %s (%s -> %s, %.1fx)\n",
                flags.GetString("tensor").c_str(),
                flags.GetString("approx").c_str(),
                TablePrinter::FormatBytes(t.value().ByteSize()).c_str(),
                TablePrinter::FormatBytes(approx.value().ByteSize()).c_str(),
                static_cast<double>(t.value().ByteSize()) /
                    static_cast<double>(approx.value().ByteSize()));
    return 0;
  }

  if (op == "decompose") {
    // Both paths go through the Engine facade: it owns the RunContext,
    // validates options, sizes the BLAS pool, and publishes telemetry.
    EngineOptions eopt;
    eopt.method_options.tucker.max_iterations =
        static_cast<int>(flags.GetInt("iters"));
    eopt.method_options.num_threads = num_threads;
    eopt.blas_threads = num_threads;
    eopt.num_ranks = static_cast<int>(flags.GetInt("ranks"));
    {
      Result<CommTransport> transport =
          ParseCommTransport(flags.GetString("transport"));
      if (!transport.ok()) return Fail(transport.status());
      eopt.comm_transport = transport.value();
    }
    const bool quiet = spmd_rank > 0;
    if (spmd_rank >= 0) {
      eopt.spmd_rank = spmd_rank;
      eopt.comm_scratch = comm_scratch;
      // Rank 0 reports the (identical) error for everyone.
      if (quiet) eopt.measure_error = false;
    }
    const std::string solver = flags.GetString("solver");
    if (solver == "auto") {
      eopt.solver_policy = SolverPolicy::kAuto;
    } else {
      eopt.solver_spec = solver;  // Empty keeps the static defaults.
    }
    eopt.calibration_path = flags.GetString("calibration");
    eopt.sketch_error_budget = flags.GetDouble("sketch_budget");
    if (!quiet) {
      eopt.method_options.sweep_callback = [](const SweepTelemetry& t) {
        std::printf("sweep %2d: fit %.6f (delta %+0.2e) in %.3fs, "
                    "%llu subspace iterations\n",
                    t.sweep, t.fit, t.delta_fit, t.seconds,
                    static_cast<unsigned long long>(t.subspace_iterations));
      };
    }
    TuckerDecomposition dec;
    TuckerStats stats;
    double err = -1;
    if (!flags.GetString("approx").empty()) {
      // Query the compressed form directly (D-Tucker query phase).
      Result<SliceApproximation> approx =
          LoadSliceApproximation(flags.GetString("approx"));
      if (!approx.ok()) return Fail(approx.status());
      for (Index d : approx.value().shape) {
        eopt.method_options.tucker.ranks.push_back(
            std::min<Index>(flags.GetInt("rank"), d));
      }
      Engine engine(std::move(eopt));
      Result<EngineRun> r = engine.SolveApproximation(approx.value());
      if (!r.ok()) return Fail(r.status());
      if (!r.value().status.ok()) return Fail(r.value().status);
      stats = r.value().stats;
      dec = std::move(r).ValueOrDie().decomposition;
    } else {
      Result<Tensor> t = LoadTensor(flags.GetString("tensor"));
      if (!t.ok()) return Fail(t.status());
      Result<TuckerMethod> method =
          ParseTuckerMethod(flags.GetString("method"));
      if (!method.ok()) return Fail(method.status());
      eopt.method = method.value();
      for (Index n = 0; n < t.value().order(); ++n) {
        eopt.method_options.tucker.ranks.push_back(
            std::min<Index>(flags.GetInt("rank"), t.value().dim(n)));
      }
      Engine engine(std::move(eopt));
      Result<EngineRun> run = engine.Solve(t.value());
      if (!run.ok()) return Fail(run.status());
      if (!run.value().status.ok()) return Fail(run.value().status);
      err = run.value().relative_error;
      stats = run.value().stats;
      dec = std::move(run).ValueOrDie().decomposition;
    }
    if (quiet) return 0;
    std::printf("decomposition: core %s, %zu factors, %s\n",
                dec.core.ShapeString().c_str(), dec.factors.size(),
                TablePrinter::FormatBytes(dec.ByteSize()).c_str());
    if (!stats.selected_variants.empty()) {
      std::printf("solver variants: %s\n", stats.selected_variants.c_str());
      if (!stats.solver_rationale.empty()) {
        std::printf("solver choice: %s\n", stats.solver_rationale.c_str());
        std::printf("predicted init %.3fs (actual %.3fs), "
                    "predicted sweep %.3fs\n",
                    stats.predicted_init_seconds, stats.init_seconds,
                    stats.predicted_sweep_seconds);
      }
    }
    if (err >= 0) std::printf("relative error: %.4e\n", err);
    if (!flags.GetString("output").empty()) {
      Status save = SaveDecomposition(dec, flags.GetString("output"));
      if (!save.ok()) return Fail(save);
      std::printf("saved to %s\n", flags.GetString("output").c_str());
    }
    return 0;
  }

  if (op == "round") {
    Result<TuckerDecomposition> dec =
        LoadDecomposition(flags.GetString("output"));
    if (!dec.ok()) return Fail(dec.status());
    std::vector<Index> new_ranks;
    for (Index r : dec.value().Ranks()) {
      new_ranks.push_back(std::min<Index>(flags.GetInt("rank"), r));
    }
    Result<TuckerDecomposition> rounded =
        RoundTucker(dec.value(), new_ranks);
    if (!rounded.ok()) return Fail(rounded.status());
    std::printf("rounded core %s -> %s (%s -> %s)\n",
                dec.value().core.ShapeString().c_str(),
                rounded.value().core.ShapeString().c_str(),
                TablePrinter::FormatBytes(dec.value().ByteSize()).c_str(),
                TablePrinter::FormatBytes(rounded.value().ByteSize()).c_str());
    if (flags.GetString("round_output").empty()) {
      return Fail(Status::InvalidArgument("--round_output path required"));
    }
    Status save =
        SaveDecomposition(rounded.value(), flags.GetString("round_output"));
    if (!save.ok()) return Fail(save);
    std::printf("saved to %s\n", flags.GetString("round_output").c_str());
    return 0;
  }

  if (op == "info") {
    bool described = false;
    if (!flags.GetString("tensor").empty()) {
      Result<Tensor> t = LoadTensor(flags.GetString("tensor"));
      if (!t.ok()) return Fail(t.status());
      std::printf("tensor %s: %s, %s, |X|_F = %.6e\n",
                  flags.GetString("tensor").c_str(),
                  t.value().ShapeString().c_str(),
                  TablePrinter::FormatBytes(t.value().ByteSize()).c_str(),
                  t.value().FrobeniusNorm());
      described = true;
    }
    if (!flags.GetString("approx").empty()) {
      Result<SliceApproximation> a =
          LoadSliceApproximation(flags.GetString("approx"));
      if (!a.ok()) return Fail(a.status());
      std::printf("approximation %s: %td slices, slice rank %td, %s\n",
                  flags.GetString("approx").c_str(), a.value().NumSlices(),
                  a.value().slice_rank,
                  TablePrinter::FormatBytes(a.value().ByteSize()).c_str());
      described = true;
    }
    if (!flags.GetString("output").empty()) {
      Result<TuckerDecomposition> d =
          LoadDecomposition(flags.GetString("output"));
      if (!d.ok()) return Fail(d.status());
      std::printf("decomposition %s: core %s, %s\n",
                  flags.GetString("output").c_str(),
                  d.value().core.ShapeString().c_str(),
                  TablePrinter::FormatBytes(d.value().ByteSize()).c_str());
      described = true;
    }
    if (!described) {
      return Fail(Status::InvalidArgument(
          "--op=info needs --tensor, --approx, or --output"));
    }
    return 0;
  }

  return Fail(Status::InvalidArgument("unknown --op '" + op + "'"));
}

// --rank-procs: fork one process per rank *before* any Engine exists, so
// each rank has its own registry/trace buffers and the run exercises the
// true multi-process rendezvous. Rank 0 stays in the parent (it owns
// stdout, the saved output, and the merged telemetry files); children run
// quietly, flush their own telemetry (nothing when the gather handed the
// merged documents to rank 0), and _exit.
int RunDecomposeRankProcs(const FlagParser& flags, int ranks) {
  const std::string transport = flags.GetString("transport");
  if (transport != "file" && transport != "shm") {
    return Fail(Status::InvalidArgument(
        "--rank-procs needs a cross-process transport "
        "(--transport=file or shm)"));
  }
  if (flags.GetString("approx").empty() == false) {
    return Fail(Status::InvalidArgument(
        "--rank-procs decomposes a --tensor (the query phase is not "
        "sharded)"));
  }
  const std::string pid_str = std::to_string(static_cast<long>(getpid()));
  const std::string scratch = transport == "file"
                                  ? "/tmp/dtucker_cli_comm_" + pid_str
                                  : "/dtucker-cli-" + pid_str;
  std::vector<pid_t> children;
  for (int r = 1; r < ranks; ++r) {
    const pid_t child = fork();
    if (child < 0) {
      std::perror("fork");
      break;  // Missing ranks surface as a communicator setup timeout.
    }
    if (child == 0) {
      // Inherited buffers hold the parent's pre-fork events; drop them and
      // retag everything this process records with its own rank.
      ResetTelemetryForChildProcess(r);
      const int rc = RunOp(flags, r, scratch);
      const Status flush = FlushTelemetryFromFlags(flags);
      if (!flush.ok()) {
        std::fprintf(stderr, "rank %d telemetry flush: %s\n", r,
                     flush.ToString().c_str());
        _exit(1);
      }
      _exit(rc);
    }
    children.push_back(child);
  }
  const int rc = static_cast<int>(children.size()) == ranks - 1
                     ? RunOp(flags, 0, scratch)
                     : 1;
  int failed = 0;
  for (const pid_t child : children) {
    int status = 0;
    if (waitpid(child, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ++failed;
    }
  }
  if (transport == "file") {
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);  // Shm cleans itself up.
  }
  if (failed > 0) {
    return Fail(Status::Internal(std::to_string(failed) +
                                 " rank process(es) exited non-zero"));
  }
  return rc;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("op", "info", "generate | ranks | compress | decompose | round | info");
  flags.AddString("dataset", "stock", "for --op=generate: " + DatasetNames());
  flags.AddDouble("scale", 0.3, "dataset size multiplier");
  flags.AddString("tensor", "", "tensor file path (.dtnsr)");
  flags.AddString("approx", "", "slice-approximation file path (.dtsa)");
  flags.AddString("output", "", "decomposition output path (.dtdc)");
  flags.AddString("round_output", "", "rounded decomposition path (.dtdc)");
  flags.AddString("method", "D-Tucker", "decomposition method name");
  flags.AddInt("rank", 10, "Tucker rank per mode (clamped to dims)");
  flags.AddDouble("energy", 0.9, "energy threshold for --op=ranks");
  flags.AddInt("iters", 20, "max ALS sweeps");
  flags.AddString("solver", "",
                  "per-phase variant dispatch for --method=D-Tucker: "
                  "\"auto\" (cost-model-driven), a fixed comma-separated "
                  "axis=name list (e.g. "
                  "\"eig=ql,qr=blocked,carrier=slice_parallel\"), or "
                  "empty for the static defaults");
  flags.AddString("calibration", "",
                  "cost-model calibration JSON for --solver=auto "
                  "(bench/snapshots/CALIBRATION.seed.json; missing or "
                  "corrupt files fall back to built-in defaults)");
  flags.AddDouble("sketch_budget", 0.0,
                  "relative squared-error budget for the HOOI starting "
                  "point; > 0 lets --solver=auto use the sketched "
                  "initialization Gram");
  flags.AddInt("ranks", 0,
               "slice-parallel shard count for --method=D-Tucker "
               "(0 = classic unsharded solver; >= 1 runs the sharded "
               "solver with that many in-process ranks)");
  flags.AddString("transport", "inproc",
                  "rank transport for --ranks >= 1: inproc | file | shm "
                  "(results are bitwise-identical across the three)");
  flags.AddBool("rank-procs", false,
                "run each rank of --ranks as a fork()ed process instead of "
                "a thread (decompose only; needs --transport=file|shm); "
                "--trace-out/--metrics-out still produce single merged "
                "files via the end-of-run gather");
  flags.AddInt("threads", 1,
               "worker threads for every phase (approximation, "
               "initialization, iteration); default 1 = serial, 0 = all "
               "hardware threads");
  AddTelemetryFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }
  InitTelemetryFromFlags(flags);
  // One run id per CLI invocation; fork()ed rank processes inherit it, so
  // every rank's trace fragment names the same run.
  SetTelemetryRunId(static_cast<std::uint64_t>(getpid()));
  const int ranks = static_cast<int>(flags.GetInt("ranks"));
  const int rc =
      (flags.GetString("op") == "decompose" && flags.GetBool("rank-procs") &&
       ranks > 1)
          ? RunDecomposeRankProcs(flags, ranks)
          : RunOp(flags);
  Status flush = FlushTelemetryFromFlags(flags);
  if (!flush.ok()) return Fail(flush);
  return rc;
}

}  // namespace
}  // namespace dtucker

int main(int argc, char** argv) { return dtucker::Run(argc, argv); }
