// Quickstart: decompose a dense 3-order tensor with D-Tucker.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/table_printer.h"
#include "data/generators.h"
#include "dtucker/api.h"

int main() {
  using namespace dtucker;

  // 1. Get a dense tensor. Here: a synthetic 100 x 80 x 60 tensor that is
  //    approximately rank-(5,5,5) with 10% noise. Any mode-1-fastest
  //    double buffer can be wrapped with Tensor::FromFlat.
  Tensor x = MakeLowRankTensor({100, 80, 60}, {5, 5, 5}, /*noise=*/0.1,
                               /*seed=*/42);
  std::printf("input tensor:  %s, %.1f MiB\n", x.ShapeString().c_str(),
              static_cast<double>(x.ByteSize()) / (1 << 20));

  // 2. Configure D-Tucker: target Tucker ranks, iteration budget.
  DTuckerOptions options;
  options.tucker.ranks = {5, 5, 5};
  options.tucker.max_iterations = 20;
  options.tucker.tolerance = 1e-4;

  // 3. Decompose. All errors are reported through Status/Result — no
  //    exceptions.
  TuckerStats stats;
  Result<TuckerDecomposition> result = DTucker(x, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "D-Tucker failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const TuckerDecomposition& dec = result.value();

  // 4. Inspect the output: factor matrices A(n) (I_n x J_n, orthonormal
  //    columns) and the core tensor.
  std::printf("core tensor:   %s\n", dec.core.ShapeString().c_str());
  for (std::size_t n = 0; n < dec.factors.size(); ++n) {
    std::printf("factor A(%zu):   %td x %td\n", n + 1, dec.factors[n].rows(),
                dec.factors[n].cols());
  }

  // 5. Quality and cost.
  TablePrinter table({"quantity", "value"});
  table.AddRow({"relative reconstruction error",
                TablePrinter::FormatScientific(
                    dec.RelativeErrorAgainst(x))});
  table.AddRow({"approximation (compress) time",
                TablePrinter::FormatSeconds(stats.preprocess_seconds)});
  table.AddRow({"initialization time",
                TablePrinter::FormatSeconds(stats.init_seconds)});
  table.AddRow({"iteration time",
                TablePrinter::FormatSeconds(stats.iterate_seconds)});
  table.AddRow({"HOOI sweeps", std::to_string(stats.iterations)});
  table.AddRow({"compressed size",
                TablePrinter::FormatBytes(stats.working_bytes)});
  table.AddRow({"decomposition size",
                TablePrinter::FormatBytes(dec.ByteSize())});
  table.Print();
  return 0;
}
