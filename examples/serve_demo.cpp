// serve_demo: the multi-tenant decomposition server end to end.
//
// One DecompositionServer process hosts many models at once: jobs go
// through a bounded priority queue with admission control, identical
// concurrent requests collapse into a single Engine run (single-flight),
// completed decompositions live in an LRU model cache, and read-only
// queries are answered straight from the cached factors (G, A(n)) in
// O(prod J) — the tensor itself is never rematerialized.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/serve_demo
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "data/generators.h"
#include "dtucker/api.h"

int main() {
  using namespace dtucker;

  // 1. Stand up a server: two workers, a small queue, default LRU cache.
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  options.engine.measure_error = false;
  DecompositionServer server(options);

  // 2. Two tenants share the process, each with their own dataset.
  auto video = std::make_shared<Tensor>(
      MakeLowRankTensor({96, 96, 64}, {8, 8, 8}, 0.05, 1));
  auto sensors = std::make_shared<Tensor>(
      MakeLowRankTensor({64, 48, 128}, {5, 5, 5}, 0.1, 2));

  ModelSpec video_spec;
  video_spec.dataset_id = "video/cam0/2026-08-07";
  video_spec.ranks = {8, 8, 8};
  video_spec.max_iterations = 10;

  ModelSpec sensor_spec;
  sensor_spec.dataset_id = "sensors/floor3";
  sensor_spec.ranks = {5, 5, 5};
  sensor_spec.max_iterations = 10;

  // 3. Submit both jobs; the interactive one at higher priority, the batch
  //    one with a deadline (queue wait counts against it).
  SolveRequest video_req;
  video_req.model = video_spec;
  video_req.tensor = video;
  video_req.priority = 10;

  SolveRequest sensor_req;
  sensor_req.model = sensor_spec;
  sensor_req.tensor = sensors;
  sensor_req.deadline_seconds = 30.0;

  Result<JobId> video_job = server.Submit(std::move(video_req));
  Result<JobId> sensor_job = server.Submit(std::move(sensor_req));
  if (!video_job.ok() || !sensor_job.ok()) {
    std::fprintf(stderr, "submit failed\n");
    return 1;
  }

  // 4. Meanwhile, five identical requests for the video model arrive. The
  //    single-flight machinery attaches them to the in-flight run — one
  //    Engine execution, five answers.
  std::vector<JobId> dupes;
  for (int i = 0; i < 5; ++i) {
    SolveRequest dup;
    dup.model = video_spec;
    dup.tensor = video;
    Result<JobId> id = server.Submit(std::move(dup));
    if (id.ok()) dupes.push_back(id.value());
  }

  Result<JobResult> video_result = server.Wait(video_job.value());
  Result<JobResult> sensor_result = server.Wait(sensor_job.value());
  if (!video_result.ok() || !video_result.value().status.ok() ||
      !sensor_result.ok() || !sensor_result.value().status.ok()) {
    std::fprintf(stderr, "solve failed\n");
    return 1;
  }
  for (JobId id : dupes) {
    Result<JobResult> r = server.Wait(id);
    if (r.ok() && r.value().deduplicated) {
      std::printf("job %llu rode the in-flight video solve\n",
                  static_cast<unsigned long long>(id));
    }
  }

  // 5. Query phase: answers come from the cached factors, not the tensor.
  //    A single element...
  ElementQueryRequest element;
  element.indices = {{10, 20, 30}, {0, 0, 0}, {95, 95, 63}};
  Timer element_timer;
  Result<ElementQueryResponse> evalues =
      server.QueryElement(video_spec, element);
  if (!evalues.ok()) {
    std::fprintf(stderr, "%s\n", evalues.status().ToString().c_str());
    return 1;
  }
  std::printf("x(10,20,30) = %.6f  (batch of %zu in %.1f us)\n",
              evalues.value().values[0], element.indices.size(),
              element_timer.Seconds() * 1e6);

  //    ... a mode-3 fiber (e.g. one pixel's trajectory through time) ...
  FiberQueryRequest fiber;
  fiber.mode = 2;
  fiber.anchors = {{10, 20, 0}};
  Result<FiberQueryResponse> fvalues = server.QueryFiber(video_spec, fiber);
  if (fvalues.ok()) {
    std::printf("pixel (10,20) trajectory: %zu frames reconstructed\n",
                fvalues.value().fibers[0].size());
  }

  //    ... and a whole frontal slice (one frame) of the other tenant.
  SliceQueryRequest slice;
  slice.slices = {42};
  Result<SliceQueryResponse> svalues = server.QuerySlice(sensor_spec, slice);
  if (svalues.ok()) {
    std::printf("sensor slice 42: %td x %td matrix\n",
                svalues.value().slices[0].rows(),
                svalues.value().slices[0].cols());
  }

  // 6. Telemetry: every number here is also a serve.* metric.
  const ServerStats stats = server.Stats();
  std::printf(
      "\nsubmitted=%llu executed=%llu dedup=%llu from_cache=%llu "
      "rejected=%llu\ncache: %d entries, %.1f KiB, %llu hits / %llu "
      "misses\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.executed),
      static_cast<unsigned long long>(stats.dedup_followers),
      static_cast<unsigned long long>(stats.served_from_cache),
      static_cast<unsigned long long>(stats.rejected), stats.cache.entries,
      static_cast<double>(stats.cache.bytes) / 1024.0,
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses));
  return 0;
}
