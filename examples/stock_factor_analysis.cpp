// Stock factor analysis: mirrors the paper family's discovery use case.
// A (stock x feature x day) tensor is decomposed with D-Tucker; the
// temporal factor exposes market regimes, and per-window reconstruction
// error flags anomalous periods (windows the global low-rank model
// explains poorly).
//
// Run: ./build/examples/stock_factor_analysis
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/table_printer.h"
#include "data/generators.h"
#include "dtucker/api.h"

int main() {
  using namespace dtucker;

  const Index stocks = 200, features = 24, days = 360;
  std::printf("generating stock tensor %td x %td x %td...\n", stocks,
              features, days);
  Tensor x = MakeStockAnalog(stocks, features, days, /*num_factors=*/8,
                             /*noise=*/0.4, /*seed=*/2024);

  DTuckerOptions options;
  options.tucker.ranks = {8, 6, 8};
  options.tucker.max_iterations = 15;
  TuckerStats stats;
  Result<TuckerDecomposition> result = DTucker(x, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const TuckerDecomposition& dec = result.value();
  std::printf("decomposed in %.2fs, relative error %.3e\n",
              stats.TotalSeconds(), dec.RelativeErrorAgainst(x));

  // Per-day reconstruction error: days where the global factors explain
  // the market poorly are candidate anomalies.
  Tensor rec = dec.Reconstruct();
  std::vector<double> day_error(static_cast<std::size_t>(days));
  for (Index t = 0; t < days; ++t) {
    Matrix truth = x.FrontalSlice(t);
    Matrix approx = rec.FrontalSlice(t);
    Matrix diff = truth - approx;
    day_error[static_cast<std::size_t>(t)] =
        diff.SquaredNorm() / std::max(truth.SquaredNorm(), 1e-300);
  }
  double mean = 0;
  for (double e : day_error) mean += e;
  mean /= static_cast<double>(days);
  double var = 0;
  for (double e : day_error) var += (e - mean) * (e - mean);
  const double stddev = std::sqrt(var / static_cast<double>(days));
  const double threshold = mean + 2 * stddev;

  std::printf("\nanomalous days (error > mean + 2 sigma = %.3e):\n",
              threshold);
  TablePrinter table({"day", "relative error", "vs mean"});
  int shown = 0;
  for (Index t = 0; t < days && shown < 10; ++t) {
    const double e = day_error[static_cast<std::size_t>(t)];
    if (e > threshold) {
      table.AddRow({std::to_string(t), TablePrinter::FormatScientific(e),
                    TablePrinter::FormatDouble(e / mean, 1) + "x"});
      ++shown;
    }
  }
  if (shown == 0) {
    std::printf("  (none above threshold in this draw)\n");
  } else {
    table.Print();
  }

  // Temporal factor: column 1 is the dominant market trajectory. Print a
  // coarse sparkline of its direction changes.
  std::printf("\ndominant temporal factor (column 1), 1 char per 12 days:\n ");
  const Matrix& a3 = dec.factors[2];
  for (Index t = 0; t + 12 <= days; t += 12) {
    double delta = a3(t + 11, 0) - a3(t, 0);
    std::printf("%c", delta > 0.005 ? '/' : (delta < -0.005 ? '\\' : '-'));
  }
  std::printf("\n");
  return 0;
}
