// Streaming monitor: D-TuckerO ingesting a temporal tensor chunk by chunk.
// After each append only the new slices are compressed; the factors are
// refreshed with a few warm sweeps. We report per-chunk ingest cost and
// model quality against the data seen so far, next to the cost of
// re-running batch D-Tucker from scratch at every step.
//
// Run: ./build/examples/streaming_monitor
#include <cstdio>

#include "common/table_printer.h"
#include "common/timer.h"
#include "data/generators.h"
#include "dtucker/api.h"

int main() {
  using namespace dtucker;

  const Index height = 100, width = 80, total_frames = 240;
  const Index chunk_frames = 30;
  Tensor full = MakeVideoAnalog(height, width, total_frames,
                                /*num_objects=*/5, /*noise=*/0.05,
                                /*seed=*/11);

  OnlineDTuckerOptions options;
  options.dtucker.tucker.ranks = {6, 6, 6};
  options.dtucker.tucker.max_iterations = 10;
  options.refit_sweeps = 3;
  OnlineDTucker online(options);

  TablePrinter table({"frames seen", "online ingest", "batch redo",
                      "online error", "batch error"});

  Index seen = 0;
  while (seen < total_frames) {
    const Index take = std::min(chunk_frames, total_frames - seen);
    Tensor chunk = full.LastModeSlice(seen, take);

    Timer online_timer;
    Status st = seen == 0 ? online.Initialize(chunk) : online.Append(chunk);
    if (!st.ok()) {
      std::fprintf(stderr, "streaming failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double online_seconds = online_timer.Seconds();
    seen += take;

    // What a batch system would pay: full recompress + refit every step.
    Tensor so_far = full.LastModeSlice(0, seen);
    DTuckerOptions batch_opt = options.dtucker;
    Timer batch_timer;
    Result<TuckerDecomposition> batch = DTucker(so_far, batch_opt);
    if (!batch.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
    const double batch_seconds = batch_timer.Seconds();

    table.AddRow({std::to_string(seen),
                  TablePrinter::FormatSeconds(online_seconds),
                  TablePrinter::FormatSeconds(batch_seconds),
                  TablePrinter::FormatScientific(
                      online.decomposition().RelativeErrorAgainst(so_far)),
                  TablePrinter::FormatScientific(
                      batch.value().RelativeErrorAgainst(so_far))});
  }
  table.Print();
  std::printf(
      "\nonline ingest touches only the new slices; batch redo recompresses "
      "everything — the gap widens as the stream grows.\n");
  return 0;
}
