// Video compression: the paper's motivating workload. A grayscale video
// (height x width x frames) is compressed with D-Tucker; we report the
// compression ratio, reconstruction error, and compare against storing
// the raw frames, then reconstruct a single frame through the factors.
//
// Run: ./build/examples/video_compression [--frames=N] [--rank=J]
#include <cstdio>
#include <utility>

#include "common/flags.h"
#include "common/table_printer.h"
#include "data/generators.h"
#include "dtucker/api.h"

int main(int argc, char** argv) {
  using namespace dtucker;

  FlagParser flags;
  flags.AddInt("height", 144, "frame height");
  flags.AddInt("width", 120, "frame width");
  flags.AddInt("frames", 120, "number of frames");
  flags.AddInt("rank", 8, "Tucker rank per mode");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpString().c_str());
    return 0;
  }

  const Index height = flags.GetInt("height");
  const Index width = flags.GetInt("width");
  const Index frames = flags.GetInt("frames");
  const Index rank = flags.GetInt("rank");

  std::printf("generating synthetic surveillance video %td x %td x %td...\n",
              height, width, frames);
  Tensor video = MakeVideoAnalog(height, width, frames, /*num_objects=*/6,
                                 /*noise=*/0.05, /*seed=*/7);

  DTuckerOptions options;
  options.tucker.ranks = {rank, rank, rank};
  options.tucker.max_iterations = 15;
  TuckerStats stats;
  Result<TuckerDecomposition> result = DTucker(video, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const TuckerDecomposition& dec = result.value();

  const double raw_bytes = static_cast<double>(video.ByteSize());
  const double dec_bytes = static_cast<double>(dec.ByteSize());
  TablePrinter table({"quantity", "value"});
  table.AddRow({"raw video", TablePrinter::FormatBytes(video.ByteSize())});
  table.AddRow({"Tucker form", TablePrinter::FormatBytes(dec.ByteSize())});
  table.AddRow({"compression ratio",
                TablePrinter::FormatDouble(raw_bytes / dec_bytes, 1) + "x"});
  table.AddRow({"relative error",
                TablePrinter::FormatScientific(
                    dec.RelativeErrorAgainst(video))});
  table.AddRow({"total time",
                TablePrinter::FormatSeconds(stats.TotalSeconds())});
  table.Print();

  // Reconstruct one frame through the factors without rebuilding the whole
  // video: O(H*W*J + prod J) via the partial-reconstruction API.
  const Index t = frames / 2;
  Result<Matrix> frame_result = ReconstructFrontalSlice(dec, t);
  if (!frame_result.ok()) {
    std::fprintf(stderr, "frame reconstruction failed: %s\n",
                 frame_result.status().ToString().c_str());
    return 1;
  }
  Matrix frame = std::move(frame_result).value();              // H x W.

  Matrix truth = video.FrontalSlice(t);
  Matrix diff = frame - truth;
  std::printf(
      "frame %td reconstructed through factors: "
      "per-frame relative error %.3e\n",
      t, diff.SquaredNorm() / truth.SquaredNorm());
  return 0;
}
