#include "baselines/mach.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"
#include "linalg/qr.h"
#include "tensor/tensor_ops.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {

Result<SparseTensor> MachSample(const Tensor& x, double sample_rate,
                                uint64_t seed) {
  if (sample_rate <= 0.0 || sample_rate > 1.0) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  SparseTensor sp(x.shape());
  sp.Reserve(static_cast<std::size_t>(
      static_cast<double>(x.size()) * sample_rate * 1.1));
  Rng rng(seed);
  const double inv_rate = 1.0 / sample_rate;
  const double* data = x.data();
  for (Index i = 0; i < x.size(); ++i) {
    if (rng.Uniform() < sample_rate) {
      sp.AddFlat(i, data[i] * inv_rate);
    }
  }
  return sp;
}

namespace {

// Picks the mode (not `skip`) whose sparse contraction shrinks the dense
// intermediate the most: the largest I_k / J_k ratio.
Index BestFirstContraction(const std::vector<Index>& shape,
                           const std::vector<Index>& ranks, Index skip) {
  Index best = -1;
  double best_ratio = -1.0;
  for (std::size_t k = 0; k < shape.size(); ++k) {
    if (static_cast<Index>(k) == skip) continue;
    const double ratio =
        static_cast<double>(shape[k]) / static_cast<double>(ranks[k]);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = static_cast<Index>(k);
    }
  }
  return best;
}

}  // namespace

Result<TuckerDecomposition> SparseTuckerAls(const SparseTensor& x,
                                            const TuckerOptions& options,
                                            TuckerStats* stats) {
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), options.ranks));
  const Index order = x.order();
  const double x_norm2 = x.SquaredNorm();

  // Random orthonormal initialization (a HOSVD init would need dense
  // unfoldings, defeating the sparsity).
  Rng rng(options.seed);
  std::vector<Matrix> factors(static_cast<std::size_t>(order));
  for (Index n = 0; n < order; ++n) {
    Matrix g = Matrix::GaussianRandom(
        x.dim(n), options.ranks[static_cast<std::size_t>(n)], rng);
    factors[static_cast<std::size_t>(n)] = QrOrthonormalize(g);
  }

  // Pre-sweep interruption checkpoint; a trip returns the best-so-far
  // decomposition with stats->completion set, like the dense solvers.
  const RunContext* ctx = options.run_context;
  StatusCode stop = StatusCode::kOk;

  Timer iterate_timer;
  Tensor core;
  double prev_error = 1.0;
  int it = 0;
  for (; it < options.max_iterations; ++it) {
    stop = RunContext::CheckOrOk(ctx);
    if (stop != StatusCode::kOk) break;
    for (Index n = 0; n < order; ++n) {
      // Sparse first contraction on the most size-reducing mode, dense
      // contractions for the rest.
      const Index k0 = BestFirstContraction(x.shape(), options.ranks, n);
      Tensor y = x.ModeProductDense(factors[static_cast<std::size_t>(k0)], k0,
                                    Trans::kYes);
      for (Index k = 0; k < order; ++k) {
        if (k == n || k == k0) continue;
        y = ModeProduct(y, factors[static_cast<std::size_t>(k)], k,
                        Trans::kYes);
      }
      Matrix yn = Unfold(y, n);
      factors[static_cast<std::size_t>(n)] = LeadingLeftSingularVectorsViaGram(
          yn, options.ranks[static_cast<std::size_t>(n)]);
      if (n == order - 1) {
        core = ModeProduct(y, factors[static_cast<std::size_t>(n)], n,
                           Trans::kYes);
      }
    }
    const double error =
        OrthogonalTuckerRelativeError(x_norm2, core.SquaredNorm());
    if (stats != nullptr) stats->error_history.push_back(error);
    const double delta = std::fabs(prev_error - error);
    prev_error = error;
    if (delta < options.tolerance) {
      ++it;
      break;
    }
  }
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
    stats->completion = stop;
    if (stop != StatusCode::kOk) {
      stats->completion_detail = std::string(StatusCodeToString(stop)) +
                                 " during sparse ALS iteration";
    }
  }

  TuckerDecomposition dec;
  dec.factors = std::move(factors);
  dec.core = std::move(core);
  return dec;
}

Result<TuckerDecomposition> Mach(const Tensor& x, const MachOptions& options,
                                 TuckerStats* stats) {
  Timer sample_timer;
  DT_ASSIGN_OR_RETURN(SparseTensor sp,
                      MachSample(x, options.sample_rate, options.seed));
  if (stats != nullptr) {
    stats->preprocess_seconds = sample_timer.Seconds();
    stats->working_bytes = sp.ByteSize();
  }
  return SparseTuckerAls(sp, options, stats);
}

}  // namespace dtucker
