// MACH (Tsourakakis, SDM 2010): randomized Tucker via element sampling.
//
// Each tensor entry is kept independently with probability `sample_rate`
// and rescaled by 1/sample_rate (an unbiased sparsification), then HOOI
// runs on the sparse tensor: the first contraction of every factor update
// streams the nonzeros (O(nnz * J)), all later contractions are dense but
// small. Faster than Tucker-ALS at low sample rates, at an accuracy cost —
// the trade-off the paper's evaluation probes.
#ifndef DTUCKER_BASELINES_MACH_H_
#define DTUCKER_BASELINES_MACH_H_

#include "common/status.h"
#include "sparse/sparse_tensor.h"
#include "tucker/tucker.h"

namespace dtucker {

struct MachOptions : TuckerOptions {
  double sample_rate = 0.1;  // Keep probability in (0, 1].
};

// End-to-end MACH: sparsify + sparse HOOI. `stats` may be null; its
// preprocess_seconds records the sampling pass and working_bytes the COO
// footprint.
Result<TuckerDecomposition> Mach(const Tensor& x, const MachOptions& options,
                                 TuckerStats* stats = nullptr);

// The sparsification step alone (exposed for tests).
Result<SparseTensor> MachSample(const Tensor& x, double sample_rate,
                                uint64_t seed);

// HOOI on an already-sparsified tensor.
Result<TuckerDecomposition> SparseTuckerAls(const SparseTensor& x,
                                            const TuckerOptions& options,
                                            TuckerStats* stats = nullptr);

}  // namespace dtucker

#endif  // DTUCKER_BASELINES_MACH_H_
