#include "baselines/registry.h"

#include "baselines/mach.h"
#include "baselines/rtd.h"
#include "baselines/tucker_ts.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "dtucker/dtucker.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {

const std::vector<TuckerMethod>& AllTuckerMethods() {
  static const std::vector<TuckerMethod>* const kAll =
      new std::vector<TuckerMethod>{
          TuckerMethod::kDTucker, TuckerMethod::kTuckerAls,
          TuckerMethod::kHosvd,   TuckerMethod::kStHosvd,
          TuckerMethod::kMach,    TuckerMethod::kRtd,
          TuckerMethod::kTuckerTs, TuckerMethod::kTuckerTtmts};
  return *kAll;
}

const char* TuckerMethodName(TuckerMethod method) {
  switch (method) {
    case TuckerMethod::kDTucker:
      return "D-Tucker";
    case TuckerMethod::kTuckerAls:
      return "Tucker-ALS";
    case TuckerMethod::kHosvd:
      return "HOSVD";
    case TuckerMethod::kStHosvd:
      return "ST-HOSVD";
    case TuckerMethod::kMach:
      return "MACH";
    case TuckerMethod::kRtd:
      return "RTD";
    case TuckerMethod::kTuckerTs:
      return "Tucker-ts";
    case TuckerMethod::kTuckerTtmts:
      return "Tucker-ttmts";
  }
  return "?";
}

Result<TuckerMethod> ParseTuckerMethod(const std::string& name) {
  for (TuckerMethod m : AllTuckerMethods()) {
    if (name == TuckerMethodName(m)) return m;
  }
  return Status::InvalidArgument("unknown Tucker method '" + name + "'");
}

Status MethodOptions::Validate(const std::vector<Index>& shape) const {
  DT_RETURN_NOT_OK(ValidateRanks(shape, tucker.ranks));
  if (tucker.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be non-negative");
  }
  if (tucker.tolerance < 0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be non-negative");
  }
  if (oversampling < 0) {
    return Status::InvalidArgument("oversampling must be non-negative");
  }
  if (power_iterations < 0) {
    return Status::InvalidArgument("power_iterations must be non-negative");
  }
  if (mach_sample_rate <= 0.0 || mach_sample_rate > 1.0) {
    return Status::InvalidArgument("mach_sample_rate must be in (0, 1]");
  }
  if (sketch_factor <= 0.0) {
    return Status::InvalidArgument("sketch_factor must be positive");
  }
  return Status::OK();
}

Result<MethodRun> RunTuckerMethod(TuckerMethod method, const Tensor& x,
                                  const MethodOptions& options,
                                  bool measure_error) {
  DT_RETURN_NOT_OK(options.Validate(x.shape()));
  MethodRun run;
  Timer total;
  DT_TRACE_SPAN("method.run");
  switch (method) {
    case TuckerMethod::kDTucker: {
      DTuckerOptions opt;
      opt.tucker = options.tucker;
      opt.oversampling = options.oversampling;
      opt.power_iterations = options.power_iterations;
      opt.num_threads = options.num_threads;
      opt.sweep_callback = options.sweep_callback;
      opt.variants = options.variants;
      DT_ASSIGN_OR_RETURN(run.decomposition, DTucker(x, opt, &run.stats));
      run.stored_bytes = run.stats.working_bytes;  // Slice factors.
      break;
    }
    case TuckerMethod::kTuckerAls: {
      TuckerAlsOptions opt;
      static_cast<TuckerOptions&>(opt) = options.tucker;
      DT_ASSIGN_OR_RETURN(run.decomposition, TuckerAls(x, opt, &run.stats));
      run.stored_bytes = x.ByteSize();  // Needs the raw tensor every sweep.
      break;
    }
    case TuckerMethod::kHosvd: {
      Timer t;
      DT_ASSIGN_OR_RETURN(
          run.decomposition,
          Hosvd(x, options.tucker.ranks, options.tucker.run_context));
      run.stats.iterate_seconds = t.Seconds();
      run.stats.iterations = 1;
      run.stored_bytes = x.ByteSize();
      break;
    }
    case TuckerMethod::kStHosvd: {
      Timer t;
      DT_ASSIGN_OR_RETURN(
          run.decomposition,
          StHosvd(x, options.tucker.ranks, options.tucker.run_context));
      run.stats.iterate_seconds = t.Seconds();
      run.stats.iterations = 1;
      run.stored_bytes = x.ByteSize();
      break;
    }
    case TuckerMethod::kMach: {
      MachOptions opt;
      static_cast<TuckerOptions&>(opt) = options.tucker;
      opt.sample_rate = options.mach_sample_rate;
      DT_ASSIGN_OR_RETURN(run.decomposition, Mach(x, opt, &run.stats));
      run.stored_bytes = run.stats.working_bytes;  // COO sample.
      break;
    }
    case TuckerMethod::kRtd: {
      RtdOptions opt;
      static_cast<TuckerOptions&>(opt) = options.tucker;
      opt.oversampling = options.oversampling;
      opt.power_iterations = options.power_iterations;
      DT_ASSIGN_OR_RETURN(run.decomposition, Rtd(x, opt, &run.stats));
      run.stored_bytes = x.ByteSize();
      break;
    }
    case TuckerMethod::kTuckerTs: {
      TuckerTsOptions opt;
      static_cast<TuckerOptions&>(opt) = options.tucker;
      opt.sketch_factor = options.sketch_factor;
      DT_ASSIGN_OR_RETURN(run.decomposition, TuckerTs(x, opt, &run.stats));
      run.stored_bytes = run.stats.working_bytes;  // Sketches.
      break;
    }
    case TuckerMethod::kTuckerTtmts: {
      TuckerTsOptions opt;
      static_cast<TuckerOptions&>(opt) = options.tucker;
      opt.sketch_factor = options.sketch_factor;
      DT_ASSIGN_OR_RETURN(run.decomposition, TuckerTtmts(x, opt, &run.stats));
      run.stored_bytes = run.stats.working_bytes;
      break;
    }
  }
  // Every method reports its end-to-end wall time through the same global
  // channel the D-Tucker phases use, so one metrics snapshot compares them.
  GlobalPhaseTimer().Add(std::string("method.") + TuckerMethodName(method),
                         total.Seconds());
  RecordSweepMetrics(run.stats);
  if (measure_error) {
    run.relative_error = run.decomposition.RelativeErrorAgainst(x);
  }
  return run;
}

}  // namespace dtucker
