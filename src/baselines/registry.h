// Uniform interface over every Tucker method in the repository, used by
// the experiment harnesses and examples to sweep "method x dataset" grids.
#ifndef DTUCKER_BASELINES_REGISTRY_H_
#define DTUCKER_BASELINES_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dtucker/adaptive/variants.h"
#include "tucker/tucker.h"

namespace dtucker {

enum class TuckerMethod {
  kDTucker,      // The paper's contribution.
  kTuckerAls,    // HOOI reference.
  kHosvd,        // One-shot HOSVD.
  kStHosvd,      // One-shot ST-HOSVD.
  kMach,         // Element sampling + sparse HOOI.
  kRtd,          // Randomized ST-HOSVD (Che & Wei).
  kTuckerTs,     // TensorSketch least-squares ALS.
  kTuckerTtmts,  // TensorSketch TTM ALS.
};

// All methods, in the order the paper-style tables list them.
const std::vector<TuckerMethod>& AllTuckerMethods();

const char* TuckerMethodName(TuckerMethod method);

// Parses a method name (as printed by TuckerMethodName, case-sensitive).
Result<TuckerMethod> ParseTuckerMethod(const std::string& name);

// Knobs shared across methods plus the per-method extras. Composition,
// mirroring DTuckerOptions: `tucker` holds the every-solver surface
// (ranks, iteration budget, tolerance, seed, validation, run_context).
struct MethodOptions {
  TuckerOptions tucker;
  // Worker threads for methods that support them (D-Tucker's approximation
  // phase). GEMM-level threading everywhere else is controlled by the
  // process-wide SetBlasThreads (linalg/blas.h), which callers set
  // separately.
  int num_threads = 1;
  // D-Tucker / RTD.
  Index oversampling = 5;
  int power_iterations = 1;
  // MACH.
  double mach_sample_rate = 0.1;
  // Tucker-ts / ttmts.
  double sketch_factor = 4.0;
  // Per-sweep convergence reporting for methods that support it (currently
  // D-Tucker); see DTuckerOptions::sweep_callback.
  std::function<void(const SweepTelemetry&)> sweep_callback;
  // Per-phase execution variants for D-Tucker (dtucker/adaptive/variants.h).
  // Ignored by the other methods. Defaults keep the static heuristics.
  adaptive::PhaseVariantPlan variants;

  Status Validate(const std::vector<Index>& shape) const;
};

// Deprecated spelling kept for one release while callers migrate.
using LegacyMethodOptions [[deprecated("use MethodOptions")]] = MethodOptions;

struct MethodRun {
  TuckerDecomposition decomposition;
  TuckerStats stats;
  // True relative squared reconstruction error against the input.
  double relative_error = 0.0;
  // Logical bytes of what the method must keep to answer: for
  // preprocessing methods, the compressed representation; for from-scratch
  // methods, the input tensor itself.
  std::size_t stored_bytes = 0;
};

// Runs `method` on `x`, measuring time, error, and storage.
// `measure_error` can be disabled for pure-timing sweeps (reconstruction
// is O(volume) and can dominate).
Result<MethodRun> RunTuckerMethod(TuckerMethod method, const Tensor& x,
                                  const MethodOptions& options,
                                  bool measure_error = true);

}  // namespace dtucker

#endif  // DTUCKER_BASELINES_REGISTRY_H_
