#include "baselines/rtd.h"

#include "common/timer.h"
#include "rsvd/rsvd.h"
#include "tensor/tensor_ops.h"
#include "tucker/tucker_als.h"

namespace dtucker {

Result<TuckerDecomposition> Rtd(const Tensor& x, const RtdOptions& options,
                                TuckerStats* stats) {
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), options.ranks));
  Timer timer;

  TuckerDecomposition dec;
  dec.factors.resize(static_cast<std::size_t>(x.order()));
  Tensor y = x;
  for (Index n = 0; n < x.order(); ++n) {
    // RTD is one-shot: no valid intermediate decomposition exists until
    // every mode is truncated, so an interruption is a plain error.
    if (options.run_context != nullptr) {
      DT_RETURN_NOT_OK(options.run_context->CheckStatus("rtd mode sketch"));
    }
    RsvdOptions rsvd;
    rsvd.rank = options.ranks[static_cast<std::size_t>(n)];
    rsvd.oversampling = options.oversampling;
    rsvd.power_iterations = options.power_iterations;
    rsvd.seed = options.seed + static_cast<uint64_t>(n) * 0x5851F42DULL;
    Matrix unf = Unfold(y, n);
    SvdResult svd = RandomizedSvd(unf, rsvd);
    y = ModeProduct(y, svd.u, n, Trans::kYes);
    dec.factors[static_cast<std::size_t>(n)] = std::move(svd.u);
  }
  dec.core = std::move(y);

  if (stats != nullptr) {
    stats->iterations = 1;
    stats->iterate_seconds = timer.Seconds();
    stats->error_history.push_back(0.0);  // Not tracked per-sweep.
  }
  return dec;
}

}  // namespace dtucker
