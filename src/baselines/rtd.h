// RTD: randomized Tucker decomposition (Che & Wei, Adv. Comput. Math 2019).
//
// A one-pass randomized algorithm: for each mode in sequence, an
// orthonormal basis of the (current) mode-n unfolding's range is found
// with a Gaussian sketch + power iterations, the tensor is projected, and
// the next mode proceeds on the shrunken tensor (randomized ST-HOSVD).
// No ALS refinement — fast, with an accuracy gap HOOI-based methods close.
#ifndef DTUCKER_BASELINES_RTD_H_
#define DTUCKER_BASELINES_RTD_H_

#include "common/status.h"
#include "tucker/tucker.h"

namespace dtucker {

struct RtdOptions : TuckerOptions {
  Index oversampling = 5;
  int power_iterations = 1;
};

Result<TuckerDecomposition> Rtd(const Tensor& x, const RtdOptions& options,
                                TuckerStats* stats = nullptr);

}  // namespace dtucker

#endif  // DTUCKER_BASELINES_RTD_H_
