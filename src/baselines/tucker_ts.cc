#include "baselines/tucker_ts.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"
#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/qr.h"
#include "sketch/tensor_sketch.h"
#include "tensor/tensor_ops.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {

namespace {

Index NextPowerOfTwo(Index n) {
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Least squares min_W ||B W - Y||_F via normal equations, with a ridge
// fallback when B^T B is numerically singular. Degenerate sketches (a
// property of the input data + seed, not a programming error) surface as a
// NumericalError Status instead of crashing.
Result<Matrix> SolveLeastSquaresViaNormal(const Matrix& b, const Matrix& y) {
  Matrix btb = Gram(b);
  Matrix bty = MultiplyTN(b, y);
  Result<Matrix> solved = SolveSpd(btb, bty);
  if (solved.ok()) return solved;
  // Ridge: scale-aware epsilon on the diagonal.
  double trace = 0.0;
  for (Index i = 0; i < btb.rows(); ++i) trace += btb(i, i);
  const double ridge =
      1e-12 * (trace > 0 ? trace / static_cast<double>(btb.rows()) : 1.0) +
      1e-300;
  for (Index i = 0; i < btb.rows(); ++i) btb(i, i) += ridge;
  Result<Matrix> retried = SolveLu(btb, bty);
  if (!retried.ok()) {
    return Status::NumericalError("sketched least squares solve failed: " +
                                  retried.status().ToString());
  }
  return retried;
}

// Shape of the product space of all modes but `skip`.
std::vector<Index> DimsExcept(const std::vector<Index>& shape, Index skip) {
  std::vector<Index> dims;
  for (std::size_t k = 0; k < shape.size(); ++k) {
    if (static_cast<Index>(k) != skip) dims.push_back(shape[k]);
  }
  return dims;
}

// Pointers to all factors but `skip`, ascending mode order (the Kronecker
// ordering TensorSketch::SketchKronecker expects).
std::vector<const Matrix*> FactorsExcept(const std::vector<Matrix>& factors,
                                         Index skip) {
  std::vector<const Matrix*> out;
  for (std::size_t k = 0; k < factors.size(); ++k) {
    if (static_cast<Index>(k) != skip) out.push_back(&factors[k]);
  }
  return out;
}

Index Product(const std::vector<Index>& v) {
  Index p = 1;
  for (Index d : v) p *= d;
  return p;
}

std::vector<Matrix> RandomOrthonormalFactors(const std::vector<Index>& shape,
                                             const std::vector<Index>& ranks,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors(shape.size());
  for (std::size_t n = 0; n < shape.size(); ++n) {
    factors[n] = QrOrthonormalize(
        Matrix::GaussianRandom(shape[n], ranks[n], rng));
  }
  return factors;
}

}  // namespace

Result<TuckerDecomposition> TuckerTs(const Tensor& x,
                                     const TuckerTsOptions& options,
                                     TuckerStats* stats) {
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), options.ranks));
  const Index order = x.order();
  const Index core_volume = Product(options.ranks);

  // --- Preprocessing: sketch the unfoldings and vec(X). ---
  Timer preprocess_timer;
  std::vector<TensorSketch> mode_sketches;
  std::vector<Matrix> sketched_unfoldings;  // s1 x I_n per mode.
  std::size_t sketch_bytes = 0;
  for (Index n = 0; n < order; ++n) {
    const Index needed = Product(DimsExcept(options.ranks, n));
    const Index rows_available = Product(DimsExcept(x.shape(), n));
    const Index s1 = std::min(
        rows_available,
        NextPowerOfTwo(static_cast<Index>(
            std::ceil(options.sketch_factor * static_cast<double>(needed)))));
    mode_sketches.emplace_back(DimsExcept(x.shape(), n), s1,
                               options.seed + 17 * (n + 1));
    sketched_unfoldings.push_back(
        mode_sketches.back().SketchUnfoldingTransposed(x, n));
    sketch_bytes += sketched_unfoldings.back().ByteSize();
  }
  // The core solve's normal equations cost O(s2 * (prod J)^2) per sweep,
  // so the core sketch uses a halved multiplier (floor 2x) relative to the
  // mode sketches.
  const Index s2 = std::min(
      x.size(),
      NextPowerOfTwo(static_cast<Index>(
          std::ceil(std::max(2.0, options.sketch_factor / 2) *
                    static_cast<double>(core_volume)))));
  TensorSketch core_sketch(x.shape(), s2, options.seed + 9901);
  // vec(X) in mode-0-fastest order is exactly the flat buffer.
  Matrix vec_x(x.size(), 1);
  std::copy(x.data(), x.data() + x.size(), vec_x.data());
  Matrix sketched_x = core_sketch.SketchExplicit(vec_x);  // s2 x 1.
  sketch_bytes += sketched_x.ByteSize();
  if (stats != nullptr) {
    stats->preprocess_seconds = preprocess_timer.Seconds();
    stats->working_bytes = sketch_bytes;
  }

  // --- ALS in sketch space. ---
  Timer iterate_timer;
  std::vector<Matrix> factors =
      RandomOrthonormalFactors(x.shape(), options.ranks, options.seed);
  Tensor core(options.ranks);
  {
    // Core must be initialized before the first factor solve (B = M G_(n)^T
    // is zero otherwise): one sketched least-squares fit against the
    // random factors.
    Matrix m0 = core_sketch.SketchKronecker(FactorsExcept(factors, -1));
    DT_ASSIGN_OR_RETURN(Matrix g,
                        SolveLeastSquaresViaNormal(m0, sketched_x));
    std::copy(g.data(), g.data() + core_volume, core.data());
  }
  // Pre-sweep interruption checkpoint: a trip keeps the last completed
  // sweep's factors/core (consistent by construction at the sweep boundary).
  StatusCode stop = StatusCode::kOk;
  double prev_proxy = -1.0;
  int it = 0;
  for (; it < options.max_iterations; ++it) {
    stop = RunContext::CheckOrOk(options.run_context);
    if (stop != StatusCode::kOk) break;
    for (Index n = 0; n < order; ++n) {
      // B = S_n ((x) A_k) G_(n)^T, then A_n^T from least squares.
      Matrix m = mode_sketches[static_cast<std::size_t>(n)].SketchKronecker(
          FactorsExcept(factors, n));
      Matrix gn = Unfold(core, n);
      Matrix b = MultiplyNT(m, gn);  // s1 x J_n.
      DT_ASSIGN_OR_RETURN(
          Matrix ant,
          SolveLeastSquaresViaNormal(
              b, sketched_unfoldings[static_cast<std::size_t>(n)]));
      factors[static_cast<std::size_t>(n)] = ant.Transposed();
    }
    // Core from the global sketch.
    Matrix m0 = core_sketch.SketchKronecker(FactorsExcept(factors, -1));
    DT_ASSIGN_OR_RETURN(
        Matrix g, SolveLeastSquaresViaNormal(m0, sketched_x));  // volume x 1.
    std::copy(g.data(), g.data() + core_volume, core.data());

    // Sketch-space residual as the convergence proxy.
    Matrix fitted = Multiply(m0, g);
    fitted -= sketched_x;
    const double proxy =
        fitted.FrobeniusNorm() / std::max(sketched_x.FrobeniusNorm(), 1e-300);
    if (stats != nullptr) stats->error_history.push_back(proxy);
    if (prev_proxy >= 0 && std::fabs(prev_proxy - proxy) < options.tolerance) {
      prev_proxy = proxy;
      ++it;
      break;
    }
    prev_proxy = proxy;
  }
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
    stats->completion = stop;
    if (stop != StatusCode::kOk) {
      stats->completion_detail = std::string(StatusCodeToString(stop)) +
                                 " during sketched ALS iteration";
    }
  }

  TuckerDecomposition dec;
  dec.factors = std::move(factors);
  dec.core = std::move(core);
  return dec;
}

Result<TuckerDecomposition> TuckerTtmts(const Tensor& x,
                                        const TuckerTsOptions& options,
                                        TuckerStats* stats) {
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), options.ranks));
  const Index order = x.order();
  const double x_norm2 = x.SquaredNorm();

  // --- Preprocessing: two independent sketch families per design (one for
  // factor updates, a second for the core to decorrelate the estimates).
  Timer preprocess_timer;
  std::vector<TensorSketch> s1_sketches;
  std::vector<Matrix> xs1;  // s1 x I_n.
  std::size_t sketch_bytes = 0;
  for (Index n = 0; n < order; ++n) {
    const Index needed = Product(DimsExcept(options.ranks, n));
    const Index rows_available = Product(DimsExcept(x.shape(), n));
    const Index s1 = std::min(
        rows_available,
        NextPowerOfTwo(static_cast<Index>(
            std::ceil(options.sketch_factor * static_cast<double>(needed)))));
    s1_sketches.emplace_back(DimsExcept(x.shape(), n), s1,
                             options.seed + 31 * (n + 1));
    xs1.push_back(s1_sketches.back().SketchUnfoldingTransposed(x, n));
    sketch_bytes += xs1.back().ByteSize();
  }
  // Second sketch for the core update on the last mode.
  const Index last = order - 1;
  const Index s2 = std::min(
      Product(DimsExcept(x.shape(), last)),
      NextPowerOfTwo(static_cast<Index>(
          std::ceil(options.sketch_factor * 2.0 *
                    static_cast<double>(Product(DimsExcept(options.ranks,
                                                           last)))))));
  TensorSketch core_sketch(DimsExcept(x.shape(), last), s2,
                           options.seed + 7777);
  Matrix xs2 = core_sketch.SketchUnfoldingTransposed(x, last);
  sketch_bytes += xs2.ByteSize();
  if (stats != nullptr) {
    stats->preprocess_seconds = preprocess_timer.Seconds();
    stats->working_bytes = sketch_bytes;
  }

  // --- Iterations. ---
  Timer iterate_timer;
  std::vector<Matrix> factors =
      RandomOrthonormalFactors(x.shape(), options.ranks, options.seed);
  Tensor core(options.ranks);
  StatusCode stop = StatusCode::kOk;
  double prev_error = 1.0;
  int it = 0;
  for (; it < options.max_iterations; ++it) {
    stop = RunContext::CheckOrOk(options.run_context);
    if (stop != StatusCode::kOk) break;
    for (Index n = 0; n < order; ++n) {
      // Y_(n) = X_(n) ((x) A_k) ~= xs1_n^T * (S_n ((x) A_k)); then leading
      // singular vectors.
      Matrix m = s1_sketches[static_cast<std::size_t>(n)].SketchKronecker(
          FactorsExcept(factors, n));
      Matrix y = MultiplyTN(xs1[static_cast<std::size_t>(n)], m);  // I_n x Jrest.
      factors[static_cast<std::size_t>(n)] = LeadingLeftSingularVectorsViaGram(
          y, options.ranks[static_cast<std::size_t>(n)]);
    }
    // Core via the second sketch on the last mode:
    // G_(last) = A_last^T X_(last) ((x)_{k != last} A_k)
    //          ~= A_last^T (xs2^T M2).
    Matrix m2 = core_sketch.SketchKronecker(FactorsExcept(factors, last));
    Matrix y = MultiplyTN(xs2, m2);                       // I_last x Jrest.
    Matrix g_last = MultiplyTN(factors[static_cast<std::size_t>(last)], y);
    core = Fold(g_last, last, options.ranks);

    const double error =
        OrthogonalTuckerRelativeError(x_norm2, core.SquaredNorm());
    if (stats != nullptr) stats->error_history.push_back(error);
    const double delta = std::fabs(prev_error - error);
    prev_error = error;
    if (delta < options.tolerance) {
      ++it;
      break;
    }
  }
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
    stats->completion = stop;
    if (stop != StatusCode::kOk) {
      stats->completion_detail = std::string(StatusCodeToString(stop)) +
                                 " during sketched TTM iteration";
    }
  }

  TuckerDecomposition dec;
  dec.factors = std::move(factors);
  dec.core = std::move(core);
  return dec;
}

}  // namespace dtucker
