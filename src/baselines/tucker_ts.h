// Tucker-ts and Tucker-ttmts (Malik & Becker, NeurIPS 2018): Tucker
// decomposition via TensorSketch.
//
// Preprocessing sketches the (transposed) mode-n unfoldings of the input
// once; ALS iterations then work entirely in sketch space:
//   * Tucker-ts solves the sketched least-squares problem
//       min_{A_n} || S_n ((x)_{k!=n} A_k) G_(n)^T A_n^T - S_n X_(n)^T ||
//     for each factor, and a second global sketch for the core.
//   * Tucker-ttmts instead approximates the TTM chain
//       X_(n) ((x)_{k!=n} A_k) ~= (S_n X_(n)^T)^T (S_n ((x) A_k))
//     and takes leading singular vectors — cheaper per iteration, another
//     notch of accuracy loss.
// Sketch sizes are rounded up to powers of two so the FFTs stay radix-2.
#ifndef DTUCKER_BASELINES_TUCKER_TS_H_
#define DTUCKER_BASELINES_TUCKER_TS_H_

#include "common/status.h"
#include "tucker/tucker.h"

namespace dtucker {

struct TuckerTsOptions : TuckerOptions {
  // Sketch size multiplier: s1 = factor * prod_{k != n} J_k per mode and
  // s2 = factor * prod_k J_k for the core sketch.
  double sketch_factor = 4.0;
};

Result<TuckerDecomposition> TuckerTs(const Tensor& x,
                                     const TuckerTsOptions& options,
                                     TuckerStats* stats = nullptr);

Result<TuckerDecomposition> TuckerTtmts(const Tensor& x,
                                        const TuckerTsOptions& options,
                                        TuckerStats* stats = nullptr);

}  // namespace dtucker

#endif  // DTUCKER_BASELINES_TUCKER_TS_H_
