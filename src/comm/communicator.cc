#include "comm/communicator.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace dtucker {

const char* CommTransportName(CommTransport transport) {
  switch (transport) {
    case CommTransport::kInProcess:
      return "inproc";
    case CommTransport::kFile:
      return "file";
    case CommTransport::kShm:
      return "shm";
  }
  return "unknown";
}

Result<CommTransport> ParseCommTransport(const std::string& name) {
  if (name == "inproc") return CommTransport::kInProcess;
  if (name == "file") return CommTransport::kFile;
  if (name == "shm") return CommTransport::kShm;
  return Status::InvalidArgument("unknown transport '" + name +
                                 "' (expected inproc, file, or shm)");
}

// Elementwise combine of a received buffer into the local accumulator.
// Takes the Combine enum as int because the enum is protected in
// Communicator; the transports cast from within member scope.
static void ApplyCombine(double* dst, const double* src, std::size_t n,
                         int combine_kind) {
  switch (combine_kind) {
    case 0:  // copy
      std::memcpy(dst, src, n * sizeof(double));
      break;
    case 1:  // add
      for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
      break;
    default:  // max
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
      break;
  }
}

namespace {

// One spin iteration that tells the core we are in a spin-wait loop
// without giving up the timeslice (the sub-microsecond phase of the
// adaptive wait).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Adaptive wait phases: pure spinning covers rendezvous latencies in the
// hundreds of nanoseconds (shm / in-process peers already in the
// collective), yielding covers peers descheduled on a busy box, and the
// exponential sleep bounds CPU burn when a peer is genuinely slow (file
// transport IO, a rank still in its compute phase). The RunContext/timeout
// poll runs at most every kCheckMask+1 spins so the hot phase stays cheap.
constexpr std::uint64_t kSpinPolls = 4096;
constexpr std::uint64_t kYieldPolls = 256;
constexpr std::uint64_t kCheckMask = 63;
constexpr unsigned kMaxSleepUs = 100;

}  // namespace

Status Communicator::WaitStep(AdaptiveWait* w) {
  const std::uint64_t poll = w->polls++;
  if (poll < kSpinPolls) {
    if ((poll & kCheckMask) == kCheckMask) {
      if (ctx_ != nullptr) {
        DT_RETURN_NOT_OK(ctx_->CheckStatus("communicator wait"));
      }
      if (w->timer.Seconds() > timeout_seconds_) {
        return Status::Unavailable(
            "communicator: peer did not arrive within " +
            std::to_string(timeout_seconds_) + "s (rank " +
            std::to_string(rank_) + " of " + std::to_string(size_) + ")");
      }
    }
    CpuRelax();
    return Status::OK();
  }
  if (ctx_ != nullptr) {
    DT_RETURN_NOT_OK(ctx_->CheckStatus("communicator wait"));
  }
  if (w->timer.Seconds() > timeout_seconds_) {
    return Status::Unavailable(
        "communicator: peer did not arrive within " +
        std::to_string(timeout_seconds_) + "s (rank " + std::to_string(rank_) +
        " of " + std::to_string(size_) + ")");
  }
  if (poll < kSpinPolls + kYieldPolls) {
    std::this_thread::yield();
    return Status::OK();
  }
  std::this_thread::sleep_for(std::chrono::microseconds(w->sleep_us));
  w->sleep_us = std::min(kMaxSleepUs, w->sleep_us * 2);
  return Status::OK();
}

void Communicator::FinishWait(const AdaptiveWait& w) {
  if (w.polls == 0) return;
  op_wait_ns_ += w.timer.Seconds() * 1e9;
}

Communicator::OpScope::OpScope(Communicator* comm, const char* op)
    : comm_(comm), outermost_(comm->current_op_ == nullptr) {
  if (outermost_) {
    comm_->current_op_ = op;
    comm_->op_wait_ns_ = 0.0;
  }
}

Communicator::OpScope::~OpScope() {
  if (!outermost_) return;
  const std::string op = comm_->current_op_;
  // Gauge (cumulative, what bench_shard reads) and histogram (the wait
  // *distribution* of this op kind) side by side.
  MetricGauge("comm.wait_ns." + op).Add(comm_->op_wait_ns_);
  MetricHistogram("comm.wait_ns." + op)
      .Record(static_cast<std::uint64_t>(comm_->op_wait_ns_));
  MetricCounter("comm.ops." + op).Add(1);
  comm_->current_op_ = nullptr;
  comm_->op_wait_ns_ = 0.0;
}

// Binomial reduce to rank 0: at distance d = 1, 2, 4, ... the rank with
// r % 2d == d ships its accumulator to r - d, which combines it on top of
// its own. The combine order at every receiver is ascending distance, a
// function of the rank count alone — the determinism contract of
// AllReduceSum.
Status Communicator::ReduceTree(double* data, std::size_t n, Combine combine) {
  const std::uint64_t op = NextTag();
  int step = 0;
  for (int d = 1; d < size_; d *= 2, ++step) {
    const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(step);
    if ((rank_ % (2 * d)) == d) {
      return SendTo(rank_ - d, tag, data, n);
    }
    if ((rank_ % (2 * d)) == 0 && rank_ + d < size_) {
      DT_RETURN_NOT_OK(RecvCombine(rank_ + d, tag, data, n, combine));
    }
  }
  return Status::OK();
}

Status Communicator::Broadcast(double* data, std::size_t n, int root) {
  if (size_ == 1) return Status::OK();
  TraceSpan span("comm.broadcast", NextFlowId(), FlowPhase());
  OpScope scope(this, "broadcast");
  DT_CHECK(root >= 0 && root < size_) << "broadcast root out of range";
  // Rotate so the algorithm always roots at virtual rank 0.
  const int vrank = (rank_ - root + size_) % size_;
  const std::uint64_t op = NextTag();
  int step = 0;
  // Iterative doubling: after the step at distance d, virtual ranks
  // [0, 2d) hold the data.
  for (int d = 1; d < size_; d *= 2, ++step) {
    const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(step);
    if (vrank < d && vrank + d < size_) {
      const int peer = (vrank + d + root) % size_;
      DT_RETURN_NOT_OK(SendTo(peer, tag, data, n));
    } else if (vrank >= d && vrank < 2 * d) {
      const int peer = (vrank - d + root) % size_;
      DT_RETURN_NOT_OK(RecvCombine(peer, tag, data, n, Combine::kCopy));
    }
  }
  return Status::OK();
}

Status Communicator::AllReduceSum(double* data, std::size_t n) {
  if (size_ == 1) return Status::OK();
  TraceSpan span("comm.allreduce_sum", NextFlowId(), FlowPhase());
  OpScope scope(this, "allreduce_sum");
  Timer timer;
  DT_RETURN_NOT_OK(ReduceTree(data, n, Combine::kAdd));
  DT_RETURN_NOT_OK(Broadcast(data, n, /*root=*/0));
  static Counter& reduces = MetricCounter("comm.reduces");
  static Counter& bytes = MetricCounter("comm.bytes_reduced");
  reduces.Add(1);
  bytes.Add(static_cast<std::uint64_t>(n) * sizeof(double));
  MetricGauge("comm.rank" + std::to_string(rank_) + ".reduce_ns")
      .Add(timer.Seconds() * 1e9);
  return Status::OK();
}

Status Communicator::AllReduceMax(double* data, std::size_t n) {
  if (size_ == 1) return Status::OK();
  TraceSpan span("comm.allreduce_max", NextFlowId(), FlowPhase());
  OpScope scope(this, "allreduce_max");
  Timer timer;
  DT_RETURN_NOT_OK(ReduceTree(data, n, Combine::kMax));
  DT_RETURN_NOT_OK(Broadcast(data, n, /*root=*/0));
  static Counter& reduces = MetricCounter("comm.reduces");
  static Counter& bytes = MetricCounter("comm.bytes_reduced");
  reduces.Add(1);
  bytes.Add(static_cast<std::uint64_t>(n) * sizeof(double));
  MetricGauge("comm.rank" + std::to_string(rank_) + ".reduce_ns")
      .Add(timer.Seconds() * 1e9);
  return Status::OK();
}

Status Communicator::Barrier() {
  if (size_ == 1) return Status::OK();
  TraceSpan span("comm.barrier", NextFlowId(), FlowPhase());
  OpScope scope(this, "barrier");
  double token = 0.0;
  DT_RETURN_NOT_OK(ReduceTree(&token, 1, Combine::kAdd));
  return Broadcast(&token, 1, /*root=*/0);
}

Status Communicator::Gather(const double* send, std::size_t n, double* recv,
                            int root) {
  TraceSpan span("comm.gather", NextFlowId(), FlowPhase());
  OpScope scope(this, "gather");
  DT_CHECK(root >= 0 && root < size_) << "gather root out of range";
  const std::uint64_t op = NextTag();
  if (rank_ == root) {
    for (int peer = 0; peer < size_; ++peer) {
      double* dst = recv + static_cast<std::size_t>(peer) * n;
      if (peer == root) {
        if (n > 0) std::memcpy(dst, send, n * sizeof(double));
        continue;
      }
      const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(peer % 64);
      DT_RETURN_NOT_OK(RecvCombine(peer, tag, dst, n, Combine::kCopy));
    }
    return Status::OK();
  }
  const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(rank_ % 64);
  return SendTo(root, tag, send, n);
}

Status Communicator::AllGatherV(const double* send,
                                const std::vector<std::size_t>& counts,
                                double* recv) {
  TraceSpan span("comm.allgatherv", NextFlowId(), FlowPhase());
  OpScope scope(this, "allgatherv");
  DT_CHECK_EQ(counts.size(), static_cast<std::size_t>(size_))
      << "one count per rank";
  std::size_t total = 0;
  std::vector<std::size_t> offsets(counts.size());
  for (std::size_t r = 0; r < counts.size(); ++r) {
    offsets[r] = total;
    total += counts[r];
  }
  const std::size_t mine = counts[static_cast<std::size_t>(rank_)];
  const std::uint64_t op = NextTag();
  if (rank_ == 0) {
    for (int peer = 0; peer < size_; ++peer) {
      double* dst = recv + offsets[static_cast<std::size_t>(peer)];
      const std::size_t cnt = counts[static_cast<std::size_t>(peer)];
      if (cnt == 0) continue;
      if (peer == 0) {
        std::memcpy(dst, send, cnt * sizeof(double));
        continue;
      }
      const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(peer % 64);
      DT_RETURN_NOT_OK(RecvCombine(peer, tag, dst, cnt, Combine::kCopy));
    }
  } else if (mine > 0) {
    const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(rank_ % 64);
    DT_RETURN_NOT_OK(SendTo(0, tag, send, mine));
  }
  return Broadcast(recv, total, /*root=*/0);
}

Result<std::int64_t> Communicator::EstimateClockOffsetNs(int rounds) {
  if (size_ == 1) return std::int64_t{0};
  // Tags for one peer live in [op*64, op*64+64): 2 per round + 1 for the
  // final offset ship caps the rounds at 31.
  rounds = std::max(1, std::min(rounds, 31));
  OpScope scope(this, "clock_sync");
  std::int64_t my_offset = 0;
  for (int peer = 1; peer < size_; ++peer) {
    // Every rank draws the tag so the sequence stays in lockstep even for
    // ranks that sit this peer's exchange out.
    const std::uint64_t op = NextTag();
    if (rank_ == 0) {
      double best_rtt = 0.0;
      double best_offset = 0.0;
      bool have_best = false;
      for (int round = 0; round < rounds; ++round) {
        const std::uint64_t tag =
            op * 64 + static_cast<std::uint64_t>(round) * 2;
        // TraceNowNs() values are whole nanoseconds well below 2^53, so
        // the double payload is exact.
        double t0 = static_cast<double>(TraceNowNs());
        DT_RETURN_NOT_OK(SendTo(peer, tag, &t0, 1));
        double t1 = 0.0;
        DT_RETURN_NOT_OK(RecvCombine(peer, tag + 1, &t1, 1, Combine::kCopy));
        const double t2 = static_cast<double>(TraceNowNs());
        const double rtt = t2 - t0;
        // Symmetric-delay model: the peer read its clock rtt/2 after t0,
        // so peer-axis time (t1) maps to root-axis time (t0 + rtt/2); the
        // minimum-RTT round has the least queueing asymmetry.
        if (!have_best || rtt < best_rtt) {
          best_rtt = rtt;
          best_offset = (t0 + rtt * 0.5) - t1;
          have_best = true;
        }
      }
      DT_RETURN_NOT_OK(SendTo(peer, op * 64 + 63, &best_offset, 1));
    } else if (rank_ == peer) {
      for (int round = 0; round < rounds; ++round) {
        const std::uint64_t tag =
            op * 64 + static_cast<std::uint64_t>(round) * 2;
        double t0 = 0.0;
        DT_RETURN_NOT_OK(RecvCombine(0, tag, &t0, 1, Combine::kCopy));
        double t1 = static_cast<double>(TraceNowNs());
        DT_RETURN_NOT_OK(SendTo(0, tag + 1, &t1, 1));
      }
      double offset = 0.0;
      DT_RETURN_NOT_OK(RecvCombine(0, op * 64 + 63, &offset, 1,
                                   Combine::kCopy));
      my_offset = static_cast<std::int64_t>(offset);
    }
  }
  return my_offset;
}

// ---------------------------------------------------------------------------
// In-process transport.
// ---------------------------------------------------------------------------

// One rendezvous slot per ordered (sender, receiver) pair. The protocol is
// a seqlock-style handshake on two atomics: the sender publishes its
// buffer pointer and stores tag+1 into `post` (release); the receiver
// spins for the matching post (acquire), consumes the data, and stores
// tag+1 into `ack` (release); the sender spins for the ack (acquire) and
// clears `post` for the next operation on this pair. Lock-free: no mutex,
// no allocation, one cache line per pair.
struct alignas(64) InProcessSlot {
  std::atomic<std::uint64_t> post{0};
  std::atomic<std::uint64_t> ack{0};
  const double* data = nullptr;
  std::size_t n = 0;
};

struct InProcessGroup::State {
  int size = 0;
  std::vector<InProcessSlot> slots;  // size * size, sender-major.
  InProcessSlot& slot(int sender, int receiver) {
    return slots[static_cast<std::size_t>(sender) *
                     static_cast<std::size_t>(size) +
                 static_cast<std::size_t>(receiver)];
  }
};

namespace {

class InProcessCommunicator : public Communicator {
 public:
  InProcessCommunicator(InProcessGroup::State* state, int rank, int size)
      : Communicator(rank, size), state_(state) {}

 protected:
  Status SendTo(int peer, std::uint64_t tag, const double* data,
                std::size_t n) override {
    InProcessSlot& s = state_->slot(rank(), peer);
    s.data = data;
    s.n = n;
    s.post.store(tag + 1, std::memory_order_release);
    AdaptiveWait wait;
    while (s.ack.load(std::memory_order_acquire) != tag + 1) {
      DT_RETURN_NOT_OK(WaitStep(&wait));
    }
    FinishWait(wait);
    s.post.store(0, std::memory_order_relaxed);
    return Status::OK();
  }

  Status RecvCombine(int peer, std::uint64_t tag, double* data, std::size_t n,
                     Combine combine) override {
    InProcessSlot& s = state_->slot(peer, rank());
    AdaptiveWait wait;
    while (s.post.load(std::memory_order_acquire) != tag + 1) {
      DT_RETURN_NOT_OK(WaitStep(&wait));
    }
    FinishWait(wait);
    DT_CHECK_EQ(s.n, n) << "in-process rendezvous size mismatch";
    ApplyCombine(data, s.data, n, static_cast<int>(combine));
    s.ack.store(tag + 1, std::memory_order_release);
    return Status::OK();
  }

 private:
  InProcessGroup::State* state_;
};

}  // namespace

std::shared_ptr<InProcessGroup> InProcessGroup::Create(int size) {
  DT_CHECK_GE(size, 1) << "in-process group needs at least one rank";
  auto group = std::shared_ptr<InProcessGroup>(new InProcessGroup());
  group->state_ = new State();
  group->state_->size = size;
  group->state_->slots =
      std::vector<InProcessSlot>(static_cast<std::size_t>(size) *
                                 static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    group->comms_.emplace_back(
        std::make_unique<InProcessCommunicator>(group->state_, r, size));
  }
  return group;
}

Communicator* InProcessGroup::comm(int rank) {
  DT_CHECK(rank >= 0 && rank < static_cast<int>(comms_.size()))
      << "rank out of range";
  return comms_[static_cast<std::size_t>(rank)].get();
}

InProcessGroup::~InProcessGroup() {
  comms_.clear();
  delete state_;
}

// ---------------------------------------------------------------------------
// Multi-process file transport.
// ---------------------------------------------------------------------------

namespace {

// Payloads are published as dir/m_<tag>_<sender>_<receiver> via write-to-
// temp + rename (atomic on POSIX), so a reader never observes a partial
// file. The receiver acknowledges with dir/a_<tag>_<sender>_<receiver>;
// the sender then deletes both, keeping the directory bounded regardless
// of how many collectives run. Waiting is the shared adaptive strategy:
// a stat/open probe costs a syscall, but the spin phase's probes land in
// the dentry cache, so short rendezvous stay far below the old fixed
// 100 µs sleep while long waits still back off to sleeping.
class FileCommunicator : public Communicator {
 public:
  FileCommunicator(std::string dir, int rank, int size)
      : Communicator(rank, size), dir_(std::move(dir)) {}

 protected:
  Status SendTo(int peer, std::uint64_t tag, const double* data,
                std::size_t n) override {
    const std::string payload = PayloadPath(tag, rank(), peer);
    const std::string tmp = payload + ".tmp" + std::to_string(rank());
    {
      FILE* f = std::fopen(tmp.c_str(), "wb");
      if (f == nullptr) {
        return Status::IoError("file communicator: cannot create " + tmp);
      }
      const std::size_t written = std::fwrite(data, sizeof(double), n, f);
      const int rc = std::fclose(f);
      if (written != n || rc != 0) {
        std::remove(tmp.c_str());
        return Status::IoError("file communicator: short write to " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), payload.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IoError("file communicator: cannot publish " + payload);
    }
    // Wait for the receiver's ack, then reclaim both files.
    const std::string ack = AckPath(tag, rank(), peer);
    AdaptiveWait wait;
    for (;;) {
      struct stat st;
      if (::stat(ack.c_str(), &st) == 0) break;
      DT_RETURN_NOT_OK(WaitStep(&wait));
    }
    FinishWait(wait);
    std::remove(payload.c_str());
    std::remove(ack.c_str());
    return Status::OK();
  }

  Status RecvCombine(int peer, std::uint64_t tag, double* data, std::size_t n,
                     Combine combine) override {
    const std::string payload = PayloadPath(tag, peer, rank());
    FILE* f = nullptr;
    AdaptiveWait wait;
    for (;;) {
      f = std::fopen(payload.c_str(), "rb");
      if (f != nullptr) break;
      DT_RETURN_NOT_OK(WaitStep(&wait));
    }
    FinishWait(wait);
    if (scratch_.size() < n) scratch_.resize(n);
    const std::size_t read = std::fread(scratch_.data(), sizeof(double), n, f);
    std::fclose(f);
    if (read != n) {
      return Status::IoError("file communicator: short read from " + payload);
    }
    ApplyCombine(data, scratch_.data(), n, static_cast<int>(combine));
    // Publish the ack (atomically, same temp+rename discipline).
    const std::string ack = AckPath(tag, peer, rank());
    const std::string tmp = ack + ".tmp" + std::to_string(rank());
    FILE* af = std::fopen(tmp.c_str(), "wb");
    if (af == nullptr || std::fclose(af) != 0 ||
        std::rename(tmp.c_str(), ack.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IoError("file communicator: cannot ack " + ack);
    }
    return Status::OK();
  }

 private:
  std::string PayloadPath(std::uint64_t tag, int sender, int receiver) const {
    return dir_ + "/m_" + std::to_string(tag) + "_" + std::to_string(sender) +
           "_" + std::to_string(receiver);
  }
  std::string AckPath(std::uint64_t tag, int sender, int receiver) const {
    return dir_ + "/a_" + std::to_string(tag) + "_" + std::to_string(sender) +
           "_" + std::to_string(receiver);
  }

  std::string dir_;
  std::vector<double> scratch_;
};

}  // namespace

Result<std::unique_ptr<Communicator>> CreateFileCommunicator(
    const std::string& dir, int rank, int size) {
  if (size < 1) {
    return Status::InvalidArgument("file communicator: size must be >= 1");
  }
  if (rank < 0 || rank >= size) {
    return Status::InvalidArgument("file communicator: rank out of range");
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("file communicator: cannot create directory " +
                           dir);
  }
  return std::unique_ptr<Communicator>(
      std::make_unique<FileCommunicator>(dir, rank, size));
}

// ---------------------------------------------------------------------------
// Multi-process shared-memory transport.
// ---------------------------------------------------------------------------

namespace {

// Payload capacity of one mailbox, in doubles (64 KiB). Messages larger
// than this stream through the mailbox in chunks under the generation
// protocol below; the pipeline costs one extra rendezvous per 64 KiB,
// which is noise next to the memcpy itself.
constexpr std::size_t kShmChunkDoubles = 8192;

// One mailbox per ordered (sender, receiver) edge. The protocol is a pair
// of monotonically increasing generation counters: `post` counts chunks
// the sender has published, `ack` counts chunks the receiver has consumed.
// The sender waits for ack == post (mailbox free), writes the header
// fields + payload, and publishes with post = post + 1 (release); the
// receiver waits for post == ack + 1 (acquire), consumes, and releases the
// mailbox with ack = ack + 1 (release). The counters never reset, so a
// chunk can never be confused with its predecessor (no ABA), and each
// ordered edge carries at most one in-flight collective message at a time
// (the collectives' tag sequencing guarantees this), so FIFO per edge is
// all the matching needed — `tag` is carried only to assert the protocol.
//
// The struct lives in shared memory: everything is trivially copyable,
// lock-free atomics (enforced below), and position-independent (no
// pointers). The counters sit on separate cache lines so the sender
// polling `ack` does not contend with the receiver polling `post`.
struct ShmMailbox {
  alignas(64) std::atomic<std::uint64_t> post;
  alignas(64) std::atomic<std::uint64_t> ack;
  alignas(64) std::uint64_t tag;
  std::uint64_t total_n;   // Doubles in the whole message.
  std::uint64_t chunk_n;   // Doubles in this chunk.
  double payload[kShmChunkDoubles];
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm transport needs lock-free 64-bit atomics");
static_assert(std::is_trivially_copyable_v<std::uint64_t>);

constexpr std::uint64_t kShmMagic = 0x44544b5253484d31ull;  // "DTKRSHM1"

struct ShmHeader {
  std::uint64_t magic;
  std::uint32_t size;               // Rank count the creator laid out.
  std::atomic<std::uint32_t> ready; // 1 once the segment is initialized.
};

std::size_t ShmSegmentBytes(int size) {
  return sizeof(ShmHeader) +
         static_cast<std::size_t>(size) * static_cast<std::size_t>(size) *
             sizeof(ShmMailbox);
}

class ShmCommunicator : public Communicator {
 public:
  ShmCommunicator(std::string name, int rank, int size, void* mem,
                  std::size_t bytes)
      : Communicator(rank, size),
        name_(std::move(name)),
        mem_(mem),
        bytes_(bytes) {}

  ~ShmCommunicator() override {
    ::munmap(mem_, bytes_);
    // Rank 0 owns the name. Unlinking while peers are still mapped is
    // safe: POSIX keeps the segment alive until the last mapping drops.
    if (rank() == 0) ::shm_unlink(name_.c_str());
  }

 protected:
  Status SendTo(int peer, std::uint64_t tag, const double* data,
                std::size_t n) override {
    ShmMailbox& box = mailbox(rank(), peer);
    const std::size_t nchunks = std::max<std::size_t>(
        1, (n + kShmChunkDoubles - 1) / kShmChunkDoubles);
    std::size_t off = 0;
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::uint64_t gen = box.post.load(std::memory_order_relaxed);
      AdaptiveWait wait;
      while (box.ack.load(std::memory_order_acquire) != gen) {
        DT_RETURN_NOT_OK(WaitStep(&wait));
      }
      FinishWait(wait);
      const std::size_t len = std::min(kShmChunkDoubles, n - off);
      box.tag = tag;
      box.total_n = n;
      box.chunk_n = len;
      if (len > 0) {
        std::memcpy(box.payload, data + off, len * sizeof(double));
      }
      off += len;
      box.post.store(gen + 1, std::memory_order_release);
    }
    return Status::OK();
  }

  Status RecvCombine(int peer, std::uint64_t tag, double* data, std::size_t n,
                     Combine combine) override {
    ShmMailbox& box = mailbox(peer, rank());
    const std::size_t nchunks = std::max<std::size_t>(
        1, (n + kShmChunkDoubles - 1) / kShmChunkDoubles);
    std::size_t off = 0;
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::uint64_t gen = box.ack.load(std::memory_order_relaxed);
      AdaptiveWait wait;
      while (box.post.load(std::memory_order_acquire) != gen + 1) {
        DT_RETURN_NOT_OK(WaitStep(&wait));
      }
      FinishWait(wait);
      DT_CHECK_EQ(box.tag, tag) << "shm rendezvous tag mismatch";
      DT_CHECK_EQ(box.total_n, n) << "shm rendezvous size mismatch";
      const std::size_t len = static_cast<std::size_t>(box.chunk_n);
      if (len > 0) {
        ApplyCombine(data + off, box.payload, len, static_cast<int>(combine));
      }
      off += len;
      box.ack.store(gen + 1, std::memory_order_release);
    }
    return Status::OK();
  }

 private:
  ShmMailbox& mailbox(int sender, int receiver) {
    auto* base = reinterpret_cast<ShmMailbox*>(
        static_cast<char*>(mem_) + sizeof(ShmHeader));
    return base[static_cast<std::size_t>(sender) *
                    static_cast<std::size_t>(size()) +
                static_cast<std::size_t>(receiver)];
  }

  std::string name_;
  void* mem_;
  std::size_t bytes_;
};

}  // namespace

Result<std::unique_ptr<Communicator>> CreateShmCommunicator(
    const std::string& name, int rank, int size,
    double setup_timeout_seconds) {
  if (size < 1) {
    return Status::InvalidArgument("shm communicator: size must be >= 1");
  }
  if (rank < 0 || rank >= size) {
    return Status::InvalidArgument("shm communicator: rank out of range");
  }
  if (name.empty() || name[0] != '/' ||
      name.find('/', 1) != std::string::npos) {
    return Status::InvalidArgument(
        "shm communicator: name must start with '/' and contain no other "
        "slashes (got '" + name + "')");
  }
  const std::size_t bytes = ShmSegmentBytes(size);
  int fd = -1;
  if (rank == 0) {
    // Reclaim any stale segment from a crashed prior run, then create
    // fresh so no peer can attach to a half-initialized leftover.
    ::shm_unlink(name.c_str());
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      return Status::IoError("shm communicator: shm_open(create " + name +
                             ") failed: " + std::strerror(errno));
    }
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      ::close(fd);
      ::shm_unlink(name.c_str());
      return Status::IoError("shm communicator: ftruncate(" + name +
                             ") failed: " + std::strerror(errno));
    }
  } else {
    // Peers poll until rank 0 has created the segment (bounded).
    Timer timer;
    for (;;) {
      fd = ::shm_open(name.c_str(), O_RDWR, 0600);
      if (fd >= 0) break;
      if (errno != ENOENT) {
        return Status::IoError("shm communicator: shm_open(" + name +
                               ") failed: " + std::strerror(errno));
      }
      if (timer.Seconds() > setup_timeout_seconds) {
        return Status::Unavailable(
            "shm communicator: rank 0 did not create segment " + name +
            " within " + std::to_string(setup_timeout_seconds) + "s");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    // The creator may not have ftruncate'd yet; wait for the full size.
    Timer size_timer;
    for (;;) {
      struct stat st;
      if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return Status::IoError("shm communicator: fstat(" + name +
                               ") failed: " + std::strerror(errno));
      }
      if (static_cast<std::size_t>(st.st_size) >= bytes) break;
      if (size_timer.Seconds() > setup_timeout_seconds) {
        ::close(fd);
        return Status::Unavailable(
            "shm communicator: segment " + name + " never reached its size");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  void* mem =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // The mapping keeps the segment referenced.
  if (mem == MAP_FAILED) {
    if (rank == 0) ::shm_unlink(name.c_str());
    return Status::IoError("shm communicator: mmap(" + name +
                           ") failed: " + std::strerror(errno));
  }
  auto* header = static_cast<ShmHeader*>(mem);
  if (rank == 0) {
    // ftruncate zero-fills, which is a valid initial state for every
    // mailbox (post == ack == 0: empty); only the header needs writing.
    header->magic = kShmMagic;
    header->size = static_cast<std::uint32_t>(size);
    header->ready.store(1, std::memory_order_release);
  } else {
    Timer timer;
    while (header->ready.load(std::memory_order_acquire) != 1) {
      if (timer.Seconds() > setup_timeout_seconds) {
        ::munmap(mem, bytes);
        return Status::Unavailable("shm communicator: segment " + name +
                                   " was never marked ready by rank 0");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (header->magic != kShmMagic ||
        header->size != static_cast<std::uint32_t>(size)) {
      ::munmap(mem, bytes);
      return Status::InvalidArgument(
          "shm communicator: segment " + name +
          " belongs to a different group layout (magic/size mismatch)");
    }
  }
  return std::unique_ptr<Communicator>(
      std::make_unique<ShmCommunicator>(name, rank, size, mem, bytes));
}

}  // namespace dtucker
