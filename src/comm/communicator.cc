#include "comm/communicator.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace dtucker {

// Elementwise combine of a received buffer into the local accumulator.
// Takes the Combine enum as int because the enum is protected in
// Communicator; the transports cast from within member scope.
static void ApplyCombine(double* dst, const double* src, std::size_t n,
                         int combine_kind) {
  switch (combine_kind) {
    case 0:  // copy
      std::memcpy(dst, src, n * sizeof(double));
      break;
    case 1:  // add
      for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
      break;
    default:  // max
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
      break;
  }
}

Status Communicator::WaitCheck(double elapsed_seconds) const {
  if (ctx_ != nullptr) {
    DT_RETURN_NOT_OK(ctx_->CheckStatus("communicator wait"));
  }
  if (elapsed_seconds > timeout_seconds_) {
    return Status::Unavailable(
        "communicator: peer did not arrive within " +
        std::to_string(timeout_seconds_) + "s (rank " + std::to_string(rank_) +
        " of " + std::to_string(size_) + ")");
  }
  std::this_thread::yield();
  return Status::OK();
}

// Binomial reduce to rank 0: at distance d = 1, 2, 4, ... the rank with
// r % 2d == d ships its accumulator to r - d, which combines it on top of
// its own. The combine order at every receiver is ascending distance, a
// function of the rank count alone — the determinism contract of
// AllReduceSum.
Status Communicator::ReduceTree(double* data, std::size_t n, Combine combine) {
  const std::uint64_t op = NextTag();
  int step = 0;
  for (int d = 1; d < size_; d *= 2, ++step) {
    const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(step);
    if ((rank_ % (2 * d)) == d) {
      return SendTo(rank_ - d, tag, data, n);
    }
    if ((rank_ % (2 * d)) == 0 && rank_ + d < size_) {
      DT_RETURN_NOT_OK(RecvCombine(rank_ + d, tag, data, n, combine));
    }
  }
  return Status::OK();
}

Status Communicator::Broadcast(double* data, std::size_t n, int root) {
  if (size_ == 1) return Status::OK();
  DT_TRACE_SPAN("comm.broadcast");
  DT_CHECK(root >= 0 && root < size_) << "broadcast root out of range";
  // Rotate so the algorithm always roots at virtual rank 0.
  const int vrank = (rank_ - root + size_) % size_;
  const std::uint64_t op = NextTag();
  int step = 0;
  // Iterative doubling: after the step at distance d, virtual ranks
  // [0, 2d) hold the data.
  for (int d = 1; d < size_; d *= 2, ++step) {
    const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(step);
    if (vrank < d && vrank + d < size_) {
      const int peer = (vrank + d + root) % size_;
      DT_RETURN_NOT_OK(SendTo(peer, tag, data, n));
    } else if (vrank >= d && vrank < 2 * d) {
      const int peer = (vrank - d + root) % size_;
      DT_RETURN_NOT_OK(RecvCombine(peer, tag, data, n, Combine::kCopy));
    }
  }
  return Status::OK();
}

Status Communicator::AllReduceSum(double* data, std::size_t n) {
  if (size_ == 1) return Status::OK();
  DT_TRACE_SPAN("comm.allreduce_sum");
  Timer timer;
  DT_RETURN_NOT_OK(ReduceTree(data, n, Combine::kAdd));
  DT_RETURN_NOT_OK(Broadcast(data, n, /*root=*/0));
  static Counter& reduces = MetricCounter("comm.reduces");
  static Counter& bytes = MetricCounter("comm.bytes_reduced");
  reduces.Add(1);
  bytes.Add(static_cast<std::uint64_t>(n) * sizeof(double));
  MetricGauge("comm.rank" + std::to_string(rank_) + ".reduce_ns")
      .Add(timer.Seconds() * 1e9);
  return Status::OK();
}

Status Communicator::AllReduceMax(double* data, std::size_t n) {
  if (size_ == 1) return Status::OK();
  DT_TRACE_SPAN("comm.allreduce_max");
  Timer timer;
  DT_RETURN_NOT_OK(ReduceTree(data, n, Combine::kMax));
  DT_RETURN_NOT_OK(Broadcast(data, n, /*root=*/0));
  static Counter& reduces = MetricCounter("comm.reduces");
  static Counter& bytes = MetricCounter("comm.bytes_reduced");
  reduces.Add(1);
  bytes.Add(static_cast<std::uint64_t>(n) * sizeof(double));
  MetricGauge("comm.rank" + std::to_string(rank_) + ".reduce_ns")
      .Add(timer.Seconds() * 1e9);
  return Status::OK();
}

Status Communicator::Barrier() {
  if (size_ == 1) return Status::OK();
  DT_TRACE_SPAN("comm.barrier");
  double token = 0.0;
  DT_RETURN_NOT_OK(ReduceTree(&token, 1, Combine::kAdd));
  return Broadcast(&token, 1, /*root=*/0);
}

Status Communicator::Gather(const double* send, std::size_t n, double* recv,
                            int root) {
  DT_TRACE_SPAN("comm.gather");
  DT_CHECK(root >= 0 && root < size_) << "gather root out of range";
  const std::uint64_t op = NextTag();
  if (rank_ == root) {
    for (int peer = 0; peer < size_; ++peer) {
      double* dst = recv + static_cast<std::size_t>(peer) * n;
      if (peer == root) {
        if (n > 0) std::memcpy(dst, send, n * sizeof(double));
        continue;
      }
      const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(peer % 64);
      DT_RETURN_NOT_OK(RecvCombine(peer, tag, dst, n, Combine::kCopy));
    }
    return Status::OK();
  }
  const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(rank_ % 64);
  return SendTo(root, tag, send, n);
}

Status Communicator::AllGatherV(const double* send,
                                const std::vector<std::size_t>& counts,
                                double* recv) {
  DT_TRACE_SPAN("comm.allgatherv");
  DT_CHECK_EQ(counts.size(), static_cast<std::size_t>(size_))
      << "one count per rank";
  std::size_t total = 0;
  std::vector<std::size_t> offsets(counts.size());
  for (std::size_t r = 0; r < counts.size(); ++r) {
    offsets[r] = total;
    total += counts[r];
  }
  const std::size_t mine = counts[static_cast<std::size_t>(rank_)];
  const std::uint64_t op = NextTag();
  if (rank_ == 0) {
    for (int peer = 0; peer < size_; ++peer) {
      double* dst = recv + offsets[static_cast<std::size_t>(peer)];
      const std::size_t cnt = counts[static_cast<std::size_t>(peer)];
      if (cnt == 0) continue;
      if (peer == 0) {
        std::memcpy(dst, send, cnt * sizeof(double));
        continue;
      }
      const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(peer % 64);
      DT_RETURN_NOT_OK(RecvCombine(peer, tag, dst, cnt, Combine::kCopy));
    }
  } else if (mine > 0) {
    const std::uint64_t tag = op * 64 + static_cast<std::uint64_t>(rank_ % 64);
    DT_RETURN_NOT_OK(SendTo(0, tag, send, mine));
  }
  return Broadcast(recv, total, /*root=*/0);
}

// ---------------------------------------------------------------------------
// In-process transport.
// ---------------------------------------------------------------------------

// One rendezvous slot per ordered (sender, receiver) pair. The protocol is
// a seqlock-style handshake on two atomics: the sender publishes its
// buffer pointer and stores tag+1 into `post` (release); the receiver
// spins for the matching post (acquire), consumes the data, and stores
// tag+1 into `ack` (release); the sender spins for the ack (acquire) and
// clears `post` for the next operation on this pair. Lock-free: no mutex,
// no allocation, one cache line per pair.
struct alignas(64) InProcessSlot {
  std::atomic<std::uint64_t> post{0};
  std::atomic<std::uint64_t> ack{0};
  const double* data = nullptr;
  std::size_t n = 0;
};

struct InProcessGroup::State {
  int size = 0;
  std::vector<InProcessSlot> slots;  // size * size, sender-major.
  InProcessSlot& slot(int sender, int receiver) {
    return slots[static_cast<std::size_t>(sender) *
                     static_cast<std::size_t>(size) +
                 static_cast<std::size_t>(receiver)];
  }
};

namespace {

class InProcessCommunicator : public Communicator {
 public:
  InProcessCommunicator(InProcessGroup::State* state, int rank, int size)
      : Communicator(rank, size), state_(state) {}

 protected:
  Status SendTo(int peer, std::uint64_t tag, const double* data,
                std::size_t n) override {
    InProcessSlot& s = state_->slot(rank(), peer);
    s.data = data;
    s.n = n;
    s.post.store(tag + 1, std::memory_order_release);
    Timer timer;
    while (s.ack.load(std::memory_order_acquire) != tag + 1) {
      DT_RETURN_NOT_OK(WaitCheck(timer.Seconds()));
    }
    s.post.store(0, std::memory_order_relaxed);
    return Status::OK();
  }

  Status RecvCombine(int peer, std::uint64_t tag, double* data, std::size_t n,
                     Combine combine) override {
    InProcessSlot& s = state_->slot(peer, rank());
    Timer timer;
    while (s.post.load(std::memory_order_acquire) != tag + 1) {
      DT_RETURN_NOT_OK(WaitCheck(timer.Seconds()));
    }
    DT_CHECK_EQ(s.n, n) << "in-process rendezvous size mismatch";
    ApplyCombine(data, s.data, n, static_cast<int>(combine));
    s.ack.store(tag + 1, std::memory_order_release);
    return Status::OK();
  }

 private:
  InProcessGroup::State* state_;
};

}  // namespace

std::shared_ptr<InProcessGroup> InProcessGroup::Create(int size) {
  DT_CHECK_GE(size, 1) << "in-process group needs at least one rank";
  auto group = std::shared_ptr<InProcessGroup>(new InProcessGroup());
  group->state_ = new State();
  group->state_->size = size;
  group->state_->slots =
      std::vector<InProcessSlot>(static_cast<std::size_t>(size) *
                                 static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    group->comms_.emplace_back(
        std::make_unique<InProcessCommunicator>(group->state_, r, size));
  }
  return group;
}

Communicator* InProcessGroup::comm(int rank) {
  DT_CHECK(rank >= 0 && rank < static_cast<int>(comms_.size()))
      << "rank out of range";
  return comms_[static_cast<std::size_t>(rank)].get();
}

InProcessGroup::~InProcessGroup() {
  comms_.clear();
  delete state_;
}

// ---------------------------------------------------------------------------
// Multi-process file transport.
// ---------------------------------------------------------------------------

namespace {

// Payloads are published as dir/m_<tag>_<sender>_<receiver> via write-to-
// temp + rename (atomic on POSIX), so a reader never observes a partial
// file. The receiver acknowledges with dir/a_<tag>_<sender>_<receiver>;
// the sender then deletes both, keeping the directory bounded regardless
// of how many collectives run.
class FileCommunicator : public Communicator {
 public:
  FileCommunicator(std::string dir, int rank, int size)
      : Communicator(rank, size), dir_(std::move(dir)) {}

 protected:
  Status SendTo(int peer, std::uint64_t tag, const double* data,
                std::size_t n) override {
    const std::string payload = PayloadPath(tag, rank(), peer);
    const std::string tmp = payload + ".tmp" + std::to_string(rank());
    {
      FILE* f = std::fopen(tmp.c_str(), "wb");
      if (f == nullptr) {
        return Status::IoError("file communicator: cannot create " + tmp);
      }
      const std::size_t written = std::fwrite(data, sizeof(double), n, f);
      const int rc = std::fclose(f);
      if (written != n || rc != 0) {
        std::remove(tmp.c_str());
        return Status::IoError("file communicator: short write to " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), payload.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IoError("file communicator: cannot publish " + payload);
    }
    // Wait for the receiver's ack, then reclaim both files.
    const std::string ack = AckPath(tag, rank(), peer);
    Timer timer;
    for (;;) {
      struct stat st;
      if (::stat(ack.c_str(), &st) == 0) break;
      DT_RETURN_NOT_OK(WaitCheckSleep(timer.Seconds()));
    }
    std::remove(payload.c_str());
    std::remove(ack.c_str());
    return Status::OK();
  }

  Status RecvCombine(int peer, std::uint64_t tag, double* data, std::size_t n,
                     Combine combine) override {
    const std::string payload = PayloadPath(tag, peer, rank());
    Timer timer;
    FILE* f = nullptr;
    for (;;) {
      f = std::fopen(payload.c_str(), "rb");
      if (f != nullptr) break;
      DT_RETURN_NOT_OK(WaitCheckSleep(timer.Seconds()));
    }
    if (scratch_.size() < n) scratch_.resize(n);
    const std::size_t read = std::fread(scratch_.data(), sizeof(double), n, f);
    std::fclose(f);
    if (read != n) {
      return Status::IoError("file communicator: short read from " + payload);
    }
    ApplyCombine(data, scratch_.data(), n, static_cast<int>(combine));
    // Publish the ack (atomically, same temp+rename discipline).
    const std::string ack = AckPath(tag, peer, rank());
    const std::string tmp = ack + ".tmp" + std::to_string(rank());
    FILE* af = std::fopen(tmp.c_str(), "wb");
    if (af == nullptr || std::fclose(af) != 0 ||
        std::rename(tmp.c_str(), ack.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IoError("file communicator: cannot ack " + ack);
    }
    return Status::OK();
  }

 private:
  // The file transport polls at sleep granularity instead of yield: a
  // stat/open probe already costs a syscall, so a short sleep keeps the
  // poll loop from saturating the filesystem while staying well under the
  // latency of the collectives' payload IO.
  Status WaitCheckSleep(double elapsed_seconds) const {
    DT_RETURN_NOT_OK(WaitCheck(elapsed_seconds));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return Status::OK();
  }

  std::string PayloadPath(std::uint64_t tag, int sender, int receiver) const {
    return dir_ + "/m_" + std::to_string(tag) + "_" + std::to_string(sender) +
           "_" + std::to_string(receiver);
  }
  std::string AckPath(std::uint64_t tag, int sender, int receiver) const {
    return dir_ + "/a_" + std::to_string(tag) + "_" + std::to_string(sender) +
           "_" + std::to_string(receiver);
  }

  std::string dir_;
  std::vector<double> scratch_;
};

}  // namespace

Result<std::unique_ptr<Communicator>> CreateFileCommunicator(
    const std::string& dir, int rank, int size) {
  if (size < 1) {
    return Status::InvalidArgument("file communicator: size must be >= 1");
  }
  if (rank < 0 || rank >= size) {
    return Status::InvalidArgument("file communicator: rank out of range");
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("file communicator: cannot create directory " +
                           dir);
  }
  return std::unique_ptr<Communicator>(
      std::make_unique<FileCommunicator>(dir, rank, size));
}

}  // namespace dtucker
