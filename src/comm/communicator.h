// Communicator: rank-to-rank collectives for sharded D-Tucker.
//
// D-Tucker's distributed structure only ever needs small collectives: the
// approximation phase is embarrassingly parallel over slices, and the
// initialization/iteration phases exchange Gram matrices, projected-core
// slabs, and scalars — never the raw tensor. A Communicator provides
// exactly that surface for a fixed group of `size` ranks:
//
//   Barrier        rendezvous of every rank
//   Broadcast      root's buffer replicated to all ranks
//   AllReduceSum   elementwise sum with a *deterministic* binomial tree
//   AllReduceMax   elementwise max (order-free, bitwise for non-NaN input)
//   Gather         concatenation of per-rank buffers on the root
//   AllGatherV     variable-count gather replicated to all ranks
//
// Determinism contract: AllReduceSum combines rank contributions through a
// fixed binomial tree over rank indices — at distance d = 1, 2, 4, ...,
// rank r with r % 2d == d sends its accumulator to rank r - d, which adds
// it on top of its own (receiver += sender, in ascending-distance order).
// The addition order therefore depends only on the rank count, never on
// timing or the transport, so repeated runs are bitwise identical and any
// two transports produce bit-for-bit the same collective results. Higher
// layers (dtucker/sharded_dtucker.h) compose this with a fixed chunk grid
// over slices so the *global* reduction shape is also identical across
// power-of-two rank counts.
//
// Three transports share the collective algorithms above (so results are
// bitwise identical across transports) and differ only in how one rank's
// buffer reaches another:
//   - InProcessGroup: ranks are threads of one process sharing an address
//     space; rendezvous is a lock-free seqlock-style mailbox exchange,
//     suitable for tests and single-node multi-rank runs.
//   - FileCommunicator: ranks are separate processes meeting in a shared
//     directory (no MPI exists in this environment); payloads travel
//     through files published with atomic renames. Slow per message but
//     collectives here move O(rank^2) small matrices, not tensors.
//   - ShmCommunicator: ranks are separate processes (or threads) meeting
//     in one POSIX shared-memory segment (shm_open + mmap). Every ordered
//     (sender, receiver) pair owns a fixed mailbox with atomic generation
//     counters; payloads are copied through the mailbox in bounded chunks,
//     so a collective makes *zero* filesystem syscalls — rendezvous
//     latency is the adaptive wait below, not a 100 µs directory poll.
//
// Waiting: every transport blocks through one shared adaptive strategy —
// spin (cpu-relax), then yield, then exponentially growing short sleeps —
// and every blocking wait polls an optional RunContext plus a communicator
// -level timeout (default 120 s), so a crashed peer surfaces as
// kUnavailable instead of a deadlock and a cancellation turns a pending
// collective into kCancelled/kDeadlineExceeded.
//
// Observability: every collective is wrapped in a flow-tagged TraceSpan
// and bumps the comm.* metrics: comm.reduces / comm.bytes_reduced / the
// per-rank comm.rank<r>.reduce_ns gauge, plus — per outermost collective
// kind — the time spent blocked on peers in the comm.wait_ns.<op> gauge
// AND histogram (full p50/p90/p99 wait distributions) and the invocation
// count in comm.ops.<op> (op in {barrier, broadcast, allreduce_sum,
// allreduce_max, gather, allgatherv}), so --metrics-out and bench_shard
// can split synchronization into compute vs wait.
//
// Cross-rank flows: every collective entry bumps a per-communicator
// sequence number. Ranks execute the identical sequence of collective
// calls (SPMD lockstep — the same discipline NextTag() already relies
// on), so call k on rank r and call k on rank s are the same logical
// collective; combining the sequence number with a run-wide flow group
// (set_trace_flow_group, identical on all ranks) yields a flow id that is
// equal across ranks and unique within the merged trace. The exporter
// emits Perfetto flow events ('s' on rank 0, 't' on middle ranks, 'f' on
// the last rank) with that id, which draws one arrow through the
// rank-local spans of the same collective. EstimateClockOffsetNs() runs a
// symmetric ping-pong against rank 0 so independently started rank
// processes can map their trace epochs onto rank 0's (offset applied at
// export; see common/trace.h).
#ifndef DTUCKER_COMM_COMMUNICATOR_H_
#define DTUCKER_COMM_COMMUNICATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "common/timer.h"
#include "linalg/matrix.h"

namespace dtucker {

// Which transport a multi-rank driver builds its communicators on. The
// collective algorithms (and therefore the numerical results) are
// identical on all three; the choice trades setup constraints against
// rendezvous latency (see the file comment and DESIGN.md §11).
enum class CommTransport {
  kInProcess,  // Threads of one process (InProcessGroup).
  kFile,       // Processes meeting in a shared directory.
  kShm,        // Processes meeting in a POSIX shared-memory segment.
};

// "inproc" / "file" / "shm" <-> CommTransport. Parse rejects anything
// else with the accepted list in the message.
const char* CommTransportName(CommTransport transport);
Result<CommTransport> ParseCommTransport(const std::string& name);

class Communicator {
 public:
  virtual ~Communicator() = default;

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const { return rank_; }
  int size() const { return size_; }

  // Optional execution control: polled by every blocking wait. Caller
  // owned; must outlive the communicator's use. May be null.
  void set_run_context(const RunContext* ctx) { ctx_ = ctx; }
  const RunContext* run_context() const { return ctx_; }

  // Upper bound on any single blocking wait (seconds). A peer that never
  // shows up turns into kUnavailable after this long. Default 120 s.
  void set_timeout_seconds(double seconds) { timeout_seconds_ = seconds; }
  double timeout_seconds() const { return timeout_seconds_; }

  // Blocks until every rank has entered the same barrier call.
  Status Barrier();

  // Replicates root's `data[0, n)` into every rank's buffer.
  Status Broadcast(double* data, std::size_t n, int root = 0);

  // In-place elementwise sum over ranks, deterministic binomial tree (see
  // file comment); every rank exits with the identical summed buffer.
  Status AllReduceSum(double* data, std::size_t n);
  Status AllReduceSum(Matrix* m) { return AllReduceSum(m->data(), m->size()); }

  // In-place elementwise max over ranks. Max is associative and
  // commutative exactly (for non-NaN inputs), so no tree discipline is
  // needed for determinism.
  Status AllReduceMax(double* data, std::size_t n);

  // Concatenates every rank's `send[0, n)` on the root in ascending rank
  // order. `recv` (root only) must hold size() * n doubles.
  Status Gather(const double* send, std::size_t n, double* recv, int root = 0);

  // Variable-count all-gather: rank r contributes counts[r] doubles, and
  // every rank exits with the ascending-rank concatenation (sum(counts)
  // doubles) in `recv`. Concatenation involves no floating-point combine,
  // so the result is trivially bitwise deterministic. Implemented as a
  // gather to rank 0 plus a broadcast.
  Status AllGatherV(const double* send, const std::vector<std::size_t>& counts,
                    double* recv);

  // Namespace for cross-rank trace flow ids (see the file comment). Must
  // be set to the same value on every rank of a group, before the first
  // collective, for the flow arrows in a merged trace to connect; 0 (the
  // default) is a valid group.
  void set_trace_flow_group(std::uint64_t group) { trace_flow_group_ = group; }

  // Estimates how far this rank's trace clock sits behind rank 0's, in
  // nanoseconds (i.e. the value to pass to SetTraceClockOffsetNs so that
  // exported timestamps align on rank 0's axis). Collective: every rank
  // must call it at the same point. Rank 0 runs `rounds` symmetric
  // ping-pongs with each peer, exchanging TraceNowNs() samples; the offset
  // is taken at the minimum-RTT round as (t0 + rtt/2) - t1, then shipped
  // to the peer. Returns 0 on rank 0 and for single-rank groups. For
  // threads (or fork()ed children) of one process the epochs coincide and
  // the estimate is ~0; the call is cheap either way (`rounds` scalar
  // round-trips per peer).
  Result<std::int64_t> EstimateClockOffsetNs(int rounds = 8);

 protected:
  Communicator(int rank, int size) : rank_(rank), size_(size) {}

  // Transport primitives. `tag` is a monotonically increasing operation
  // sequence number assigned by the collective algorithms; a (tag, peer)
  // pair identifies one point-to-point rendezvous.
  //
  // SendTo publishes `data[0, n)` to `peer` under `tag` and blocks until
  // the peer has consumed it (or the transport has taken a private copy).
  // RecvCombine blocks for the matching publish from `peer` and either
  // copies (combine == kCopy) or accumulates elementwise into `data`.
  enum class Combine { kCopy, kAdd, kMax };
  virtual Status SendTo(int peer, std::uint64_t tag, const double* data,
                        std::size_t n) = 0;
  virtual Status RecvCombine(int peer, std::uint64_t tag, double* data,
                             std::size_t n, Combine combine) = 0;

  // One blocking wait, shared by every transport. Use as:
  //
  //   AdaptiveWait wait;
  //   while (!condition) DT_RETURN_NOT_OK(WaitStep(&wait));
  //   FinishWait(wait);
  //
  // WaitStep escalates from cpu-relax spinning through thread yields to
  // exponentially growing sleeps (1 µs doubling to 100 µs), polls the
  // RunContext, and enforces the communicator timeout. FinishWait
  // attributes the blocked time to the enclosing collective's
  // comm.wait_ns.* bucket (a no-op if the condition was true on entry).
  struct AdaptiveWait {
    Timer timer;
    std::uint64_t polls = 0;
    unsigned sleep_us = 1;
  };
  Status WaitStep(AdaptiveWait* w);
  void FinishWait(const AdaptiveWait& w);

  // RAII collective bracket: the outermost scope on a communicator names
  // the op that wait time is attributed to (nested collectives — e.g. the
  // broadcast inside AllReduceSum — fold into the outer op) and flushes
  // comm.wait_ns.<op> / comm.ops.<op> on exit. Communicators are used by
  // one thread at a time, so plain members suffice.
  class OpScope {
   public:
    OpScope(Communicator* comm, const char* op);
    ~OpScope();
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    Communicator* comm_;
    bool outermost_;
  };

  std::uint64_t NextTag() { return next_tag_++; }

 private:
  Status ReduceTree(double* data, std::size_t n, Combine combine);

  // Flow id for the next collective call: same value on every rank by the
  // lockstep argument in the file comment. Bumped unconditionally (even
  // with tracing off) so ranks that enable tracing at different times
  // still agree.
  std::uint64_t NextFlowId() {
    return (trace_flow_group_ << 32) | ++trace_flow_seq_;
  }
  // 's' on rank 0, 'f' on the last rank, 't' in between; 0 (no flow) for
  // single-rank groups.
  char FlowPhase() const {
    if (size_ <= 1) return 0;
    if (rank_ == 0) return 's';
    return rank_ == size_ - 1 ? 'f' : 't';
  }

  int rank_;
  int size_;
  const RunContext* ctx_ = nullptr;
  double timeout_seconds_ = 120.0;
  std::uint64_t next_tag_ = 0;
  std::uint64_t trace_flow_group_ = 0;
  std::uint64_t trace_flow_seq_ = 0;
  // Wait-attribution state for the current outermost collective.
  const char* current_op_ = nullptr;
  double op_wait_ns_ = 0.0;
};

// In-process transport: `size` communicators sharing one rendezvous table,
// one per rank thread. Create() returns them all; hand one to each thread.
// The group object owns the shared state and must outlive every rank.
class InProcessGroup {
 public:
  // `size` >= 1. The returned communicators index ranks 0..size-1.
  static std::shared_ptr<InProcessGroup> Create(int size);

  // Communicator for `rank`; each may be used by exactly one thread at a
  // time. Valid for the group's lifetime.
  Communicator* comm(int rank);

  ~InProcessGroup();

  // Shared rendezvous table; opaque outside the implementation file.
  struct State;

 private:
  InProcessGroup() = default;
  State* state_ = nullptr;
  std::vector<std::unique_ptr<Communicator>> comms_;
};

// Multi-process transport over a shared directory. Every rank process
// calls Create with the same `dir` (created if absent) and its own rank.
// Ranks publish payload files atomically (write temp + rename) and poll
// for their peers'; the directory must be on a filesystem with atomic
// rename (any local POSIX fs). The caller removes the directory once all
// ranks are done (rank 0 after a final Barrier, typically).
Result<std::unique_ptr<Communicator>> CreateFileCommunicator(
    const std::string& dir, int rank, int size);

// Multi-process transport over one POSIX shared-memory segment. Every rank
// calls Create with the same `name` (a shm_open name: leading '/', no
// other slashes, e.g. "/dtucker-<pid>") and its own rank. Rank 0 unlinks
// any stale segment of that name, creates and sizes a fresh one, lays out
// size^2 per-edge mailboxes, and publishes a ready flag; the other ranks
// poll shm_open until the segment exists and the flag is set (bounded by
// `setup_timeout_seconds`, so a missing rank 0 is kUnavailable, not a
// hang). Collectives then run entirely on mmap'd atomics — no filesystem
// syscalls. The segment is unlinked by rank 0's destructor; peers keep
// their mappings alive until their own destructors (POSIX keeps an
// unlinked segment valid while mapped). Ranks may be threads of one
// process or separate processes (fork before or after Create both work —
// the mapping is MAP_SHARED).
Result<std::unique_ptr<Communicator>> CreateShmCommunicator(
    const std::string& name, int rank, int size,
    double setup_timeout_seconds = 30.0);

}  // namespace dtucker

#endif  // DTUCKER_COMM_COMMUNICATOR_H_
