// Communicator: rank-to-rank collectives for sharded D-Tucker.
//
// D-Tucker's distributed structure only ever needs small collectives: the
// approximation phase is embarrassingly parallel over slices, and the
// initialization/iteration phases exchange Gram matrices, projected-core
// slabs, and scalars — never the raw tensor. A Communicator provides
// exactly that surface for a fixed group of `size` ranks:
//
//   Barrier        rendezvous of every rank
//   Broadcast      root's buffer replicated to all ranks
//   AllReduceSum   elementwise sum with a *deterministic* binomial tree
//   AllReduceMax   elementwise max (order-free, bitwise for non-NaN input)
//   Gather         concatenation of per-rank buffers on the root
//   AllGatherV     variable-count gather replicated to all ranks
//
// Determinism contract: AllReduceSum combines rank contributions through a
// fixed binomial tree over rank indices — at distance d = 1, 2, 4, ...,
// rank r with r % 2d == d sends its accumulator to rank r - d, which adds
// it on top of its own (receiver += sender, in ascending-distance order).
// The addition order therefore depends only on the rank count, never on
// timing, so repeated runs are bitwise identical. Higher layers
// (dtucker/sharded_dtucker.h) compose this with a fixed chunk grid over
// slices so the *global* reduction shape is also identical across
// power-of-two rank counts.
//
// Two transports:
//   - InProcessGroup: ranks are threads of one process sharing an address
//     space; rendezvous is a lock-free seqlock-style mailbox exchange
//     (spin + yield), suitable for tests and single-node multi-rank runs.
//   - FileCommunicator: ranks are separate processes meeting in a shared
//     directory (no MPI exists in this environment); payloads travel
//     through files published with atomic renames. Slow per message but
//     collectives here move O(rank^2) small matrices, not tensors.
//
// Execution control: set_run_context() attaches a caller-owned RunContext
// that every blocking wait polls, so a cancellation or deadline on one
// rank turns its pending collective into kCancelled/kDeadlineExceeded
// instead of a hang. A communicator-level default timeout (set_timeout)
// bounds waits even without a context — a crashed peer then surfaces as
// kUnavailable rather than a deadlock.
//
// Observability: every collective is wrapped in a DT_TRACE_SPAN and bumps
// the comm.* metrics (comm.reduces, comm.bytes_reduced, and the per-rank
// comm.rank<r>.reduce_ns gauge), so --trace-out / --metrics-out show where
// sharded runs spend their synchronization time.
#ifndef DTUCKER_COMM_COMMUNICATOR_H_
#define DTUCKER_COMM_COMMUNICATOR_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace dtucker {

class Communicator {
 public:
  virtual ~Communicator() = default;

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const { return rank_; }
  int size() const { return size_; }

  // Optional execution control: polled by every blocking wait. Caller
  // owned; must outlive the communicator's use. May be null.
  void set_run_context(const RunContext* ctx) { ctx_ = ctx; }
  const RunContext* run_context() const { return ctx_; }

  // Upper bound on any single blocking wait (seconds). A peer that never
  // shows up turns into kUnavailable after this long. Default 120 s.
  void set_timeout_seconds(double seconds) { timeout_seconds_ = seconds; }
  double timeout_seconds() const { return timeout_seconds_; }

  // Blocks until every rank has entered the same barrier call.
  Status Barrier();

  // Replicates root's `data[0, n)` into every rank's buffer.
  Status Broadcast(double* data, std::size_t n, int root = 0);

  // In-place elementwise sum over ranks, deterministic binomial tree (see
  // file comment); every rank exits with the identical summed buffer.
  Status AllReduceSum(double* data, std::size_t n);
  Status AllReduceSum(Matrix* m) { return AllReduceSum(m->data(), m->size()); }

  // In-place elementwise max over ranks. Max is associative and
  // commutative exactly (for non-NaN inputs), so no tree discipline is
  // needed for determinism.
  Status AllReduceMax(double* data, std::size_t n);

  // Concatenates every rank's `send[0, n)` on the root in ascending rank
  // order. `recv` (root only) must hold size() * n doubles.
  Status Gather(const double* send, std::size_t n, double* recv, int root = 0);

  // Variable-count all-gather: rank r contributes counts[r] doubles, and
  // every rank exits with the ascending-rank concatenation (sum(counts)
  // doubles) in `recv`. Concatenation involves no floating-point combine,
  // so the result is trivially bitwise deterministic. Implemented as a
  // gather to rank 0 plus a broadcast.
  Status AllGatherV(const double* send, const std::vector<std::size_t>& counts,
                    double* recv);

 protected:
  Communicator(int rank, int size) : rank_(rank), size_(size) {}

  // Transport primitives. `tag` is a monotonically increasing operation
  // sequence number assigned by the collective algorithms; a (tag, peer)
  // pair identifies one point-to-point rendezvous.
  //
  // SendTo publishes `data[0, n)` to `peer` under `tag` and blocks until
  // the peer has consumed it. RecvCombine blocks for the matching publish
  // from `peer` and either copies (combine == kCopy) or accumulates
  // elementwise into `data`.
  enum class Combine { kCopy, kAdd, kMax };
  virtual Status SendTo(int peer, std::uint64_t tag, const double* data,
                        std::size_t n) = 0;
  virtual Status RecvCombine(int peer, std::uint64_t tag, double* data,
                             std::size_t n, Combine combine) = 0;

  // One bounded wait step while polling for a peer: yields/sleeps, checks
  // the RunContext and the elapsed budget. `elapsed_seconds` is the time
  // since the blocking call began.
  Status WaitCheck(double elapsed_seconds) const;

  std::uint64_t NextTag() { return next_tag_++; }

 private:
  Status ReduceTree(double* data, std::size_t n, Combine combine);

  int rank_;
  int size_;
  const RunContext* ctx_ = nullptr;
  double timeout_seconds_ = 120.0;
  std::uint64_t next_tag_ = 0;
};

// In-process transport: `size` communicators sharing one rendezvous table,
// one per rank thread. Create() returns them all; hand one to each thread.
// The group object owns the shared state and must outlive every rank.
class InProcessGroup {
 public:
  // `size` >= 1. The returned communicators index ranks 0..size-1.
  static std::shared_ptr<InProcessGroup> Create(int size);

  // Communicator for `rank`; each may be used by exactly one thread at a
  // time. Valid for the group's lifetime.
  Communicator* comm(int rank);

  ~InProcessGroup();

  // Shared rendezvous table; opaque outside the implementation file.
  struct State;

 private:
  InProcessGroup() = default;
  State* state_ = nullptr;
  std::vector<std::unique_ptr<Communicator>> comms_;
};

// Multi-process transport over a shared directory. Every rank process
// calls Create with the same `dir` (created if absent) and its own rank.
// Ranks publish payload files atomically (write temp + rename) and poll
// for their peers'; the directory must be on a filesystem with atomic
// rename (any local POSIX fs). The caller removes the directory once all
// ranks are done (rank 0 after a final Barrier, typically).
Result<std::unique_ptr<Communicator>> CreateFileCommunicator(
    const std::string& dir, int rank, int size);

}  // namespace dtucker

#endif  // DTUCKER_COMM_COMMUNICATOR_H_
