#include "comm/sharding.h"

#include <algorithm>
#include <string>

namespace dtucker {

Result<ShardPlan> MakeShardPlan(Index num_slices, int num_ranks, int rank) {
  if (num_slices < 1) {
    return Status::InvalidArgument("shard plan: need at least one slice");
  }
  if (num_ranks < 1) {
    return Status::InvalidArgument("shard plan: num_ranks must be >= 1");
  }
  if (rank < 0 || rank >= num_ranks) {
    return Status::InvalidArgument("shard plan: rank out of range");
  }
  if (static_cast<Index>(num_ranks) > num_slices) {
    return Status::InvalidArgument(
        "shard plan: num_ranks (" + std::to_string(num_ranks) +
        ") exceeds the number of slices (" + std::to_string(num_slices) +
        "); reduce --ranks to at most the trailing-mode volume");
  }
  ShardPlan plan;
  plan.num_slices = num_slices;
  plan.num_chunks = std::min(kShardChunkCount, num_slices);
  plan.num_ranks = num_ranks;
  plan.rank = rank;
  const Index r = static_cast<Index>(rank);
  const Index big_r = static_cast<Index>(num_ranks);
  // Ranks own contiguous chunk ranges; with R > C the trailing ranks own
  // zero chunks (degenerate shards are handled by every consumer).
  plan.chunk_begin = std::min(plan.num_chunks, plan.num_chunks * r / big_r);
  plan.chunk_end =
      std::min(plan.num_chunks, plan.num_chunks * (r + 1) / big_r);
  plan.slice_begin = plan.ChunkSliceBegin(plan.chunk_begin);
  plan.slice_end = plan.ChunkSliceBegin(plan.chunk_end);
  return plan;
}

}  // namespace dtucker
