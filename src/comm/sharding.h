// Shard assignment for the slice dimension, built on a fixed chunk grid.
//
// Reductions over slices (stacked-factor Grams, carrier contractions,
// squared norms) must produce bitwise-identical results whether they run
// on 1 rank or many. Floating-point addition is not associative, so the
// *shape* of the reduction has to be pinned independently of the rank
// count. The scheme, shared with the thread-level determinism contract of
// PR 3 (dtucker.cc kSliceChunkCount):
//
//   1. The L slices are cut into C = min(kShardChunkCount, L) fixed,
//      contiguous chunks on the grid boundaries L*c/C — a function of L
//      alone.
//   2. Within a chunk, contributions accumulate serially in ascending
//      slice order.
//   3. Chunk partials combine through a fixed pairwise binary tree over
//      the chunk indices (TreeCombine below).
//
// Ranks own contiguous *chunk* ranges ([C*r/R, C*(r+1)/R)), and the slice
// range follows from the chunk range — so a shard boundary is always a
// chunk boundary, every chunk is computed whole on exactly one rank, and
// the local partial of a rank that owns a power-of-two-aligned chunk range
// is exactly an internal node of the global tree. When the rank count is
// a power of two (and <= C), the cross-rank binomial reduction of
// Communicator::AllReduceSum supplies the remaining upper tree levels, and
// the composed global reduction is the same tree for every such rank
// count: results are bitwise identical across R in {1, 2, 4, ..., C}. For
// other rank counts results remain deterministic per rank count, merely
// not bit-matched across counts.
//
// Degenerate shards are legal: with R > C (but R <= L, enforced by
// Validate) the trailing ranks own zero chunks and zero slices; they still
// participate in every collective so the group stays in lockstep.
#ifndef DTUCKER_COMM_SHARDING_H_
#define DTUCKER_COMM_SHARDING_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dtucker {

// Grid size of the canonical slice reduction. Matches the fixed chunking
// of the single-process iteration phase (PR 3), which caps the rank counts
// with cross-count bitwise identity at 8.
inline constexpr Index kShardChunkCount = 8;

struct ShardPlan {
  Index num_slices = 0;   // L.
  Index num_chunks = 0;   // C = min(kShardChunkCount, L).
  int num_ranks = 0;      // R.
  int rank = -1;          // This rank.
  Index chunk_begin = 0;  // Owned chunk range [chunk_begin, chunk_end).
  Index chunk_end = 0;
  Index slice_begin = 0;  // Owned slice range [slice_begin, slice_end).
  Index slice_end = 0;

  Index NumLocalSlices() const { return slice_end - slice_begin; }
  Index NumLocalChunks() const { return chunk_end - chunk_begin; }
  bool Degenerate() const { return NumLocalSlices() == 0; }

  // Global slice range of chunk `c` (grid boundaries L*c/C).
  Index ChunkSliceBegin(Index c) const {
    return num_slices * c / num_chunks;
  }
  Index ChunkSliceEnd(Index c) const {
    return num_slices * (c + 1) / num_chunks;
  }
};

// Validates (L >= 1, 1 <= R, R <= L) and builds the plan for `rank`.
// num_ranks > num_slices is rejected with InvalidArgument: a shard grid
// finer than the slice dimension cannot give every rank work, and the
// caller should reduce the rank count instead.
Result<ShardPlan> MakeShardPlan(Index num_slices, int num_ranks, int rank);

// Fixed pairwise binary-tree combine of `partials` (all same shape) with
// combine(dst, src) applied bottom-up: level 0 pairs (0,1), (2,3), ...; an
// odd trailing element is carried upward unchanged and combined at the
// first level that pairs it. The shape depends only on partials.size().
// For a power-of-two count this is the complete binary tree that composes
// with the binomial AllReduceSum (see file comment). Result lands in
// partials[0].
template <typename T, typename CombineFn>
void TreeCombine(std::vector<T>* partials, const CombineFn& combine) {
  if (partials->empty()) return;
  // Indices of the live nodes at the current level.
  std::vector<std::size_t> live(partials->size());
  for (std::size_t i = 0; i < live.size(); ++i) live[i] = i;
  while (live.size() > 1) {
    std::vector<std::size_t> next;
    next.reserve((live.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < live.size(); i += 2) {
      combine(&(*partials)[live[i]], (*partials)[live[i + 1]]);
      next.push_back(live[i]);
    }
    if (live.size() % 2 == 1) next.push_back(live.back());
    live = std::move(next);
  }
}

}  // namespace dtucker

#endif  // DTUCKER_COMM_SHARDING_H_
