#include "comm/telemetry_gather.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace dtucker {

namespace {

// Strings travel through the double-typed collectives byte-packed, 8 bytes
// per double (exact lengths ride in a separate length exchange).
std::vector<double> PackString(const std::string& s) {
  std::vector<double> out((s.size() + 7) / 8, 0.0);
  if (!s.empty()) std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string UnpackString(const double* data, std::size_t len) {
  std::string s(len, '\0');
  if (len > 0) std::memcpy(&s[0], data, len);
  return s;
}

}  // namespace

Status AlignTraceClockWithRoot(Communicator* comm) {
  if (comm->size() <= 1) return Status::OK();
  DT_ASSIGN_OR_RETURN(std::int64_t offset, comm->EstimateClockOffsetNs());
  // Rank 0 defines the axis; only peers shift. (In thread mode every rank
  // shares one process-wide offset and the estimates are ~0, so the
  // last-writer race is harmless.)
  if (comm->rank() != 0) SetTraceClockOffsetNs(offset);
  return Status::OK();
}

Status GatherRankTelemetry(Communicator* comm) {
  const int rank = comm->rank();
  const int size = comm->size();

  // Pause recording and rendezvous so no rank is still pushing spans while
  // another snapshots, and so the gather's own collectives stay out of the
  // trace. (In thread mode the flag is process-global: the first rank
  // through pauses everyone, which is exactly the quiescence we need.)
  const bool was_enabled = TraceEnabled();
  SetTraceEnabled(false);
  Status barrier = comm->Barrier();
  if (!barrier.ok()) {
    if (was_enabled) SetTraceEnabled(true);
    return barrier;
  }

  const std::string trace_frag = SerializeChromeTraceEventsForRank(rank);
  const std::string metrics_dump =
      MetricsRegistry::Global().SerializeForMerge();

  Status st = Status::OK();
  std::vector<std::string> trace_frags;
  std::vector<std::string> metrics_dumps;
  {
    // Exchange the two lengths, then one packed payload per rank.
    const double my_lens[2] = {static_cast<double>(trace_frag.size()),
                               static_cast<double>(metrics_dump.size())};
    std::vector<std::size_t> len_counts(static_cast<std::size_t>(size), 2);
    std::vector<double> all_lens(static_cast<std::size_t>(size) * 2, 0.0);
    st = comm->AllGatherV(my_lens, len_counts, all_lens.data());
    if (st.ok()) {
      std::vector<std::size_t> payload_counts(static_cast<std::size_t>(size));
      std::size_t total = 0;
      for (int r = 0; r < size; ++r) {
        const std::size_t bytes =
            static_cast<std::size_t>(all_lens[2 * r]) +
            static_cast<std::size_t>(all_lens[2 * r + 1]);
        payload_counts[static_cast<std::size_t>(r)] = (bytes + 7) / 8;
        total += payload_counts[static_cast<std::size_t>(r)];
      }
      const std::vector<double> my_payload =
          PackString(trace_frag + metrics_dump);
      std::vector<double> all_payloads(total, 0.0);
      st = comm->AllGatherV(my_payload.data(), payload_counts,
                            all_payloads.data());
      if (st.ok() && rank == 0) {
        std::size_t off = 0;
        for (int r = 0; r < size; ++r) {
          const std::size_t trace_len =
              static_cast<std::size_t>(all_lens[2 * r]);
          const std::size_t metrics_len =
              static_cast<std::size_t>(all_lens[2 * r + 1]);
          const std::string blob = UnpackString(
              all_payloads.data() + off, trace_len + metrics_len);
          off += payload_counts[static_cast<std::size_t>(r)];
          trace_frags.push_back(blob.substr(0, trace_len));
          metrics_dumps.push_back(blob.substr(trace_len));
        }
      }
    }
  }
  if (was_enabled) SetTraceEnabled(true);
  DT_RETURN_NOT_OK(st);

  AggregatedTelemetry bundle;
  bundle.present = true;
  bundle.is_root = rank == 0;
  bundle.run_id = TraceRunId();
  if (rank == 0) {
    bundle.merged_trace_json =
        BuildMergedChromeTrace(trace_frags, bundle.run_id);
    bundle.merged_metrics_json = MergeRankMetricsJson(metrics_dumps);
  }
  SetAggregatedTelemetry(std::move(bundle));
  return Status::OK();
}

}  // namespace dtucker
