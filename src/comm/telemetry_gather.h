// Cross-rank telemetry: clock alignment at communicator setup and the
// end-of-run gather of every rank's trace fragment + metrics dump to
// rank 0.
//
// Both entry points are collectives — every rank of the group must call
// them at the same point, gated on the same condition (drivers gate on
// TelemetryGatherEnabled() / TraceEnabled(), which are derived from the
// same flags on every rank). The gather reuses the existing deterministic
// Gather/AllGatherV collectives, shipping each rank's serialized strings
// packed into double payloads, so it works identically whether ranks are
// threads of one process or fork()ed processes — no topology flag.
//
// On rank 0 the gather merges the fragments into one Perfetto-loadable
// Chrome trace (one pid lane per rank, clocks aligned, flow arrows intact)
// and one multi-rank metrics JSON (per-rank sections + min/max/sum
// rollups; see MergeRankMetricsJson), then deposits both via
// SetAggregatedTelemetry so FlushTelemetryFromFlags writes single merged
// files. Note that in thread mode the per-rank *metrics* sections coincide
// (all rank threads share the process registry, so every section reports
// the process-wide totals); trace fragments are always rank-local either
// way. In fork mode each section is genuinely that rank process's view.
#ifndef DTUCKER_COMM_TELEMETRY_GATHER_H_
#define DTUCKER_COMM_TELEMETRY_GATHER_H_

#include "comm/communicator.h"
#include "common/status.h"

namespace dtucker {

// Estimates this rank's trace-clock offset against rank 0
// (Communicator::EstimateClockOffsetNs) and installs it for export
// (SetTraceClockOffsetNs). Collective; call once, right after the
// communicator is set up, before the phases worth tracing. No-op for
// single-rank groups.
Status AlignTraceClockWithRoot(Communicator* comm);

// Gathers every rank's serialized trace events and metrics snapshot to
// rank 0 and deposits the merged documents (rank 0) / a present-but-empty
// marker (other ranks) via SetAggregatedTelemetry. Collective; call at the
// end of a sharded solve — including cancelled/rolled-back runs, which
// still reach the solver's return path. Tracing is paused across the
// gather so its own collectives do not pollute the trace.
Status GatherRankTelemetry(Communicator* comm);

}  // namespace dtucker

#endif  // DTUCKER_COMM_TELEMETRY_GATHER_H_
