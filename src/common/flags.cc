#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace dtucker {

FlagParser& FlagParser::AddString(const std::string& name,
                                  const std::string& def,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kString, help, def};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t def,
                               const std::string& help) {
  flags_[name] = Flag{Type::kInt, help, std::to_string(def)};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name, double def,
                                  const std::string& help) {
  std::ostringstream os;
  os << def;
  flags_[name] = Flag{Type::kDouble, help, os.str()};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool def,
                                const std::string& help) {
  flags_[name] = Flag{Type::kBool, help, def ? "true" : "false"};
  order_.push_back(name);
  return *this;
}

Status FlagParser::SetValue(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      char* end = nullptr;
      (void)std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + text +
                                       "'");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + text +
                                       "'");
      }
      break;
    }
    case Type::kBool:
      if (text != "true" && text != "false" && text != "1" && text != "0") {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + text +
                                       "'");
      }
      break;
    case Type::kString:
      break;
  }
  flag.value = text;
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument '" + arg +
                                     "'");
    }
    arg = arg.substr(2);
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // Bare boolean flag.
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing a value");
      }
    }
    DT_RETURN_NOT_OK(SetValue(name, value));
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  DT_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  return it->second.value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  return v == "true" || v == "1";
}

std::string FlagParser::HelpString() const {
  std::ostringstream os;
  os << "Flags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.value << ")\n      " << f.help
       << "\n";
  }
  return os.str();
}

}  // namespace dtucker
