// A tiny command-line flag parser for benchmark and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are reported as errors so experiment scripts fail loudly.
#ifndef DTUCKER_COMMON_FLAGS_H_
#define DTUCKER_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dtucker {

class FlagParser {
 public:
  // Declares a flag with a default value and help text. Returns *this for
  // chaining.
  FlagParser& AddString(const std::string& name, const std::string& def,
                        const std::string& help);
  FlagParser& AddInt(const std::string& name, int64_t def,
                     const std::string& help);
  FlagParser& AddDouble(const std::string& name, double def,
                        const std::string& help);
  FlagParser& AddBool(const std::string& name, bool def,
                      const std::string& help);

  // Parses argv; returns InvalidArgument on unknown flags or bad values.
  // `--help` sets help_requested() and returns OK.
  Status Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }

  // Formatted flag list for --help output.
  std::string HelpString() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // Canonical textual representation.
  };

  Status SetValue(const std::string& name, const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // Declaration order, for HelpString.
  bool help_requested_ = false;
};

}  // namespace dtucker

#endif  // DTUCKER_COMMON_FLAGS_H_
