#include "common/logging.h"

#include <chrono>
#include <cstdio>

namespace dtucker {
namespace internal_logging {

namespace {
LogLevel g_threshold = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogThreshold() { return g_threshold; }
void SetLogThreshold(LogLevel level) { g_threshold = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= g_threshold) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace dtucker
