#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace dtucker {
namespace internal_logging {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogThreshold() {
  return g_threshold.load(std::memory_order_relaxed);
}
void SetLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= GetLogThreshold()) {
    // Assemble the whole line (prefix + payload + newline) and emit it with
    // one stdio write, so lines from concurrent threads never interleave
    // (stdio locks the stream per call).
    std::string line = stream_.str();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace dtucker
