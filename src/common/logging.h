// Minimal logging and invariant-checking macros.
//
// DT_CHECK(cond) aborts with a message on violated invariants (enabled in
// all build types — these guard programming errors, not user input).
// DT_DCHECK(cond) compiles away in NDEBUG builds and may be used on hot
// paths. DT_LOG(INFO) << ... writes a timestamped line to stderr.
#ifndef DTUCKER_COMMON_LOGGING_H_
#define DTUCKER_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dtucker {
namespace internal_logging {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimum level actually emitted; adjustable at runtime (e.g. by tests).
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

// Accumulates one log line and emits it (with level/time prefix) on
// destruction. `fatal` additionally aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace dtucker

#define DT_LOG_DEBUG ::dtucker::internal_logging::LogLevel::kDebug
#define DT_LOG_INFO ::dtucker::internal_logging::LogLevel::kInfo
#define DT_LOG_WARNING ::dtucker::internal_logging::LogLevel::kWarning
#define DT_LOG_ERROR ::dtucker::internal_logging::LogLevel::kError

#define DT_LOG(level) \
  ::dtucker::internal_logging::LogMessage(DT_LOG_##level, __FILE__, __LINE__)

#define DT_CHECK(cond)                                                      \
  if (!(cond))                                                              \
  ::dtucker::internal_logging::LogMessage(DT_LOG_ERROR, __FILE__, __LINE__, \
                                          /*fatal=*/true)                   \
      << "Check failed: " #cond " "

#define DT_CHECK_EQ(a, b) DT_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DT_CHECK_NE(a, b) DT_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DT_CHECK_LT(a, b) DT_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DT_CHECK_LE(a, b) DT_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DT_CHECK_GT(a, b) DT_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DT_CHECK_GE(a, b) DT_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define DT_DCHECK(cond) \
  while (false) DT_CHECK(cond)
#define DT_DCHECK_EQ(a, b) \
  while (false) DT_CHECK_EQ(a, b)
#define DT_DCHECK_LT(a, b) \
  while (false) DT_CHECK_LT(a, b)
#else
#define DT_DCHECK(cond) DT_CHECK(cond)
#define DT_DCHECK_EQ(a, b) DT_CHECK_EQ(a, b)
#define DT_DCHECK_LT(a, b) DT_CHECK_LT(a, b)
#endif

#endif  // DTUCKER_COMMON_LOGGING_H_
