#include "common/memory.h"

#include <unistd.h>

#include <cstdio>

namespace dtucker {

std::size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0, resident = 0;
  int n = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

std::size_t PeakRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t peak_kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kib = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kib) == 1) {
      peak_kib = static_cast<std::size_t>(kib);
      break;
    }
  }
  std::fclose(f);
  return peak_kib * 1024;
}

}  // namespace dtucker
