#include "common/memory.h"

#include <unistd.h>

#include <cstdio>

namespace dtucker {

std::size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0, resident = 0;
  int n = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

}  // namespace dtucker
