// Lightweight accounting of algorithm working-set sizes.
//
// The paper's space-cost comparison (experiment E3) is about *logical*
// storage: how many numbers a method must keep resident to answer a query.
// MemoryMeter tracks explicit Charge()/Release() calls from the algorithms
// so benchmarks can report bytes without depending on allocator internals.
#ifndef DTUCKER_COMMON_MEMORY_H_
#define DTUCKER_COMMON_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace dtucker {

class MemoryMeter {
 public:
  void Charge(std::size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  void Release(std::size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  std::size_t current_bytes() const { return current_; }
  std::size_t peak_bytes() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

// Resident-set size of this process in bytes (Linux, from /proc/self/statm);
// returns 0 if unavailable. Used as a sanity cross-check in benchmarks.
std::size_t CurrentRssBytes();

// Lifetime peak resident-set size in bytes (Linux, VmHWM from
// /proc/self/status); returns 0 if unavailable.
std::size_t PeakRssBytes();

}  // namespace dtucker

#endif  // DTUCKER_COMMON_MEMORY_H_
