#include "common/metrics.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/memory.h"

namespace dtucker {

namespace internal_metrics {

unsigned ThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace internal_metrics

namespace {

// Doubles are serialized with enough digits to round-trip; integral values
// (phase seconds are not, gauge byte counts usually are) keep a compact form.
void AppendJsonDouble(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendJsonUint(std::uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendJsonKey(const std::string& name, std::string* out) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\":");
}

// One histogram as a JSON object (times in nanoseconds). The raw bucket
// array rides along so offline tooling can re-derive any quantile.
void AppendHistogramJson(const HistogramData& h, const std::string& indent,
                         std::string* out) {
  out->append("{\n").append(indent).append("  \"count\": ");
  AppendJsonUint(h.Count(), out);
  out->append(",\n").append(indent).append("  \"sum\": ");
  AppendJsonUint(h.sum_ns, out);
  out->append(",\n").append(indent).append("  \"p50\": ");
  AppendJsonDouble(h.QuantileNs(0.50), out);
  out->append(",\n").append(indent).append("  \"p90\": ");
  AppendJsonDouble(h.QuantileNs(0.90), out);
  out->append(",\n").append(indent).append("  \"p99\": ");
  AppendJsonDouble(h.QuantileNs(0.99), out);
  out->append(",\n").append(indent).append("  \"max\": ");
  AppendJsonUint(h.max_ns, out);
  out->append(",\n").append(indent).append("  \"buckets\": [");
  for (unsigned b = 0; b < HistogramData::kBuckets; ++b) {
    if (b != 0) out->append(", ");
    AppendJsonUint(h.buckets[b], out);
  }
  out->append("]\n").append(indent).append("}");
}

bool NameIsMergeable(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

unsigned HistogramData::BucketIndex(std::uint64_t ns) {
  if (ns < 2) return 0;
  unsigned b = 63u - static_cast<unsigned>(__builtin_clzll(ns));
  return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t HistogramData::BucketLowerNs(unsigned b) {
  return b == 0 ? 0 : (std::uint64_t{1} << b);
}

std::uint64_t HistogramData::Count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : buckets) total += c;
  return total;
}

double HistogramData::QuantileNs(double q) const {
  const std::uint64_t count = Count();
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target the ceil(q * count)-th sample (1-based) so q = 1 is the last
  // sample and q = 0 the first; walk the cumulative bucket counts and
  // interpolate linearly inside the bucket that holds it.
  std::uint64_t target = static_cast<std::uint64_t>(q * count + 0.999999999);
  if (target < 1) target = 1;
  if (target > count) target = count;
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cum + buckets[b] >= target) {
      const double lower = static_cast<double>(BucketLowerNs(b));
      double upper = b + 1 < kBuckets
                         ? static_cast<double>(BucketLowerNs(b + 1))
                         : static_cast<double>(max_ns);
      if (upper < lower) upper = lower;
      const double frac =
          static_cast<double>(target - cum) / static_cast<double>(buckets[b]);
      double value = lower + frac * (upper - lower);
      if (max_ns != 0 && value > static_cast<double>(max_ns)) {
        value = static_cast<double>(max_ns);
      }
      return value;
    }
    cum += buckets[b];
  }
  return static_cast<double>(max_ns);
}

void HistogramData::Merge(const HistogramData& other) {
  for (unsigned b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  sum_ns += other.sum_ns;
  if (other.max_ns > max_ns) max_ns = other.max_ns;
}

HistogramData Histogram::Snapshot() const {
  HistogramData out;
  for (const Shard& s : shards_) {
    for (unsigned b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    out.sum_ns += s.sum_ns.load(std::memory_order_relaxed);
    const std::uint64_t m = s.max_ns.load(std::memory_order_relaxed);
    if (m > out.max_ns) out.max_ns = m;
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (unsigned b = 0; b < kBuckets; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
    s.sum_ns.store(0, std::memory_order_relaxed);
    s.max_ns.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metric references cached in function-local statics
  // must stay valid through static destruction.
  static MetricsRegistry* const kRegistry = new MetricsRegistry;
  return *kRegistry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::SnapshotJson() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"counters\": {";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool first = true;
    for (const auto& [name, c] : counters_) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonKey(name, &out);
      AppendJsonUint(c->Value(), &out);
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonKey(name, &out);
      AppendJsonDouble(g->Value(), &out);
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonKey(name, &out);
      out += " ";
      AppendHistogramJson(h->Snapshot(), "    ", &out);
    }
  }
  out += "\n  },\n  \"phases\": {";
  {
    bool first = true;
    for (const auto& [name, seconds] : GlobalPhaseTimer().totals()) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonKey(name, &out);
      AppendJsonDouble(seconds, &out);
    }
  }
  out += "\n  },\n  \"process\": {\n    \"rss_bytes\": ";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu", CurrentRssBytes());
  out += buf;
  out += ",\n    \"peak_rss_bytes\": ";
  std::snprintf(buf, sizeof(buf), "%zu", PeakRssBytes());
  out += buf;
  out += "\n  }\n}\n";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream os(path, std::ios::out | std::ios::trunc);
  if (!os.is_open()) {
    return Status::IoError("cannot open metrics output '" + path + "'");
  }
  os << SnapshotJson();
  os.flush();
  if (!os.good()) {
    return Status::IoError("failed writing metrics output '" + path + "'");
  }
  return Status::OK();
}

std::string MetricsRegistry::SerializeForMerge() const {
  std::string out;
  out.reserve(1024);
  out += "v 1\n";
  char buf[40];
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      if (!NameIsMergeable(name)) continue;
      out += "c ";
      out += name;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", c->Value());
      out += buf;
    }
    for (const auto& [name, g] : gauges_) {
      if (!NameIsMergeable(name)) continue;
      out += "g ";
      out += name;
      std::snprintf(buf, sizeof(buf), " %.17g\n", g->Value());
      out += buf;
    }
    for (const auto& [name, h] : histograms_) {
      if (!NameIsMergeable(name)) continue;
      const HistogramData data = h->Snapshot();
      out += "h ";
      out += name;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 " %" PRIu64, data.sum_ns,
                    data.max_ns);
      out += buf;
      for (unsigned b = 0; b < HistogramData::kBuckets; ++b) {
        std::snprintf(buf, sizeof(buf), " %" PRIu64, data.buckets[b]);
        out += buf;
      }
      out += "\n";
    }
  }
  for (const auto& [name, seconds] : GlobalPhaseTimer().totals()) {
    if (!NameIsMergeable(name)) continue;
    out += "p ";
    out += name;
    std::snprintf(buf, sizeof(buf), " %.17g\n", seconds);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "x %zu %zu\n", CurrentRssBytes(),
                PeakRssBytes());
  out += buf;
  return out;
}

namespace {

// Parsed form of one rank's SerializeForMerge() dump.
struct RankMetrics {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, double> phases;
  std::uint64_t rss_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
};

RankMetrics ParseRankDump(const std::string& dump) {
  RankMetrics out;
  std::istringstream is(dump);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "c") {
      std::string name;
      std::uint64_t v = 0;
      if (ls >> name >> v) out.counters[name] = v;
    } else if (kind == "g") {
      std::string name;
      double v = 0;
      if (ls >> name >> v) out.gauges[name] = v;
    } else if (kind == "p") {
      std::string name;
      double v = 0;
      if (ls >> name >> v) out.phases[name] = v;
    } else if (kind == "h") {
      std::string name;
      HistogramData h;
      if (!(ls >> name >> h.sum_ns >> h.max_ns)) continue;
      bool ok = true;
      for (unsigned b = 0; b < HistogramData::kBuckets; ++b) {
        if (!(ls >> h.buckets[b])) {
          ok = false;
          break;
        }
      }
      if (ok) out.histograms[name] = h;
    } else if (kind == "x") {
      ls >> out.rss_bytes >> out.peak_rss_bytes;
    }
  }
  return out;
}

struct Rollup {
  double min = 0;
  double max = 0;
  double sum = 0;
  bool seen = false;

  void Fold(double v) {
    if (!seen) {
      min = max = sum = v;
      seen = true;
      return;
    }
    if (v < min) min = v;
    if (v > max) max = v;
    sum += v;
  }
};

void AppendRollupSection(const std::map<std::string, Rollup>& rollups,
                         std::string* out) {
  bool first = true;
  for (const auto& [name, r] : rollups) {
    out->append(first ? "\n      " : ",\n      ");
    first = false;
    AppendJsonKey(name, out);
    out->append(" {\"min\": ");
    AppendJsonDouble(r.min, out);
    out->append(", \"max\": ");
    AppendJsonDouble(r.max, out);
    out->append(", \"sum\": ");
    AppendJsonDouble(r.sum, out);
    out->append("}");
  }
}

}  // namespace

std::string MergeRankMetricsJson(const std::vector<std::string>& rank_dumps) {
  std::vector<RankMetrics> ranks;
  ranks.reserve(rank_dumps.size());
  for (const std::string& dump : rank_dumps) {
    ranks.push_back(ParseRankDump(dump));
  }

  std::string out;
  out.reserve(4096);
  out += "{\n  \"world_size\": ";
  AppendJsonUint(ranks.size(), &out);
  out += ",\n  \"ranks\": {";
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const RankMetrics& m = ranks[r];
    out += r == 0 ? "\n    " : ",\n    ";
    AppendJsonKey(std::to_string(r), &out);
    out += " {\n      \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : m.counters) {
      out += first ? "\n        " : ",\n        ";
      first = false;
      AppendJsonKey(name, &out);
      AppendJsonUint(v, &out);
    }
    out += "\n      },\n      \"gauges\": {";
    first = true;
    for (const auto& [name, v] : m.gauges) {
      out += first ? "\n        " : ",\n        ";
      first = false;
      AppendJsonKey(name, &out);
      AppendJsonDouble(v, &out);
    }
    out += "\n      },\n      \"histograms\": {";
    first = true;
    for (const auto& [name, h] : m.histograms) {
      out += first ? "\n        " : ",\n        ";
      first = false;
      AppendJsonKey(name, &out);
      out += " ";
      AppendHistogramJson(h, "        ", &out);
    }
    out += "\n      },\n      \"phases\": {";
    first = true;
    for (const auto& [name, v] : m.phases) {
      out += first ? "\n        " : ",\n        ";
      first = false;
      AppendJsonKey(name, &out);
      AppendJsonDouble(v, &out);
    }
    out += "\n      },\n      \"process\": {\n        \"rss_bytes\": ";
    AppendJsonUint(m.rss_bytes, &out);
    out += ",\n        \"peak_rss_bytes\": ";
    AppendJsonUint(m.peak_rss_bytes, &out);
    out += "\n      }\n    }";
  }

  std::map<std::string, Rollup> counter_rollup;
  std::map<std::string, Rollup> gauge_rollup;
  std::map<std::string, Rollup> phase_rollup;
  std::map<std::string, HistogramData> histogram_rollup;
  for (const RankMetrics& m : ranks) {
    for (const auto& [name, v] : m.counters) {
      counter_rollup[name].Fold(static_cast<double>(v));
    }
    for (const auto& [name, v] : m.gauges) gauge_rollup[name].Fold(v);
    for (const auto& [name, v] : m.phases) phase_rollup[name].Fold(v);
    for (const auto& [name, h] : m.histograms) {
      histogram_rollup[name].Merge(h);
    }
  }

  out += "\n  },\n  \"rollup\": {\n    \"counters\": {";
  AppendRollupSection(counter_rollup, &out);
  out += "\n    },\n    \"gauges\": {";
  AppendRollupSection(gauge_rollup, &out);
  out += "\n    },\n    \"phases\": {";
  AppendRollupSection(phase_rollup, &out);
  out += "\n    },\n    \"histograms\": {";
  bool first = true;
  for (const auto& [name, h] : histogram_rollup) {
    out += first ? "\n      " : ",\n      ";
    first = false;
    AppendJsonKey(name, &out);
    out += " ";
    AppendHistogramJson(h, "      ", &out);
  }
  out += "\n    }\n  }\n}\n";
  return out;
}

Counter& MetricCounter(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name);
}

Gauge& MetricGauge(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name);
}

Histogram& MetricHistogram(const std::string& name) {
  return MetricsRegistry::Global().GetHistogram(name);
}

PhaseTimer& GlobalPhaseTimer() {
  static PhaseTimer* const kTimer = new PhaseTimer;
  return *kTimer;
}

}  // namespace dtucker
