#include "common/metrics.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/memory.h"

namespace dtucker {

namespace internal_metrics {

unsigned ThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace internal_metrics

namespace {

// Doubles are serialized with enough digits to round-trip; integral values
// (phase seconds are not, gauge byte counts usually are) keep a compact form.
void AppendJsonDouble(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendJsonKey(const std::string& name, std::string* out) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\":");
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metric references cached in function-local statics
  // must stay valid through static destruction.
  static MetricsRegistry* const kRegistry = new MetricsRegistry;
  return *kRegistry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
}

std::string MetricsRegistry::SnapshotJson() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"counters\": {";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool first = true;
    for (const auto& [name, c] : counters_) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonKey(name, &out);
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRIu64,
                    static_cast<std::uint64_t>(c->Value()));
      out += buf;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonKey(name, &out);
      AppendJsonDouble(g->Value(), &out);
    }
  }
  out += "\n  },\n  \"phases\": {";
  {
    bool first = true;
    for (const auto& [name, seconds] : GlobalPhaseTimer().totals()) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonKey(name, &out);
      AppendJsonDouble(seconds, &out);
    }
  }
  out += "\n  },\n  \"process\": {\n    \"rss_bytes\": ";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu", CurrentRssBytes());
  out += buf;
  out += ",\n    \"peak_rss_bytes\": ";
  std::snprintf(buf, sizeof(buf), "%zu", PeakRssBytes());
  out += buf;
  out += "\n  }\n}\n";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream os(path, std::ios::out | std::ios::trunc);
  if (!os.is_open()) {
    return Status::IoError("cannot open metrics output '" + path + "'");
  }
  os << SnapshotJson();
  os.flush();
  if (!os.good()) {
    return Status::IoError("failed writing metrics output '" + path + "'");
  }
  return Status::OK();
}

Counter& MetricCounter(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name);
}

Gauge& MetricGauge(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name);
}

PhaseTimer& GlobalPhaseTimer() {
  static PhaseTimer* const kTimer = new PhaseTimer;
  return *kTimer;
}

}  // namespace dtucker
