// Process-wide registry of named monotonic counters and gauges.
//
// Counters are sharded across cache-line-padded atomics so hot kernels
// (GEMM call/FLOP accounting, thread-pool task counts) can bump them from
// many workers without bouncing one cache line; reads sum the shards.
// Gauges hold a single double with set / add / set-max semantics (peak
// RSS, allocation-probe bytes).
//
// Hot-path idiom — resolve the registry entry once, then only touch the
// atomic:
//
//   static Counter& calls = MetricCounter("gemm.calls");
//   calls.Add(1);
//
// MetricsRegistry::SnapshotJson() serializes every counter and gauge, the global
// PhaseTimer buckets, and the process RSS, so every driver can emit one
// machine-readable metrics file next to its results (--metrics-out).
#ifndef DTUCKER_COMMON_METRICS_H_
#define DTUCKER_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/timer.h"

namespace dtucker {

namespace internal_metrics {
// Stable per-thread shard index (threads are striped round-robin).
unsigned ThreadShard();
}  // namespace internal_metrics

// Monotonic counter. Add() is wait-free (one relaxed fetch_add on the
// caller's shard); Value() sums the shards.
class Counter {
 public:
  static constexpr unsigned kShards = 8;

  void Add(std::uint64_t v) {
    shards_[internal_metrics::ThreadShard() & (kShards - 1)].value.fetch_add(
        v, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShards];
};

// Last-written double with atomic set / add / running-max updates.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }

  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Name -> Counter/Gauge map. Entries are created on first lookup and live
// for the process lifetime (stable addresses, safe to cache in statics).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);

  // Zeroes every counter and gauge (entries stay registered). Intended for
  // tests and per-run benchmark brackets; concurrent Add()s may survive.
  void ResetAll();

  // {"counters": {...}, "gauges": {...}, "phases": {...seconds...},
  //  "process": {"rss_bytes": ..., "peak_rss_bytes": ...}}
  std::string SnapshotJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

// Shorthand registry lookups (one mutex acquisition; cache the reference).
Counter& MetricCounter(const std::string& name);
Gauge& MetricGauge(const std::string& name);

// Process-wide phase-time accumulator (thread-safe PhaseTimer): every
// solver records its coarse phases here under "dtucker.*" / "method.*"
// buckets, so HOSVD, the baselines, and D-Tucker all report wall time
// through one channel. Included in SnapshotJson() under "phases".
PhaseTimer& GlobalPhaseTimer();

}  // namespace dtucker

#endif  // DTUCKER_COMMON_METRICS_H_
