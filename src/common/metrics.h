// Process-wide registry of named monotonic counters, gauges, and latency
// histograms.
//
// Counters are sharded across cache-line-padded atomics so hot kernels
// (GEMM call/FLOP accounting, thread-pool task counts) can bump them from
// many workers without bouncing one cache line; reads sum the shards.
// Gauges hold a single double with set / add / set-max semantics (peak
// RSS, allocation-probe bytes). Histograms record nanosecond latencies
// into fixed log-scale buckets with the same sharding discipline, so hot
// sites (per-collective comm waits, thread-pool task run times, sweep
// stage durations, IO-retry backoffs) report full distributions — p50 /
// p90 / p99 / max, count, sum — instead of mean-only gauges.
//
// Hot-path idiom — resolve the registry entry once, then only touch the
// atomic:
//
//   static Counter& calls = MetricCounter("gemm.calls");
//   calls.Add(1);
//   static Histogram& waits = MetricHistogram("comm.wait_ns.barrier");
//   waits.Record(elapsed_ns);
//
// MetricsRegistry::SnapshotJson() serializes every counter, gauge, and
// histogram, the global PhaseTimer buckets, and the process RSS, so every
// driver can emit one machine-readable metrics file next to its results
// (--metrics-out).
//
// Bounded sweep gauges: per-sweep convergence gauges
// ("dtucker.sweepNN.fit" etc., published by RecordSweepMetrics in
// tucker/tucker.h) are capped to a rolling window of the last K sweeps
// (default K = 64, SetSweepMetricsWindow): sweep t lands in slot
// ((t - 1) % K) + 1, so long online/range runs reuse the same K * 4 gauge
// names instead of growing the registry without bound. Cumulative
// "dtucker.sweeps.count" / ".total_seconds" / ".total_subspace_iterations"
// gauges carry the whole-run totals alongside the window.
//
// Cross-rank merging: SerializeForMerge() emits a compact text dump of the
// registry (including raw histogram buckets) that a root rank can combine
// with MergeRankMetricsJson() into one JSON document with per-rank
// sections plus cross-rank min/max/sum rollups (histograms merge by
// summing buckets, so the rollup quantiles are exact over the union).
#ifndef DTUCKER_COMMON_METRICS_H_
#define DTUCKER_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace dtucker {

namespace internal_metrics {
// Stable per-thread shard index (threads are striped round-robin).
unsigned ThreadShard();
}  // namespace internal_metrics

// Monotonic counter. Add() is wait-free (one relaxed fetch_add on the
// caller's shard); Value() sums the shards.
class Counter {
 public:
  static constexpr unsigned kShards = 8;

  void Add(std::uint64_t v) {
    shards_[internal_metrics::ThreadShard() & (kShards - 1)].value.fetch_add(
        v, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShards];
};

// Last-written double with atomic set / add / running-max updates.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }

  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Merged, single-threaded view of one histogram: raw power-of-two bucket
// counts plus the exact sum and max. This is the unit of cross-rank
// merging (buckets from different ranks simply add), and the quantile
// math lives here so the live exporter and the rank-0 merger agree
// bit-for-bit.
struct HistogramData {
  static constexpr unsigned kBuckets = 40;

  std::uint64_t buckets[kBuckets] = {0};
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;

  // Bucket b covers [2^b, 2^(b+1)) ns for 1 <= b < kBuckets - 1; bucket 0
  // additionally absorbs 0 ns and the last bucket is open-ended
  // (2^39 ns ~ 550 s), so the scheme spans ~2 ns rendezvous latencies to
  // ~100 s-class timeouts with <= 2x relative error per bucket.
  static unsigned BucketIndex(std::uint64_t ns);
  static std::uint64_t BucketLowerNs(unsigned b);

  std::uint64_t Count() const;
  // Linear interpolation inside the bucket holding the q-th sample
  // (0 <= q <= 1), clamped to the observed max; monotone in q. Returns 0
  // for an empty histogram.
  double QuantileNs(double q) const;

  void Merge(const HistogramData& other);
};

// Log-scale latency histogram. Record() is wait-free: two relaxed
// fetch_adds plus a rarely-contended running-max CAS, all on the caller's
// cache-line-padded shard — the same discipline as Counter, so hot sites
// (thread-pool tasks, collective waits) can record from many workers
// without bouncing one line.
class Histogram {
 public:
  static constexpr unsigned kShards = 4;
  static constexpr unsigned kBuckets = HistogramData::kBuckets;

  void Record(std::uint64_t ns) {
    Shard& s = shards_[internal_metrics::ThreadShard() & (kShards - 1)];
    s.buckets[HistogramData::BucketIndex(ns)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = s.max_ns.load(std::memory_order_relaxed);
    while (ns > cur && !s.max_ns.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }

  HistogramData Snapshot() const;
  std::uint64_t Count() const { return Snapshot().Count(); }
  std::uint64_t SumNs() const { return Snapshot().sum_ns; }

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
  };
  Shard shards_[kShards];
};

// Name -> Counter/Gauge/Histogram map. Entries are created on first lookup
// and live for the process lifetime (stable addresses, safe to cache in
// statics).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Zeroes every counter, gauge, and histogram (entries stay registered).
  // Intended for tests and per-run benchmark brackets; concurrent Add()s
  // may survive.
  void ResetAll();

  // {"counters": {...}, "gauges": {...}, "histograms": {...}, "phases":
  //  {...seconds...},
  //  "process": {"rss_bytes": ..., "peak_rss_bytes": ...}}
  // Each histogram entry reports {"count", "sum", "p50", "p90", "p99",
  // "max", "buckets"} with every time in nanoseconds.
  std::string SnapshotJson() const;
  Status WriteJson(const std::string& path) const;

  // Compact line-based dump of the whole registry (counters, gauges, raw
  // histogram buckets, phase totals, RSS) for cross-rank aggregation: each
  // rank ships this string to rank 0, which merges the dumps with
  // MergeRankMetricsJson. Metric names must not contain whitespace (none
  // do; offenders are skipped).
  std::string SerializeForMerge() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Builds the merged multi-rank metrics document from per-rank
// SerializeForMerge() dumps (index == rank):
//   {"world_size": R,
//    "ranks": {"0": {counters, gauges, histograms, phases, process}, ...},
//    "rollup": {"counters"/"gauges"/"phases": {name: {min, max, sum}},
//               "histograms": {name: quantiles over the summed buckets}}}
std::string MergeRankMetricsJson(const std::vector<std::string>& rank_dumps);

// Shorthand registry lookups (one mutex acquisition; cache the reference).
Counter& MetricCounter(const std::string& name);
Gauge& MetricGauge(const std::string& name);
Histogram& MetricHistogram(const std::string& name);

// Process-wide phase-time accumulator (thread-safe PhaseTimer): every
// solver records its coarse phases here under "dtucker.*" / "method.*"
// buckets, so HOSVD, the baselines, and D-Tucker all report wall time
// through one channel. Included in SnapshotJson() under "phases".
PhaseTimer& GlobalPhaseTimer();

}  // namespace dtucker

#endif  // DTUCKER_COMMON_METRICS_H_
