#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace dtucker {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  DT_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % n);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

void Rng::FillGaussian(double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = Gaussian();
}

void Rng::FillUniform(double* out, std::size_t n, double lo, double hi) {
  for (std::size_t i = 0; i < n; ++i) out[i] = Uniform(lo, hi);
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  // Fisher-Yates.
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = UniformInt(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace dtucker
