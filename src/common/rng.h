// Deterministic pseudo-random number generation.
//
// All randomized algorithms in this project (randomized SVD, MACH sampling,
// CountSketch hashing, synthetic data generation) draw from Rng so that any
// experiment is exactly reproducible from its seed. The core generator is
// xoshiro256++ (Blackman & Vigna), which is fast, tiny, and has no BLAS-
// style global state.
#ifndef DTUCKER_COMMON_RNG_H_
#define DTUCKER_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace dtucker {

class Rng {
 public:
  // Seeds the state via SplitMix64 so that nearby seeds give unrelated
  // streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n); n must be > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box-Muller (cached second value).
  double Gaussian();

  // Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Fills `out` with i.i.d. standard normal samples.
  void FillGaussian(double* out, std::size_t n);

  // Fills `out` with i.i.d. Uniform[lo, hi) samples.
  void FillUniform(double* out, std::size_t n, double lo = 0.0,
                   double hi = 1.0);

  // Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> Permutation(std::size_t n);

  // Splits off an independent child generator (for per-slice parallelism or
  // structured experiments); the parent stream advances by one draw.
  Rng Split();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dtucker

#endif  // DTUCKER_COMMON_RNG_H_
