#include "common/run_context.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>

#include "common/metrics.h"

namespace dtucker {

Status IoRetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("io_retry.max_attempts must be >= 1");
  }
  if (initial_backoff_seconds < 0 || max_backoff_seconds < 0) {
    return Status::InvalidArgument("io_retry backoffs must be non-negative");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("io_retry.backoff_multiplier must be >= 1");
  }
  return Status::OK();
}

double IoRetryPolicy::BackoffSeconds(int attempt) const {
  double b = initial_backoff_seconds;
  for (int k = 0; k < attempt; ++k) {
    b *= backoff_multiplier;
    if (b >= max_backoff_seconds) break;
  }
  return std::min(b, max_backoff_seconds);
}

void RunContext::SetDeadlineAfter(double seconds) {
  // An expired deadline is represented by any past timestamp; clamp the
  // offset so extreme inputs cannot overflow the addition.
  const double clamped =
      std::clamp(seconds, -1e12, 1e12) * 1e9;
  deadline_ns_.store(NowNs() + static_cast<std::int64_t>(clamped),
                     std::memory_order_relaxed);
}

double RunContext::RemainingSeconds() const {
  const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
  if (d == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(d - NowNs()) * 1e-9;
}

Status RunContext::CheckStatus(const char* where) const {
  switch (Check()) {
    case StatusCode::kCancelled:
      return Status::Cancelled(std::string("cancelled at ") + where);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::string("deadline exceeded at ") +
                                      where);
    default:
      return Status::OK();
  }
}

Status BackoffWithContext(const IoRetryPolicy& policy, int attempt,
                          const RunContext* ctx) {
  double remaining = policy.BackoffSeconds(attempt);
  static Histogram& backoff_hist = MetricHistogram("io.retry_backoff_ns");
  backoff_hist.Record(static_cast<std::uint64_t>(remaining * 1e9));
  while (remaining > 0) {
    if (ctx != nullptr) {
      DT_RETURN_NOT_OK(ctx->CheckStatus("io retry backoff"));
    }
    const double slice = std::min(remaining, 1e-3);
    std::this_thread::sleep_for(std::chrono::duration<double>(slice));
    remaining -= slice;
  }
  if (ctx != nullptr) {
    DT_RETURN_NOT_OK(ctx->CheckStatus("io retry backoff"));
  }
  return Status::OK();
}

}  // namespace dtucker
