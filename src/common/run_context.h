// Execution control for long-running solves: cooperative cancellation,
// monotonic deadlines, IO retry policy, and deterministic fault injection.
//
// A RunContext is created by the caller, optionally armed with a deadline,
// and passed (by pointer, caller-owned) into a solve through
// TuckerOptions::run_context or the Engine facade (dtucker/engine.h).
// Solvers poll it at bounded-work checkpoints — per slice in the
// approximation phase, per panel in initialization, per sweep and per mode
// in iteration, per read in the out-of-core streaming loop — so the time
// between a cancellation request and the solver observing it is one
// checkpoint's worth of work, never a whole solve.
//
// Cost model: an un-armed check is one relaxed atomic load plus a
// predicted branch (~1 ns, the same budget as the trace gate). A deadline
// check additionally reads the steady clock, but only when a deadline is
// actually set, so an armed-but-idle context stays off the hot path's
// critical resources.
//
// Thread safety: RequestCancel() may be called from any thread at any
// time; Check*() may run concurrently on every solver thread. Deadline and
// retry-policy setters are not synchronized against in-flight checks —
// configure before handing the context to a solve.
#ifndef DTUCKER_COMMON_RUN_CONTEXT_H_
#define DTUCKER_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

#include "common/status.h"

namespace dtucker {

// Bounded retry with exponential backoff for transient IO faults
// (data/tensor_file.h). Attempt k (0-based) sleeps
// min(initial * multiplier^k, max) before retrying; max_attempts counts
// the first try, so 1 disables retries entirely.
struct IoRetryPolicy {
  int max_attempts = 4;
  double initial_backoff_seconds = 1e-3;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.25;

  Status Validate() const;
  // Backoff before retry number `attempt` (0-based failed attempt).
  double BackoffSeconds(int attempt) const;
};

class RunContext {
 public:
  RunContext() = default;

  // Not copyable/movable: solvers hold a pointer for the duration of a run.
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // --- Cancellation -------------------------------------------------------
  // Requests cooperative cancellation; solvers stop at their next
  // checkpoint. Idempotent, callable from any thread.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  // --- Deadline -----------------------------------------------------------
  // Arms a wall-time budget of `seconds` from now (steady clock; immune to
  // system-clock jumps). Non-positive values arm an already-expired
  // deadline, which solvers observe at their first checkpoint.
  void SetDeadlineAfter(double seconds);
  void ClearDeadline() { deadline_ns_.store(0, std::memory_order_relaxed); }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }
  // Seconds until expiry (negative once past; +inf when no deadline).
  double RemainingSeconds() const;

  // --- Checkpoints --------------------------------------------------------
  // The hot-path poll: kOk, or the interruption to honor. Cancellation
  // wins over an expired deadline when both apply.
  StatusCode Check() const {
    if (cancel_.load(std::memory_order_relaxed)) return StatusCode::kCancelled;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != 0 && NowNs() >= d) return StatusCode::kDeadlineExceeded;
    return StatusCode::kOk;
  }

  // Check() as a Status with a "<where>" location message. OK when clear.
  Status CheckStatus(const char* where) const;

  // True once the context can interrupt a run (cancelled or deadline
  // armed). Solvers use this to decide whether to keep the per-sweep
  // state snapshot that partial results restore from.
  bool armed() const {
    return cancel_requested() || has_deadline();
  }

  // --- IO fault tolerance -------------------------------------------------
  // Retry policy for transient read failures in the out-of-core path.
  IoRetryPolicy io_retry;

  // Deterministic fault injection for testing the retry logic without real
  // disk errors: when set, the IO layer calls the hook before every
  // low-level attempt with the operation name (e.g. "tensor_file.read")
  // and the 0-based attempt number; a non-OK return is treated exactly
  // like a real transient failure of that attempt. Leave empty in
  // production.
  std::function<Status(const char* op, int attempt)> fault_hook;

  // Null-safe helpers so solver code can thread an optional context without
  // branching on nullptr at every site.
  static StatusCode CheckOrOk(const RunContext* ctx) {
    return ctx == nullptr ? StatusCode::kOk : ctx->Check();
  }
  static bool Armed(const RunContext* ctx) {
    return ctx != nullptr && ctx->armed();
  }

 private:
  static std::int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancel_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // 0 = no deadline.
};

// Sleeps for the policy's backoff before retry `attempt`, waking early (and
// reporting the interruption) if `ctx` is cancelled or past deadline. The
// sleep is sliced so cancellation latency stays bounded by ~1 ms even under
// long backoffs. `ctx` may be null.
Status BackoffWithContext(const IoRetryPolicy& policy, int attempt,
                          const RunContext* ctx);

}  // namespace dtucker

#endif  // DTUCKER_COMMON_RUN_CONTEXT_H_
