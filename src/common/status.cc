#include "common/status.h"

namespace dtucker {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dtucker
