// Status / Result<T> error model, in the style of Arrow and RocksDB.
//
// Library code in this project does not throw exceptions across public API
// boundaries. Recoverable failures (bad arguments, dimension mismatches,
// numerical breakdown, I/O errors) are reported through Status or Result<T>.
// Unrecoverable programming errors use DT_CHECK from common/logging.h.
#ifndef DTUCKER_COMMON_STATUS_H_
#define DTUCKER_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace dtucker {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNumericalError = 4,
  kIoError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  // Execution control (common/run_context.h). These two are interruptions,
  // not failures: a solver that has a complete intermediate state returns
  // it alongside the code (TuckerStats::completion), so callers get the
  // best-so-far answer instead of nothing.
  kCancelled = 8,
  kDeadlineExceeded = 9,
  // A transient fault (e.g. a flaky read) that survived the bounded-retry
  // policy. Distinct from kIoError so callers can tell "the file is bad"
  // from "the storage path was unavailable right now".
  kUnavailable = 10,
  // A bounded resource is full right now (the serving layer's admission
  // control: job queue at capacity). Like kUnavailable it is retryable,
  // but the remedy is backpressure — shed load or retry later — rather
  // than waiting out a storage hiccup.
  kResourceExhausted = 11,
};

// True for the graceful-interruption codes (kCancelled/kDeadlineExceeded):
// the run stopped on request, and any value returned with this code is a
// valid partial result rather than garbage.
inline bool IsInterruption(StatusCode code) {
  return code == StatusCode::kCancelled || code == StatusCode::kDeadlineExceeded;
}

// Returns a short human-readable name such as "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// A cheap value type carrying success or an (code, message) error pair.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Modeled after
// arrow::Result / absl::StatusOr with just the pieces this project needs.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}                // NOLINT
  Result(Status status) : status_(std::move(status)) {}        // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok(). Checked in debug builds.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  // Moves the value out; precondition: ok().
  T ValueOrDie() && { return std::move(*value_); }

 private:
  Status status_;           // OK when value_ is set.
  std::optional<T> value_;  // Engaged iff status_.ok().
};

}  // namespace dtucker

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define DT_RETURN_NOT_OK(expr)                   \
  do {                                           \
    ::dtucker::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

// Assigns the value of a Result<T> expression to `lhs`, or returns its error.
#define DT_ASSIGN_OR_RETURN(lhs, rexpr)          \
  DT_ASSIGN_OR_RETURN_IMPL_(                     \
      DT_CONCAT_(_dt_result_, __LINE__), lhs, rexpr)

#define DT_CONCAT_INNER_(a, b) a##b
#define DT_CONCAT_(a, b) DT_CONCAT_INNER_(a, b)
#define DT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#endif  // DTUCKER_COMMON_STATUS_H_
