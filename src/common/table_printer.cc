#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace dtucker {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

std::string TablePrinter::FormatBytes(std::size_t bytes) {
  char buf[64];
  double b = static_cast<double>(bytes);
  if (b < 1024) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else if (b < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024);
  } else if (b < 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / (1024 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1024.0 * 1024 * 1024));
  }
  return buf;
}

std::string TablePrinter::FormatScientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
    return os.str();
  };

  std::ostringstream os;
  os << render_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) os << render_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace dtucker
