// Fixed-width ASCII table rendering for experiment harness output.
//
// Every bench binary prints its table/figure data through TablePrinter so
// the rows the paper reports are regenerated in a uniform, diffable format.
#ifndef DTUCKER_COMMON_TABLE_PRINTER_H_
#define DTUCKER_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace dtucker {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row; each cell is already formatted text. Rows shorter than
  // the header are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string FormatDouble(double v, int precision = 4);
  static std::string FormatSeconds(double seconds);
  static std::string FormatBytes(std::size_t bytes);
  static std::string FormatScientific(double v, int precision = 3);

  // Renders the table with a separator line under the header.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dtucker

#endif  // DTUCKER_COMMON_TABLE_PRINTER_H_
