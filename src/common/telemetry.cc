#include "common/telemetry.h"

#include <atomic>
#include <fstream>
#include <mutex>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace dtucker {

namespace {

std::atomic<bool> g_gather_enabled{false};
std::atomic<int> g_telemetry_rank{0};

std::mutex& AggregatedMutex() {
  static std::mutex* const kMutex = new std::mutex;
  return *kMutex;
}

AggregatedTelemetry& AggregatedSlot() {
  static AggregatedTelemetry* const kBundle = new AggregatedTelemetry;
  return *kBundle;
}

Status WriteStringFile(const std::string& path, const std::string& body,
                       const char* what) {
  std::ofstream os(path, std::ios::out | std::ios::trunc);
  if (!os.is_open()) {
    return Status::IoError(std::string("cannot open ") + what + " output '" +
                           path + "'");
  }
  os << body;
  os.flush();
  if (!os.good()) {
    return Status::IoError(std::string("failed writing ") + what +
                           " output '" + path + "'");
  }
  return Status::OK();
}

// Non-zero ranks suffix their fallback outputs so fork()ed rank processes
// sharing one --trace-out path never clobber each other.
std::string RankSuffixedPath(const std::string& path) {
  const int rank = TelemetryRank();
  if (rank <= 0) return path;
  return path + ".rank" + std::to_string(rank);
}

}  // namespace

void AddTelemetryFlags(FlagParser* flags) {
  flags->AddString("trace-out", "",
                   "Write a Chrome-trace (Perfetto) JSON of the run here; "
                   "also enables span recording. Multi-rank runs merge all "
                   "ranks into one file on rank 0");
  flags->AddString("metrics-out", "",
                   "Write a JSON snapshot of counters/gauges/histograms/"
                   "phase timings here at exit. Multi-rank runs merge "
                   "per-rank sections plus rollups on rank 0");
}

void InitTelemetryFromFlags(const FlagParser& flags) {
  if (!flags.GetString("trace-out").empty()) {
    SetTraceEnabled(true);
  }
  if (!flags.GetString("trace-out").empty() ||
      !flags.GetString("metrics-out").empty()) {
    SetTelemetryGatherEnabled(true);
  }
}

Status FlushTelemetryFromFlags(const FlagParser& flags) {
  const std::string trace_path = flags.GetString("trace-out");
  const std::string metrics_path = flags.GetString("metrics-out");
  const AggregatedTelemetry& agg = GetAggregatedTelemetry();
  if (agg.present) {
    // A gather ran: rank 0 writes the merged documents, everyone else
    // writes nothing (their telemetry is inside the merged files).
    if (!agg.is_root) return Status::OK();
    if (!trace_path.empty()) {
      DT_RETURN_NOT_OK(
          WriteStringFile(trace_path, agg.merged_trace_json, "trace"));
    }
    if (!metrics_path.empty()) {
      DT_RETURN_NOT_OK(
          WriteStringFile(metrics_path, agg.merged_metrics_json, "metrics"));
    }
    return Status::OK();
  }
  if (!trace_path.empty()) {
    SetTraceEnabled(false);
    DT_RETURN_NOT_OK(WriteChromeTrace(RankSuffixedPath(trace_path)));
    const std::uint64_t dropped = TraceDroppedEventCount();
    if (dropped > 0) {
      DT_LOG(WARNING) << "trace ring buffers wrapped; " << dropped
                      << " oldest events were dropped";
    }
  }
  if (!metrics_path.empty()) {
    DT_RETURN_NOT_OK(
        MetricsRegistry::Global().WriteJson(RankSuffixedPath(metrics_path)));
  }
  return Status::OK();
}

bool TelemetryGatherEnabled() {
  return g_gather_enabled.load(std::memory_order_relaxed);
}

void SetTelemetryGatherEnabled(bool enabled) {
  g_gather_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTelemetryRank(int rank) {
  g_telemetry_rank.store(rank, std::memory_order_relaxed);
}

int TelemetryRank() {
  return g_telemetry_rank.load(std::memory_order_relaxed);
}

void SetTelemetryRunId(std::uint64_t run_id) { SetTraceRunId(run_id); }

void ResetTelemetryForChildProcess(int rank) {
  ResetTraceForChildProcess(rank);
  SetTelemetryRank(rank);
}

void SetAggregatedTelemetry(AggregatedTelemetry bundle) {
  std::lock_guard<std::mutex> lock(AggregatedMutex());
  AggregatedTelemetry& slot = AggregatedSlot();
  // In thread mode every rank of the group shares this process-wide slot;
  // a non-root marker must not clobber rank 0's merged documents.
  if (!bundle.is_root && slot.present && slot.is_root) return;
  slot = std::move(bundle);
}

const AggregatedTelemetry& GetAggregatedTelemetry() {
  return AggregatedSlot();
}

}  // namespace dtucker
