#include "common/telemetry.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace dtucker {

void AddTelemetryFlags(FlagParser* flags) {
  flags->AddString("trace-out", "",
                   "Write a Chrome-trace (Perfetto) JSON of the run here; "
                   "also enables span recording");
  flags->AddString("metrics-out", "",
                   "Write a JSON snapshot of counters/gauges/phase timings "
                   "here at exit");
}

void InitTelemetryFromFlags(const FlagParser& flags) {
  if (!flags.GetString("trace-out").empty()) {
    SetTraceEnabled(true);
  }
}

Status FlushTelemetryFromFlags(const FlagParser& flags) {
  const std::string trace_path = flags.GetString("trace-out");
  if (!trace_path.empty()) {
    SetTraceEnabled(false);
    DT_RETURN_NOT_OK(WriteChromeTrace(trace_path));
    const std::uint64_t dropped = TraceDroppedEventCount();
    if (dropped > 0) {
      DT_LOG(WARNING) << "trace ring buffers wrapped; " << dropped
                      << " oldest events were dropped";
    }
  }
  const std::string metrics_path = flags.GetString("metrics-out");
  if (!metrics_path.empty()) {
    DT_RETURN_NOT_OK(MetricsRegistry::Global().WriteJson(metrics_path));
  }
  return Status::OK();
}

}  // namespace dtucker
