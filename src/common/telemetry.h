// Shared --trace-out / --metrics-out plumbing for drivers.
//
// Every binary that wants telemetry output calls AddTelemetryFlags() when
// declaring its flags, InitTelemetryFromFlags() after parsing (this turns
// the tracer on iff --trace-out is set, before any work runs), and
// FlushTelemetryFromFlags() once the workload is done and worker threads
// are quiescent (writes the Chrome-trace JSON and/or the metrics snapshot).
#ifndef DTUCKER_COMMON_TELEMETRY_H_
#define DTUCKER_COMMON_TELEMETRY_H_

#include "common/flags.h"
#include "common/status.h"

namespace dtucker {

// Declares --trace-out and --metrics-out (both default "" = disabled).
void AddTelemetryFlags(FlagParser* flags);

// Enables span recording when --trace-out was given. Call before the
// workload so the trace epoch and buffers are ready.
void InitTelemetryFromFlags(const FlagParser& flags);

// Writes the requested output files (no-op for flags left empty). Call
// after the workload, with no spans in flight.
Status FlushTelemetryFromFlags(const FlagParser& flags);

}  // namespace dtucker

#endif  // DTUCKER_COMMON_TELEMETRY_H_
