// Shared --trace-out / --metrics-out plumbing for drivers.
//
// Every binary that wants telemetry output calls AddTelemetryFlags() when
// declaring its flags, InitTelemetryFromFlags() after parsing (this turns
// the tracer on iff --trace-out is set, before any work runs), and
// FlushTelemetryFromFlags() once the workload is done and worker threads
// are quiescent (writes the Chrome-trace JSON and/or the metrics snapshot).
//
// Multi-rank runs: InitTelemetryFromFlags also arms cross-rank telemetry
// gathering (TelemetryGatherEnabled). When a sharded solver finishes it
// gathers every rank's trace fragment and metrics dump to rank 0 (see
// comm/telemetry_gather.h) and deposits the merged documents here via
// SetAggregatedTelemetry; FlushTelemetryFromFlags then writes the merged
// files on rank 0 and *nothing* on other ranks. When no aggregated bundle
// arrived (single-rank runs, gather failure, or a non-sharded method),
// each rank-process falls back to its own local snapshot — suffixed
// "<path>.rank<r>" for ranks > 0 (SetTelemetryRank) so fork()ed ranks
// never clobber rank 0's file.
#ifndef DTUCKER_COMMON_TELEMETRY_H_
#define DTUCKER_COMMON_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "common/flags.h"
#include "common/status.h"

namespace dtucker {

// Declares --trace-out and --metrics-out (both default "" = disabled).
void AddTelemetryFlags(FlagParser* flags);

// Enables span recording when --trace-out was given, and telemetry
// gathering when either output was requested. Call before the workload so
// the trace epoch and buffers are ready.
void InitTelemetryFromFlags(const FlagParser& flags);

// Writes the requested output files (no-op for flags left empty). Call
// after the workload, with no spans in flight.
Status FlushTelemetryFromFlags(const FlagParser& flags);

// Whether the run wants cross-rank telemetry gathered to rank 0 at the end
// of a sharded solve. Must be uniform across ranks (it gates collective
// calls); drivers derive it from the same flags on every rank. Default
// off, so programs that never opt in pay nothing and keep their collective
// schedules unchanged.
bool TelemetryGatherEnabled();
void SetTelemetryGatherEnabled(bool enabled);

// This process's rank for telemetry-file naming: ranks > 0 write
// "<path>.rank<r>" in the non-aggregated fallback. Default 0 (plain path).
void SetTelemetryRank(int rank);
int TelemetryRank();

// Stamps the run id that every trace lane and merged document carries
// (forwards to SetTraceRunId). Call once per process, before any solve —
// and before fork()ing rank children, who inherit it, so all ranks of one
// run agree. A pid works fine.
void SetTelemetryRunId(std::uint64_t run_id);

// Re-initializes telemetry state in a fork()ed rank child: drops the trace
// events inherited from the parent, retags this process's buffers with
// `rank` (ResetTraceForChildProcess), and routes fallback telemetry files
// to the "<path>.rank<r>" suffix (SetTelemetryRank). Call first thing
// after fork() in the child.
void ResetTelemetryForChildProcess(int rank);

// Merged multi-rank telemetry, deposited by the gather step on rank 0
// (is_root == true) and marked present-but-empty on other ranks so their
// flush writes nothing.
struct AggregatedTelemetry {
  bool present = false;
  bool is_root = false;
  std::uint64_t run_id = 0;
  std::string merged_trace_json;    // Complete Chrome-trace document.
  std::string merged_metrics_json;  // MergeRankMetricsJson document.
};

void SetAggregatedTelemetry(AggregatedTelemetry bundle);
const AggregatedTelemetry& GetAggregatedTelemetry();

}  // namespace dtucker

#endif  // DTUCKER_COMMON_TELEMETRY_H_
