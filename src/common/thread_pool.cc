#include "common/thread_pool.h"

#include <atomic>
#include <chrono>

#include "common/logging.h"
#include "common/metrics.h"

namespace dtucker {

namespace {
std::atomic<int> g_pool_partitions{1};
std::atomic<int> g_pool_leases{0};
}  // namespace

void SetPoolPartitions(int partitions) {
  g_pool_partitions.store(partitions < 1 ? 1 : partitions,
                          std::memory_order_relaxed);
}

int PoolPartitions() {
  // The manual setting (sharded runs) and the lease count (serving jobs)
  // feed one effective width: whichever demands the narrower per-caller
  // fan-out wins.
  const int manual = g_pool_partitions.load(std::memory_order_relaxed);
  const int leases = g_pool_leases.load(std::memory_order_relaxed);
  return leases > manual ? leases : manual;
}

PoolPartitionLease::PoolPartitionLease() {
  g_pool_leases.fetch_add(1, std::memory_order_relaxed);
}

PoolPartitionLease::~PoolPartitionLease() {
  g_pool_leases.fetch_sub(1, std::memory_order_relaxed);
}

int ActivePoolLeases() {
  return g_pool_leases.load(std::memory_order_relaxed);
}

std::size_t ThreadPool::partition_width() const {
  const std::size_t parts =
      static_cast<std::size_t>(PoolPartitions());
  const std::size_t width = num_threads() / (parts == 0 ? 1 : parts);
  return width == 0 ? 1 : width;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  DT_CHECK_GE(num_threads, 1u) << "pool needs at least one thread";
  worker_stats_ = std::make_unique<WorkerStat[]>(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  static Counter& tasks_run = MetricCounter("threadpool.tasks");
  static Counter& busy_total = MetricCounter("threadpool.busy_ns");
  static Histogram& task_hist = MetricHistogram("threadpool.task_ns");
  WorkerStat& stat = worker_stats_[worker_index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    stat.busy_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
    tasks_run.Add(1);
    busy_total.Add(elapsed_ns);
    task_hist.Record(elapsed_ns);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t width = partition_width();
  if (width == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic chunking: enough chunks for balance, few enough for low
  // queueing overhead. The fan-out is bounded by the caller's partition
  // width, not the raw pool size, so concurrent ranks share the pool
  // instead of each claiming it whole (SetPoolPartitions).
  const std::size_t chunks = std::min(n, width * 4);
  std::atomic<std::size_t> next{0};
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    Submit([&, chunk_size, n] {
      for (;;) {
        const std::size_t start = next.fetch_add(chunk_size);
        if (start >= n) return;
        const std::size_t end = std::min(n, start + chunk_size);
        for (std::size_t i = start; i < end; ++i) body(i);
      }
    });
  }
  Wait();
}

void ThreadPool::ParallelForRanges(
    std::size_t n, std::size_t min_grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;
  const std::size_t max_ranges = (n + min_grain - 1) / min_grain;
  // Two ranges per available worker gives slack for imbalance without
  // flooding the queue; "available" is this caller's partition share of
  // the pool (SetPoolPartitions), so R concurrent ranks submit ~pool-width
  // total ranges instead of R times that.
  const std::size_t width = partition_width();
  const std::size_t ranges = std::min(max_ranges, width * 2);
  if (width == 1 || ranges <= 1) {
    body(0, n);
    return;
  }
  const std::size_t step = (n + ranges - 1) / ranges;
  for (std::size_t r = 0; r < ranges; ++r) {
    const std::size_t begin = r * step;
    const std::size_t end = std::min(n, begin + step);
    if (begin >= end) break;
    Submit([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

}  // namespace dtucker
