// A small fixed-size thread pool for embarrassingly parallel loops.
//
// D-Tucker's approximation phase compresses L independent slices; with
// `num_threads > 1` the per-slice randomized SVDs run on the pool. The
// paper's protocol (and this repo's benchmarks) default to one thread —
// the pool exists so library users on real machines aren't capped.
#ifndef DTUCKER_COMMON_THREAD_POOL_H_
#define DTUCKER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dtucker {

// Process-wide count of concurrently active compute partitions (in-process
// ranks of a sharded run) sharing any pool. Default 1: a ParallelFor caller
// fans out across the whole pool. When a sharded driver runs R ranks as
// threads of this process, it brackets the run with SetPoolPartitions(R) so
// each rank's parallel loops claim only ~num_threads/R workers' worth of
// range fan-out instead of each rank flooding the full pool — R ranks that
// each split work T ways would queue R*T oversized tasks and serialize on
// each other's Wait(). Partitioning keeps the total in-flight fan-out at
// the pool width. Bitwise-safe: every determinism-sensitive caller either
// uses fixed chunk grids or per-item-independent bodies (see ForEachSlice
// and the packed-GEMM contract), so the fan-out width never changes result
// bits. Relaxed atomic; set before the ranks start, restore after they
// join.
void SetPoolPartitions(int partitions);
int PoolPartitions();

// RAII partition lease for callers that come and go concurrently (the
// serving layer's jobs): each concurrently *running* job holds one lease
// for the duration of its solve, and the effective partition count is
// max(SetPoolPartitions value, active leases). Two jobs in flight thus
// each claim ~half the pool's fan-out instead of both flooding it, and
// when the last lease drops the pool returns to whole-pool fan-out —
// without the jobs having to coordinate absolute partition counts the way
// the sharded driver (which knows its rank count up front) does. Same
// bitwise-safety argument as SetPoolPartitions: partitioning only narrows
// fan-out width, never changes result bits.
class PoolPartitionLease {
 public:
  PoolPartitionLease();
  ~PoolPartitionLease();

  PoolPartitionLease(const PoolPartitionLease&) = delete;
  PoolPartitionLease& operator=(const PoolPartitionLease&) = delete;
};

// Lease count currently held (for tests and the serve.* gauges).
int ActivePoolLeases();

class ThreadPool {
 public:
  // Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Worker-thread budget available to one ParallelFor/ParallelForRanges
  // call: the pool width divided by the active partition count (floor 1).
  // See SetPoolPartitions.
  std::size_t partition_width() const;

  // Enqueues a task; tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  // Runs body(i) for i in [0, n), partitioned across the pool, and waits.
  // When the pool has one thread (or n == 1), runs inline on the caller —
  // zero overhead and deterministic ordering for the single-thread path.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

  // Runs body(begin, end) over a partition of [0, n) into contiguous
  // ranges of at least `min_grain` elements each, and waits. Compared to
  // ParallelFor this invokes one std::function call per range instead of
  // per index, which matters for fine-grained numeric loops (BLAS row and
  // column blocks). Runs inline on the caller when only one range results.
  void ParallelForRanges(std::size_t n, std::size_t min_grain,
                         const std::function<void(std::size_t, std::size_t)>&
                             body);

  // Nanoseconds worker `i` has spent running tasks (not waiting). For the
  // metrics snapshot; relaxed reads, so a concurrently running task's time
  // appears once it completes.
  std::uint64_t WorkerBusyNanos(std::size_t i) const {
    return worker_stats_[i].busy_ns.load(std::memory_order_relaxed);
  }

 private:
  // One cache line per worker so busy-time accounting never contends.
  struct alignas(64) WorkerStat {
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void WorkerLoop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerStat[]> worker_stats_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace dtucker

#endif  // DTUCKER_COMMON_THREAD_POOL_H_
