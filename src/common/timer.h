// Wall-clock timing utilities used by benchmarks and phase instrumentation.
#ifndef DTUCKER_COMMON_TIMER_H_
#define DTUCKER_COMMON_TIMER_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace dtucker {

// A simple restartable stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates named durations, e.g. per-phase timings of a decomposition.
// Thread-safe: concurrent Add()s (e.g. from slice-parallel workers) merge
// into the same bucket under a mutex; totals() returns a snapshot copy.
class PhaseTimer {
 public:
  // Adds `seconds` to the bucket `name`.
  void Add(const std::string& name, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    totals_[name] += seconds;
  }

  // Total recorded for `name` (0 if never recorded).
  double Total(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = totals_.find(name);
    return it == totals_.end() ? 0.0 : it->second;
  }

  // Sum over all buckets.
  double GrandTotal() const {
    std::lock_guard<std::mutex> lock(mutex_);
    double s = 0;
    for (const auto& [k, v] : totals_) s += v;
    return s;
  }

  // Snapshot of all buckets at the time of the call.
  std::map<std::string, double> totals() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return totals_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    totals_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> totals_;
};

// RAII helper: adds the scope's duration to `phase_timer[name]` on exit.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string name)
      : timer_(timer), name_(std::move(name)) {}
  ~ScopedPhase() {
    if (timer_ != nullptr) timer_->Add(name_, stopwatch_.Seconds());
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;  // May be null (timing disabled).
  std::string name_;
  Timer stopwatch_;
};

}  // namespace dtucker

#endif  // DTUCKER_COMMON_TIMER_H_
