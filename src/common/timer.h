// Wall-clock timing utilities used by benchmarks and phase instrumentation.
#ifndef DTUCKER_COMMON_TIMER_H_
#define DTUCKER_COMMON_TIMER_H_

#include <chrono>
#include <map>
#include <string>

namespace dtucker {

// A simple restartable stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates named durations, e.g. per-phase timings of a decomposition.
// Not thread-safe; intended for single-threaded instrumentation.
class PhaseTimer {
 public:
  // Adds `seconds` to the bucket `name`.
  void Add(const std::string& name, double seconds) {
    totals_[name] += seconds;
  }

  // Total recorded for `name` (0 if never recorded).
  double Total(const std::string& name) const {
    auto it = totals_.find(name);
    return it == totals_.end() ? 0.0 : it->second;
  }

  // Sum over all buckets.
  double GrandTotal() const {
    double s = 0;
    for (const auto& [k, v] : totals_) s += v;
    return s;
  }

  const std::map<std::string, double>& totals() const { return totals_; }

  void Reset() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

// RAII helper: adds the scope's duration to `phase_timer[name]` on exit.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string name)
      : timer_(timer), name_(std::move(name)) {}
  ~ScopedPhase() {
    if (timer_ != nullptr) timer_->Add(name_, stopwatch_.Seconds());
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;  // May be null (timing disabled).
  std::string name_;
  Timer stopwatch_;
};

}  // namespace dtucker

#endif  // DTUCKER_COMMON_TIMER_H_
