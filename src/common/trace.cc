#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>

namespace dtucker {

namespace internal_trace {

std::atomic<bool> g_trace_enabled{false};

namespace {

std::atomic<std::size_t> g_buffer_capacity{1u << 15};

std::uint64_t NowNanos() {
  // The epoch is fixed the first time this runs (under SetTraceEnabled's
  // call, before any span can record), so exported timestamps start near 0.
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

// Fixed-capacity ring of TraceEvents, written only by its owning thread.
// The registry keeps a shared_ptr so events survive thread exit.
class ThreadTraceBuffer {
 public:
  ThreadTraceBuffer(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), mask_(capacity - 1), ring_(capacity) {}

  void Push(const TraceEvent& ev) {
    ring_[head_ & mask_] = ev;
    ++head_;
  }

  void Clear() { head_ = 0; }

  std::uint32_t tid() const { return tid_; }
  std::size_t size() const { return head_ < ring_.size() ? head_ : ring_.size(); }
  std::uint64_t dropped() const {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }

  // Oldest-first copy of the buffered events.
  void AppendTo(std::vector<SnapshotEvent>* out) const {
    const std::size_t n = size();
    const std::size_t begin = head_ - n;
    for (std::size_t i = 0; i < n; ++i) {
      out->push_back(SnapshotEvent{tid_, ring_[(begin + i) & mask_]});
    }
  }

 private:
  const std::uint32_t tid_;
  const std::size_t mask_;
  std::size_t head_ = 0;  // Monotonic; ring index is head_ & mask_.
  std::vector<TraceEvent> ring_;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* const kRegistry = new BufferRegistry;
  return *kRegistry;
}

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

ThreadTraceBuffer* CurrentThreadBuffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> tls_buffer = [] {
    BufferRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto buf = std::make_shared<ThreadTraceBuffer>(
        reg.next_tid++, g_buffer_capacity.load(std::memory_order_relaxed));
    reg.buffers.push_back(buf);
    return buf;
  }();
  return tls_buffer.get();
}

thread_local std::uint32_t tls_depth = 0;

void JsonEscapeTo(const char* s, std::string* out) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::uint64_t SpanBegin() {
  ++tls_depth;
  return NowNanos();
}

void SpanEnd(const char* name, std::uint64_t start_ns) {
  const std::uint64_t end_ns = NowNanos();
  --tls_depth;
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.depth = tls_depth;
  CurrentThreadBuffer()->Push(ev);
}

std::vector<SnapshotEvent> SnapshotEvents() {
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<SnapshotEvent> out;
  for (const auto& buf : reg.buffers) buf->AppendTo(&out);
  return out;
}

}  // namespace internal_trace

void SetTraceEnabled(bool enabled) {
  if (enabled) {
    // Fix the epoch before the first span can observe the flag, so exported
    // timestamps start near zero.
    (void)internal_trace::NowNanos();
  }
  internal_trace::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceBufferCapacity(std::size_t events) {
  if (events == 0) events = 1;
  internal_trace::g_buffer_capacity.store(
      internal_trace::RoundUpPow2(events), std::memory_order_relaxed);
}

void ClearTrace() {
  auto& reg = internal_trace::Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) buf->Clear();
}

std::size_t TraceEventCount() {
  auto& reg = internal_trace::Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) n += buf->size();
  return n;
}

std::uint64_t TraceDroppedEventCount() {
  auto& reg = internal_trace::Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t n = 0;
  for (const auto& buf : reg.buffers) n += buf->dropped();
  return n;
}

void ExportChromeTrace(std::ostream& os) {
  const std::vector<internal_trace::SnapshotEvent> events =
      internal_trace::SnapshotEvents();
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"dtucker\"},";
  out += "\"traceEvents\":[";
  out +=
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"dtucker\"}}";
  char buf[160];
  for (const auto& se : events) {
    out += ",\n{\"name\":\"";
    internal_trace::JsonEscapeTo(se.event.name, &out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"dtucker\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%u}}",
                  se.tid,
                  static_cast<double>(se.event.start_ns) * 1e-3,
                  static_cast<double>(se.event.dur_ns) * 1e-3, se.event.depth);
    out += buf;
  }
  out += "]}\n";
  os << out;
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream os(path, std::ios::out | std::ios::trunc);
  if (!os.is_open()) {
    return Status::IoError("cannot open trace output '" + path + "'");
  }
  ExportChromeTrace(os);
  os.flush();
  if (!os.good()) {
    return Status::IoError("failed writing trace output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace dtucker
