#include "common/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>

namespace dtucker {

namespace internal_trace {

std::atomic<bool> g_trace_enabled{false};

namespace {

std::atomic<std::size_t> g_buffer_capacity{1u << 15};
std::atomic<int> g_default_rank{0};
std::atomic<std::uint64_t> g_run_id{0};
std::atomic<std::int64_t> g_clock_offset_ns{0};

std::uint64_t NowNanos() {
  // The epoch is fixed the first time this runs (under SetTraceEnabled's
  // call, before any span can record), so exported timestamps start near 0.
  // fork()ed children inherit the parent's epoch, keeping all rank
  // processes of one run on a shared time axis.
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

// Fixed-capacity ring of TraceEvents, written only by its owning thread.
// The registry keeps a shared_ptr so events survive thread exit. The rank
// tag is atomic because the owning thread retags while the exporter reads.
class ThreadTraceBuffer {
 public:
  ThreadTraceBuffer(std::uint32_t tid, std::size_t capacity)
      : tid_(tid),
        mask_(capacity - 1),
        rank_(g_default_rank.load(std::memory_order_relaxed)),
        ring_(capacity) {}

  void Push(const TraceEvent& ev) {
    ring_[head_ & mask_] = ev;
    ++head_;
  }

  void Clear() { head_ = 0; }

  std::uint32_t tid() const { return tid_; }
  int rank() const { return rank_.load(std::memory_order_relaxed); }
  void set_rank(int rank) { rank_.store(rank, std::memory_order_relaxed); }
  std::size_t size() const { return head_ < ring_.size() ? head_ : ring_.size(); }
  std::uint64_t dropped() const {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }

  // Oldest-first copy of the buffered events.
  void AppendTo(std::vector<SnapshotEvent>* out) const {
    const int r = rank();
    const std::size_t n = size();
    const std::size_t begin = head_ - n;
    for (std::size_t i = 0; i < n; ++i) {
      out->push_back(SnapshotEvent{tid_, r, ring_[(begin + i) & mask_]});
    }
  }

 private:
  const std::uint32_t tid_;
  const std::size_t mask_;
  std::atomic<int> rank_;
  std::size_t head_ = 0;  // Monotonic; ring index is head_ & mask_.
  std::vector<TraceEvent> ring_;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* const kRegistry = new BufferRegistry;
  return *kRegistry;
}

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

ThreadTraceBuffer* CurrentThreadBuffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> tls_buffer = [] {
    BufferRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto buf = std::make_shared<ThreadTraceBuffer>(
        reg.next_tid++, g_buffer_capacity.load(std::memory_order_relaxed));
    reg.buffers.push_back(buf);
    return buf;
  }();
  return tls_buffer.get();
}

thread_local std::uint32_t tls_depth = 0;

void JsonEscapeTo(const char* s, std::string* out) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

// One thread's buffer, copied out under the registry lock so serialization
// runs without it.
struct BufferSnapshot {
  std::uint32_t tid = 0;
  int rank = 0;
  std::uint64_t dropped = 0;
  std::vector<SnapshotEvent> events;
};

// filter_rank == -1 keeps every buffer; otherwise only buffers currently
// tagged with that rank.
std::vector<BufferSnapshot> SnapshotBuffers(int filter_rank) {
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<BufferSnapshot> out;
  for (const auto& buf : reg.buffers) {
    if (filter_rank >= 0 && buf->rank() != filter_rank) continue;
    BufferSnapshot snap;
    snap.tid = buf->tid();
    snap.rank = buf->rank();
    snap.dropped = buf->dropped();
    buf->AppendTo(&snap.events);
    out.push_back(std::move(snap));
  }
  return out;
}

void AppendSep(bool* first, std::string* out) {
  if (!*first) out->append(",\n");
  *first = false;
}

// Perfetto lane metadata for one rank: process name + sort order.
void AppendLaneMetadata(int rank, std::uint64_t run_id, bool* first,
                        std::string* out) {
  char buf[192];
  AppendSep(first, out);
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
                "\"tid\":0,\"args\":{\"name\":\"dtucker run %" PRIu64
                " rank %d\"}}",
                rank, run_id, rank);
  out->append(buf);
  AppendSep(first, out);
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":%d,"
                "\"tid\":0,\"args\":{\"sort_index\":%d}}",
                rank, rank);
  out->append(buf);
}

// One "X" event, plus the matching flow event when the span is flow-tagged.
// The clock offset maps this process's epoch onto rank 0's.
void AppendEventJson(const SnapshotEvent& se, std::int64_t offset_ns,
                     bool* first, std::string* out) {
  const double ts_us =
      static_cast<double>(static_cast<std::int64_t>(se.event.start_ns) +
                          offset_ns) *
      1e-3;
  const double dur_us = static_cast<double>(se.event.dur_ns) * 1e-3;
  char buf[192];
  AppendSep(first, out);
  out->append("{\"name\":\"");
  JsonEscapeTo(se.event.name, out);
  std::snprintf(buf, sizeof(buf),
                "\",\"cat\":\"dtucker\",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,"
                "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%u}}",
                se.rank, se.tid, ts_us, dur_us, se.event.depth);
  out->append(buf);
  if (se.event.flow_phase != 0 && se.event.flow_id != 0) {
    // Bind the flow hop to the middle of its span ("bp":"e" = enclosing
    // slice), so Perfetto attaches the arrow to the collective's box.
    AppendSep(first, out);
    out->append("{\"name\":\"");
    JsonEscapeTo(se.event.name, out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"comm.flow\",\"ph\":\"%c\",\"bp\":\"e\","
                  "\"id\":\"%" PRIu64
                  "\",\"pid\":%d,\"tid\":%u,\"ts\":%.3f}",
                  se.event.flow_phase, se.event.flow_id, se.rank, se.tid,
                  ts_us + dur_us * 0.5);
    out->append(buf);
  }
}

// Serializes a buffer set as a comma-joined fragment: lane metadata for
// every rank present (plus `forced_rank`, so empty ranks still get a
// lane), per-tid drop accounting, then the events.
std::string SerializeFragment(const std::vector<BufferSnapshot>& buffers,
                              int forced_rank) {
  const std::uint64_t run_id = g_run_id.load(std::memory_order_relaxed);
  const std::int64_t offset_ns =
      g_clock_offset_ns.load(std::memory_order_relaxed);
  std::string out;
  std::size_t total_events = 0;
  for (const BufferSnapshot& b : buffers) total_events += b.events.size();
  out.reserve(total_events * 112 + 256);
  bool first = true;

  std::vector<int> ranks_seen;
  if (forced_rank >= 0) ranks_seen.push_back(forced_rank);
  for (const BufferSnapshot& b : buffers) {
    bool seen = false;
    for (int r : ranks_seen) seen = seen || r == b.rank;
    if (!seen) ranks_seen.push_back(b.rank);
  }
  if (ranks_seen.empty()) {
    ranks_seen.push_back(g_default_rank.load(std::memory_order_relaxed));
  }
  for (int r : ranks_seen) AppendLaneMetadata(r, run_id, &first, &out);

  char buf[160];
  for (const BufferSnapshot& b : buffers) {
    if (b.dropped == 0) continue;
    AppendSep(&first, &out);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"name\":\"trace_buffer_dropped\","
                  "\"pid\":%d,\"tid\":%u,\"args\":{\"dropped\":%" PRIu64 "}}",
                  b.rank, b.tid, b.dropped);
    out.append(buf);
  }

  for (const BufferSnapshot& b : buffers) {
    for (const SnapshotEvent& se : b.events) {
      AppendEventJson(se, offset_ns, &first, &out);
    }
  }
  return out;
}

}  // namespace

std::uint64_t SpanBegin() {
  ++tls_depth;
  return NowNanos();
}

void SpanEnd(const char* name, std::uint64_t start_ns) {
  const std::uint64_t end_ns = NowNanos();
  --tls_depth;
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.depth = tls_depth;
  CurrentThreadBuffer()->Push(ev);
}

void SpanEndFlow(const char* name, std::uint64_t start_ns,
                 std::uint64_t flow_id, char flow_phase) {
  const std::uint64_t end_ns = NowNanos();
  --tls_depth;
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.depth = tls_depth;
  ev.flow_id = flow_id;
  ev.flow_phase = flow_phase;
  CurrentThreadBuffer()->Push(ev);
}

std::vector<SnapshotEvent> SnapshotEvents() {
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<SnapshotEvent> out;
  for (const auto& buf : reg.buffers) buf->AppendTo(&out);
  return out;
}

}  // namespace internal_trace

void SetTraceEnabled(bool enabled) {
  if (enabled) {
    // Fix the epoch before the first span can observe the flag, so exported
    // timestamps start near zero.
    (void)internal_trace::NowNanos();
  }
  internal_trace::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t TraceNowNs() { return internal_trace::NowNanos(); }

void SetTraceBufferCapacity(std::size_t events) {
  if (events == 0) events = 1;
  internal_trace::g_buffer_capacity.store(
      internal_trace::RoundUpPow2(events), std::memory_order_relaxed);
}

void ClearTrace() {
  auto& reg = internal_trace::Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) buf->Clear();
}

std::size_t TraceEventCount() {
  auto& reg = internal_trace::Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) n += buf->size();
  return n;
}

std::uint64_t TraceDroppedEventCount() {
  auto& reg = internal_trace::Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t n = 0;
  for (const auto& buf : reg.buffers) n += buf->dropped();
  return n;
}

void SetTraceRankForCurrentThread(int rank) {
  internal_trace::CurrentThreadBuffer()->set_rank(rank);
}

void SetTraceDefaultRank(int rank) {
  internal_trace::g_default_rank.store(rank, std::memory_order_relaxed);
}

void ResetTraceForChildProcess(int rank) {
  internal_trace::g_default_rank.store(rank, std::memory_order_relaxed);
  auto& reg = internal_trace::Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    buf->Clear();
    buf->set_rank(rank);
  }
}

void SetTraceRunId(std::uint64_t run_id) {
  internal_trace::g_run_id.store(run_id, std::memory_order_relaxed);
}

std::uint64_t TraceRunId() {
  return internal_trace::g_run_id.load(std::memory_order_relaxed);
}

void SetTraceClockOffsetNs(std::int64_t offset_ns) {
  internal_trace::g_clock_offset_ns.store(offset_ns,
                                          std::memory_order_relaxed);
}

std::int64_t TraceClockOffsetNs() {
  return internal_trace::g_clock_offset_ns.load(std::memory_order_relaxed);
}

void ExportChromeTrace(std::ostream& os) {
  const std::vector<internal_trace::BufferSnapshot> buffers =
      internal_trace::SnapshotBuffers(-1);
  std::uint64_t dropped_total = 0;
  for (const auto& b : buffers) dropped_total += b.dropped;
  char buf[128];
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"dtucker\",";
  std::snprintf(buf, sizeof(buf),
                "\"run_id\":\"%" PRIu64 "\",\"dropped_events\":%" PRIu64 "},",
                TraceRunId(), dropped_total);
  out += buf;
  out += "\"traceEvents\":[";
  out += internal_trace::SerializeFragment(buffers, -1);
  out += "]}\n";
  os << out;
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream os(path, std::ios::out | std::ios::trunc);
  if (!os.is_open()) {
    return Status::IoError("cannot open trace output '" + path + "'");
  }
  ExportChromeTrace(os);
  os.flush();
  if (!os.good()) {
    return Status::IoError("failed writing trace output '" + path + "'");
  }
  return Status::OK();
}

std::string SerializeChromeTraceEventsForRank(int rank) {
  return internal_trace::SerializeFragment(
      internal_trace::SnapshotBuffers(rank), rank);
}

std::string BuildMergedChromeTrace(const std::vector<std::string>& fragments,
                                   std::uint64_t run_id) {
  std::string out;
  std::size_t total = 256;
  for (const std::string& f : fragments) total += f.size() + 2;
  out.reserve(total);
  char buf[128];
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"dtucker\",";
  std::snprintf(buf, sizeof(buf),
                "\"run_id\":\"%" PRIu64 "\",\"world_size\":%zu},",
                run_id, fragments.size());
  out += buf;
  out += "\"traceEvents\":[";
  bool first = true;
  for (const std::string& f : fragments) {
    if (f.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += f;
  }
  out += "]}\n";
  return out;
}

}  // namespace dtucker
