// Process-wide span tracer with Chrome-trace (chrome://tracing / Perfetto)
// JSON export, rank-aware for multi-rank runs.
//
// Usage: wrap a scope in `TraceSpan span("name");` (or DT_TRACE_SPAN("name")).
// When tracing is disabled — the default — a span costs one relaxed atomic
// load and two branch-predicted tests: no clock read, no allocation, no
// store. When enabled via SetTraceEnabled(true), each span records a
// {name, start, duration, depth} event into a fixed-capacity per-thread
// ring buffer (old events are overwritten when a thread's buffer wraps, so
// long runs degrade to "most recent window" instead of unbounded memory).
// WriteChromeTrace() serializes every thread's events as `trace_event`
// "X" (complete) events; Perfetto reconstructs the nesting from the
// timestamps within each tid.
//
// Multi-rank runs: each recording thread can be tagged with a rank
// (SetTraceRankForCurrentThread); the rank becomes the Chrome-trace `pid`,
// so every rank gets its own lane in Perfetto. Spans may carry a flow id +
// phase ('s' start / 't' step / 'f' finish) — collectives use a sequence
// number agreed by construction across ranks, and the exporter emits
// matching Perfetto flow events that draw one arrow through the rank-local
// spans of the same collective call. SetTraceClockOffsetNs() shifts this
// process's timestamps at export time so traces from independently started
// rank processes align on rank 0's clock (the offset is estimated with a
// symmetric ping-pong against rank 0 at communicator setup; see
// comm/telemetry_gather.h). SerializeChromeTraceEventsForRank() +
// BuildMergedChromeTrace() let rank 0 stitch per-rank fragments into one
// Perfetto-loadable file.
//
// Span names must be string literals (or otherwise outlive the export):
// only the pointer is stored, which is what keeps the record path
// allocation-free.
//
// Thread safety: spans may begin and end on any thread concurrently (each
// thread writes only its own buffer; buffer registration takes a mutex
// once per thread). Export/Clear must not run concurrently with in-flight
// spans — quiesce (join workers / finish the traced region) first.
#ifndef DTUCKER_COMMON_TRACE_H_
#define DTUCKER_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace dtucker {

namespace internal_trace {

extern std::atomic<bool> g_trace_enabled;

// One recorded span. Timestamps are steady-clock nanoseconds since the
// trace epoch (the first SetTraceEnabled(true) of the process).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;  // Nesting depth on the recording thread; 0 = root.
  std::uint64_t flow_id = 0;  // Nonzero: this span is one hop of a flow.
  char flow_phase = 0;        // 's' (start), 't' (step), or 'f' (finish).
};

// A TraceEvent paired with the stable id of the thread that recorded it
// and the rank its buffer was tagged with at snapshot time.
struct SnapshotEvent {
  std::uint32_t tid = 0;
  int rank = 0;
  TraceEvent event;
};

// Out-of-line slow path of TraceSpan (only reached when tracing is on).
// SpanBegin bumps the thread's depth and returns the start timestamp;
// SpanEnd pops the depth and pushes the completed event.
std::uint64_t SpanBegin();
void SpanEnd(const char* name, std::uint64_t start_ns);
void SpanEndFlow(const char* name, std::uint64_t start_ns,
                 std::uint64_t flow_id, char flow_phase);

// All currently buffered events, oldest-first per thread. For tests and
// the JSON exporter; same quiescence requirement as the exporter.
std::vector<SnapshotEvent> SnapshotEvents();

}  // namespace internal_trace

// Whether spans are currently being recorded.
inline bool TraceEnabled() {
  return internal_trace::g_trace_enabled.load(std::memory_order_relaxed);
}

// Turns recording on/off. The first enable fixes the trace epoch.
void SetTraceEnabled(bool enabled);

// Nanoseconds since the trace epoch (fixing the epoch if it is not fixed
// yet). This is the clock spans record with; the clock-offset estimator
// exchanges these values across ranks.
std::uint64_t TraceNowNs();

// Per-thread ring capacity (events) for buffers created *after* this call;
// rounded up to a power of two. Default 32768 (~1.5 MiB per thread). Also
// serves as the test hook for forcing tiny rings to exercise overflow
// accounting.
void SetTraceBufferCapacity(std::size_t events);

// Drops all buffered events (buffers stay registered and keep their
// capacity). Requires quiescence like the exporter.
void ClearTrace();

// Number of buffered events across all threads, and the number lost to
// ring-buffer wrap-around since the last ClearTrace().
std::size_t TraceEventCount();
std::uint64_t TraceDroppedEventCount();

// --- Rank / run identity ----------------------------------------------------

// Tags the calling thread's trace buffer with a rank: its events export
// under Chrome-trace pid == rank. Threads never tagged use the process
// default (below). Safe to call at any time from the owning thread.
void SetTraceRankForCurrentThread(int rank);

// Rank assigned to buffers that were never explicitly tagged (default 0).
// Covers shared BLAS-pool workers, which serve whichever rank scheduled
// the task: in thread mode they stay on the driver's rank-0 lane; in fork
// mode each child process sets its own default so its workers land on the
// child's lane.
void SetTraceDefaultRank(int rank);

// Post-fork(2) reset for a child rank process: drops every event inherited
// from the parent (they belong to the parent's lanes), retags all existing
// buffers, and sets the default rank. The trace epoch is inherited from
// the parent, so parent and child timestamps stay on one axis.
void ResetTraceForChildProcess(int rank);

// Identifies this run in exported traces (otherData.run_id and the lane
// names). Drivers set one id on every rank of a run.
void SetTraceRunId(std::uint64_t run_id);
std::uint64_t TraceRunId();

// Export-time shift (ns, may be negative) added to every timestamp of this
// process, mapping the local trace epoch onto rank 0's. Estimated at
// communicator setup; identity (0) for single-process runs.
void SetTraceClockOffsetNs(std::int64_t offset_ns);
std::int64_t TraceClockOffsetNs();

// --- Export -----------------------------------------------------------------

// Serializes the buffered events in Chrome trace_event JSON ("X" complete
// events, ts/dur in microseconds; flow events for flow-tagged spans; one
// pid lane per rank seen). otherData carries run_id and the exact total of
// ring-overflow drops; each overflowing thread additionally gets a
// per-tid "trace_buffer_dropped" metadata event. The output loads directly
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
void ExportChromeTrace(std::ostream& os);
Status WriteChromeTrace(const std::string& path);

// Fragment of Chrome trace JSON (comma-joined event objects, no enclosing
// array) holding only the buffers tagged with `rank`: lane metadata,
// X events, flow events, and drop accounting, with the clock offset
// applied. Each rank produces its own fragment and ships it to rank 0.
std::string SerializeChromeTraceEventsForRank(int rank);

// Joins per-rank fragments (index == rank; empty fragments allowed) into
// one complete Chrome trace document.
std::string BuildMergedChromeTrace(const std::vector<std::string>& fragments,
                                   std::uint64_t run_id);

// RAII span. Construction samples the clock only when tracing is enabled;
// destruction records the event into the calling thread's ring buffer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      start_ns_ = internal_trace::SpanBegin();
    }
  }

  // Flow-tagged span: one hop of the cross-rank flow `flow_id`, with
  // phase 's' on the first rank, 't' in the middle, 'f' on the last.
  TraceSpan(const char* name, std::uint64_t flow_id, char flow_phase) {
    if (TraceEnabled()) {
      name_ = name;
      flow_id_ = flow_id;
      flow_phase_ = flow_phase;
      start_ns_ = internal_trace::SpanBegin();
    }
  }

  ~TraceSpan() {
    if (name_ != nullptr) {
      if (flow_phase_ != 0) {
        internal_trace::SpanEndFlow(name_, start_ns_, flow_id_, flow_phase_);
      } else {
        internal_trace::SpanEnd(name_, start_ns_);
      }
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // Null when the span started disabled.
  std::uint64_t start_ns_ = 0;
  std::uint64_t flow_id_ = 0;
  char flow_phase_ = 0;
};

#define DT_TRACE_CONCAT_INNER(a, b) a##b
#define DT_TRACE_CONCAT(a, b) DT_TRACE_CONCAT_INNER(a, b)
// Anonymous scope span: DT_TRACE_SPAN("phase.name");
#define DT_TRACE_SPAN(name) \
  ::dtucker::TraceSpan DT_TRACE_CONCAT(dt_trace_span_, __LINE__)(name)

}  // namespace dtucker

#endif  // DTUCKER_COMMON_TRACE_H_
