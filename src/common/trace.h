// Process-wide span tracer with Chrome-trace (chrome://tracing / Perfetto)
// JSON export.
//
// Usage: wrap a scope in `TraceSpan span("name");` (or DT_TRACE_SPAN("name")).
// When tracing is disabled — the default — a span costs one relaxed atomic
// load and two branch-predicted tests: no clock read, no allocation, no
// store. When enabled via SetTraceEnabled(true), each span records a
// {name, start, duration, depth} event into a fixed-capacity per-thread
// ring buffer (old events are overwritten when a thread's buffer wraps, so
// long runs degrade to "most recent window" instead of unbounded memory).
// WriteChromeTrace() serializes every thread's events as `trace_event`
// "X" (complete) events; Perfetto reconstructs the nesting from the
// timestamps within each tid.
//
// Span names must be string literals (or otherwise outlive the export):
// only the pointer is stored, which is what keeps the record path
// allocation-free.
//
// Thread safety: spans may begin and end on any thread concurrently (each
// thread writes only its own buffer; buffer registration takes a mutex
// once per thread). Export/Clear must not run concurrently with in-flight
// spans — quiesce (join workers / finish the traced region) first.
#ifndef DTUCKER_COMMON_TRACE_H_
#define DTUCKER_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace dtucker {

namespace internal_trace {

extern std::atomic<bool> g_trace_enabled;

// One recorded span. Timestamps are steady-clock nanoseconds since the
// trace epoch (the first SetTraceEnabled(true) of the process).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;  // Nesting depth on the recording thread; 0 = root.
};

// A TraceEvent paired with the stable id of the thread that recorded it.
struct SnapshotEvent {
  std::uint32_t tid = 0;
  TraceEvent event;
};

// Out-of-line slow path of TraceSpan (only reached when tracing is on).
// SpanBegin bumps the thread's depth and returns the start timestamp;
// SpanEnd pops the depth and pushes the completed event.
std::uint64_t SpanBegin();
void SpanEnd(const char* name, std::uint64_t start_ns);

// All currently buffered events, oldest-first per thread. For tests and
// the JSON exporter; same quiescence requirement as the exporter.
std::vector<SnapshotEvent> SnapshotEvents();

}  // namespace internal_trace

// Whether spans are currently being recorded.
inline bool TraceEnabled() {
  return internal_trace::g_trace_enabled.load(std::memory_order_relaxed);
}

// Turns recording on/off. The first enable fixes the trace epoch.
void SetTraceEnabled(bool enabled);

// Per-thread ring capacity (events) for buffers created *after* this call;
// rounded up to a power of two. Default 32768 (~1 MiB per thread).
void SetTraceBufferCapacity(std::size_t events);

// Drops all buffered events (buffers stay registered and keep their
// capacity). Requires quiescence like the exporter.
void ClearTrace();

// Number of buffered events across all threads, and the number lost to
// ring-buffer wrap-around since the last ClearTrace().
std::size_t TraceEventCount();
std::uint64_t TraceDroppedEventCount();

// Serializes the buffered events in Chrome trace_event JSON ("X" complete
// events, ts/dur in microseconds). The output loads directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
void ExportChromeTrace(std::ostream& os);
Status WriteChromeTrace(const std::string& path);

// RAII span. Construction samples the clock only when tracing is enabled;
// destruction records the event into the calling thread's ring buffer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      start_ns_ = internal_trace::SpanBegin();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) internal_trace::SpanEnd(name_, start_ns_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // Null when the span started disabled.
  std::uint64_t start_ns_ = 0;
};

#define DT_TRACE_CONCAT_INNER(a, b) a##b
#define DT_TRACE_CONCAT(a, b) DT_TRACE_CONCAT_INNER(a, b)
// Anonymous scope span: DT_TRACE_SPAN("phase.name");
#define DT_TRACE_SPAN(name) \
  ::dtucker::TraceSpan DT_TRACE_CONCAT(dt_trace_span_, __LINE__)(name)

}  // namespace dtucker

#endif  // DTUCKER_COMMON_TRACE_H_
