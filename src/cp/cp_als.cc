#include "cp/cp_als.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/timer.h"
#include "linalg/blas.h"
#include "linalg/lu.h"
#include "tensor/tensor_ops.h"
#include "tucker/tucker_als.h"

namespace dtucker {

namespace {

// Khatri-Rao of all factors but `skip`, highest mode slowest (matching the
// Kolda unfolding identity X_(n) ~= A_n diag(w) KR(...)^T).
Matrix KhatriRaoExcept(const std::vector<Matrix>& factors, Index skip) {
  Matrix kr;
  bool first = true;
  for (Index n = static_cast<Index>(factors.size()) - 1; n >= 0; --n) {
    if (n == skip) continue;
    if (first) {
      kr = factors[static_cast<std::size_t>(n)];
      first = false;
    } else {
      kr = KhatriRao(kr, factors[static_cast<std::size_t>(n)]);
    }
  }
  DT_CHECK(!first) << "need at least two modes";
  return kr;
}

// Hadamard product of the Gram matrices of all factors but `skip`.
Matrix GramHadamardExcept(const std::vector<Matrix>& factors, Index skip) {
  Matrix v;
  bool first = true;
  for (std::size_t n = 0; n < factors.size(); ++n) {
    if (static_cast<Index>(n) == skip) continue;
    Matrix g = Gram(factors[n]);
    if (first) {
      v = std::move(g);
      first = false;
    } else {
      for (Index i = 0; i < v.size(); ++i) v.data()[i] *= g.data()[i];
    }
  }
  return v;
}

// Normalizes each column to unit norm, returning the norms.
std::vector<double> NormalizeColumns(Matrix* a) {
  std::vector<double> norms(static_cast<std::size_t>(a->cols()));
  for (Index j = 0; j < a->cols(); ++j) {
    double nrm = Nrm2(a->col_data(j), a->rows());
    norms[static_cast<std::size_t>(j)] = nrm;
    if (nrm > 0) Scal(1.0 / nrm, a->col_data(j), a->rows());
  }
  return norms;
}

}  // namespace

Tensor CpDecomposition::Reconstruct() const {
  DT_CHECK_GE(order(), 2) << "need at least two modes";
  // X_(0) = A_0 diag(w) KR(A_{N-1}, ..., A_1)^T, then fold.
  Matrix kr = KhatriRaoExcept(factors, 0);
  Matrix scaled = factors[0];
  for (Index j = 0; j < scaled.cols(); ++j) {
    Scal(weights[static_cast<std::size_t>(j)], scaled.col_data(j),
         scaled.rows());
  }
  Matrix unf = MultiplyNT(scaled, kr);
  std::vector<Index> shape;
  for (const auto& f : factors) shape.push_back(f.rows());
  return Fold(unf, 0, shape);
}

double CpDecomposition::RelativeErrorAgainst(const Tensor& x) const {
  return RelativeError(x, Reconstruct());
}

std::size_t CpDecomposition::ByteSize() const {
  std::size_t bytes = weights.size() * sizeof(double);
  for (const auto& f : factors) bytes += f.ByteSize();
  return bytes;
}

Result<CpDecomposition> CpAls(const Tensor& x, const CpAlsOptions& options,
                              TuckerStats* stats) {
  const Index order = x.order();
  if (order < 2) {
    return Status::InvalidArgument("CP needs an order >= 2 tensor");
  }
  if (options.rank < 1) {
    return Status::InvalidArgument("CP rank must be positive");
  }
  const double x_norm2 = x.SquaredNorm();

  // Random init with normalized columns.
  Rng rng(options.seed);
  CpDecomposition dec;
  dec.factors.resize(static_cast<std::size_t>(order));
  for (Index n = 0; n < order; ++n) {
    dec.factors[static_cast<std::size_t>(n)] =
        Matrix::GaussianRandom(x.dim(n), options.rank, rng);
    NormalizeColumns(&dec.factors[static_cast<std::size_t>(n)]);
  }
  dec.weights.assign(static_cast<std::size_t>(options.rank), 1.0);

  Timer iterate_timer;
  double prev_error = 1.0;
  int it = 0;
  Matrix last_mttkrp;  // MTTKRP of the final mode, reused for the fit.
  for (; it < options.max_iterations; ++it) {
    for (Index n = 0; n < order; ++n) {
      Matrix kr = KhatriRaoExcept(dec.factors, n);
      Matrix unf = Unfold(x, n);
      Matrix mttkrp = Multiply(unf, kr);  // I_n x R.
      Matrix v = GramHadamardExcept(dec.factors, n);
      // A_n = MTTKRP * V^+; V is symmetric PSD, solve V A^T = MTTKRP^T.
      Result<Matrix> solved = SolveLu(v, mttkrp.Transposed());
      if (!solved.ok()) {
        // Degenerate component collision: nudge with a tiny ridge.
        for (Index i = 0; i < v.rows(); ++i) v(i, i) += 1e-10;
        solved = SolveLu(v, mttkrp.Transposed());
        if (!solved.ok()) return solved.status();
      }
      dec.factors[static_cast<std::size_t>(n)] =
          solved.value().Transposed();
      dec.weights =
          NormalizeColumns(&dec.factors[static_cast<std::size_t>(n)]);
      if (n == order - 1) last_mttkrp = std::move(mttkrp);
    }
    // Fit via the standard identity:
    //   ||X^||^2   = w^T (Hadamard_n A_n^T A_n) w
    //   <X, X^>    = sum_j w_j * <mttkrp_N[:,j], a_N[:,j]>.
    Matrix all_gram = GramHadamardExcept(dec.factors, /*skip=*/-1);
    double model_norm2 = 0;
    for (Index i = 0; i < options.rank; ++i) {
      for (Index j = 0; j < options.rank; ++j) {
        model_norm2 += dec.weights[static_cast<std::size_t>(i)] *
                       dec.weights[static_cast<std::size_t>(j)] *
                       all_gram(i, j);
      }
    }
    const Matrix& last_factor =
        dec.factors[static_cast<std::size_t>(order - 1)];
    double inner = 0;
    for (Index j = 0; j < options.rank; ++j) {
      inner += dec.weights[static_cast<std::size_t>(j)] *
               Dot(last_mttkrp.col_data(j), last_factor.col_data(j),
                   last_factor.rows());
    }
    const double residual =
        std::max(0.0, x_norm2 - 2.0 * inner + model_norm2);
    const double error = x_norm2 > 0 ? residual / x_norm2 : 0.0;
    if (stats != nullptr) stats->error_history.push_back(error);
    const double delta = std::fabs(prev_error - error);
    prev_error = error;
    if (delta < options.tolerance) {
      ++it;
      break;
    }
  }
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
  }

  // Sort components by weight, descending.
  std::vector<Index> order_idx(static_cast<std::size_t>(options.rank));
  std::iota(order_idx.begin(), order_idx.end(), Index{0});
  std::sort(order_idx.begin(), order_idx.end(), [&](Index a, Index b) {
    return dec.weights[static_cast<std::size_t>(a)] >
           dec.weights[static_cast<std::size_t>(b)];
  });
  CpDecomposition sorted;
  sorted.weights.resize(dec.weights.size());
  sorted.factors.resize(dec.factors.size());
  for (std::size_t n = 0; n < dec.factors.size(); ++n) {
    sorted.factors[n] = Matrix(dec.factors[n].rows(), options.rank);
  }
  for (Index j = 0; j < options.rank; ++j) {
    const Index src = order_idx[static_cast<std::size_t>(j)];
    sorted.weights[static_cast<std::size_t>(j)] =
        dec.weights[static_cast<std::size_t>(src)];
    for (std::size_t n = 0; n < dec.factors.size(); ++n) {
      sorted.factors[n].SetBlock(0, j, dec.factors[n].Col(src));
    }
  }
  return sorted;
}

}  // namespace dtucker
