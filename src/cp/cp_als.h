// CP (CANDECOMP/PARAFAC) decomposition via ALS.
//
// The other classical tensor factorization next to Tucker: X is
// approximated by a sum of R rank-one terms,
//   X ~= sum_r weights[r] * a_r^(1) o a_r^(2) o ... o a_r^(N),
// with unit-norm factor columns. Shipped so the library covers both
// classical models (the paper's related-work family includes several
// block-wise CP systems); also exercises the Khatri-Rao kernels.
#ifndef DTUCKER_CP_CP_ALS_H_
#define DTUCKER_CP_CP_ALS_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "tensor/tensor.h"
#include "tucker/tucker.h"

namespace dtucker {

struct CpDecomposition {
  std::vector<Matrix> factors;  // factors[n] is I_n x R, unit-norm columns.
  std::vector<double> weights;  // R component weights, descending.

  Index order() const { return static_cast<Index>(factors.size()); }
  Index rank() const {
    return factors.empty() ? 0 : factors.front().cols();
  }

  // Dense reconstruction (O(prod I_n * R)).
  Tensor Reconstruct() const;
  double RelativeErrorAgainst(const Tensor& x) const;
  std::size_t ByteSize() const;
};

struct CpAlsOptions {
  Index rank = 10;
  int max_iterations = 50;
  double tolerance = 1e-4;  // Stop on relative-error change below this.
  uint64_t seed = 42;
};

// CP-ALS with random orthonormal-ish initialization. `stats` (optional)
// reuses TuckerStats for iteration counts and error history.
Result<CpDecomposition> CpAls(const Tensor& x, const CpAlsOptions& options,
                              TuckerStats* stats = nullptr);

}  // namespace dtucker

#endif  // DTUCKER_CP_CP_ALS_H_
