#include "data/csv_loader.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

namespace dtucker {

namespace {

// Splits one line on the delimiter (no quoting support — numeric data).
std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == delimiter) {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(cell);
  return cells;
}

}  // namespace

Result<Matrix> ParseCsv(const std::string& text, const CsvOptions& options) {
  std::vector<std::vector<double>> rows;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  std::size_t cols = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line_number <= options.skip_rows) continue;
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitLine(line, options.delimiter);
    std::vector<double> row;
    row.reserve(cells.size());
    for (const std::string& cell : cells) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      const bool valid = end != cell.c_str() && *end == '\0' && !cell.empty();
      if (!valid) {
        if (!options.coerce_invalid_to_zero) {
          return Status::InvalidArgument(
              "non-numeric cell '" + cell + "' at line " +
              std::to_string(line_number));
        }
        row.push_back(0.0);
      } else {
        row.push_back(v);
      }
    }
    if (rows.empty()) {
      cols = row.size();
    } else if (row.size() != cols) {
      return Status::InvalidArgument(
          "ragged CSV: line " + std::to_string(line_number) + " has " +
          std::to_string(row.size()) + " cells, expected " +
          std::to_string(cols));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CSV contains no data rows");
  }
  Matrix m(static_cast<Index>(rows.size()), static_cast<Index>(cols));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(static_cast<Index>(i), static_cast<Index>(j)) = rows[i][j];
    }
  }
  return m;
}

Result<Matrix> LoadCsvFile(const std::string& path,
                           const CsvOptions& options) {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"),
                                          std::fclose);
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string text;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f.get())) > 0) {
    text.append(buffer, got);
  }
  return ParseCsv(text, options);
}

Result<Tensor> StackMatrices(const std::vector<Matrix>& matrices) {
  if (matrices.empty()) {
    return Status::InvalidArgument("nothing to stack");
  }
  const Index rows = matrices.front().rows();
  const Index cols = matrices.front().cols();
  for (const Matrix& m : matrices) {
    if (m.rows() != rows || m.cols() != cols) {
      return Status::InvalidArgument("matrices must share a shape to stack");
    }
  }
  const Index k = static_cast<Index>(matrices.size());
  Tensor out({k, rows, cols});
  for (Index e = 0; e < k; ++e) {
    const Matrix& m = matrices[static_cast<std::size_t>(e)];
    for (Index c = 0; c < cols; ++c) {
      for (Index r = 0; r < rows; ++r) {
        out(e, r, c) = m(r, c);
      }
    }
  }
  return out;
}

}  // namespace dtucker
