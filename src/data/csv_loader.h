// CSV ingestion: turning real-world tabular time series into tensors.
//
// The paper's Stock dataset is "(stock, feature, date)" assembled from
// per-entity CSV time series. This module provides the two building
// blocks: parsing a numeric CSV into a Matrix (rows x columns), and
// stacking equally shaped matrices into a 3-order tensor along a new
// first mode — so N entity files become an (entity x column x row) tensor.
#ifndef DTUCKER_DATA_CSV_LOADER_H_
#define DTUCKER_DATA_CSV_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "tensor/tensor.h"

namespace dtucker {

struct CsvOptions {
  char delimiter = ',';
  // Skip this many leading lines (headers).
  int skip_rows = 0;
  // If true, a non-numeric cell becomes 0.0 instead of failing the load.
  bool coerce_invalid_to_zero = false;
};

// Parses CSV text into a row-major logical matrix (row i of the text is
// row i of the matrix). All data rows must have the same column count.
Result<Matrix> ParseCsv(const std::string& text, const CsvOptions& options = {});

// Reads and parses a CSV file.
Result<Matrix> LoadCsvFile(const std::string& path,
                           const CsvOptions& options = {});

// Stacks k equally shaped matrices (r x c) into a tensor of shape
// (k x r x c): entity-major, matching the Stock layout
// (stock x feature-with-rows-as... see the example in examples/).
Result<Tensor> StackMatrices(const std::vector<Matrix>& matrices);

}  // namespace dtucker

#endif  // DTUCKER_DATA_CSV_LOADER_H_
