#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "data/generators.h"

namespace dtucker {

const std::vector<DatasetSpec>& BenchmarkDatasets() {
  static const std::vector<DatasetSpec>* const kSpecs =
      new std::vector<DatasetSpec>{
          {"video", "Boats video (320x240x7000)", {160, 120, 256}},
          {"video2", "Walking video (1080x1980x2400)", {192, 144, 192}},
          {"stock", "Stock (3028x54x3050)", {512, 54, 512}},
          {"traffic", "Traffic (1084x96x2000)", {300, 96, 384}},
          {"music", "FMA music (7994x1025x700)", {600, 256, 128}},
          {"climate", "Absorb climate (192x288x30x1200)", {96, 144, 16, 96}},
      };
  return *kSpecs;
}

std::string DatasetNames() {
  std::string out;
  for (const auto& spec : BenchmarkDatasets()) {
    if (!out.empty()) out += ",";
    out += spec.name;
  }
  return out;
}

Result<Tensor> MakeDataset(const std::string& name, double scale,
                           uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const DatasetSpec* spec = nullptr;
  for (const auto& s : BenchmarkDatasets()) {
    if (s.name == name) {
      spec = &s;
      break;
    }
  }
  if (spec == nullptr) {
    return Status::InvalidArgument("unknown dataset '" + name +
                                   "'; expected one of: " + DatasetNames());
  }
  std::vector<Index> d = spec->shape;
  for (auto& v : d) {
    v = std::max<Index>(8, static_cast<Index>(std::llround(
                               static_cast<double>(v) * scale)));
  }

  if (name == "video") {
    return MakeVideoAnalog(d[0], d[1], d[2], /*num_objects=*/6,
                           /*noise=*/0.05, seed);
  }
  if (name == "video2") {
    return MakeVideoAnalog(d[0], d[1], d[2], /*num_objects=*/10,
                           /*noise=*/0.08, seed + 1);
  }
  if (name == "stock") {
    return MakeStockAnalog(d[0], d[1], d[2], /*num_factors=*/12,
                           /*noise=*/0.3, seed + 2);
  }
  if (name == "traffic") {
    return MakeTrafficAnalog(d[0], d[1], d[2], /*noise=*/0.05, seed + 3);
  }
  if (name == "music") {
    return MakeMusicAnalog(d[0], d[1], d[2], /*noise=*/0.02, seed + 4);
  }
  // climate.
  return MakeClimateAnalog(d[0], d[1], d[2], d[3], /*noise=*/0.05, seed + 5);
}

}  // namespace dtucker
