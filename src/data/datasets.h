// Named dataset registry: maps the paper's six datasets to their synthetic
// analogs at benchmark scale (see DESIGN.md §3 for the substitution table).
#ifndef DTUCKER_DATA_DATASETS_H_
#define DTUCKER_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace dtucker {

struct DatasetSpec {
  std::string name;          // e.g. "video".
  std::string paper_name;    // e.g. "Boats (320x240x7000)".
  std::vector<Index> shape;  // Analog shape at scale = 1.
};

// The six benchmark analogs, in the paper's table order.
const std::vector<DatasetSpec>& BenchmarkDatasets();

// Generates the named dataset. `scale` in (0, 1] shrinks every mode
// proportionally (floor 8) so quick runs stay quick.
Result<Tensor> MakeDataset(const std::string& name, double scale = 1.0,
                           uint64_t seed = 7);

// Comma-separated names, for --help strings.
std::string DatasetNames();

}  // namespace dtucker

#endif  // DTUCKER_DATA_DATASETS_H_
