#include "data/decomposition_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace dtucker {

namespace {

constexpr char kDecMagic[8] = {'D', 'T', 'D', 'C', '0', '0', '0', '1'};
constexpr char kApproxMagic[8] = {'D', 'T', 'S', 'A', '0', '0', '0', '1'};
constexpr int64_t kMaxOrder = 16;
constexpr int64_t kMaxDim = int64_t{1} << 40;

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

Status WriteI64(FILE* f, int64_t v) {
  if (std::fwrite(&v, sizeof(v), 1, f) != 1) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

Status ReadI64(FILE* f, int64_t* v) {
  if (std::fread(v, sizeof(*v), 1, f) != 1) {
    return Status::IoError("short read");
  }
  return Status::OK();
}

Status WriteDoubles(FILE* f, const double* data, std::size_t count) {
  if (std::fwrite(data, sizeof(double), count, f) != count) {
    return Status::IoError("short write on payload");
  }
  return Status::OK();
}

Status ReadDoubles(FILE* f, double* data, std::size_t count) {
  if (std::fread(data, sizeof(double), count, f) != count) {
    return Status::IoError("short read on payload");
  }
  return Status::OK();
}

Status WriteMatrix(FILE* f, const Matrix& m) {
  DT_RETURN_NOT_OK(WriteI64(f, m.rows()));
  DT_RETURN_NOT_OK(WriteI64(f, m.cols()));
  return WriteDoubles(f, m.data(), static_cast<std::size_t>(m.size()));
}

Result<Matrix> ReadMatrix(FILE* f) {
  int64_t rows = 0, cols = 0;
  DT_RETURN_NOT_OK(ReadI64(f, &rows));
  DT_RETURN_NOT_OK(ReadI64(f, &cols));
  if (rows < 0 || cols < 0 || rows > kMaxDim || cols > kMaxDim) {
    return Status::IoError("corrupt matrix header");
  }
  Matrix m(static_cast<Index>(rows), static_cast<Index>(cols));
  DT_RETURN_NOT_OK(ReadDoubles(f, m.data(), static_cast<std::size_t>(m.size())));
  return m;
}

}  // namespace

Status SaveDecomposition(const TuckerDecomposition& dec,
                         const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (std::fwrite(kDecMagic, 1, sizeof(kDecMagic), f.get()) !=
      sizeof(kDecMagic)) {
    return Status::IoError("short write on magic");
  }
  DT_RETURN_NOT_OK(WriteI64(f.get(), dec.order()));
  for (Index n = 0; n < dec.order(); ++n) {
    DT_RETURN_NOT_OK(WriteI64(f.get(), dec.core.dim(n)));
  }
  DT_RETURN_NOT_OK(WriteDoubles(f.get(), dec.core.data(),
                                static_cast<std::size_t>(dec.core.size())));
  for (const auto& factor : dec.factors) {
    DT_RETURN_NOT_OK(WriteMatrix(f.get(), factor));
  }
  return Status::OK();
}

Result<TuckerDecomposition> LoadDecomposition(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kDecMagic, sizeof(kDecMagic)) != 0) {
    return Status::IoError("'" + path + "' is not a DTDC0001 file");
  }
  int64_t order = 0;
  DT_RETURN_NOT_OK(ReadI64(f.get(), &order));
  if (order < 1 || order > kMaxOrder) {
    return Status::IoError("corrupt decomposition header");
  }
  std::vector<Index> core_shape(static_cast<std::size_t>(order));
  for (auto& d : core_shape) {
    int64_t v = 0;
    DT_RETURN_NOT_OK(ReadI64(f.get(), &v));
    if (v < 0 || v > kMaxDim) return Status::IoError("corrupt core shape");
    d = static_cast<Index>(v);
  }
  TuckerDecomposition dec;
  dec.core = Tensor(core_shape);
  DT_RETURN_NOT_OK(ReadDoubles(f.get(), dec.core.data(),
                               static_cast<std::size_t>(dec.core.size())));
  dec.factors.reserve(static_cast<std::size_t>(order));
  for (int64_t n = 0; n < order; ++n) {
    DT_ASSIGN_OR_RETURN(Matrix m, ReadMatrix(f.get()));
    if (m.cols() != core_shape[static_cast<std::size_t>(n)]) {
      return Status::IoError("factor/core rank mismatch in file");
    }
    dec.factors.push_back(std::move(m));
  }
  return dec;
}

Status SaveSliceApproximation(const SliceApproximation& approx,
                              const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (std::fwrite(kApproxMagic, 1, sizeof(kApproxMagic), f.get()) !=
      sizeof(kApproxMagic)) {
    return Status::IoError("short write on magic");
  }
  DT_RETURN_NOT_OK(
      WriteI64(f.get(), static_cast<int64_t>(approx.shape.size())));
  for (Index d : approx.shape) DT_RETURN_NOT_OK(WriteI64(f.get(), d));
  DT_RETURN_NOT_OK(WriteI64(f.get(), approx.slice_rank));
  DT_RETURN_NOT_OK(WriteI64(f.get(), approx.NumSlices()));
  for (const auto& sl : approx.slices) {
    DT_RETURN_NOT_OK(WriteMatrix(f.get(), sl.u));
    DT_RETURN_NOT_OK(
        WriteI64(f.get(), static_cast<int64_t>(sl.s.size())));
    DT_RETURN_NOT_OK(WriteDoubles(f.get(), sl.s.data(), sl.s.size()));
    DT_RETURN_NOT_OK(WriteMatrix(f.get(), sl.v));
  }
  return Status::OK();
}

Result<SliceApproximation> LoadSliceApproximation(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kApproxMagic, sizeof(kApproxMagic)) != 0) {
    return Status::IoError("'" + path + "' is not a DTSA0001 file");
  }
  int64_t order = 0;
  DT_RETURN_NOT_OK(ReadI64(f.get(), &order));
  if (order < 3 || order > kMaxOrder) {
    return Status::IoError("corrupt approximation header");
  }
  SliceApproximation approx;
  approx.shape.resize(static_cast<std::size_t>(order));
  for (auto& d : approx.shape) {
    int64_t v = 0;
    DT_RETURN_NOT_OK(ReadI64(f.get(), &v));
    if (v < 0 || v > kMaxDim) return Status::IoError("corrupt shape");
    d = static_cast<Index>(v);
  }
  int64_t slice_rank = 0, num_slices = 0;
  DT_RETURN_NOT_OK(ReadI64(f.get(), &slice_rank));
  DT_RETURN_NOT_OK(ReadI64(f.get(), &num_slices));
  if (slice_rank < 1 || num_slices < 0) {
    return Status::IoError("corrupt approximation header");
  }
  approx.slice_rank = static_cast<Index>(slice_rank);
  approx.slices.reserve(static_cast<std::size_t>(num_slices));
  for (int64_t l = 0; l < num_slices; ++l) {
    SliceSvd sl;
    DT_ASSIGN_OR_RETURN(sl.u, ReadMatrix(f.get()));
    int64_t s_count = 0;
    DT_RETURN_NOT_OK(ReadI64(f.get(), &s_count));
    if (s_count < 0 || s_count > kMaxDim) {
      return Status::IoError("corrupt singular value count");
    }
    sl.s.resize(static_cast<std::size_t>(s_count));
    DT_RETURN_NOT_OK(ReadDoubles(f.get(), sl.s.data(), sl.s.size()));
    DT_ASSIGN_OR_RETURN(sl.v, ReadMatrix(f.get()));
    approx.slices.push_back(std::move(sl));
  }
  return approx;
}

}  // namespace dtucker
