// Persistence for decomposition artifacts.
//
// Two binary formats:
//   "DTDC0001" — a TuckerDecomposition (core tensor + factor matrices);
//   "DTSA0001" — a SliceApproximation (the D-Tucker compressed form), so
//                the expensive approximation pass can be computed once and
//                re-queried across processes.
// Both are little-endian, layout-stable, and validated on load.
#ifndef DTUCKER_DATA_DECOMPOSITION_IO_H_
#define DTUCKER_DATA_DECOMPOSITION_IO_H_

#include <string>

#include "common/status.h"
#include "dtucker/slice_approximation.h"
#include "tucker/tucker.h"

namespace dtucker {

Status SaveDecomposition(const TuckerDecomposition& dec,
                         const std::string& path);
Result<TuckerDecomposition> LoadDecomposition(const std::string& path);

Status SaveSliceApproximation(const SliceApproximation& approx,
                              const std::string& path);
Result<SliceApproximation> LoadSliceApproximation(const std::string& path);

}  // namespace dtucker

#endif  // DTUCKER_DATA_DECOMPOSITION_IO_H_
