#include "data/generators.h"

#include <cmath>

#include "common/rng.h"
#include "linalg/qr.h"
#include "tensor/tensor_ops.h"
#include "tucker/tucker.h"

namespace dtucker {

Tensor MakeLowRankTensor(const std::vector<Index>& shape,
                         const std::vector<Index>& ranks, double noise,
                         uint64_t seed) {
  DT_CHECK_EQ(shape.size(), ranks.size()) << "one rank per mode";
  Rng rng(seed);
  TuckerDecomposition truth;
  truth.core = Tensor::GaussianRandom(ranks, rng);
  truth.factors.reserve(shape.size());
  for (std::size_t n = 0; n < shape.size(); ++n) {
    truth.factors.push_back(
        QrOrthonormalize(Matrix::GaussianRandom(shape[n], ranks[n], rng)));
  }
  Tensor x = truth.Reconstruct();
  if (noise > 0.0) {
    const double scale =
        noise * x.FrobeniusNorm() / std::sqrt(static_cast<double>(x.size()));
    for (Index i = 0; i < x.size(); ++i) {
      x.data()[i] += scale * rng.Gaussian();
    }
  }
  return x;
}

Tensor MakeVideoAnalog(Index height, Index width, Index frames,
                       Index num_objects, double noise, uint64_t seed) {
  Rng rng(seed);
  Tensor x({height, width, frames});

  // Smooth background: a few separable low-frequency modes.
  const int bg_modes = 4;
  std::vector<double> phase_h(bg_modes), phase_w(bg_modes), amp(bg_modes);
  for (int m = 0; m < bg_modes; ++m) {
    phase_h[m] = rng.Uniform(0, 2 * M_PI);
    phase_w[m] = rng.Uniform(0, 2 * M_PI);
    amp[m] = rng.Uniform(0.5, 1.5);
  }

  // Moving blobs: linear trajectories with per-object width and intensity.
  struct Blob {
    double x0, y0, vx, vy, sigma, intensity;
  };
  std::vector<Blob> blobs(static_cast<std::size_t>(num_objects));
  for (auto& b : blobs) {
    b.x0 = rng.Uniform(0, static_cast<double>(width));
    b.y0 = rng.Uniform(0, static_cast<double>(height));
    b.vx = rng.Uniform(-0.5, 0.5) * static_cast<double>(width) /
           static_cast<double>(frames) * 4.0;
    b.vy = rng.Uniform(-0.5, 0.5) * static_cast<double>(height) /
           static_cast<double>(frames) * 4.0;
    b.sigma = rng.Uniform(0.03, 0.10) * static_cast<double>(std::min(height,
                                                                     width));
    b.intensity = rng.Uniform(0.5, 2.0);
  }

  for (Index t = 0; t < frames; ++t) {
    const double tt = static_cast<double>(t) / static_cast<double>(frames);
    for (Index j = 0; j < width; ++j) {
      for (Index i = 0; i < height; ++i) {
        double v = 0.0;
        for (int m = 0; m < bg_modes; ++m) {
          v += amp[m] *
               std::sin((m + 1) * M_PI * i / static_cast<double>(height) +
                        phase_h[m]) *
               std::cos((m + 1) * M_PI * j / static_cast<double>(width) +
                        phase_w[m]);
        }
        for (const Blob& b : blobs) {
          // Positions wrap around so blobs stay in frame.
          double bx = std::fmod(b.x0 + b.vx * t, static_cast<double>(width));
          double by = std::fmod(b.y0 + b.vy * t, static_cast<double>(height));
          if (bx < 0) bx += width;
          if (by < 0) by += height;
          const double dx = static_cast<double>(j) - bx;
          const double dy = static_cast<double>(i) - by;
          const double d2 = dx * dx + dy * dy;
          if (d2 < 25.0 * b.sigma * b.sigma) {
            v += b.intensity * std::exp(-d2 / (2 * b.sigma * b.sigma)) *
                 (0.75 + 0.25 * std::sin(2 * M_PI * tt * 3.0));
          }
        }
        x(i, j, t) = v + noise * rng.Gaussian();
      }
    }
  }
  return x;
}

Tensor MakeStockAnalog(Index stocks, Index features, Index days,
                       Index num_factors, double noise, uint64_t seed) {
  Rng rng(seed);
  Matrix loadings = Matrix::GaussianRandom(stocks, num_factors, rng);
  Matrix exposures = Matrix::GaussianRandom(features, num_factors, rng);

  // Latent factors: random walks with occasional drift-regime switches.
  Matrix factors(days, num_factors);
  for (Index r = 0; r < num_factors; ++r) {
    double level = rng.Gaussian();
    double drift = 0.02 * rng.Gaussian();
    for (Index t = 0; t < days; ++t) {
      if (rng.Uniform() < 0.01) drift = 0.02 * rng.Gaussian();  // Regime.
      level += drift + 0.1 * rng.Gaussian();
      factors(t, r) = level;
    }
  }

  Tensor x({stocks, features, days});
  for (Index t = 0; t < days; ++t) {
    for (Index f = 0; f < features; ++f) {
      for (Index s = 0; s < stocks; ++s) {
        double v = 0.0;
        for (Index r = 0; r < num_factors; ++r) {
          v += loadings(s, r) * exposures(f, r) * factors(t, r);
        }
        x(s, f, t) = v + noise * rng.Gaussian();
      }
    }
  }
  return x;
}

Tensor MakeTrafficAnalog(Index sensors, Index bins, Index timesteps,
                         double noise, uint64_t seed) {
  Rng rng(seed);
  const Index day = 96;  // Timesteps per synthetic day (15-min bins).
  // Per-sensor scale and rush-hour offsets.
  std::vector<double> scale(static_cast<std::size_t>(sensors));
  std::vector<double> offset(static_cast<std::size_t>(sensors));
  for (Index s = 0; s < sensors; ++s) {
    scale[static_cast<std::size_t>(s)] = rng.Uniform(0.5, 2.0);
    offset[static_cast<std::size_t>(s)] = rng.Uniform(-8, 8);
  }
  // Per-bin frequency response (smooth in the bin index).
  std::vector<double> response(static_cast<std::size_t>(bins));
  for (Index b = 0; b < bins; ++b) {
    response[static_cast<std::size_t>(b)] =
        0.5 + std::exp(-0.5 * std::pow((b - bins / 3.0) / (bins / 6.0), 2)) +
        0.3 * std::exp(-0.5 * std::pow((b - 2.2 * bins / 3.0) / (bins / 8.0),
                                       2));
  }

  Tensor x({sensors, bins, timesteps});
  for (Index t = 0; t < timesteps; ++t) {
    for (Index b = 0; b < bins; ++b) {
      for (Index s = 0; s < sensors; ++s) {
        const double tod = std::fmod(
            static_cast<double>(t) + offset[static_cast<std::size_t>(s)],
            static_cast<double>(day));
        // Two rush-hour peaks per day.
        const double morning =
            std::exp(-0.5 * std::pow((tod - 0.33 * day) / (0.06 * day), 2));
        const double evening =
            std::exp(-0.5 * std::pow((tod - 0.72 * day) / (0.08 * day), 2));
        const double weekly =
            1.0 - 0.35 * (std::fmod(static_cast<double>(t), 7.0 * day) >
                          5.0 * day);
        double v = scale[static_cast<std::size_t>(s)] * weekly *
                   (0.2 + morning + 0.8 * evening) *
                   response[static_cast<std::size_t>(b)];
        x(s, b, t) = v + noise * rng.Gaussian();
      }
    }
  }
  return x;
}

Tensor MakeMusicAnalog(Index songs, Index bins, Index frames, double noise,
                       uint64_t seed) {
  Rng rng(seed);
  Tensor x({songs, bins, frames});
  const int harmonics = 6;
  for (Index s = 0; s < songs; ++s) {
    // Each song: a fundamental bin, harmonic decay, tempo of its envelope.
    const double f0 = rng.Uniform(2.0, static_cast<double>(bins) / 8.0);
    const double decay = rng.Uniform(0.4, 0.8);
    const double tempo = rng.Uniform(1.0, 6.0);
    const double loudness = rng.Uniform(0.5, 2.0);
    for (Index t = 0; t < frames; ++t) {
      const double env =
          0.5 + 0.5 * std::sin(2 * M_PI * tempo * t /
                               static_cast<double>(frames));
      for (Index b = 0; b < bins; ++b) {
        double v = 0.0;
        double a = loudness;
        for (int h = 1; h <= harmonics; ++h) {
          const double center = f0 * h;
          if (center >= bins) break;
          v += a * std::exp(-0.5 * std::pow((b - center) / 1.5, 2));
          a *= decay;
        }
        x(s, b, t) = v * env + noise * rng.Gaussian();
      }
    }
  }
  return x;
}

Tensor MakeClimateAnalog(Index lon, Index lat, Index alt, Index timesteps,
                         double noise, uint64_t seed) {
  Rng rng(seed);
  const int modes = 3;
  std::vector<double> phase_lon(modes), phase_lat(modes), amp(modes);
  for (int m = 0; m < modes; ++m) {
    phase_lon[m] = rng.Uniform(0, 2 * M_PI);
    phase_lat[m] = rng.Uniform(0, 2 * M_PI);
    amp[m] = rng.Uniform(0.5, 1.5);
  }
  const double season_len = std::max<double>(12.0, timesteps / 4.0);

  Tensor x({lon, lat, alt, timesteps});
  for (Index t = 0; t < timesteps; ++t) {
    const double season =
        1.0 + 0.5 * std::sin(2 * M_PI * t / season_len + 0.7);
    for (Index a = 0; a < alt; ++a) {
      // Absorption decays with altitude.
      const double alt_profile = std::exp(-2.0 * a / static_cast<double>(alt));
      for (Index j = 0; j < lat; ++j) {
        for (Index i = 0; i < lon; ++i) {
          double v = 0.0;
          for (int m = 0; m < modes; ++m) {
            v += amp[m] *
                 std::sin((m + 1) * 2 * M_PI * i / static_cast<double>(lon) +
                          phase_lon[m]) *
                 std::cos((m + 1) * M_PI * j / static_cast<double>(lat) +
                          phase_lat[m]);
          }
          x(i, j, a, t) =
              season * alt_profile * (1.5 + v) + noise * rng.Gaussian();
        }
      }
    }
  }
  return x;
}

}  // namespace dtucker
