// Synthetic dataset generators emulating the paper's real-world tensors.
//
// The originals (videos, Korean stock features, traffic sensors, music
// spectrograms, aerosol climate fields) are not available offline, so each
// generator reproduces the *structure* the decomposition methods are
// sensitive to: an approximately low-rank signal with smoothly varying
// temporal dynamics plus dense noise. See DESIGN.md §3 for the mapping.
// All generators are deterministic in their seed.
#ifndef DTUCKER_DATA_GENERATORS_H_
#define DTUCKER_DATA_GENERATORS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace dtucker {

// Exact rank-(ranks) Tucker tensor plus i.i.d. Gaussian noise of relative
// magnitude `noise` (0 disables). The ground-truth factors are random
// orthonormal; core entries are N(0,1). The workhorse for correctness and
// scalability experiments.
Tensor MakeLowRankTensor(const std::vector<Index>& shape,
                         const std::vector<Index>& ranks, double noise,
                         uint64_t seed);

// Grayscale-video analog (height x width x time): static smooth low-rank
// background plus `num_objects` Gaussian blobs moving along random linear
// trajectories, plus sensor noise.
Tensor MakeVideoAnalog(Index height, Index width, Index frames,
                       Index num_objects, double noise, uint64_t seed);

// Stock-market analog (stock x feature x day): a factor model
// X(s,f,t) = sum_r load(s,r) * expose(f,r) * factor_r(t) where factor_r is
// a random walk with drift regimes, plus idiosyncratic noise.
Tensor MakeStockAnalog(Index stocks, Index features, Index days,
                       Index num_factors, double noise, uint64_t seed);

// Traffic-volume analog (sensor x frequency-bin x time): daily periodic
// profiles modulated per sensor, plus noise.
Tensor MakeTrafficAnalog(Index sensors, Index bins, Index timesteps,
                         double noise, uint64_t seed);

// Music-spectrogram analog (song x frequency x time): each song is a sum
// of harmonic ridges with amplitude envelopes.
Tensor MakeMusicAnalog(Index songs, Index bins, Index frames, double noise,
                       uint64_t seed);

// 4-order climate analog (lon x lat x altitude x time): spatially smooth
// fields with altitude decay and a seasonal cycle.
Tensor MakeClimateAnalog(Index lon, Index lat, Index alt, Index timesteps,
                         double noise, uint64_t seed);

}  // namespace dtucker

#endif  // DTUCKER_DATA_GENERATORS_H_
