#include "data/tensor_file.h"

#include <cstring>

namespace dtucker {

namespace {
constexpr char kMagic[8] = {'D', 'T', 'N', 'S', 'R', '0', '0', '1'};
}  // namespace

Result<TensorFileReader> TensorFileReader::Open(const std::string& path) {
  TensorFileReader reader;
  reader.file_.reset(std::fopen(path.c_str(), "rb"));
  if (reader.file_ == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  FILE* f = reader.file_.get();

  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("'" + path + "' is not a DTNSR001 tensor file");
  }
  int64_t order = 0;
  if (std::fread(&order, sizeof(order), 1, f) != 1 || order < 2 ||
      order > 16) {
    return Status::IoError("corrupt tensor header (order), need order >= 2");
  }
  reader.shape_.resize(static_cast<std::size_t>(order));
  for (auto& d : reader.shape_) {
    int64_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1 || v < 0) {
      return Status::IoError("corrupt tensor header (dims)");
    }
    d = static_cast<Index>(v);
  }
  reader.num_slices_ = 1;
  for (Index k = 2; k < order; ++k) {
    reader.num_slices_ *= reader.shape_[static_cast<std::size_t>(k)];
  }
  reader.payload_offset_ = std::ftell(f);
  if (reader.payload_offset_ < 0) {
    return Status::IoError("ftell failed on '" + path + "'");
  }
  // Validate the payload size against the header.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed on '" + path + "'");
  }
  const long end = std::ftell(f);
  int64_t volume = 1;
  for (Index d : reader.shape_) volume *= d;
  const long expected =
      reader.payload_offset_ +
      static_cast<long>(volume * static_cast<int64_t>(sizeof(double)));
  if (end != expected) {
    return Status::IoError("tensor payload size mismatch in '" + path + "'");
  }
  return reader;
}

Status TensorFileReader::ReadFrontalSlices(Index first, Index count,
                                           double* out) const {
  if (first < 0 || count < 0 || first + count > num_slices_) {
    return Status::OutOfRange("slice range outside the file");
  }
  const Index slice_elems = shape_[0] * shape_[1];
  const long offset =
      payload_offset_ +
      static_cast<long>(first) * static_cast<long>(slice_elems) *
          static_cast<long>(sizeof(double));
  FILE* f = file_.get();
  if (std::fseek(f, offset, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  const std::size_t want = static_cast<std::size_t>(slice_elems * count);
  if (std::fread(out, sizeof(double), want, f) != want) {
    return Status::IoError("short read on slice payload");
  }
  return Status::OK();
}

Status TensorFileReader::ReadFrontalSlicesWithRetry(
    Index first, Index count, double* out, const RunContext* ctx) const {
  if (ctx == nullptr) return ReadFrontalSlices(first, count, out);
  const IoRetryPolicy& policy = ctx->io_retry;
  DT_RETURN_NOT_OK(policy.Validate());
  Status last = Status::OK();
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    DT_RETURN_NOT_OK(ctx->CheckStatus("tensor file read"));
    if (attempt > 0) DT_RETURN_NOT_OK(BackoffWithContext(policy, attempt, ctx));
    if (ctx->fault_hook) {
      Status injected = ctx->fault_hook("ReadFrontalSlices", attempt);
      if (!injected.ok()) {
        last = std::move(injected);
        continue;
      }
    }
    Status st = ReadFrontalSlices(first, count, out);
    if (st.ok()) return st;
    // Out-of-range is a caller bug, not a storage hiccup — retrying the
    // same arguments cannot succeed.
    if (st.code() == StatusCode::kOutOfRange) return st;
    last = std::move(st);
    // A failed fread/fseek latches the stream error flag; clear it so the
    // next attempt is a clean retry rather than an instant failure.
    std::clearerr(file_.get());
  }
  return Status::Unavailable(
      "slice read [" + std::to_string(first) + ", " +
      std::to_string(first + count) + ") still failing after " +
      std::to_string(policy.max_attempts) +
      " attempts; last error: " + last.ToString());
}

Result<Matrix> TensorFileReader::ReadFrontalSlice(Index l) const {
  Matrix m(shape_[0], shape_[1]);
  DT_RETURN_NOT_OK(ReadFrontalSlices(l, 1, m.data()));
  return m;
}

Result<TensorFileWriter> TensorFileWriter::Create(const std::string& path,
                                                  std::vector<Index> shape) {
  if (shape.size() < 2) {
    return Status::InvalidArgument("tensor files need order >= 2");
  }
  for (Index d : shape) {
    if (d <= 0) return Status::InvalidArgument("dimensions must be positive");
  }
  TensorFileWriter writer;
  writer.file_.reset(std::fopen(path.c_str(), "wb"));
  if (writer.file_ == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  FILE* f = writer.file_.get();
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f) != sizeof(kMagic)) {
    return Status::IoError("short write on magic");
  }
  const int64_t order = static_cast<int64_t>(shape.size());
  if (std::fwrite(&order, sizeof(order), 1, f) != 1) {
    return Status::IoError("short write on order");
  }
  for (Index d : shape) {
    const int64_t v = d;
    if (std::fwrite(&v, sizeof(v), 1, f) != 1) {
      return Status::IoError("short write on dims");
    }
  }
  writer.num_slices_ = 1;
  for (std::size_t k = 2; k < shape.size(); ++k) {
    writer.num_slices_ *= shape[k];
  }
  writer.shape_ = std::move(shape);
  return writer;
}

Status TensorFileWriter::AppendSlice(const Matrix& slice) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer is closed");
  }
  if (slice.rows() != shape_[0] || slice.cols() != shape_[1]) {
    return Status::InvalidArgument("slice shape mismatch");
  }
  if (written_ >= num_slices_) {
    return Status::FailedPrecondition("all slices already written");
  }
  const std::size_t count = static_cast<std::size_t>(slice.size());
  if (std::fwrite(slice.data(), sizeof(double), count, file_.get()) != count) {
    return Status::IoError("short write on slice payload");
  }
  ++written_;
  return Status::OK();
}

Status TensorFileWriter::Finish() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer is closed");
  }
  if (written_ != num_slices_) {
    return Status::FailedPrecondition(
        "not all slices were written (" + std::to_string(written_) + " of " +
        std::to_string(num_slices_) + ")");
  }
  if (std::fflush(file_.get()) != 0) {
    return Status::IoError("flush failed");
  }
  file_.reset();
  return Status::OK();
}

}  // namespace dtucker
