// Random-access reader for DTNSR001 tensor files.
//
// Unlike LoadTensor (which materializes the whole tensor), TensorFileReader
// exposes the header and reads one frontal slice at a time — the access
// pattern of D-Tucker's approximation phase. This is what makes the
// out-of-core path (dtucker/out_of_core.h) possible: a tensor larger than
// RAM is compressed while only ever holding one I1 x I2 slice.
#ifndef DTUCKER_DATA_TENSOR_FILE_H_
#define DTUCKER_DATA_TENSOR_FILE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace dtucker {

class TensorFileReader {
 public:
  // Opens the file and validates the header (shape, payload size).
  static Result<TensorFileReader> Open(const std::string& path);

  TensorFileReader(TensorFileReader&&) = default;
  TensorFileReader& operator=(TensorFileReader&&) = default;

  const std::vector<Index>& shape() const { return shape_; }
  Index order() const { return static_cast<Index>(shape_.size()); }
  Index dim(Index mode) const {
    return shape_[static_cast<std::size_t>(mode)];
  }
  // Number of I1 x I2 frontal slices (order >= 2 required at Open).
  Index NumFrontalSlices() const { return num_slices_; }

  // Reads frontal slice `l` (0-based) into an I1 x I2 matrix.
  Result<Matrix> ReadFrontalSlice(Index l) const;

  // Reads `count` consecutive frontal slices starting at `first` into a
  // contiguous buffer (rows*cols*count doubles). One attempt, no retry.
  Status ReadFrontalSlices(Index first, Index count, double* out) const;

  // Retrying variant for streaming loops over flaky storage: transient
  // failures (short reads, seek errors — anything but kOutOfRange) are
  // retried under ctx->io_retry with exponential backoff, honouring
  // cancellation/deadline between attempts. When ctx->fault_hook is set it
  // is consulted before every low-level attempt (deterministic fault
  // injection for tests); a non-OK hook result counts as that attempt
  // failing. Returns kUnavailable once the attempt budget is exhausted.
  // With ctx == nullptr this is a plain single-attempt read.
  Status ReadFrontalSlicesWithRetry(Index first, Index count, double* out,
                                    const RunContext* ctx) const;

 private:
  TensorFileReader() = default;

  struct FileCloser {
    void operator()(FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  std::unique_ptr<FILE, FileCloser> file_;
  std::vector<Index> shape_;
  Index num_slices_ = 0;
  long payload_offset_ = 0;  // Byte offset of the first double.
};

// Streaming writer for DTNSR001 files: emits the header up front and
// appends frontal slices, so a tensor larger than RAM can be generated
// without ever materializing it. The file is valid once every slice has
// been appended.
class TensorFileWriter {
 public:
  // Creates/truncates the file and writes the header. Order >= 2.
  static Result<TensorFileWriter> Create(const std::string& path,
                                         std::vector<Index> shape);

  TensorFileWriter(TensorFileWriter&&) = default;
  TensorFileWriter& operator=(TensorFileWriter&&) = default;

  const std::vector<Index>& shape() const { return shape_; }
  Index NumFrontalSlices() const { return num_slices_; }
  Index slices_written() const { return written_; }

  // Appends one I1 x I2 slice.
  Status AppendSlice(const Matrix& slice);

  // Flushes and verifies every slice was written.
  Status Finish();

 private:
  TensorFileWriter() = default;

  struct FileCloser {
    void operator()(FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  std::unique_ptr<FILE, FileCloser> file_;
  std::vector<Index> shape_;
  Index num_slices_ = 0;
  Index written_ = 0;
};

}  // namespace dtucker

#endif  // DTUCKER_DATA_TENSOR_FILE_H_
