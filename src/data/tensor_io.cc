#include "data/tensor_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace dtucker {

namespace {
constexpr char kMagic[8] = {'D', 'T', 'N', 'S', 'R', '0', '0', '1'};

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;
}  // namespace

Status SaveTensor(const Tensor& x, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) != sizeof(kMagic)) {
    return Status::IoError("short write on magic");
  }
  const int64_t order = x.order();
  if (std::fwrite(&order, sizeof(order), 1, f.get()) != 1) {
    return Status::IoError("short write on order");
  }
  for (Index n = 0; n < x.order(); ++n) {
    const int64_t d = x.dim(n);
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1) {
      return Status::IoError("short write on dims");
    }
  }
  const std::size_t count = static_cast<std::size_t>(x.size());
  if (std::fwrite(x.data(), sizeof(double), count, f.get()) != count) {
    return Status::IoError("short write on payload");
  }
  return Status::OK();
}

Result<Tensor> LoadTensor(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("'" + path + "' is not a DTNSR001 tensor file");
  }
  int64_t order = 0;
  if (std::fread(&order, sizeof(order), 1, f.get()) != 1 || order < 1 ||
      order > 16) {
    return Status::IoError("corrupt tensor header (order)");
  }
  std::vector<Index> shape(static_cast<std::size_t>(order));
  std::size_t volume = 1;
  for (auto& d : shape) {
    int64_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f.get()) != 1 || v < 0) {
      return Status::IoError("corrupt tensor header (dims)");
    }
    d = static_cast<Index>(v);
    volume *= static_cast<std::size_t>(v);
  }
  Tensor x(shape);
  if (std::fread(x.data(), sizeof(double), volume, f.get()) != volume) {
    return Status::IoError("truncated tensor payload");
  }
  return x;
}

}  // namespace dtucker
