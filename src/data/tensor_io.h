// Binary tensor file I/O.
//
// Format "DTNSR001": 8-byte magic, int64 order, int64 dims[order], then
// order-agnostic little-endian doubles in the library's mode-1-fastest
// layout. Enables examples/benchmarks to persist generated datasets.
#ifndef DTUCKER_DATA_TENSOR_IO_H_
#define DTUCKER_DATA_TENSOR_IO_H_

#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace dtucker {

Status SaveTensor(const Tensor& x, const std::string& path);

Result<Tensor> LoadTensor(const std::string& path);

}  // namespace dtucker

#endif  // DTUCKER_DATA_TENSOR_IO_H_
