#include "dtucker/adaptive/cost_model.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace dtucker {
namespace adaptive {

namespace {

constexpr double kGiga = 1e9;
// Exponential-smoothing weight for online refinement.
constexpr double kSmoothingAlpha = 0.3;

// GEMM work (flops) below which internal GEMM threading does not pay for
// its fork/join; used to model the gemm_parallel carrier schedule.
constexpr double kGemmThreadingGrain = 5e6;

// Warm-start discount for subspace eigensolves inside HOOI sweeps: the
// factor updates restart from the previous sweep's converged basis
// (SweepWorkspace::subspace), so they run a small fraction of a cold
// solve's iterations. The dense variants get no discount — they solve the
// full spectrum from scratch every sweep, which is exactly why forcing
// them through the sweeps loses to the default dispatch.
constexpr double kWarmStartSubspaceFactor = 0.25;

double SubspaceSketchWidth(double k, double n) {
  return std::min(n, k + std::min(k, 8.0) + 2.0);
}

// Flops of one top-k symmetric eigensolve on an n x n Gram.
double EigFlops(EigSolverVariant v, double n, double k) {
  switch (v) {
    case EigSolverVariant::kJacobi:
      // ~n^2/2 rotations per sweep, ~6n flops each (two row/col pairs plus
      // the eigenvector accumulator), several sweeps to converge.
      return 24.0 * n * n * n;
    case EigSolverVariant::kQl:
      // Householder tridiagonalization (4/3 n^3), accumulation (~4 n^3),
      // implicit-shift QL on the tridiagonal (lower order).
      return 6.0 * n * n * n;
    case EigSolverVariant::kSubspace: {
      // Per sweep: A*Q (2 n^2 s), Rayleigh quotient + re-orthonormalization
      // (~4 n s^2), small dense solve (s^3); warm starts keep the sweep
      // count small.
      const double s = SubspaceSketchWidth(k, n);
      const double sweeps = 5.0;
      return sweeps * (2.0 * n * n * s + 4.0 * n * s * s + s * s * s);
    }
    case EigSolverVariant::kAuto:
      break;
  }
  return EigFlops(CostModel::ResolveEig(EigSolverVariant::kAuto,
                                        static_cast<Index>(n),
                                        static_cast<Index>(k)),
                  n, k);
}

// Flops of one thin QR / orthonormalization of an m x n panel (same count
// for both variants; only the achieved rate differs).
double QrFlops(double m, double n) { return 2.0 * m * n * n; }

const char* EigRateKey(EigSolverVariant v) {
  switch (v) {
    case EigSolverVariant::kJacobi: return "eig.jacobi";
    case EigSolverVariant::kQl: return "eig.ql";
    case EigSolverVariant::kSubspace: return "eig.subspace";
    case EigSolverVariant::kAuto: break;
  }
  return "eig.ql";
}

const char* QrRateKey(QrVariant v) {
  return v == QrVariant::kScalar ? "qr.scalar" : "qr.blocked";
}

}  // namespace

Index WorkloadSignature::NumSlices() const {
  Index l = 1;
  for (std::size_t n = 2; n < shape.size(); ++n) l *= shape[n];
  return shape.size() < 3 ? 0 : l;
}

Index WorkloadSignature::LocalSlices() const {
  const Index l = NumSlices();
  const Index r = std::max(1, num_ranks);
  return (l + r - 1) / r;
}

Index WorkloadSignature::EffectiveSliceRank() const {
  Index js = slice_rank;
  if (I1() > 0) js = std::min(js, I1());
  if (I2() > 0) js = std::min(js, I2());
  return std::max<Index>(js, 1);
}

EigSolverVariant CostModel::ResolveEig(EigSolverVariant v, Index n, Index k) {
  if (v != EigSolverVariant::kAuto) return v;
  // Mirrors TopEigenvectorsSym's dense-vs-subspace heuristic; the dense
  // branch there is the QL-with-Jacobi-fallback solver.
  return (n <= 64 || 2 * k >= n) ? EigSolverVariant::kQl
                                 : EigSolverVariant::kSubspace;
}

QrVariant CostModel::ResolveQr(QrVariant v, Index m, Index n) {
  if (v != QrVariant::kAuto) return v;
  // Mirrors UseUnblocked's kQrUnblockedMax = 12 panel heuristic.
  return std::min(m, n) <= 12 ? QrVariant::kScalar : QrVariant::kBlocked;
}

CarrierBuilderVariant CostModel::ResolveCarrier(CarrierBuilderVariant v,
                                                Index num_slices,
                                                int num_threads) {
  if (v != CarrierBuilderVariant::kAuto) return v;
  return num_slices >= static_cast<Index>(std::max(1, num_threads))
             ? CarrierBuilderVariant::kSliceParallel
             : CarrierBuilderVariant::kGemmParallel;
}

double CostModel::EigSolveFlops(EigSolverVariant v, double n, double k) {
  return EigFlops(v, n, k);
}

double CostModel::QrPanelFlops(double m, double n) { return QrFlops(m, n); }

CostModel::CostModel() {
  // Effective GFLOP/s defaults, deliberately conservative: they only have
  // to *rank* variants correctly on typical shapes; bench_adaptive_json
  // replaces them with measured values.
  c_["eig.jacobi"] = 0.4;       // Scalar rotations, cache-unfriendly.
  c_["eig.ql"] = 1.2;           // Scalar but linear-sweep kernels.
  c_["eig.subspace"] = 3.0;     // GEMM-dominated.
  c_["qr.blocked"] = 3.0;       // Compact-WY panel GEMMs.
  c_["qr.scalar"] = 0.8;        // Column-at-a-time Householder.
  c_["carrier.slice_parallel"] = 2.5;  // Per-thread GEMM rate.
  c_["carrier.gemm_parallel"] = 2.5;
  c_["gram.exact"] = 3.0;       // Chunked syrk-like GEMMs.
  c_["gram.sketched"] = 0.8;    // Memory-bound scatter + one GEMM.
  c_["approx.rsvd"] = 2.5;      // Slice rSVD GEMM pipeline, per thread.
  // Online-refined whole-phase corrections (observed/predicted).
  c_["scale.approx"] = 1.0;
  c_["scale.init"] = 1.0;
  c_["scale.sweep"] = 1.0;
}

double CostModel::Coefficient(const std::string& key, double fallback) const {
  auto it = c_.find(key);
  return it == c_.end() ? fallback : it->second;
}

void CostModel::SetCoefficient(const std::string& key, double value) {
  c_[key] = value;
}

double CostModel::PredictApproxSeconds(const WorkloadSignature& w,
                                       QrVariant qr) const {
  const double l = static_cast<double>(w.LocalSlices());
  const double i1 = static_cast<double>(w.I1());
  const double i2 = static_cast<double>(w.I2());
  const double js = static_cast<double>(w.EffectiveSliceRank());
  const double s = js + 5.0;  // Sketch width rank + default oversampling.
  const double q = static_cast<double>(std::max(0, w.power_iterations));
  // Per slice: sketch + power passes (2(q+1) passes over I1 x I2) plus the
  // projection/small-SVD tail.
  const double gemm_flops =
      l * (2.0 * (2.0 * q + 2.0) * i1 * i2 * s + 2.0 * s * s * (i1 + i2));
  const double qr_flops =
      l * (q + 1.0) *
      QrFlops(i1, s);
  const QrVariant rq =
      ResolveQr(qr, w.I1(), static_cast<Index>(s));
  // Slices are embarrassingly parallel across the pool.
  const double par = std::min<double>(std::max(1, w.num_threads),
                                      std::max(1.0, l));
  double sec = gemm_flops / (kGiga * Coefficient("approx.rsvd") * par) +
               qr_flops / (kGiga * Coefficient(QrRateKey(rq)) * par);
  return sec * Coefficient("scale.approx");
}

double CostModel::PredictInitSeconds(const WorkloadSignature& w,
                                     const PhaseVariantPlan& plan) const {
  const double l = static_cast<double>(w.LocalSlices());
  const double i1 = static_cast<double>(w.I1());
  const double i2 = static_cast<double>(w.I2());
  const double js = static_cast<double>(w.EffectiveSliceRank());
  const double threads = std::max(1, w.num_threads);

  // Stacked-factor Grams for modes 1 and 2.
  double gram_flops = 0.0;
  const char* gram_key = "gram.exact";
  if (plan.gram == GramVariant::kSketched) {
    gram_key = "gram.sketched";
    for (double dim : {i1, i2}) {
      const double wdt = std::max(64.0, 4.0 * dim);
      if (l * js <= wdt) {
        gram_flops += 2.0 * l * dim * dim * js;  // Exact fallback.
      } else {
        gram_flops += 2.0 * l * dim * js + 2.0 * dim * dim * wdt;
      }
    }
  } else {
    gram_flops = 2.0 * l * js * (i1 * i1 + i2 * i2);
  }
  const double gram_par = std::min(threads, 8.0);  // kSliceChunkCount.
  double sec = gram_flops / (kGiga * Coefficient(gram_key) * gram_par);

  // Eigensolves on the two leading-mode Grams.
  const EigSolverVariant e1 = ResolveEig(plan.eig, w.I1(), w.ranks[0]);
  const EigSolverVariant e2 = ResolveEig(plan.eig, w.I2(), w.ranks[1]);
  sec += EigFlops(e1, i1, static_cast<double>(w.ranks[0])) /
         (kGiga * Coefficient(EigRateKey(e1)));
  sec += EigFlops(e2, i2, static_cast<double>(w.ranks[1])) /
         (kGiga * Coefficient(EigRateKey(e2)));

  // Projected core Z build (per-slice GEMM chain) + trailing factors on the
  // small Z — the latter is rank-sized, folded into the Z term.
  const double j1 = static_cast<double>(w.ranks[0]);
  const double j2 = static_cast<double>(w.ranks[1]);
  const double z_flops = l * 2.0 * (i1 * j1 * js + i2 * js * j2 + j1 * js * j2);
  const CarrierBuilderVariant cb =
      ResolveCarrier(plan.carrier, w.NumSlices(), w.num_threads);
  double cpar = 1.0;
  if (cb == CarrierBuilderVariant::kSliceParallel) {
    cpar = std::min(threads, std::max(1.0, l));
  } else {
    cpar = std::min(threads, std::max(1.0, z_flops / std::max(1.0, l) /
                                               kGemmThreadingGrain));
  }
  const char* ckey = cb == CarrierBuilderVariant::kSliceParallel
                         ? "carrier.slice_parallel"
                         : "carrier.gemm_parallel";
  sec += z_flops / (kGiga * Coefficient(ckey) * cpar);
  return sec * Coefficient("scale.init");
}

double CostModel::PredictSweepSeconds(const WorkloadSignature& w,
                                      const PhaseVariantPlan& plan) const {
  const double l = static_cast<double>(w.LocalSlices());
  const double i1 = static_cast<double>(w.I1());
  const double i2 = static_cast<double>(w.I2());
  const double js = static_cast<double>(w.EffectiveSliceRank());
  const double j1 = static_cast<double>(w.ranks[0]);
  const double j2 = static_cast<double>(w.ranks[1]);
  const double threads = std::max(1, w.num_threads);

  // Carriers T1, T2 and the refreshed Z.
  const double t1 = l * 2.0 * (i2 * js * j2 + i1 * js * j2);
  const double t2 = l * 2.0 * (i1 * js * j1 + i2 * js * j1);
  const double z = l * 2.0 * (i1 * j1 * js + i2 * js * j2 + j1 * js * j2);
  const double carrier_flops = t1 + t2 + z;
  const CarrierBuilderVariant cb =
      ResolveCarrier(plan.carrier, w.NumSlices(), w.num_threads);
  double cpar = 1.0;
  if (cb == CarrierBuilderVariant::kSliceParallel) {
    cpar = std::min(threads, std::max(1.0, l));
  } else {
    cpar = std::min(threads,
                    std::max(1.0, carrier_flops / std::max(1.0, 3.0 * l) /
                                      kGemmThreadingGrain));
  }
  const char* ckey = cb == CarrierBuilderVariant::kSliceParallel
                         ? "carrier.slice_parallel"
                         : "carrier.gemm_parallel";
  double sec = carrier_flops / (kGiga * Coefficient(ckey) * cpar);

  // Factor updates: the mode-1/2 updates run through the small-side Gram
  // path (Gram of size = product of the other ranks), the trailing updates
  // on rank-sized mode Grams; all are eigensolves at rank scale plus one
  // QR of a (dim x rank) panel.
  double trailing = 1.0;
  for (std::size_t n = 2; n < w.ranks.size(); ++n) {
    trailing *= static_cast<double>(w.ranks[n]);
  }
  const double m1 = j2 * trailing;  // Wide side of the mode-1 update.
  const double m2 = j1 * trailing;
  struct Update { double dim, wide, k; };
  std::vector<Update> updates = {{i1, m1, j1}, {i2, m2, j2}};
  for (std::size_t n = 2; n < w.ranks.size(); ++n) {
    const double in = static_cast<double>(w.shape[n]);
    const double kn = static_cast<double>(w.ranks[n]);
    updates.push_back({in, j1 * j2 * trailing / kn, kn});
  }
  for (const Update& u : updates) {
    const double small = std::min(u.dim, u.wide);
    const EigSolverVariant ev = ResolveEig(
        plan.eig, static_cast<Index>(small), static_cast<Index>(u.k));
    // Gram build + eigensolve + back-projection QR.
    sec += 2.0 * u.dim * small * small /
           (kGiga * Coefficient("gram.exact") * std::min(threads, 8.0));
    double eig_flops = EigFlops(ev, small, u.k);
    if (ev == EigSolverVariant::kSubspace) {
      eig_flops *= kWarmStartSubspaceFactor;
    }
    sec += eig_flops / (kGiga * Coefficient(EigRateKey(ev)));
    const QrVariant qv = ResolveQr(plan.qr, static_cast<Index>(u.dim),
                                   static_cast<Index>(u.k));
    sec += QrFlops(u.dim, u.k) / (kGiga * Coefficient(QrRateKey(qv)));
  }
  return sec * Coefficient("scale.sweep");
}

double CostModel::PredictTotalSeconds(const WorkloadSignature& w,
                                      const PhaseVariantPlan& plan) const {
  return PredictApproxSeconds(w, plan.qr) + PredictInitSeconds(w, plan) +
         std::max(1, w.expected_sweeps) * PredictSweepSeconds(w, plan);
}

namespace {

void SmoothScale(CostModel* model, const std::string& key, double predicted,
                 double measured) {
  if (!(predicted > 0.0) || !(measured > 0.0) || !std::isfinite(predicted) ||
      !std::isfinite(measured)) {
    return;
  }
  const double correction =
      std::clamp(measured / predicted, 0.25, 4.0);
  const double old = model->Coefficient(key, 1.0);
  model->SetCoefficient(
      key, (1.0 - kSmoothingAlpha) * old + kSmoothingAlpha * old * correction);
}

}  // namespace

void CostModel::ObserveApproxSeconds(const WorkloadSignature& w, QrVariant qr,
                                     double measured_seconds) {
  SmoothScale(this, "scale.approx", PredictApproxSeconds(w, qr),
              measured_seconds);
}

void CostModel::ObserveInitSeconds(const WorkloadSignature& w,
                                   const PhaseVariantPlan& plan,
                                   double measured_seconds) {
  SmoothScale(this, "scale.init", PredictInitSeconds(w, plan),
              measured_seconds);
}

void CostModel::ObserveSweepSeconds(const WorkloadSignature& w,
                                    const PhaseVariantPlan& plan,
                                    double measured_seconds) {
  SmoothScale(this, "scale.sweep", PredictSweepSeconds(w, plan),
              measured_seconds);
}

std::string CostModel::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const auto& [key, value] : c_) {
    if (!first) os << ",\n";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    os << "  \"" << key << "\": " << buf;
  }
  os << "\n}\n";
  return os.str();
}

namespace {

// Minimal parser for the flat calibration object: {"key": number, ...}.
// Anything else — nesting, arrays, strings-as-values — is a parse error.
bool ParseFlatJsonObject(const std::string& text,
                         std::map<std::string, double>* out,
                         std::string* error) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') {
    *error = "expected '{'";
    return false;
  }
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return true;  // Empty object.
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') {
      *error = "expected '\"' to open a key";
      return false;
    }
    const std::size_t key_begin = ++i;
    while (i < text.size() && text[i] != '"') ++i;
    if (i >= text.size()) {
      *error = "unterminated key";
      return false;
    }
    const std::string key = text.substr(key_begin, i - key_begin);
    ++i;
    skip_ws();
    if (i >= text.size() || text[i] != ':') {
      *error = "expected ':' after key \"" + key + "\"";
      return false;
    }
    ++i;
    skip_ws();
    const char* start = text.c_str() + i;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) {
      *error = "expected a number for key \"" + key + "\"";
      return false;
    }
    if (!std::isfinite(value) || value <= 0.0) {
      *error = "value for key \"" + key + "\" must be finite and positive";
      return false;
    }
    i += static_cast<std::size_t>(end - start);
    (*out)[key] = value;
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') return true;
    *error = "expected ',' or '}' after key \"" + key + "\"";
    return false;
  }
}

}  // namespace

bool CostModel::LoadCalibration(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    DT_LOG(WARNING) << "adaptive: calibration file '" << path
                           << "' is unreadable; using built-in defaults";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  std::map<std::string, double> parsed;
  std::string error;
  if (!ParseFlatJsonObject(text, &parsed, &error)) {
    DT_LOG(WARNING) << "adaptive: calibration file '" << path
                           << "' is corrupt (" << error
                           << "); using built-in defaults";
    return false;
  }
  for (const auto& [key, value] : parsed) c_[key] = value;
  return true;
}

}  // namespace adaptive
}  // namespace dtucker
