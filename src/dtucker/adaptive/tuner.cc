#include "dtucker/adaptive/tuner.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace dtucker {
namespace adaptive {

PlanDecision ChoosePlan(const CostModel& model, const WorkloadSignature& w,
                        const TunerOptions& options) {
  PlanDecision decision;
  const PhaseVariantPlan defaults;  // All-auto static heuristics.
  decision.predicted_default_seconds = model.PredictTotalSeconds(w, defaults);

  // Candidate axes, in registry order. Jacobi is enumerated like the rest:
  // it prices itself out on every non-tiny Gram, which is exactly what the
  // model is for.
  const std::vector<EigSolverVariant> eigs = {EigSolverVariant::kQl,
                                              EigSolverVariant::kSubspace,
                                              EigSolverVariant::kJacobi};
  const std::vector<QrVariant> qrs = {QrVariant::kBlocked, QrVariant::kScalar};
  const std::vector<CarrierBuilderVariant> carriers = {
      CarrierBuilderVariant::kSliceParallel,
      CarrierBuilderVariant::kGemmParallel};
  std::vector<GramVariant> grams = {GramVariant::kExact};
  if (options.sketch_error_budget > 0.0) grams.push_back(GramVariant::kSketched);

  PhaseVariantPlan best = defaults;
  double best_seconds = decision.predicted_default_seconds;
  for (EigSolverVariant e : eigs) {
    for (QrVariant q : qrs) {
      for (CarrierBuilderVariant c : carriers) {
        for (GramVariant g : grams) {
          PhaseVariantPlan plan;
          plan.eig = e;
          plan.qr = q;
          plan.carrier = c;
          plan.gram = g;
          const double sec = model.PredictTotalSeconds(w, plan);
          if (sec < best_seconds) {
            best_seconds = sec;
            best = plan;
          }
        }
      }
    }
  }

  // Keep the defaults unless the win clears the hysteresis band.
  const double required =
      decision.predicted_default_seconds * (1.0 - options.hysteresis);
  std::ostringstream why;
  if (best.IsDefault() || best_seconds > required) {
    decision.plan = defaults;
    why << "kept static defaults (best fixed plan " << best.ToString()
        << " predicted " << best_seconds << "s vs default "
        << decision.predicted_default_seconds << "s, within hysteresis)";
  } else {
    decision.plan = best;
    why << "chose " << best.ToString() << " (predicted " << best_seconds
        << "s vs default " << decision.predicted_default_seconds << "s)";
  }
  decision.predicted_approx_seconds =
      model.PredictApproxSeconds(w, decision.plan.qr);
  decision.predicted_init_seconds = model.PredictInitSeconds(w, decision.plan);
  decision.predicted_sweep_seconds =
      model.PredictSweepSeconds(w, decision.plan);
  decision.predicted_total_seconds =
      model.PredictTotalSeconds(w, decision.plan);
  decision.rationale = why.str();
  return decision;
}

}  // namespace adaptive
}  // namespace dtucker
