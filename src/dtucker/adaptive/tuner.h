// Plan selection for `--solver=auto`.
//
// ChoosePlan enumerates the concrete variant combinations registered in
// variants.h, prices each one with the cost model, and returns the argmin
// — unless the predicted win over the all-auto default plan is within the
// hysteresis band, in which case the default plan is kept. The hysteresis
// is what makes auto safe: on workloads where the static heuristics are
// already right (most of them), auto resolves to the exact same execution
// the defaults would run, so it can never regress those runs by more than
// model noise; it only departs from the defaults when the predicted win is
// decisive (e.g. a dense QL solve on a 400^2 Gram that the subspace
// solver covers at rank cost).
#ifndef DTUCKER_DTUCKER_ADAPTIVE_TUNER_H_
#define DTUCKER_DTUCKER_ADAPTIVE_TUNER_H_

#include <string>

#include "dtucker/adaptive/cost_model.h"
#include "dtucker/adaptive/variants.h"

namespace dtucker {
namespace adaptive {

struct TunerOptions {
  // Required relative predicted win before leaving the default plan.
  double hysteresis = 0.10;
  // Relative squared-error budget the caller tolerates in the HOOI
  // *starting point* (the converged fit is unaffected; see GramVariant).
  // <= 0 keeps the sketched-gram rung out of the candidate set.
  double sketch_error_budget = 0.0;
};

struct PlanDecision {
  PhaseVariantPlan plan;
  // Model predictions for the chosen plan, recorded alongside the measured
  // times in TuckerStats so predicted-vs-actual is auditable per run.
  double predicted_approx_seconds = 0.0;
  double predicted_init_seconds = 0.0;
  double predicted_sweep_seconds = 0.0;  // Per HOOI sweep.
  double predicted_total_seconds = 0.0;
  double predicted_default_seconds = 0.0;  // Same total for the all-auto plan.
  // One line of why, for logs and --metrics-out.
  std::string rationale;
};

// Picks the per-phase variant plan for one workload. Deterministic: same
// (model, signature, options) in, same plan out; ties break toward the
// earlier candidate in registry order, and the all-auto default wins any
// comparison within the hysteresis band.
PlanDecision ChoosePlan(const CostModel& model, const WorkloadSignature& w,
                        const TunerOptions& options = {});

}  // namespace adaptive
}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_ADAPTIVE_TUNER_H_
