#include "dtucker/adaptive/variants.h"

#include <sstream>

namespace dtucker {
namespace adaptive {

namespace {

struct AxisEntry {
  const char* axis;
  std::vector<std::string> names;
};

const std::vector<AxisEntry>& AxisTable() {
  static const std::vector<AxisEntry>* table = new std::vector<AxisEntry>{
      {"eig", {"auto", "jacobi", "ql", "subspace"}},
      {"qr", {"auto", "blocked", "scalar"}},
      {"carrier", {"auto", "slice_parallel", "gemm_parallel"}},
      {"gram", {"exact", "sketched"}},
  };
  return *table;
}

Status UnknownVariant(const std::string& axis, const std::string& name) {
  return Status::InvalidArgument("unknown solver variant '" + axis + "=" +
                                 name + "'; registered variants: " +
                                 RegisteredVariantsHelp());
}

Status SetAxis(PhaseVariantPlan* plan, const std::string& axis,
               const std::string& name) {
  if (axis == "eig") {
    if (name == "auto") plan->eig = EigSolverVariant::kAuto;
    else if (name == "jacobi") plan->eig = EigSolverVariant::kJacobi;
    else if (name == "ql") plan->eig = EigSolverVariant::kQl;
    else if (name == "subspace") plan->eig = EigSolverVariant::kSubspace;
    else return UnknownVariant(axis, name);
    return Status::OK();
  }
  if (axis == "qr") {
    if (name == "auto") plan->qr = QrVariant::kAuto;
    else if (name == "blocked") plan->qr = QrVariant::kBlocked;
    else if (name == "scalar") plan->qr = QrVariant::kScalar;
    else return UnknownVariant(axis, name);
    return Status::OK();
  }
  if (axis == "carrier") {
    if (name == "auto") plan->carrier = CarrierBuilderVariant::kAuto;
    else if (name == "slice_parallel") {
      plan->carrier = CarrierBuilderVariant::kSliceParallel;
    } else if (name == "gemm_parallel") {
      plan->carrier = CarrierBuilderVariant::kGemmParallel;
    } else {
      return UnknownVariant(axis, name);
    }
    return Status::OK();
  }
  if (axis == "gram") {
    if (name == "exact") plan->gram = GramVariant::kExact;
    else if (name == "sketched") plan->gram = GramVariant::kSketched;
    else return UnknownVariant(axis, name);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown solver axis '" + axis +
                                 "'; registered variants: " +
                                 RegisteredVariantsHelp());
}

}  // namespace

const char* EigVariantName(EigSolverVariant v) {
  switch (v) {
    case EigSolverVariant::kAuto: return "auto";
    case EigSolverVariant::kJacobi: return "jacobi";
    case EigSolverVariant::kQl: return "ql";
    case EigSolverVariant::kSubspace: return "subspace";
  }
  return "auto";
}

const char* QrVariantName(QrVariant v) {
  switch (v) {
    case QrVariant::kAuto: return "auto";
    case QrVariant::kBlocked: return "blocked";
    case QrVariant::kScalar: return "scalar";
  }
  return "auto";
}

const char* CarrierVariantName(CarrierBuilderVariant v) {
  switch (v) {
    case CarrierBuilderVariant::kAuto: return "auto";
    case CarrierBuilderVariant::kSliceParallel: return "slice_parallel";
    case CarrierBuilderVariant::kGemmParallel: return "gemm_parallel";
  }
  return "auto";
}

const char* GramVariantName(GramVariant v) {
  switch (v) {
    case GramVariant::kExact: return "exact";
    case GramVariant::kSketched: return "sketched";
  }
  return "exact";
}

bool PhaseVariantPlan::IsDefault() const {
  return *this == PhaseVariantPlan{};
}

std::string PhaseVariantPlan::ToString() const {
  std::ostringstream os;
  os << "eig=" << EigVariantName(eig) << ",qr=" << QrVariantName(qr)
     << ",carrier=" << CarrierVariantName(carrier)
     << ",gram=" << GramVariantName(gram);
  return os.str();
}

const std::vector<std::string>& VariantAxes() {
  static const std::vector<std::string>* axes = [] {
    auto* v = new std::vector<std::string>;
    for (const AxisEntry& e : AxisTable()) v->push_back(e.axis);
    return v;
  }();
  return *axes;
}

const std::vector<std::string>& RegisteredVariants(const std::string& axis) {
  for (const AxisEntry& e : AxisTable()) {
    if (axis == e.axis) return e.names;
  }
  static const std::vector<std::string>* empty = new std::vector<std::string>;
  return *empty;
}

std::string RegisteredVariantsHelp() {
  std::ostringstream os;
  bool first_axis = true;
  for (const AxisEntry& e : AxisTable()) {
    if (!first_axis) os << ", ";
    first_axis = false;
    os << e.axis << "=";
    for (std::size_t i = 0; i < e.names.size(); ++i) {
      if (i > 0) os << "|";
      os << e.names[i];
    }
  }
  return os.str();
}

Result<PhaseVariantPlan> ParsePlan(const std::string& spec) {
  PhaseVariantPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "solver variant '" + item + "' is not of the form axis=name; "
          "registered variants: " + RegisteredVariantsHelp());
    }
    DT_RETURN_NOT_OK(SetAxis(&plan, item.substr(0, eq), item.substr(eq + 1)));
  }
  return plan;
}

}  // namespace adaptive
}  // namespace dtucker
