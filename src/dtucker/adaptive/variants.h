// Variant registry for input-adaptive execution.
//
// Every D-Tucker phase in this repository carries several interchangeable
// implementations: eigensolvers (Jacobi vs QL vs warm-started subspace
// iteration), orthogonalization (scalar vs blocked compact-WY QR), carrier
// builders (slice-parallel vs GEMM-internal threading), and Gram
// accumulation (exact vs count-sketched). a-Tucker (arxiv 2010.10131)
// shows the fastest choice flips with tensor shape, target ranks, and
// thread count, so no static choice wins everywhere. This header names
// every variant, bundles one-per-axis choices into a PhaseVariantPlan, and
// provides the string registry ("eig=ql,qr=scalar", `--solver=...`) the
// Engine, CLI, benches, and tests dispatch through.
//
// Determinism contract: every individual variant is bitwise
// thread/rank-deterministic on its own (the per-kernel contracts of
// DESIGN.md §6-§8, §11), so any *fixed* plan — including the defaults —
// keeps the repository's bitwise reproducibility guarantees. Only
// `--solver=auto` introduces plan-level variability, and even there the
// chosen plan is a pure function of (shape, ranks, threads, num_ranks) and
// the calibration state.
#ifndef DTUCKER_DTUCKER_ADAPTIVE_VARIANTS_H_
#define DTUCKER_DTUCKER_ADAPTIVE_VARIANTS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/eigen_sym.h"
#include "linalg/qr.h"

namespace dtucker {
namespace adaptive {

// How the slice-parallel builders (carriers T1/T2, projected core Z, and
// the per-slice approximation loop) schedule their independent slices.
// Both strategies write disjoint per-slice slabs through the same
// deterministic GEMM kernels, so they are bitwise identical to each other
// and across thread counts; only the wall time differs (many small slices
// feed the pool best one-slice-per-worker, few large slices best through
// GEMM-internal threading).
enum class CarrierBuilderVariant {
  kAuto,           // Slice-count heuristic (the production default).
  kSliceParallel,  // Force one-slice-per-worker across the BLAS pool.
  kGemmParallel,   // Force a serial slice loop; GEMMs thread internally.
};

// How the initialization phase accumulates the stacked-factor Grams
// G = sum_l F_l diag(s_l)^2 F_l^T for A(1)/A(2). kSketched replaces the
// exact L*I^2*Js accumulation with a deterministic count-sketch of the
// I x (L*Js) stacked factor (E[S S^T] = F F^T), cutting the cost to
// L*I*Js + I^2*w. It perturbs only the *starting point* of the HOOI
// iteration — sweeps always use exact Grams — so the converged fit is
// unchanged to well beyond 4 significant digits; still, the tuner treats
// it as an opt-in rung gated on the caller's declared error budget
// (arxiv 2303.11612 direction).
enum class GramVariant {
  kExact,
  kSketched,
};

// One concrete per-phase variant choice. Default-constructed ≡ the static
// production defaults (bit-identical to the pre-adaptive behavior).
struct PhaseVariantPlan {
  EigSolverVariant eig = EigSolverVariant::kAuto;
  QrVariant qr = QrVariant::kAuto;
  CarrierBuilderVariant carrier = CarrierBuilderVariant::kAuto;
  GramVariant gram = GramVariant::kExact;

  bool IsDefault() const;
  // Canonical spec string, e.g. "eig=auto,qr=auto,carrier=auto,gram=exact".
  std::string ToString() const;

  friend bool operator==(const PhaseVariantPlan& a,
                         const PhaseVariantPlan& b) {
    return a.eig == b.eig && a.qr == b.qr && a.carrier == b.carrier &&
           a.gram == b.gram;
  }
  friend bool operator!=(const PhaseVariantPlan& a,
                         const PhaseVariantPlan& b) {
    return !(a == b);
  }
};

// Registry names (stable spelling used by --solver=, calibration files,
// TuckerStats::selected_variants, and the adaptive.* metrics).
const char* EigVariantName(EigSolverVariant v);
const char* QrVariantName(QrVariant v);
const char* CarrierVariantName(CarrierBuilderVariant v);
const char* GramVariantName(GramVariant v);

// The registry axes ("eig", "qr", "carrier", "gram") and the variant names
// registered under each, in dispatch-table order.
const std::vector<std::string>& VariantAxes();
const std::vector<std::string>& RegisteredVariants(const std::string& axis);
// One-line help: "eig=auto|jacobi|ql|subspace, qr=..., ...".
std::string RegisteredVariantsHelp();

// Parses a comma-separated "axis=name" spec into a plan (axes not named
// keep their defaults; empty spec returns the default plan). Unknown axes
// or variant names are InvalidArgument, with the full registered-variant
// list in the message so a typo'd --solver= flag is self-explaining.
Result<PhaseVariantPlan> ParsePlan(const std::string& spec);

}  // namespace adaptive
}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_ADAPTIVE_VARIANTS_H_
