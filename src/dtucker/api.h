// Umbrella header: the supported public API surface of the D-Tucker
// library.
//
// Applications (and everything under examples/) should include only this
// header for solver functionality. Everything it pulls in is the stable
// boundary:
//
//   - dtucker/engine.h           Engine facade (solver selection, run
//                                control, telemetry) — the recommended
//                                entry point.
//   - dtucker/dtucker.h          Direct D-Tucker entry points + options.
//   - dtucker/online_dtucker.h   D-TuckerO streaming updates.
//   - dtucker/out_of_core.h      File-streaming approximation.
//   - dtucker/sharded_dtucker.h  Sharded slice-parallel solver (and, via
//                                it, comm/communicator.h + comm/sharding.h
//                                — the rank collectives and shard plans).
//   - dtucker/slice_approximation.h  The compressed slice form.
//   - serve/server.h             Multi-tenant DecompositionServer (job
//                                scheduler, model cache, factor-space
//                                query API) and, via it, the job queue and
//                                LRU model cache.
//   - baselines/registry.h       Method enum + uniform runner.
//   - tucker/*                   Decomposition type, baselines, rank
//                                estimation, reconstruction, rounding.
//   - common/run_context.h       Cancellation/deadline/fault injection.
//   - common/status.h            Status / Result<T> error model.
//
// Headers NOT reachable from here (linalg kernels, tensor internals,
// internal_dtucker workspaces, thread pool, ...) are implementation
// detail: they may change or disappear between releases without notice.
// The examples/ build enforces this boundary with a configure-time check
// (see examples/CMakeLists.txt).
//
// Data/tooling headers (data/*.h for IO, generators, CLI flag parsing,
// table printing, telemetry sinks) are a separate, also-supported surface
// for programs that need to move tensors in and out of files.
#ifndef DTUCKER_DTUCKER_API_H_
#define DTUCKER_DTUCKER_API_H_

#include "baselines/registry.h"
#include "common/run_context.h"
#include "common/status.h"
#include "dtucker/dtucker.h"
#include "dtucker/engine.h"
#include "dtucker/online_dtucker.h"
#include "dtucker/out_of_core.h"
#include "dtucker/sharded_dtucker.h"
#include "dtucker/slice_approximation.h"
#include "serve/server.h"
#include "tucker/hosvd.h"
#include "tucker/rank_estimation.h"
#include "tucker/reconstruct.h"
#include "tucker/rounding.h"
#include "tucker/tucker.h"
#include "tucker/tucker_als.h"

#endif  // DTUCKER_DTUCKER_API_H_
