#include "dtucker/dtucker.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <numeric>

#include "common/memory.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm_kernel.h"
#include "tensor/tensor_ops.h"
#include "tensor/tensor_utils.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {

namespace {

// The init and iteration phases square the slice singular values (Gram
// accumulation); extreme input magnitudes would denormalize those
// products. When the largest singular value is outside a wide safe band,
// returns it as the scale to divide out (the core scales back linearly);
// the rescaling itself happens on the fly wherever a singular value is
// consumed (si * s_inv), so no copy of the approximation is ever made.
double ComputeScale(const SliceApproximation& approx) {
  double smax = 0.0;
  for (const auto& sl : approx.slices) {
    if (!sl.s.empty()) smax = std::max(smax, sl.s.front());
  }
  if (smax > 0.0 && (smax < 1e-100 || smax > 1e100)) return smax;
  return 1.0;
}

// Total energy of the compressed tensor: ||X~||^2 = sum_l sum_j s_lj^2
// (exact because U<l> and V<l> have orthonormal columns), with the
// singular values rescaled by `s_inv`.
double ApproxSquaredNorm(const SliceApproximation& approx, double s_inv) {
  double total = 0.0;
  for (const auto& sl : approx.slices) {
    for (double s : sl.s) {
      const double v = s * s_inv;
      total += v * v;
    }
  }
  return total;
}

// Grow-only thread_local scratch for per-slice temporaries (the p/q
// matrices of the carrier and projected-core builders, and the scaled
// factor of the Gram accumulation). Distinct slots because one slice build
// needs two live buffers at once. Never handed to nested GEMMs — those
// pack into their own TLS buffers (TlsPackBufferA/B).
double* TlsSliceScratch(int slot, std::size_t doubles) {
  static thread_local std::vector<double> bufs[3];
  std::vector<double>& b = bufs[slot];
  if (b.size() < doubles) b.resize(doubles);
  return b.data();
}

// Runs body(l) for every slice in [0, num_slices). Slices are independent
// and each writes a disjoint output slab, so any partition yields bitwise
// identical results: with a shared pool and enough slices to feed it the
// loop runs across workers (per-slice GEMMs kept serial by
// BlasWorkerScope); otherwise it runs serially and the per-slice GEMMs may
// thread internally (bitwise-deterministic by the packed-GEMM contract).
// `variant` overrides the slice-count heuristic: kSliceParallel forces the
// one-slice-per-worker schedule whenever a pool exists, kGemmParallel
// forces the serial slice loop (GEMM-internal threading). Because every
// schedule produces the same bits, the variant is purely a performance
// knob the adaptive layer dispatches per workload.
void ForEachSlice(Index num_slices, const std::function<void(Index)>& body,
                  adaptive::CarrierBuilderVariant variant =
                      adaptive::CarrierBuilderVariant::kAuto) {
  ThreadPool* pool = SharedBlasPool();
  bool parallel = pool != nullptr && !InBlasWorker();
  if (parallel) {
    switch (variant) {
      case adaptive::CarrierBuilderVariant::kSliceParallel:
        parallel = num_slices > 1;
        break;
      case adaptive::CarrierBuilderVariant::kGemmParallel:
        parallel = false;
        break;
      case adaptive::CarrierBuilderVariant::kAuto:
        parallel = num_slices >= static_cast<Index>(pool->num_threads());
        break;
    }
  }
  if (parallel) {
    pool->ParallelForRanges(static_cast<std::size_t>(num_slices),
                            /*min_grain=*/1,
                            [&](std::size_t begin, std::size_t end) {
                              BlasWorkerScope scope;
                              for (std::size_t l = begin; l < end; ++l) {
                                body(static_cast<Index>(l));
                              }
                            });
  } else {
    for (Index l = 0; l < num_slices; ++l) body(l);
  }
}

// Number of independent accumulator chunks for the stacked-factor Grams.
// Fixed (never derived from the thread count) so the reduction order —
// and the result bits — do not change with SetBlasThreads().
constexpr Index kSliceChunkCount = 8;

}  // namespace

namespace internal_dtucker {

// Builds the projected tensor T1 (I1 x J2 x I3 x ... x IN) with frontal
// slices (U<l> S<l>) (V<l>^T A2). This is "X x_2 A2^T" computed through the
// slice factorizations at cost O(L (I2 + I1) Js J2).
void BuildModeOneCarrierInto(const SliceApproximation& approx, const Matrix& a2,
                             double s_inv, Tensor* t,
                             adaptive::CarrierBuilderVariant variant) {
  DT_TRACE_SPAN("dtucker.carrier_mode1");
  std::vector<Index> shape = approx.shape;
  shape[1] = a2.cols();
  t->ResizeTo(shape);
  const Index i1 = approx.Dim(0);
  const Index i2 = approx.Dim(1);
  const Index j2 = a2.cols();
  const std::size_t slab = static_cast<std::size_t>(i1 * j2);
  ForEachSlice(approx.NumSlices(), [&](Index l) {
    const SliceSvd& sl = approx.slices[static_cast<std::size_t>(l)];
    const Index js = sl.u.cols();
    // q = diag(s * s_inv) (V^T A2), Js x J2, staged in TLS scratch.
    double* q = TlsSliceScratch(0, static_cast<std::size_t>(js * j2));
    GemmRaw(Trans::kYes, Trans::kNo, js, j2, i2, 1.0, sl.v.data(), i2,
            a2.data(), i2, 0.0, q, js);
    for (Index j = 0; j < j2; ++j) {
      double* col = q + static_cast<std::size_t>(j) * static_cast<std::size_t>(js);
      for (Index i = 0; i < js; ++i) {
        col[i] *= sl.s[static_cast<std::size_t>(i)] * s_inv;
      }
    }
    // Slice l of T1 = U q, written straight into its frontal slab.
    GemmRaw(Trans::kNo, Trans::kNo, i1, j2, js, 1.0, sl.u.data(), i1, q, js,
            0.0, t->data() + static_cast<std::size_t>(l) * slab, i1);
  }, variant);
}

// Builds T2 (I2 x J1 x trailing): frontal slices V<l> (S<l> U<l>^T A1).
// Deliberately laid out mode-1-first (the transpose of the paper's J1 x I2
// slices): the mode-2 factor update then reads its operand as the *mode-0*
// unfolding of T2, which is the contiguous flat buffer — so the update can
// take the small-side Gram path in LeadingModeVectorsViaGram instead of
// eigendecomposing an I2 x I2 Gram. The two layouts hold identical columns,
// merely reordered, so spans and singular vectors are unchanged.
void BuildModeTwoCarrierInto(const SliceApproximation& approx, const Matrix& a1,
                             double s_inv, Tensor* t,
                             adaptive::CarrierBuilderVariant variant) {
  DT_TRACE_SPAN("dtucker.carrier_mode2");
  std::vector<Index> shape = approx.shape;
  shape[0] = approx.Dim(1);
  shape[1] = a1.cols();
  t->ResizeTo(shape);
  const Index i1 = approx.Dim(0);
  const Index i2 = approx.Dim(1);
  const Index j1 = a1.cols();
  const std::size_t slab = static_cast<std::size_t>(i2 * j1);
  ForEachSlice(approx.NumSlices(), [&](Index l) {
    const SliceSvd& sl = approx.slices[static_cast<std::size_t>(l)];
    const Index js = sl.u.cols();
    // p = (A1^T U) diag(s * s_inv), J1 x Js, staged in TLS scratch.
    double* p = TlsSliceScratch(0, static_cast<std::size_t>(j1 * js));
    GemmRaw(Trans::kYes, Trans::kNo, j1, js, i1, 1.0, a1.data(), i1,
            sl.u.data(), i1, 0.0, p, j1);
    for (Index j = 0; j < js; ++j) {
      Scal(sl.s[static_cast<std::size_t>(j)] * s_inv,
           p + static_cast<std::size_t>(j) * static_cast<std::size_t>(j1), j1);
    }
    // Slice l of T2 = V p^T, written straight into its frontal slab.
    GemmRaw(Trans::kNo, Trans::kYes, i2, j1, js, 1.0, sl.v.data(), i2, p, j1,
            0.0, t->data() + static_cast<std::size_t>(l) * slab, i2);
  }, variant);
}

// Builds the small projected tensor Z (J1 x J2 x trailing) with frontal
// slices (A1^T U<l> S<l>) (V<l>^T A2).
void BuildProjectedCoreInto(const SliceApproximation& approx, const Matrix& a1,
                            const Matrix& a2, double s_inv, Tensor* z,
                            adaptive::CarrierBuilderVariant variant) {
  DT_TRACE_SPAN("dtucker.projected_core");
  std::vector<Index> shape = approx.shape;
  shape[0] = a1.cols();
  shape[1] = a2.cols();
  z->ResizeTo(shape);
  const Index i1 = approx.Dim(0);
  const Index i2 = approx.Dim(1);
  const Index j1 = a1.cols();
  const Index j2 = a2.cols();
  const std::size_t slab = static_cast<std::size_t>(j1 * j2);
  ForEachSlice(approx.NumSlices(), [&](Index l) {
    const SliceSvd& sl = approx.slices[static_cast<std::size_t>(l)];
    const Index js = sl.u.cols();
    double* p = TlsSliceScratch(0, static_cast<std::size_t>(j1 * js));
    GemmRaw(Trans::kYes, Trans::kNo, j1, js, i1, 1.0, a1.data(), i1,
            sl.u.data(), i1, 0.0, p, j1);
    for (Index j = 0; j < js; ++j) {
      Scal(sl.s[static_cast<std::size_t>(j)] * s_inv,
           p + static_cast<std::size_t>(j) * static_cast<std::size_t>(j1), j1);
    }
    double* q = TlsSliceScratch(1, static_cast<std::size_t>(js * j2));
    GemmRaw(Trans::kYes, Trans::kNo, js, j2, i2, 1.0, sl.v.data(), i2,
            a2.data(), i2, 0.0, q, js);
    GemmRaw(Trans::kNo, Trans::kNo, j1, j2, js, 1.0, p, j1, q, js, 0.0,
            z->data() + static_cast<std::size_t>(l) * slab, j1);
  }, variant);
}

Tensor BuildProjectedCore(const SliceApproximation& approx, const Matrix& a1,
                          const Matrix& a2) {
  Tensor z;
  BuildProjectedCoreInto(approx, a1, a2, /*s_inv=*/1.0, &z);
  return z;
}

void AccumulateScaledFactorGram(const SliceSvd& sl, int m, double s_inv,
                                double beta, Matrix* gram) {
  const Matrix& f0 = m == 0 ? sl.u : sl.v;
  const Index dim = f0.rows();
  const Index js = f0.cols();
  DT_DCHECK_EQ(gram->rows(), dim);
  if (js == 0) {
    if (beta == 0.0) std::fill(gram->data(), gram->data() + gram->size(), 0.0);
    return;
  }
  double* f = TlsSliceScratch(2, static_cast<std::size_t>(dim * js));
  for (Index j = 0; j < js; ++j) {
    const double sj = sl.s[static_cast<std::size_t>(j)] * s_inv;
    const double* src = f0.col_data(j);
    double* dst = f + static_cast<std::size_t>(j) * static_cast<std::size_t>(dim);
    for (Index i = 0; i < dim; ++i) dst[i] = sj * src[i];
  }
  GemmRaw(Trans::kNo, Trans::kYes, dim, dim, js, 1.0, f, dim, f, dim, beta,
          gram->data(), dim);
}

const Tensor* ContractTrailing(const Tensor& t,
                               const std::vector<Matrix>& factors,
                               Index skip_mode, SweepWorkspace* ws) {
  std::vector<Index> modes;
  for (Index n = 2; n < static_cast<Index>(factors.size()); ++n) {
    if (n != skip_mode) modes.push_back(n);
  }
  // Largest dim -> rank shrinkage first, so the working tensor shrinks as
  // fast as possible (cross-multiplied to avoid fp ratios; stable sort
  // keeps ascending mode order on ties). The order depends only on the
  // factor shapes, never on the thread count.
  std::stable_sort(modes.begin(), modes.end(), [&](Index a, Index b) {
    const Matrix& fa = factors[static_cast<std::size_t>(a)];
    const Matrix& fb = factors[static_cast<std::size_t>(b)];
    return fa.cols() * fb.rows() < fb.cols() * fa.rows();
  });
  const Tensor* cur = &t;
  for (Index n : modes) {
    Tensor* dst = cur == &ws->ttm_a ? &ws->ttm_b : &ws->ttm_a;
    ModeProductInto(*cur, factors[static_cast<std::size_t>(n)], n, Trans::kYes,
                    dst);
    cur = dst;
  }
  return cur;
}

}  // namespace internal_dtucker

namespace {

using internal_dtucker::AccumulateScaledFactorGram;
using internal_dtucker::BuildProjectedCoreInto;
using internal_dtucker::ContractTrailing;
using internal_dtucker::SweepWorkspace;

// splitmix64 finalizer: the deterministic per-column hash behind the
// count-sketch Gram. Depends only on the global stacked-column index, so
// the sketch is invariant to thread count and slice partitioning.
std::uint64_t MixColumnHash(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Matrix StackedFactorGram(const SliceApproximation& approx, int m, double s_inv,
                         adaptive::GramVariant variant);

// Count-sketch estimate of the stacked-factor Gram: each scaled stacked
// column s_j * F[:, j] is scattered (with a hashed +/-1 sign) into one of w
// sketch columns, then G~ = S S^T. E[S S^T] = F diag(s)^2 F^T, with
// relative variance O(1/w); the estimate only seeds the HOOI starting
// point (sweeps recompute factors from exact carrier Grams), so the
// converged fit is unaffected. Cost L*dim*Js + dim^2*w versus the exact
// L*dim^2*Js. The scatter runs serially in ascending global column order
// and the hash sees only the global column index, so the result is bitwise
// thread/rank-deterministic. Falls back to the exact path when the sketch
// would not be narrower than the stacked factor itself.
Matrix SketchedStackedFactorGram(const SliceApproximation& approx, int m,
                                 double s_inv) {
  const Index dim = approx.Dim(m);
  const Index num = approx.NumSlices();
  Index total_cols = 0;
  for (Index l = 0; l < num; ++l) {
    total_cols += static_cast<Index>(
        approx.slices[static_cast<std::size_t>(l)].s.size());
  }
  const Index w = std::max<Index>(64, 4 * dim);
  if (total_cols <= w) {
    return StackedFactorGram(approx, m, s_inv, adaptive::GramVariant::kExact);
  }
  Matrix sk(dim, w);  // Zero-initialized.
  Index col = 0;
  for (Index l = 0; l < num; ++l) {
    const SliceSvd& sl = approx.slices[static_cast<std::size_t>(l)];
    const Matrix& f = m == 0 ? sl.u : sl.v;
    const Index js = static_cast<Index>(sl.s.size());
    for (Index j = 0; j < js; ++j, ++col) {
      const std::uint64_t bucket_bits =
          MixColumnHash(2 * static_cast<std::uint64_t>(col));
      const std::uint64_t sign_bits =
          MixColumnHash(2 * static_cast<std::uint64_t>(col) + 1);
      const Index bucket =
          static_cast<Index>(bucket_bits % static_cast<std::uint64_t>(w));
      const double sign = (sign_bits & 1ULL) != 0 ? -1.0 : 1.0;
      const double scale =
          sign * sl.s[static_cast<std::size_t>(j)] * s_inv;
      Axpy(scale, f.col_data(j), sk.col_data(bucket), dim);
    }
  }
  Matrix g = Matrix::Uninitialized(dim, dim);
  GemmRaw(Trans::kNo, Trans::kYes, dim, dim, w, 1.0, sk.data(), dim,
          sk.data(), dim, 0.0, g.data(), dim);
  return g;
}

// G = sum_l F_l diag(s_l * s_inv)^2 F_l^T over the stacked slice factors
// (F = U for m == 0, V for m == 1). Accumulated in kSliceChunkCount
// fixed slice chunks with a fixed-order reduction, parallelized across the
// shared BLAS pool — the same determinism contract as ModeGram. The
// kSketched variant routes through SketchedStackedFactorGram above.
Matrix StackedFactorGram(const SliceApproximation& approx, int m,
                         double s_inv,
                         adaptive::GramVariant variant =
                             adaptive::GramVariant::kExact) {
  if (variant == adaptive::GramVariant::kSketched) {
    return SketchedStackedFactorGram(approx, m, s_inv);
  }
  const Index dim = approx.Dim(m);
  const Index num = approx.NumSlices();
  Matrix g = Matrix::Uninitialized(dim, dim);
  if (num == 0) {
    std::fill(g.data(), g.data() + g.size(), 0.0);
    return g;
  }
  const Index chunks = std::min(kSliceChunkCount, num);
  std::vector<Matrix> partials(
      static_cast<std::size_t>(chunks > 1 ? chunks - 1 : 0));
  for (Matrix& p : partials) p = Matrix::Uninitialized(dim, dim);
  auto chunk_acc = [&](Index c) -> Matrix* {
    return c == 0 ? &g : &partials[static_cast<std::size_t>(c - 1)];
  };
  auto run_chunk = [&](Index c) {
    const Index begin = num * c / chunks;
    const Index end = num * (c + 1) / chunks;
    Matrix* acc = chunk_acc(c);
    for (Index l = begin; l < end; ++l) {
      AccumulateScaledFactorGram(approx.slices[static_cast<std::size_t>(l)], m,
                                 s_inv, l == begin ? 0.0 : 1.0, acc);
    }
  };
  ThreadPool* pool = SharedBlasPool();
  if (pool != nullptr && !InBlasWorker() && chunks > 1) {
    pool->ParallelForRanges(static_cast<std::size_t>(chunks), /*min_grain=*/1,
                            [&](std::size_t begin, std::size_t end) {
                              BlasWorkerScope scope;
                              for (std::size_t c = begin; c < end; ++c) {
                                run_chunk(static_cast<Index>(c));
                              }
                            });
  } else {
    for (Index c = 0; c < chunks; ++c) run_chunk(c);
  }
  // Fixed-order reduction: ascending chunk index.
  for (Index c = 1; c < chunks; ++c) {
    Axpy(1.0, partials[static_cast<std::size_t>(c - 1)].data(), g.data(),
         g.size());
  }
  return g;
}

// Finds the permutation placing the two largest modes first (stable for
// ties), and its inverse.
void LargestTwoFirstPermutation(const std::vector<Index>& shape,
                                std::vector<Index>* perm,
                                std::vector<Index>* inverse) {
  const Index n = static_cast<Index>(shape.size());
  std::vector<Index> by_size(static_cast<std::size_t>(n));
  std::iota(by_size.begin(), by_size.end(), Index{0});
  std::stable_sort(by_size.begin(), by_size.end(), [&](Index a, Index b) {
    return shape[static_cast<std::size_t>(a)] >
           shape[static_cast<std::size_t>(b)];
  });
  perm->clear();
  perm->push_back(by_size[0]);
  perm->push_back(by_size[1]);
  for (Index k = 0; k < n; ++k) {
    if (k != by_size[0] && k != by_size[1]) perm->push_back(k);
  }
  inverse->assign(static_cast<std::size_t>(n), 0);
  for (Index k = 0; k < n; ++k) {
    (*inverse)[static_cast<std::size_t>((*perm)[static_cast<std::size_t>(k)])] =
        k;
  }
}

struct InitResult {
  std::vector<Matrix> factors;
  Tensor core;
};

// Initialization phase (Section 2 of the header comment). `ctx` is polled
// between panels (one panel = one factor's Gram/eigen solve or one
// projected-core build); the first interruption observed is recorded in
// *stop. Every panel still runs — each is a small bounded unit and all of
// them are required for the result to be a structurally valid
// decomposition — so an interruption here degrades the run to
// "initialization only" rather than aborting it.
InitResult InitializeFactors(const SliceApproximation& approx,
                             const std::vector<Index>& ranks, double s_inv,
                             SweepWorkspace* ws, const RunContext* ctx,
                             StatusCode* stop,
                             const adaptive::PhaseVariantPlan& plan = {}) {
  const Index order = static_cast<Index>(approx.shape.size());
  InitResult init;
  init.factors.resize(static_cast<std::size_t>(order));
  auto checkpoint = [&] {
    if (stop == nullptr || *stop != StatusCode::kOk) return;
    *stop = RunContext::CheckOrOk(ctx);
  };
  SubspaceIterationOptions init_eig;
  init_eig.solver = plan.eig;
  init_eig.qr = plan.qr;

  // A1 / A2 from the Grams of the stacked scaled slice factors.
  init.factors[0] = TopEigenvectorsSym(
      StackedFactorGram(approx, 0, s_inv, plan.gram), ranks[0],
      /*subspace=*/nullptr, init_eig);
  checkpoint();
  init.factors[1] = TopEigenvectorsSym(
      StackedFactorGram(approx, 1, s_inv, plan.gram), ranks[1],
      /*subspace=*/nullptr, init_eig);
  checkpoint();

  // Trailing factors from the small projected tensor Z, matricization-free
  // via the mode-n Gram. The subspace slots seed the sweeps' warm starts:
  // the sweep updates extract from the same In x In mode Grams.
  if (static_cast<Index>(ws->subspace.size()) < order) {
    ws->subspace.resize(static_cast<std::size_t>(order));
  }
  BuildProjectedCoreInto(approx, init.factors[0], init.factors[1], s_inv,
                         &ws->z, plan.carrier);
  checkpoint();
  for (Index n = 2; n < order; ++n) {
    init.factors[static_cast<std::size_t>(n)] = LeadingModeVectorsViaGram(
        ws->z, n, ranks[static_cast<std::size_t>(n)],
        &ws->subspace[static_cast<std::size_t>(n)], init_eig);
    checkpoint();
  }
  init.core = *ContractTrailing(ws->z, init.factors, /*skip_mode=*/-1, ws);
  return init;
}

}  // namespace

Status DTuckerOptions::Validate(const std::vector<Index>& shape) const {
  if (shape.size() < 3) {
    return Status::InvalidArgument("D-Tucker requires an order >= 3 tensor");
  }
  DT_RETURN_NOT_OK(ValidateRanks(shape, tucker.ranks));
  if (tucker.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be non-negative");
  }
  if (tucker.tolerance < 0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  if (slice_rank < 0) {
    return Status::InvalidArgument("slice_rank must be non-negative");
  }
  if (oversampling < 0) {
    return Status::InvalidArgument("oversampling must be non-negative");
  }
  if (power_iterations < 0) {
    return Status::InvalidArgument("power_iterations must be non-negative");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be non-negative");
  }
  return Status::OK();
}

namespace internal_dtucker {

bool DTuckerSweep(const SliceApproximation& approx,
                  const std::vector<Index>& ranks,
                  std::vector<Matrix>* factors, Tensor* core,
                  SweepWorkspace* ws, double s_inv, const RunContext* ctx,
                  const adaptive::PhaseVariantPlan& plan) {
  DT_TRACE_SPAN("dtucker.sweep");
  const Index order = static_cast<Index>(approx.shape.size());
  if (static_cast<Index>(ws->subspace.size()) < order) {
    ws->subspace.resize(static_cast<std::size_t>(order));
  }
  // Interruption checkpoints sit between mode updates: a mode update is the
  // bounded unit of work (one carrier build + one eigen solve), so a
  // cancellation is noticed within one update's latency. After a trip the
  // factors are mid-update — the caller owns the pre-sweep snapshot.
  auto interrupted = [&] {
    return RunContext::CheckOrOk(ctx) != StatusCode::kOk;
  };
  // Inexact inner solves: each factor update only needs a subspace good
  // enough for the next HOOI sweep to improve on, and the warm start means
  // the basis keeps refining across sweeps even when a single call stops
  // early. On the flat spectra HOOI produces near convergence, the default
  // 1e-11 Ritz tolerance never trips and every solve would burn the full
  // 50-sweep budget for digits the outer loop immediately discards.
  SubspaceIterationOptions inner_eig;
  inner_eig.max_sweeps = 4;
  inner_eig.ritz_tolerance = 1e-9;
  inner_eig.solver = plan.eig;
  inner_eig.qr = plan.qr;
  // Mode-1 update: carrier T1 = X~ x_2 A2^T, contract trailing modes, then
  // leading left singular vectors of the mode-0 unfolding — the small-side
  // Gram path of LeadingModeVectorsViaGram (the contracted carrier is
  // I1 x J2 x J3 x ..., so the wide side is a product of ranks),
  // warm-started from the previous sweep's subspace.
  if (interrupted()) return false;
  {
    DT_TRACE_SPAN("dtucker.update_mode1");
    BuildModeOneCarrierInto(approx, (*factors)[1], s_inv, &ws->carrier,
                            plan.carrier);
    (*factors)[0] = LeadingModeVectorsViaGram(
        *ContractTrailing(ws->carrier, *factors, /*skip_mode=*/-1, ws), 0,
        ranks[0], &ws->subspace[0], inner_eig);
  }
  if (interrupted()) return false;
  {
    // Mode-2 update (uses the fresh A1). T2 is laid out mode-1-first, so
    // this too is a mode-0 problem on the contracted carrier
    // (I2 x J1 x J3 x ...).
    DT_TRACE_SPAN("dtucker.update_mode2");
    BuildModeTwoCarrierInto(approx, (*factors)[0], s_inv, &ws->carrier,
                            plan.carrier);
    (*factors)[1] = LeadingModeVectorsViaGram(
        *ContractTrailing(ws->carrier, *factors, /*skip_mode=*/-1, ws), 0,
        ranks[1], &ws->subspace[1], inner_eig);
  }
  {
    // Trailing-mode updates share one projected tensor Z built from the
    // fresh A1, A2 (Z does not depend on trailing factors).
    DT_TRACE_SPAN("dtucker.update_trailing");
    if (interrupted()) return false;
    BuildProjectedCoreInto(approx, (*factors)[0], (*factors)[1], s_inv,
                           &ws->z, plan.carrier);
    for (Index n = 2; n < order; ++n) {
      if (interrupted()) return false;
      (*factors)[static_cast<std::size_t>(n)] = LeadingModeVectorsViaGram(
          *ContractTrailing(ws->z, *factors, /*skip_mode=*/n, ws), n,
          ranks[static_cast<std::size_t>(n)],
          &ws->subspace[static_cast<std::size_t>(n)], inner_eig);
    }
  }
  if (interrupted()) return false;
  {
    DT_TRACE_SPAN("dtucker.core_refresh");
    *core = *ContractTrailing(ws->z, *factors, /*skip_mode=*/-1, ws);
  }
  return true;
}

bool DTuckerSweep(const SliceApproximation& approx,
                  const std::vector<Index>& ranks,
                  std::vector<Matrix>* factors, Tensor* core) {
  SweepWorkspace ws;
  return DTuckerSweep(approx, ranks, factors, core, &ws, /*s_inv=*/1.0);
}

}  // namespace internal_dtucker

Result<RankSuggestion> SuggestRanksFromApproximation(
    const SliceApproximation& approx, double energy_threshold,
    Index max_rank) {
  if (energy_threshold <= 0.0 || energy_threshold > 1.0) {
    return Status::InvalidArgument("energy_threshold must be in (0, 1]");
  }
  DT_RETURN_NOT_OK(approx.Validate());
  const Index order = static_cast<Index>(approx.shape.size());

  RankSuggestion out;
  out.ranks.resize(static_cast<std::size_t>(order));
  out.spectra.resize(static_cast<std::size_t>(order));
  out.retained_energy.resize(static_cast<std::size_t>(order));

  auto pick = [&](std::vector<double> spectrum, Index mode) {
    double total = 0;
    for (double v : spectrum) total += std::max(v, 0.0);
    Index rank = 1;
    double cum = 0;
    for (std::size_t i = 0; i < spectrum.size(); ++i) {
      cum += std::max(spectrum[i], 0.0);
      rank = static_cast<Index>(i + 1);
      if (total <= 0.0 || cum >= energy_threshold * total) break;
    }
    if (max_rank > 0) rank = std::min(rank, max_rank);
    double kept = 0;
    for (Index i = 0; i < rank; ++i) {
      kept += std::max(spectrum[static_cast<std::size_t>(i)], 0.0);
    }
    out.ranks[static_cast<std::size_t>(mode)] = rank;
    out.retained_energy[static_cast<std::size_t>(mode)] =
        total > 0 ? kept / total : 1.0;
    out.spectra[static_cast<std::size_t>(mode)] = std::move(spectrum);
  };

  // Modes 1 and 2: exact (for the approximated tensor) spectra from the
  // accumulated slice-factor Grams, since X~_(1) X~_(1)^T = sum_l U S^2 U^T.
  std::vector<Matrix> leading_vecs(2);
  for (int m = 0; m < 2; ++m) {
    const Index dim = approx.Dim(m);
    EigenSymResult eig = EigenSym(StackedFactorGram(approx, m, /*s_inv=*/1.0));
    leading_vecs[static_cast<std::size_t>(m)] = eig.vectors.LeftCols(
        std::min(dim, std::max<Index>(approx.slice_rank, 1)));
    pick(std::move(eig.values), m);
  }

  // Trailing modes: spectra of the projected tensor Z built at the probe
  // rank — energy within the leading-subspace projection (a lower bound
  // that is tight when the probe rank covers the signal). The mode Grams
  // come straight from Z's flat buffer (no unfolding copies).
  Tensor z = internal_dtucker::BuildProjectedCore(approx, leading_vecs[0],
                                                  leading_vecs[1]);
  for (Index n = 2; n < order; ++n) {
    EigenSymResult eig = EigenSym(ModeGram(z, n));
    pick(std::move(eig.values), n);
  }
  return out;
}

Result<TuckerDecomposition> DTuckerInitializeOnly(
    const SliceApproximation& approx, const DTuckerOptions& options) {
  DT_RETURN_NOT_OK(approx.Validate());
  DT_RETURN_NOT_OK(options.Validate(approx.shape));
  const RunContext* ctx = options.tucker.run_context;
  if (ctx != nullptr) {
    DT_RETURN_NOT_OK(ctx->CheckStatus("d-tucker initialization"));
  }
  const double scale = ComputeScale(approx);
  const double s_inv = 1.0 / scale;  // Exactly 1.0 in the common case.
  SweepWorkspace ws;
  // All panels run even under interruption (see InitializeFactors): the
  // init-only result *is* the final product here, so nothing is skipped.
  StatusCode stop = StatusCode::kOk;
  InitResult init = InitializeFactors(approx, options.tucker.ranks, s_inv,
                                      &ws, ctx, &stop, options.variants);
  TuckerDecomposition dec;
  dec.factors = std::move(init.factors);
  dec.core = std::move(init.core);
  if (scale != 1.0) dec.core *= scale;
  return dec;
}

Result<TuckerDecomposition> DTuckerFromApproximation(
    const SliceApproximation& approx, const DTuckerOptions& options,
    TuckerStats* stats) {
  DT_RETURN_NOT_OK(approx.Validate());
  DT_RETURN_NOT_OK(options.Validate(approx.shape));
  const RunContext* ctx = options.tucker.run_context;
  // Nothing has been computed yet, so an interruption observed here is a
  // plain error rather than a degraded result.
  if (ctx != nullptr) DT_RETURN_NOT_OK(ctx->CheckStatus("d-tucker solve"));
  const double scale = ComputeScale(approx);
  const double s_inv = 1.0 / scale;  // Exactly 1.0 in the common case.
  const double approx_norm2 = ApproxSquaredNorm(approx, s_inv);

  Timer init_timer;
  SweepWorkspace ws;
  StatusCode stop = StatusCode::kOk;
  InitResult state = [&] {
    DT_TRACE_SPAN("dtucker.initialization");
    return InitializeFactors(approx, options.tucker.ranks, s_inv, &ws, ctx,
                             &stop, options.variants);
  }();
  GlobalPhaseTimer().Add("dtucker.initialization", init_timer.Seconds());
  if (stats != nullptr) stats->init_seconds = init_timer.Seconds();
  const char* stop_phase =
      stop != StatusCode::kOk ? "initialization" : nullptr;

  Timer iterate_timer;
  DT_TRACE_SPAN("dtucker.iteration");
  double prev_error =
      OrthogonalTuckerRelativeError(approx_norm2, state.core.SquaredNorm());
  if (stats != nullptr) stats->error_history.push_back(prev_error);
  static Counter& eig_sweeps = MetricCounter("eig.subspace_sweeps");
  double prev_fit = 1.0 - std::sqrt(std::max(prev_error, 0.0));

  // Pre-sweep snapshots (taken whenever a RunContext is attached — a
  // cancel from another thread can land mid-sweep even if the context was
  // idle at loop entry): a mid-sweep abort leaves the factors half-updated,
  // so the loop rolls back to the last completed sweep — the returned
  // decomposition then matches the last telemetry record exactly.
  const bool armed = ctx != nullptr;
  std::vector<Matrix> factors_snapshot;
  Tensor core_snapshot;

  int it = 0;
  for (; it < options.tucker.max_iterations; ++it) {
    if (stop == StatusCode::kOk) stop = RunContext::CheckOrOk(ctx);
    if (stop != StatusCode::kOk) {
      if (stop_phase == nullptr) stop_phase = "between iteration sweeps";
      break;
    }
    Timer sweep_timer;
    const std::uint64_t eig_before = eig_sweeps.Value();
    if (armed) {
      factors_snapshot = state.factors;
      core_snapshot = state.core;
    }
    const bool completed = internal_dtucker::DTuckerSweep(
        approx, options.tucker.ranks, &state.factors, &state.core, &ws, s_inv,
        ctx, options.variants);
    if (!completed) {
      state.factors = std::move(factors_snapshot);
      state.core = std::move(core_snapshot);
      stop = RunContext::CheckOrOk(ctx);
      if (stop == StatusCode::kOk) stop = StatusCode::kCancelled;
      stop_phase = "mid-sweep (rolled back to the previous sweep)";
      break;
    }
    const double error = OrthogonalTuckerRelativeError(
        approx_norm2, state.core.SquaredNorm());
    static Histogram& sweep_hist = MetricHistogram("dtucker.sweep_ns");
    sweep_hist.Record(
        static_cast<std::uint64_t>(sweep_timer.Seconds() * 1e9));
    if (stats != nullptr) stats->error_history.push_back(error);
    const bool want_telemetry = stats != nullptr || options.sweep_callback;
    if (want_telemetry) {
      SweepTelemetry t;
      t.sweep = it + 1;
      t.relative_error = error;
      t.fit = 1.0 - std::sqrt(std::max(error, 0.0));
      t.delta_fit = t.fit - prev_fit;
      t.seconds = sweep_timer.Seconds();
      t.subspace_iterations = eig_sweeps.Value() - eig_before;
      prev_fit = t.fit;
      if (stats != nullptr) stats->sweep_history.push_back(t);
      if (options.sweep_callback) options.sweep_callback(t);
    }
    const double delta = std::fabs(prev_error - error);
    prev_error = error;
    if (delta < options.tucker.tolerance) {
      ++it;
      break;
    }
  }
  GlobalPhaseTimer().Add("dtucker.iteration", iterate_timer.Seconds());
  MetricGauge("process.peak_rss_bytes")
      .SetMax(static_cast<double>(PeakRssBytes()));
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
    stats->working_bytes = approx.ByteSize();
    stats->completion = stop;
    if (stop != StatusCode::kOk) {
      stats->completion_detail =
          std::string(StatusCodeToString(stop)) + " during " +
          (stop_phase != nullptr ? stop_phase : "iteration") + "; " +
          std::to_string(it) + " completed sweep(s)";
    }
  }

  TuckerDecomposition dec;
  dec.factors = std::move(state.factors);
  dec.core = std::move(state.core);
  if (scale != 1.0) dec.core *= scale;
  return dec;
}

Result<TuckerDecomposition> DTucker(const Tensor& x,
                                    const DTuckerOptions& options,
                                    TuckerStats* stats) {
  DT_RETURN_NOT_OK(options.Validate(x.shape()));
  if (options.tucker.validate_input) DT_RETURN_NOT_OK(ValidateFinite(x));

  if (options.auto_reorder) {
    std::vector<Index> perm, inverse;
    LargestTwoFirstPermutation(x.shape(), &perm, &inverse);
    bool already_ordered = true;
    for (Index k = 0; k < x.order(); ++k) {
      if (perm[static_cast<std::size_t>(k)] != k) already_ordered = false;
    }
    if (!already_ordered) {
      Tensor xp = x.Permuted(perm);
      DTuckerOptions inner = options;
      inner.auto_reorder = false;
      inner.tucker.ranks.clear();
      for (Index k = 0; k < x.order(); ++k) {
        inner.tucker.ranks.push_back(options.tucker.ranks[static_cast<std::size_t>(
            perm[static_cast<std::size_t>(k)])]);
      }
      DT_ASSIGN_OR_RETURN(TuckerDecomposition dp, DTucker(xp, inner, stats));
      TuckerDecomposition dec;
      dec.factors.resize(static_cast<std::size_t>(x.order()));
      for (Index k = 0; k < x.order(); ++k) {
        dec.factors[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] =
            std::move(dp.factors[static_cast<std::size_t>(k)]);
      }
      dec.core = dp.core.Permuted(inverse);
      return dec;
    }
  }

  SliceApproximationOptions approx_opts;
  approx_opts.slice_rank =
      std::min(options.EffectiveSliceRank(), std::min(x.dim(0), x.dim(1)));
  approx_opts.oversampling = options.oversampling;
  approx_opts.power_iterations = options.power_iterations;
  approx_opts.seed = options.tucker.seed;
  approx_opts.num_threads = options.num_threads;
  approx_opts.run_context = options.tucker.run_context;
  approx_opts.qr_variant = options.variants.qr;

  Timer approx_timer;
  Result<SliceApproximation> approx_result = [&] {
    DT_TRACE_SPAN("dtucker.approximation");
    return ApproximateSlices(x, approx_opts);
  }();
  if (!approx_result.ok()) return approx_result.status();
  SliceApproximation approx = std::move(approx_result).ValueOrDie();
  GlobalPhaseTimer().Add("dtucker.approximation", approx_timer.Seconds());
  if (stats != nullptr) stats->preprocess_seconds = approx_timer.Seconds();

  return DTuckerFromApproximation(approx, options, stats);
}

}  // namespace dtucker
