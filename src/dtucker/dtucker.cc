#include "dtucker/dtucker.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/timer.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "tensor/tensor_ops.h"
#include "tensor/tensor_utils.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {

namespace {

// The init and iteration phases square the slice singular values (Gram
// accumulation); extreme input magnitudes would denormalize those
// products. When the largest singular value is outside a wide safe band,
// returns a copy of the approximation rescaled to O(1) in `storage` and
// the applied scale in `scale_out` (the core scales back linearly);
// otherwise returns the input untouched.
const SliceApproximation* MaybeNormalizeScale(const SliceApproximation& approx,
                                              SliceApproximation* storage,
                                              double* scale_out) {
  double smax = 0.0;
  for (const auto& sl : approx.slices) {
    if (!sl.s.empty()) smax = std::max(smax, sl.s.front());
  }
  if (smax > 0.0 && (smax < 1e-100 || smax > 1e100)) {
    *storage = approx;
    const double inv = 1.0 / smax;
    for (auto& sl : storage->slices) {
      for (double& v : sl.s) v *= inv;
    }
    *scale_out = smax;
    return storage;
  }
  *scale_out = 1.0;
  return &approx;
}

// Total energy of the compressed tensor: ||X~||^2 = sum_l sum_j s_lj^2
// (exact because U<l> and V<l> have orthonormal columns).
double ApproxSquaredNorm(const SliceApproximation& approx) {
  double total = 0.0;
  for (const auto& sl : approx.slices) {
    for (double s : sl.s) total += s * s;
  }
  return total;
}

// Builds the projected tensor T1 (I1 x J2 x I3 x ... x IN) with frontal
// slices (U<l> S<l>) (V<l>^T A2). This is "X x_2 A2^T" computed through the
// slice factorizations at cost O(L (I2 + I1) Js J2).
Tensor BuildModeOneCarrier(const SliceApproximation& approx, const Matrix& a2) {
  std::vector<Index> shape = approx.shape;
  shape[1] = a2.cols();
  Tensor t(shape);
  for (Index l = 0; l < approx.NumSlices(); ++l) {
    const SliceSvd& sl = approx.slices[static_cast<std::size_t>(l)];
    Matrix q = MultiplyTN(sl.v, a2);              // Js x J2.
    // Scale rows of q by s (equivalent to (U S) q but cheaper as diag*q).
    for (Index i = 0; i < q.rows(); ++i) {
      const double si = sl.s[static_cast<std::size_t>(i)];
      for (Index j = 0; j < q.cols(); ++j) q(i, j) *= si;
    }
    t.SetFrontalSlice(l, Multiply(sl.u, q));      // I1 x J2.
  }
  return t;
}

// Builds T2 (J1 x I2 x trailing): frontal slices (A1^T U<l> S<l>) V<l>^T.
Tensor BuildModeTwoCarrier(const SliceApproximation& approx, const Matrix& a1) {
  std::vector<Index> shape = approx.shape;
  shape[0] = a1.cols();
  Tensor t(shape);
  for (Index l = 0; l < approx.NumSlices(); ++l) {
    const SliceSvd& sl = approx.slices[static_cast<std::size_t>(l)];
    Matrix p = MultiplyTN(a1, sl.u);              // J1 x Js.
    for (Index j = 0; j < p.cols(); ++j) {
      Scal(sl.s[static_cast<std::size_t>(j)], p.col_data(j), p.rows());
    }
    t.SetFrontalSlice(l, MultiplyNT(p, sl.v));    // J1 x I2.
  }
  return t;
}

}  // namespace

namespace internal_dtucker {

// Builds the small projected tensor Z (J1 x J2 x trailing) with frontal
// slices (A1^T U<l> S<l>) (V<l>^T A2).
Tensor BuildProjectedCore(const SliceApproximation& approx, const Matrix& a1,
                          const Matrix& a2) {
  std::vector<Index> shape = approx.shape;
  shape[0] = a1.cols();
  shape[1] = a2.cols();
  Tensor z(shape);
  for (Index l = 0; l < approx.NumSlices(); ++l) {
    const SliceSvd& sl = approx.slices[static_cast<std::size_t>(l)];
    Matrix p = MultiplyTN(a1, sl.u);  // J1 x Js.
    for (Index j = 0; j < p.cols(); ++j) {
      Scal(sl.s[static_cast<std::size_t>(j)], p.col_data(j), p.rows());
    }
    Matrix q = MultiplyTN(sl.v, a2);  // Js x J2.
    z.SetFrontalSlice(l, Multiply(p, q));
  }
  return z;
}

}  // namespace internal_dtucker

namespace {

using internal_dtucker::BuildProjectedCore;

// Top-k eigenvectors of an accumulated Gram matrix.
Matrix TopEigenvectors(const Matrix& gram, Index k) {
  return TopEigenvectorsSym(gram, k);
}

// Contracts trailing modes (2..N-1) of `t` with the corresponding factors
// (transposed), optionally skipping one trailing mode.
Tensor ContractTrailing(Tensor t, const std::vector<Matrix>& factors,
                        Index skip_mode) {
  for (Index n = 2; n < static_cast<Index>(factors.size()); ++n) {
    if (n == skip_mode) continue;
    t = ModeProduct(t, factors[static_cast<std::size_t>(n)], n, Trans::kYes);
  }
  return t;
}

// Finds the permutation placing the two largest modes first (stable for
// ties), and its inverse.
void LargestTwoFirstPermutation(const std::vector<Index>& shape,
                                std::vector<Index>* perm,
                                std::vector<Index>* inverse) {
  const Index n = static_cast<Index>(shape.size());
  std::vector<Index> by_size(static_cast<std::size_t>(n));
  std::iota(by_size.begin(), by_size.end(), Index{0});
  std::stable_sort(by_size.begin(), by_size.end(), [&](Index a, Index b) {
    return shape[static_cast<std::size_t>(a)] >
           shape[static_cast<std::size_t>(b)];
  });
  perm->clear();
  perm->push_back(by_size[0]);
  perm->push_back(by_size[1]);
  for (Index k = 0; k < n; ++k) {
    if (k != by_size[0] && k != by_size[1]) perm->push_back(k);
  }
  inverse->assign(static_cast<std::size_t>(n), 0);
  for (Index k = 0; k < n; ++k) {
    (*inverse)[static_cast<std::size_t>((*perm)[static_cast<std::size_t>(k)])] =
        k;
  }
}

struct InitResult {
  std::vector<Matrix> factors;
  Tensor core;
};

// Initialization phase (Section 2 of the header comment).
InitResult InitializeFactors(const SliceApproximation& approx,
                             const std::vector<Index>& ranks) {
  const Index order = static_cast<Index>(approx.shape.size());
  InitResult init;
  init.factors.resize(static_cast<std::size_t>(order));

  // A1 from the Gram of the stacked scaled left factors.
  {
    Matrix gram(approx.Dim(0), approx.Dim(0));
    for (const auto& sl : approx.slices) {
      Matrix ys = sl.UTimesS();
      GemmRaw(Trans::kNo, Trans::kYes, ys.rows(), ys.rows(), ys.cols(), 1.0,
              ys.data(), ys.rows(), ys.data(), ys.rows(), 1.0, gram.data(),
              gram.rows());
    }
    init.factors[0] = TopEigenvectors(gram, ranks[0]);
  }
  // A2 from the Gram of the stacked scaled right factors.
  {
    Matrix gram(approx.Dim(1), approx.Dim(1));
    for (const auto& sl : approx.slices) {
      Matrix vs = sl.VTimesS();
      GemmRaw(Trans::kNo, Trans::kYes, vs.rows(), vs.rows(), vs.cols(), 1.0,
              vs.data(), vs.rows(), vs.data(), vs.rows(), 1.0, gram.data(),
              gram.rows());
    }
    init.factors[1] = TopEigenvectors(gram, ranks[1]);
  }

  // Trailing factors from the small projected tensor Z.
  Tensor z = BuildProjectedCore(approx, init.factors[0], init.factors[1]);
  for (Index n = 2; n < order; ++n) {
    Matrix unf = Unfold(z, n);
    init.factors[static_cast<std::size_t>(n)] =
        LeadingLeftSingularVectorsViaGram(unf,
                                          ranks[static_cast<std::size_t>(n)]);
  }
  init.core = ContractTrailing(std::move(z), init.factors, /*skip_mode=*/-1);
  return init;
}

}  // namespace

namespace internal_dtucker {

void DTuckerSweep(const SliceApproximation& approx,
                  const std::vector<Index>& ranks,
                  std::vector<Matrix>* factors, Tensor* core) {
  const Index order = static_cast<Index>(approx.shape.size());
  // Mode-1 update: carrier T1 = X~ x_2 A2^T, contract trailing modes, then
  // leading left singular vectors of the mode-1 unfolding.
  {
    Tensor y = ContractTrailing(BuildModeOneCarrier(approx, (*factors)[1]),
                                *factors, /*skip_mode=*/-1);
    Matrix unf = Unfold(y, 0);
    (*factors)[0] = LeadingLeftSingularVectorsViaGram(unf, ranks[0]);
  }
  // Mode-2 update (uses the fresh A1).
  {
    Tensor y = ContractTrailing(BuildModeTwoCarrier(approx, (*factors)[0]),
                                *factors, /*skip_mode=*/-1);
    Matrix unf = Unfold(y, 1);
    (*factors)[1] = LeadingLeftSingularVectorsViaGram(unf, ranks[1]);
  }
  // Trailing-mode updates share one projected tensor Z built from the
  // fresh A1, A2 (Z does not depend on trailing factors).
  Tensor z = BuildProjectedCore(approx, (*factors)[0], (*factors)[1]);
  for (Index n = 2; n < order; ++n) {
    Tensor y = ContractTrailing(z, *factors, /*skip_mode=*/n);
    Matrix unf = Unfold(y, n);
    (*factors)[static_cast<std::size_t>(n)] = LeadingLeftSingularVectorsViaGram(
        unf, ranks[static_cast<std::size_t>(n)]);
  }
  *core = ContractTrailing(std::move(z), *factors, -1);
}

}  // namespace internal_dtucker

Result<RankSuggestion> SuggestRanksFromApproximation(
    const SliceApproximation& approx, double energy_threshold,
    Index max_rank) {
  if (energy_threshold <= 0.0 || energy_threshold > 1.0) {
    return Status::InvalidArgument("energy_threshold must be in (0, 1]");
  }
  DT_RETURN_NOT_OK(approx.Validate());
  const Index order = static_cast<Index>(approx.shape.size());

  RankSuggestion out;
  out.ranks.resize(static_cast<std::size_t>(order));
  out.spectra.resize(static_cast<std::size_t>(order));
  out.retained_energy.resize(static_cast<std::size_t>(order));

  auto pick = [&](std::vector<double> spectrum, Index mode) {
    double total = 0;
    for (double v : spectrum) total += std::max(v, 0.0);
    Index rank = 1;
    double cum = 0;
    for (std::size_t i = 0; i < spectrum.size(); ++i) {
      cum += std::max(spectrum[i], 0.0);
      rank = static_cast<Index>(i + 1);
      if (total <= 0.0 || cum >= energy_threshold * total) break;
    }
    if (max_rank > 0) rank = std::min(rank, max_rank);
    double kept = 0;
    for (Index i = 0; i < rank; ++i) {
      kept += std::max(spectrum[static_cast<std::size_t>(i)], 0.0);
    }
    out.ranks[static_cast<std::size_t>(mode)] = rank;
    out.retained_energy[static_cast<std::size_t>(mode)] =
        total > 0 ? kept / total : 1.0;
    out.spectra[static_cast<std::size_t>(mode)] = std::move(spectrum);
  };

  // Modes 1 and 2: exact (for the approximated tensor) spectra from the
  // accumulated slice-factor Grams, since X~_(1) X~_(1)^T = sum_l U S^2 U^T.
  std::vector<Matrix> leading_vecs(2);
  for (int m = 0; m < 2; ++m) {
    const Index dim = approx.Dim(m);
    Matrix gram(dim, dim);
    for (const auto& sl : approx.slices) {
      Matrix f = m == 0 ? sl.UTimesS() : sl.VTimesS();
      GemmRaw(Trans::kNo, Trans::kYes, f.rows(), f.rows(), f.cols(), 1.0,
              f.data(), f.rows(), f.data(), f.rows(), 1.0, gram.data(),
              gram.rows());
    }
    EigenSymResult eig = EigenSym(gram);
    leading_vecs[static_cast<std::size_t>(m)] = eig.vectors.LeftCols(
        std::min(dim, std::max<Index>(approx.slice_rank, 1)));
    pick(std::move(eig.values), m);
  }

  // Trailing modes: spectra of the projected tensor Z built at the probe
  // rank — energy within the leading-subspace projection (a lower bound
  // that is tight when the probe rank covers the signal).
  Tensor z = BuildProjectedCore(approx, leading_vecs[0], leading_vecs[1]);
  for (Index n = 2; n < order; ++n) {
    Matrix unf = Unfold(z, n);
    Matrix gram(unf.rows(), unf.rows());
    GemmRaw(Trans::kNo, Trans::kYes, unf.rows(), unf.rows(), unf.cols(), 1.0,
            unf.data(), unf.rows(), unf.data(), unf.rows(), 0.0, gram.data(),
            gram.rows());
    EigenSymResult eig = EigenSym(gram);
    pick(std::move(eig.values), n);
  }
  return out;
}

Result<TuckerDecomposition> DTuckerInitializeOnly(
    const SliceApproximation& approx, const DTuckerOptions& options) {
  DT_RETURN_NOT_OK(ValidateRanks(approx.shape, options.ranks));
  SliceApproximation normalized_storage;
  double scale = 1.0;
  const SliceApproximation* work =
      MaybeNormalizeScale(approx, &normalized_storage, &scale);
  InitResult init = InitializeFactors(*work, options.ranks);
  TuckerDecomposition dec;
  dec.factors = std::move(init.factors);
  dec.core = std::move(init.core);
  if (scale != 1.0) dec.core *= scale;
  return dec;
}

Result<TuckerDecomposition> DTuckerFromApproximation(
    const SliceApproximation& approx, const DTuckerOptions& options,
    TuckerStats* stats) {
  DT_RETURN_NOT_OK(approx.Validate());
  DT_RETURN_NOT_OK(ValidateRanks(approx.shape, options.ranks));
  SliceApproximation normalized_storage;
  double scale = 1.0;
  const SliceApproximation* work =
      MaybeNormalizeScale(approx, &normalized_storage, &scale);
  const double approx_norm2 = ApproxSquaredNorm(*work);

  Timer init_timer;
  InitResult state = InitializeFactors(*work, options.ranks);
  if (stats != nullptr) stats->init_seconds = init_timer.Seconds();

  Timer iterate_timer;
  double prev_error =
      OrthogonalTuckerRelativeError(approx_norm2, state.core.SquaredNorm());
  if (stats != nullptr) stats->error_history.push_back(prev_error);

  int it = 0;
  for (; it < options.max_iterations; ++it) {
    internal_dtucker::DTuckerSweep(*work, options.ranks, &state.factors,
                                   &state.core);
    const double error = OrthogonalTuckerRelativeError(
        approx_norm2, state.core.SquaredNorm());
    if (stats != nullptr) stats->error_history.push_back(error);
    const double delta = std::fabs(prev_error - error);
    prev_error = error;
    if (delta < options.tolerance) {
      ++it;
      break;
    }
  }
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
    stats->working_bytes = approx.ByteSize();
  }

  TuckerDecomposition dec;
  dec.factors = std::move(state.factors);
  dec.core = std::move(state.core);
  if (scale != 1.0) dec.core *= scale;
  return dec;
}

Result<TuckerDecomposition> DTucker(const Tensor& x,
                                    const DTuckerOptions& options,
                                    TuckerStats* stats) {
  if (x.order() < 3) {
    return Status::InvalidArgument("D-Tucker requires an order >= 3 tensor");
  }
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), options.ranks));
  if (options.validate_input) DT_RETURN_NOT_OK(ValidateFinite(x));

  if (options.auto_reorder) {
    std::vector<Index> perm, inverse;
    LargestTwoFirstPermutation(x.shape(), &perm, &inverse);
    bool already_ordered = true;
    for (Index k = 0; k < x.order(); ++k) {
      if (perm[static_cast<std::size_t>(k)] != k) already_ordered = false;
    }
    if (!already_ordered) {
      Tensor xp = x.Permuted(perm);
      DTuckerOptions inner = options;
      inner.auto_reorder = false;
      inner.ranks.clear();
      for (Index k = 0; k < x.order(); ++k) {
        inner.ranks.push_back(
            options.ranks[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])]);
      }
      DT_ASSIGN_OR_RETURN(TuckerDecomposition dp, DTucker(xp, inner, stats));
      TuckerDecomposition dec;
      dec.factors.resize(static_cast<std::size_t>(x.order()));
      for (Index k = 0; k < x.order(); ++k) {
        dec.factors[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] =
            std::move(dp.factors[static_cast<std::size_t>(k)]);
      }
      dec.core = dp.core.Permuted(inverse);
      return dec;
    }
  }

  SliceApproximationOptions approx_opts;
  approx_opts.slice_rank =
      std::min(options.EffectiveSliceRank(), std::min(x.dim(0), x.dim(1)));
  approx_opts.oversampling = options.oversampling;
  approx_opts.power_iterations = options.power_iterations;
  approx_opts.seed = options.seed;
  approx_opts.num_threads = options.num_threads;

  Timer approx_timer;
  DT_ASSIGN_OR_RETURN(SliceApproximation approx,
                      ApproximateSlices(x, approx_opts));
  if (stats != nullptr) stats->preprocess_seconds = approx_timer.Seconds();

  return DTuckerFromApproximation(approx, options, stats);
}

}  // namespace dtucker
