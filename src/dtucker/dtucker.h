// D-Tucker: fast and memory-efficient Tucker decomposition for dense
// tensors (Jang & Kang, ICDE 2020) — the primary contribution of this
// repository.
//
// Three phases:
//   1. Approximation  — rank-Js randomized SVD of every I1 x I2 frontal
//                       slice (src/dtucker/slice_approximation.h). The only
//                       pass over the raw tensor.
//   2. Initialization — factor matrices computed from the slice factors:
//                       A(1) from the stacked U<l>S<l>, A(2) from the
//                       stacked V<l>S<l>, modes >= 3 from the projected
//                       small tensor Z(:,:,l) = A(1)^T X<l> A(2).
//   3. Iteration      — HOOI sweeps whose contractions are decoupled slice
//                       by slice so each update costs O((I1+I2) L Js J)
//                       instead of O(J prod I_n).
#ifndef DTUCKER_DTUCKER_DTUCKER_H_
#define DTUCKER_DTUCKER_DTUCKER_H_

#include <functional>

#include "common/status.h"
#include "dtucker/adaptive/variants.h"
#include "dtucker/slice_approximation.h"
#include "tucker/rank_estimation.h"
#include "tucker/tucker.h"

namespace dtucker {

struct DTuckerOptions {
  // Shared solver knobs (ranks, iteration budget, tolerance, seed, input
  // validation, execution control). Composition, not inheritance: the
  // shared surface is one named field instead of a base class, so the
  // boundary between "every solver" and "D-Tucker" knobs is explicit.
  TuckerOptions tucker;

  // Rank Js of the per-slice SVDs. 0 means "max of the first two Tucker
  // ranks", the paper's setting.
  Index slice_rank = 0;
  Index oversampling = 5;    // rSVD oversampling in the approximation phase.
  int power_iterations = 1;  // rSVD power iterations.
  // If true, modes are permuted so the two largest lead (the layout the
  // slice compression wants) and results are permuted back.
  bool auto_reorder = false;
  // Worker threads for the approximation phase (see
  // SliceApproximationOptions::num_threads). The initialization and
  // iteration phases thread through the process-wide BLAS pool instead —
  // set SetBlasThreads (linalg/blas.h) to parallelize them.
  int num_threads = 1;

  // Per-phase execution variants (see dtucker/adaptive/variants.h). The
  // default plan is the static production configuration and is
  // bit-identical to the pre-adaptive behavior; the Engine's
  // `--solver=auto` tuner or a fixed `--solver=axis=name,...` spec
  // overrides individual axes. Any fixed plan is bitwise
  // thread/rank-deterministic.
  adaptive::PhaseVariantPlan variants;

  // Sharded path only (dtucker/sharded_dtucker.h); the unsharded solver
  // ignores it. When true (default), the iteration phase's trailing-mode
  // factor updates and core refresh run sharded over the rank's own Z
  // slab (small-side Grams + carrier slabs reduced through the canonical
  // chunk tree) instead of replicated on a gathered Z — same fixed
  // reduction shape, so results stay bitwise identical across power-of-two
  // rank counts, but the bits differ from the replicated variant. False
  // restores the replicated trailing updates (the PR 6 behavior), kept as
  // the benchmark baseline.
  bool shard_trailing_updates = true;

  // Invoked after each HOOI sweep with that sweep's convergence telemetry
  // (fit, delta-fit, wall time, subspace-iteration count). Runs on the
  // calling thread between sweeps, so a slow callback slows the solve;
  // leave empty for no per-sweep reporting. The same records are always
  // collected into TuckerStats::sweep_history when stats are requested.
  std::function<void(const SweepTelemetry&)> sweep_callback;

  // Whole-surface validation against the input shape — the one place every
  // entry point rejects bad arguments (replaces the scattered per-phase
  // checks). Returns OK or a descriptive InvalidArgument.
  Status Validate(const std::vector<Index>& shape) const;

  Index EffectiveSliceRank() const {
    if (slice_rank > 0) return slice_rank;
    return std::max(tucker.ranks[0], tucker.ranks[1]);
  }
};

// Deprecated spelling kept for one release while callers migrate to the
// composed DTuckerOptions (options.tucker.* for the shared knobs).
using LegacyDTuckerOptions [[deprecated("use DTuckerOptions")]] =
    DTuckerOptions;

// End-to-end D-Tucker: approximation + initialization + iteration.
Result<TuckerDecomposition> DTucker(const Tensor& x,
                                    const DTuckerOptions& options,
                                    TuckerStats* stats = nullptr);

// Initialization + iteration on an already-compressed tensor. This is the
// "query" entry point when the approximation is computed once and reused
// (e.g. for several target ranks, or by the online variant).
Result<TuckerDecomposition> DTuckerFromApproximation(
    const SliceApproximation& approx, const DTuckerOptions& options,
    TuckerStats* stats = nullptr);

// Initialization phase only (no HOOI sweeps) — used by ablation E8 and as
// a cheap one-shot decomposition.
Result<TuckerDecomposition> DTuckerInitializeOnly(
    const SliceApproximation& approx, const DTuckerOptions& options);

// Suggests Tucker ranks from the compressed form alone (no raw tensor):
// mode-1/2 spectra from the accumulated slice-factor Grams, trailing-mode
// spectra from the projected tensor Z built at `probe_rank` for the two
// leading modes. Same semantics as SuggestRanks (energy threshold in
// (0, 1], optional cap); energies are with respect to the *approximated*
// tensor.
Result<RankSuggestion> SuggestRanksFromApproximation(
    const SliceApproximation& approx, double energy_threshold,
    Index max_rank = 0);

namespace internal_dtucker {

// Reusable buffers threaded through repeated DTuckerSweep calls so
// steady-state iterations stop churning the allocator: the carrier and
// projected-core builders resize these in place (vector capacity is
// retained across iterations) and the trailing TTM chain ping-pongs
// between ttm_a and ttm_b.
struct SweepWorkspace {
  Tensor carrier;  // Mode-1/2 carrier target (T1, then T2).
  Tensor z;        // Projected tensor Z.
  Tensor ttm_a;    // Trailing-contraction ping-pong buffers.
  Tensor ttm_b;
  // Per-mode warm-start bases for the factor updates' subspace iterations
  // (see TopEigenvectorsSym). Carried across sweeps: HOOI operands move
  // slowly, so each update restarts from the previous sweep's converged
  // subspace and needs only the couple of iterations the Ritz check takes.
  std::vector<Matrix> subspace;
};

// The small projected tensor Z (J1 x J2 x I3 x ... x IN) with frontal
// slices (A1^T U<l> S<l>) (V<l>^T A2). Exposed for the online variant and
// white-box tests.
Tensor BuildProjectedCore(const SliceApproximation& approx, const Matrix& a1,
                          const Matrix& a2);

// Workspace variant of BuildProjectedCore: writes Z into *z (resized in
// place), parallelized across the L slices on the shared BLAS pool (each
// slice writes a disjoint frontal slab; per-slice temporaries live in TLS
// grow-only scratch). `s_inv` rescales the slice singular values on the fly
// (see the scale normalization in dtucker.cc); pass 1.0 for unscaled.
void BuildProjectedCoreInto(const SliceApproximation& approx, const Matrix& a1,
                            const Matrix& a2, double s_inv, Tensor* z,
                            adaptive::CarrierBuilderVariant variant =
                                adaptive::CarrierBuilderVariant::kAuto);

// Carrier builders, same slice-parallel contract as BuildProjectedCoreInto:
// T1 (I1 x J2 x trailing) with slices (U<l> S<l>) (V<l>^T A2), and
// T2 (I2 x J1 x trailing) with slices V<l> (S<l> U<l>^T A1) — T2 is stored
// mode-1-first so the mode-2 factor update is a mode-0 problem on it (its
// flat buffer is the unfolding), unlocking the small-side Gram path.
void BuildModeOneCarrierInto(const SliceApproximation& approx, const Matrix& a2,
                             double s_inv, Tensor* t,
                             adaptive::CarrierBuilderVariant variant =
                                 adaptive::CarrierBuilderVariant::kAuto);
void BuildModeTwoCarrierInto(const SliceApproximation& approx, const Matrix& a1,
                             double s_inv, Tensor* t,
                             adaptive::CarrierBuilderVariant variant =
                                 adaptive::CarrierBuilderVariant::kAuto);

// gram (+)= F diag(s * s_inv)^2 F^T for F = slice U (m == 0) or V (m == 1),
// staging the scaled factor in TLS scratch instead of allocating
// UTimesS()/VTimesS() copies. `beta` 0 overwrites the accumulator, 1 adds.
void AccumulateScaledFactorGram(const SliceSvd& sl, int m, double s_inv,
                                double beta, Matrix* gram);

// Contracts trailing modes (2..N-1, optionally skipping one) of `t` with
// factors[n]^T, visiting modes in decreasing dim->rank shrinkage order so
// the working tensor shrinks as fast as possible, ping-ponging through the
// workspace ttm buffers. Returns where the result lives: `&t` itself when
// no mode was contracted, otherwise &ws->ttm_a or &ws->ttm_b.
const Tensor* ContractTrailing(const Tensor& t,
                               const std::vector<Matrix>& factors,
                               Index skip_mode, SweepWorkspace* ws);

// One HOOI sweep over the slice structure (mode 1, mode 2, trailing modes,
// core refresh). `factors` must hold one column-orthogonal matrix per mode
// with row counts matching approx.shape. `ctx` (optional) is polled before
// each mode update; on interruption the sweep returns false immediately
// and *factors/*core are left mid-update (the caller restores its
// pre-sweep snapshot — see DTuckerFromApproximation). Returns true when
// the sweep ran to completion.
bool DTuckerSweep(const SliceApproximation& approx,
                  const std::vector<Index>& ranks,
                  std::vector<Matrix>* factors, Tensor* core,
                  SweepWorkspace* workspace, double s_inv = 1.0,
                  const RunContext* ctx = nullptr,
                  const adaptive::PhaseVariantPlan& plan = {});

// Convenience overload with a transient workspace (white-box tests).
bool DTuckerSweep(const SliceApproximation& approx,
                  const std::vector<Index>& ranks,
                  std::vector<Matrix>* factors, Tensor* core);

}  // namespace internal_dtucker

}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_DTUCKER_H_
