// D-Tucker: fast and memory-efficient Tucker decomposition for dense
// tensors (Jang & Kang, ICDE 2020) — the primary contribution of this
// repository.
//
// Three phases:
//   1. Approximation  — rank-Js randomized SVD of every I1 x I2 frontal
//                       slice (src/dtucker/slice_approximation.h). The only
//                       pass over the raw tensor.
//   2. Initialization — factor matrices computed from the slice factors:
//                       A(1) from the stacked U<l>S<l>, A(2) from the
//                       stacked V<l>S<l>, modes >= 3 from the projected
//                       small tensor Z(:,:,l) = A(1)^T X<l> A(2).
//   3. Iteration      — HOOI sweeps whose contractions are decoupled slice
//                       by slice so each update costs O((I1+I2) L Js J)
//                       instead of O(J prod I_n).
#ifndef DTUCKER_DTUCKER_DTUCKER_H_
#define DTUCKER_DTUCKER_DTUCKER_H_

#include "common/status.h"
#include "dtucker/slice_approximation.h"
#include "tucker/rank_estimation.h"
#include "tucker/tucker.h"

namespace dtucker {

struct DTuckerOptions : TuckerOptions {
  // Rank Js of the per-slice SVDs. 0 means "max of the first two Tucker
  // ranks", the paper's setting.
  Index slice_rank = 0;
  Index oversampling = 5;    // rSVD oversampling in the approximation phase.
  int power_iterations = 1;  // rSVD power iterations.
  // If true, modes are permuted so the two largest lead (the layout the
  // slice compression wants) and results are permuted back.
  bool auto_reorder = false;
  // Worker threads for the approximation phase (see
  // SliceApproximationOptions::num_threads). The initialization and
  // iteration phases thread through the process-wide BLAS pool instead —
  // set SetBlasThreads (linalg/blas.h) to parallelize them.
  int num_threads = 1;

  Index EffectiveSliceRank() const {
    if (slice_rank > 0) return slice_rank;
    return std::max(ranks[0], ranks[1]);
  }
};

// End-to-end D-Tucker: approximation + initialization + iteration.
Result<TuckerDecomposition> DTucker(const Tensor& x,
                                    const DTuckerOptions& options,
                                    TuckerStats* stats = nullptr);

// Initialization + iteration on an already-compressed tensor. This is the
// "query" entry point when the approximation is computed once and reused
// (e.g. for several target ranks, or by the online variant).
Result<TuckerDecomposition> DTuckerFromApproximation(
    const SliceApproximation& approx, const DTuckerOptions& options,
    TuckerStats* stats = nullptr);

// Initialization phase only (no HOOI sweeps) — used by ablation E8 and as
// a cheap one-shot decomposition.
Result<TuckerDecomposition> DTuckerInitializeOnly(
    const SliceApproximation& approx, const DTuckerOptions& options);

// Suggests Tucker ranks from the compressed form alone (no raw tensor):
// mode-1/2 spectra from the accumulated slice-factor Grams, trailing-mode
// spectra from the projected tensor Z built at `probe_rank` for the two
// leading modes. Same semantics as SuggestRanks (energy threshold in
// (0, 1], optional cap); energies are with respect to the *approximated*
// tensor.
Result<RankSuggestion> SuggestRanksFromApproximation(
    const SliceApproximation& approx, double energy_threshold,
    Index max_rank = 0);

namespace internal_dtucker {

// The small projected tensor Z (J1 x J2 x I3 x ... x IN) with frontal
// slices (A1^T U<l> S<l>) (V<l>^T A2). Exposed for the online variant and
// white-box tests.
Tensor BuildProjectedCore(const SliceApproximation& approx, const Matrix& a1,
                          const Matrix& a2);

// One HOOI sweep over the slice structure (mode 1, mode 2, trailing modes,
// core refresh). `factors` must hold one column-orthogonal matrix per mode
// with row counts matching approx.shape.
void DTuckerSweep(const SliceApproximation& approx,
                  const std::vector<Index>& ranks,
                  std::vector<Matrix>* factors, Tensor* core);

}  // namespace internal_dtucker

}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_DTUCKER_H_
