#include "dtucker/engine.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "data/tensor_file.h"
#include "dtucker/sharded_dtucker.h"
#include "linalg/blas.h"

namespace dtucker {

Status EngineOptions::Validate(const std::vector<Index>& shape) const {
  DT_RETURN_NOT_OK(method_options.Validate(shape));
  if (blas_threads < 0) {
    return Status::InvalidArgument("blas_threads must be non-negative");
  }
  if (num_ranks < 0) {
    return Status::InvalidArgument("num_ranks must be non-negative");
  }
  if (num_ranks > 0 && method != TuckerMethod::kDTucker) {
    return Status::InvalidArgument(
        "num_ranks (sharded execution) requires method == dtucker");
  }
  if (spmd_rank >= 0) {
    if (num_ranks < 1) {
      return Status::InvalidArgument(
          "spmd_rank mode requires num_ranks >= 1");
    }
    if (spmd_rank >= num_ranks) {
      return Status::InvalidArgument("spmd_rank must be < num_ranks");
    }
    if (comm_transport == CommTransport::kInProcess) {
      return Status::InvalidArgument(
          "spmd_rank mode needs a cross-process transport (file or shm); "
          "inproc cannot reach the other rank processes");
    }
    if (comm_scratch.empty()) {
      return Status::InvalidArgument(
          "spmd_rank mode requires comm_scratch (shared rendezvous name)");
    }
  }
  if (!solver_spec.empty()) {
    // Unknown axes/variant names surface here, with the registered-variant
    // list in the message (adaptive::ParsePlan).
    DT_RETURN_NOT_OK(adaptive::ParsePlan(solver_spec).status());
  }
  if (sketch_error_budget < 0) {
    return Status::InvalidArgument("sketch_error_budget must be non-negative");
  }
  return Status::OK();
}

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

Engine::~Engine() {
  // Clean-shutdown persistence only: a cancelled session may have fed the
  // model truncated phase times, so it must not overwrite a good file.
  if (!calibration_dirty_ || options_.calibration_path.empty() ||
      ctx_.cancel_requested()) {
    return;
  }
  const Status s = PersistCalibration();
  if (!s.ok()) {
    DT_LOG(WARNING) << "failed to persist refined calibration to "
                    << options_.calibration_path << ": " << s.ToString();
  }
}

Status Engine::PersistCalibration() {
  if (options_.calibration_path.empty()) {
    return Status::InvalidArgument(
        "PersistCalibration requires EngineOptions::calibration_path");
  }
  const std::string tmp = options_.calibration_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp + " for writing");
    }
    out << cost_model_.ToJson() << "\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), options_.calibration_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " +
                           options_.calibration_path + " failed");
  }
  return Status::OK();
}

void Engine::ApplyBlasThreads() const {
  if (options_.blas_threads > 0) SetBlasThreads(options_.blas_threads);
}

Status Engine::RequireDTucker(const char* entry) const {
  if (options_.method != TuckerMethod::kDTucker) {
    return Status::InvalidArgument(
        std::string(entry) + " is D-Tucker-specific; options().method is " +
        TuckerMethodName(options_.method));
  }
  return Status::OK();
}

DTuckerOptions Engine::DTuckerOptionsFromMethod(const RunContext* ctx) {
  DTuckerOptions opt;
  opt.tucker = options_.method_options.tucker;
  opt.tucker.run_context = ctx;
  opt.oversampling = options_.method_options.oversampling;
  opt.power_iterations = options_.method_options.power_iterations;
  opt.num_threads = options_.method_options.num_threads;
  opt.sweep_callback = options_.method_options.sweep_callback;
  opt.variants = options_.method_options.variants;
  return opt;
}

void Engine::FinishRun(EngineRun* run) const {
  if (run->stats.completion != StatusCode::kOk) {
    run->status = Status(run->stats.completion,
                         run->stats.completion_detail.empty()
                             ? "run interrupted"
                             : run->stats.completion_detail);
  }
  RecordSweepMetrics(run->stats);
}

ShardedDTuckerOptions Engine::ShardedOptionsFromMethod(const RunContext* ctx) {
  ShardedDTuckerOptions opt;
  opt.dtucker = DTuckerOptionsFromMethod(ctx);
  opt.num_ranks = options_.num_ranks;
  opt.transport = options_.comm_transport;
  opt.comm_scratch = options_.comm_scratch;
  return opt;
}

namespace {

// Deterministic across processes and builds (unlike std::hash), so every
// rank process of one run derives the same trace flow group from the
// shared rendezvous name.
std::uint64_t Fnv1aHash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Result<std::unique_ptr<Communicator>> Engine::MakeSpmdCommunicator(
    const RunContext* ctx) {
  std::unique_ptr<Communicator> comm;
  if (options_.comm_transport == CommTransport::kFile) {
    DT_ASSIGN_OR_RETURN(comm,
                        CreateFileCommunicator(options_.comm_scratch,
                                               options_.spmd_rank,
                                               options_.num_ranks));
  } else {
    DT_ASSIGN_OR_RETURN(comm,
                        CreateShmCommunicator(options_.comm_scratch,
                                              options_.spmd_rank,
                                              options_.num_ranks));
  }
  comm->set_run_context(ctx);
  comm->set_timeout_seconds(ShardedDTuckerOptions().comm_timeout_seconds);
  // Flow group from the shared rendezvous name: identical on every rank,
  // distinct across runs (scratch names embed pid + run counters).
  comm->set_trace_flow_group(Fnv1aHash(options_.comm_scratch) & 0xFFFFFFFFull);
  SetTraceRankForCurrentThread(options_.spmd_rank);
  SetTraceDefaultRank(options_.spmd_rank);
  return comm;
}

namespace {

adaptive::WorkloadSignature SignatureFor(const EngineOptions& options,
                                         const std::vector<Index>& shape) {
  adaptive::WorkloadSignature sig;
  sig.shape = shape;
  sig.ranks = options.method_options.tucker.ranks;
  // Mirror DTuckerOptions::EffectiveSliceRank: slice rank defaults to the
  // largest target rank of the two leading modes.
  Index js = 0;
  for (std::size_t n = 0; n < sig.ranks.size() && n < 2; ++n) {
    js = std::max(js, sig.ranks[n]);
  }
  sig.slice_rank = js > 0 ? js : 10;
  sig.power_iterations = options.method_options.power_iterations;
  sig.num_threads =
      options.blas_threads > 0 ? options.blas_threads : GetBlasThreads();
  sig.num_ranks = options.num_ranks > 0 ? options.num_ranks : 1;
  // Amortize one-off phases over a plausible sweep count: the iteration
  // budget when small, a convergence-typical handful otherwise.
  sig.expected_sweeps =
      std::max(1, std::min(options.method_options.tucker.max_iterations, 8));
  return sig;
}

}  // namespace

Result<adaptive::PhaseVariantPlan> Engine::ResolvePlan(
    const std::vector<Index>& shape, adaptive::PlanDecision* decision) {
  adaptive::PhaseVariantPlan plan = options_.method_options.variants;
  if (options_.method != TuckerMethod::kDTucker) return plan;
  if (!options_.solver_spec.empty()) {
    DT_ASSIGN_OR_RETURN(plan, adaptive::ParsePlan(options_.solver_spec));
  }
  if (options_.solver_policy != SolverPolicy::kAuto || shape.size() < 3) {
    return plan;
  }
  DT_TRACE_SPAN("adaptive.choose_plan");
  if (!calibration_loaded_) {
    calibration_loaded_ = true;
    if (!options_.calibration_path.empty()) {
      cost_model_.LoadCalibration(options_.calibration_path);
    }
  }
  adaptive::TunerOptions tuner;
  tuner.sketch_error_budget = options_.sketch_error_budget;
  *decision = adaptive::ChoosePlan(cost_model_, SignatureFor(options_, shape),
                                   tuner);
  return decision->plan;
}

void Engine::RecordAdaptiveRun(const std::vector<Index>& shape,
                               const adaptive::PhaseVariantPlan& plan,
                               const adaptive::PlanDecision& decision,
                               TuckerStats* stats) {
  if (options_.method != TuckerMethod::kDTucker) return;
  stats->selected_variants = plan.ToString();
  const bool is_auto = options_.solver_policy == SolverPolicy::kAuto;
  if (is_auto) {
    stats->solver_rationale = decision.rationale;
    stats->predicted_approx_seconds = decision.predicted_approx_seconds;
    stats->predicted_init_seconds = decision.predicted_init_seconds;
    stats->predicted_sweep_seconds = decision.predicted_sweep_seconds;
  }
  // adaptive.* metrics: the chosen variant per axis (as registry indices
  // would be opaque, gauges carry predicted/actual seconds and a 0/1 auto
  // flag; the plan string itself rides in --metrics-out via TuckerStats).
  MetricGauge("adaptive.auto").Set(is_auto ? 1.0 : 0.0);
  MetricGauge("adaptive.plan_default").Set(plan.IsDefault() ? 1.0 : 0.0);
  if (is_auto) {
    MetricGauge("adaptive.predicted_init_seconds")
        .Set(decision.predicted_init_seconds);
    MetricGauge("adaptive.predicted_sweep_seconds")
        .Set(decision.predicted_sweep_seconds);
    MetricGauge("adaptive.actual_init_seconds").Set(stats->init_seconds);
    // Online refinement: fold the measured phase times back into the
    // model's scale factors so later solves through this engine predict
    // this machine better.
    const adaptive::WorkloadSignature sig = SignatureFor(options_, shape);
    if (stats->preprocess_seconds > 0) {
      cost_model_.ObserveApproxSeconds(sig, plan.qr,
                                       stats->preprocess_seconds);
      calibration_dirty_ = true;
    }
    if (stats->init_seconds > 0) {
      cost_model_.ObserveInitSeconds(sig, plan, stats->init_seconds);
      calibration_dirty_ = true;
    }
    if (stats->iterations > 0 && stats->iterate_seconds > 0) {
      const double per_sweep = stats->iterate_seconds / stats->iterations;
      MetricGauge("adaptive.actual_sweep_seconds").Set(per_sweep);
      cost_model_.ObserveSweepSeconds(sig, plan, per_sweep);
      calibration_dirty_ = true;
    }
  }
}

Result<EngineRun> Engine::Solve(const Tensor& x, const RunContext* ctx) {
  const RunContext* effective = EffectiveContext(ctx);
  DT_RETURN_NOT_OK(options_.Validate(x.shape()));
  ApplyBlasThreads();
  adaptive::PlanDecision decision;
  DT_ASSIGN_OR_RETURN(const adaptive::PhaseVariantPlan plan,
                      ResolvePlan(x.shape(), &decision));
  if (options_.num_ranks > 0) {
    // Sharded slice-parallel path (num_ranks == 1 still shards, so rank
    // counts compare within one reduction scheme).
    EngineRun run;
    ShardedDTuckerOptions sharded = ShardedOptionsFromMethod(effective);
    sharded.dtucker.variants = plan;
    if (options_.spmd_rank >= 0) {
      // SPMD mode: this process is one rank of an externally launched
      // group; run the rank entry point on its own communicator instead of
      // spawning rank threads.
      DT_ASSIGN_OR_RETURN(std::unique_ptr<Communicator> comm,
                          MakeSpmdCommunicator(effective));
      DT_ASSIGN_OR_RETURN(
          run.decomposition,
          ShardedDTuckerRank(x, sharded.dtucker, comm.get(), &run.stats));
    } else {
      DT_ASSIGN_OR_RETURN(run.decomposition,
                          ShardedDTucker(x, sharded, &run.stats));
    }
    run.stored_bytes = run.decomposition.ByteSize();
    if (options_.measure_error) {
      run.relative_error = run.decomposition.RelativeErrorAgainst(x);
    } else if (!run.stats.error_history.empty()) {
      run.relative_error = run.stats.error_history.back();
    }
    RecordAdaptiveRun(x.shape(), plan, decision, &run.stats);
    FinishRun(&run);
    return run;
  }
  MethodOptions opts = options_.method_options;
  opts.tucker.run_context = effective;
  opts.variants = plan;
  DT_ASSIGN_OR_RETURN(
      MethodRun method_run,
      RunTuckerMethod(options_.method, x, opts, options_.measure_error));
  EngineRun run;
  run.decomposition = std::move(method_run.decomposition);
  run.stats = std::move(method_run.stats);
  run.relative_error = method_run.relative_error;
  run.stored_bytes = method_run.stored_bytes;
  RecordAdaptiveRun(x.shape(), plan, decision, &run.stats);
  // RunTuckerMethod already published the sweep metrics; FinishRun only
  // needs to fold the completion code (re-publishing gauges is idempotent).
  FinishRun(&run);
  return run;
}

Result<EngineRun> Engine::SolveFile(const std::string& path,
                                    const RunContext* ctx) {
  const RunContext* effective = EffectiveContext(ctx);
  DT_RETURN_NOT_OK(RequireDTucker("SolveFile"));
  ApplyBlasThreads();
  // The header is cheap to read and gives the auto policy its shape.
  std::vector<Index> shape;
  {
    DT_ASSIGN_OR_RETURN(TensorFileReader reader, TensorFileReader::Open(path));
    shape = reader.shape();
  }
  DT_RETURN_NOT_OK(options_.Validate(shape));
  adaptive::PlanDecision decision;
  DT_ASSIGN_OR_RETURN(const adaptive::PhaseVariantPlan plan,
                      ResolvePlan(shape, &decision));
  if (options_.num_ranks > 0) {
    EngineRun run;
    ShardedDTuckerOptions sharded = ShardedOptionsFromMethod(effective);
    sharded.dtucker.variants = plan;
    if (options_.spmd_rank >= 0) {
      DT_ASSIGN_OR_RETURN(std::unique_ptr<Communicator> comm,
                          MakeSpmdCommunicator(effective));
      DT_ASSIGN_OR_RETURN(run.decomposition,
                          ShardedDTuckerRankFromFile(path, sharded.dtucker,
                                                     comm.get(), &run.stats));
    } else {
      DT_ASSIGN_OR_RETURN(run.decomposition,
                          ShardedDTuckerFromFile(path, sharded, &run.stats));
    }
    run.stored_bytes = run.stats.working_bytes;
    if (!run.stats.error_history.empty()) {
      run.relative_error = run.stats.error_history.back();
    }
    RecordAdaptiveRun(shape, plan, decision, &run.stats);
    FinishRun(&run);
    return run;
  }
  DTuckerOptions opt = DTuckerOptionsFromMethod(effective);
  opt.variants = plan;
  EngineRun run;
  DT_ASSIGN_OR_RETURN(run.decomposition,
                      DTuckerFromFile(path, opt, &run.stats));
  run.stored_bytes = run.stats.working_bytes;
  if (!run.stats.error_history.empty()) {
    run.relative_error = run.stats.error_history.back();
  }
  RecordAdaptiveRun(shape, plan, decision, &run.stats);
  FinishRun(&run);
  return run;
}

Result<EngineRun> Engine::SolveApproximation(const SliceApproximation& approx,
                                             const RunContext* ctx) {
  const RunContext* effective = EffectiveContext(ctx);
  DT_RETURN_NOT_OK(RequireDTucker("SolveApproximation"));
  ApplyBlasThreads();
  adaptive::PlanDecision decision;
  DT_ASSIGN_OR_RETURN(const adaptive::PhaseVariantPlan plan,
                      ResolvePlan(approx.shape, &decision));
  DTuckerOptions opt = DTuckerOptionsFromMethod(effective);
  opt.variants = plan;
  EngineRun run;
  DT_ASSIGN_OR_RETURN(run.decomposition,
                      DTuckerFromApproximation(approx, opt, &run.stats));
  run.stored_bytes = approx.ByteSize();
  if (!run.stats.error_history.empty()) {
    run.relative_error = run.stats.error_history.back();
  }
  RecordAdaptiveRun(approx.shape, plan, decision, &run.stats);
  FinishRun(&run);
  return run;
}

}  // namespace dtucker
