#include "dtucker/engine.h"

#include <utility>

#include "dtucker/sharded_dtucker.h"
#include "linalg/blas.h"

namespace dtucker {

Status EngineOptions::Validate(const std::vector<Index>& shape) const {
  DT_RETURN_NOT_OK(method_options.Validate(shape));
  if (blas_threads < 0) {
    return Status::InvalidArgument("blas_threads must be non-negative");
  }
  if (num_ranks < 0) {
    return Status::InvalidArgument("num_ranks must be non-negative");
  }
  if (num_ranks > 0 && method != TuckerMethod::kDTucker) {
    return Status::InvalidArgument(
        "num_ranks (sharded execution) requires method == dtucker");
  }
  return Status::OK();
}

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

void Engine::ApplyBlasThreads() const {
  if (options_.blas_threads > 0) SetBlasThreads(options_.blas_threads);
}

Status Engine::RequireDTucker(const char* entry) const {
  if (options_.method != TuckerMethod::kDTucker) {
    return Status::InvalidArgument(
        std::string(entry) + " is D-Tucker-specific; options().method is " +
        TuckerMethodName(options_.method));
  }
  return Status::OK();
}

DTuckerOptions Engine::DTuckerOptionsFromMethod() {
  DTuckerOptions opt;
  opt.tucker = options_.method_options.tucker;
  opt.tucker.run_context = &ctx_;
  opt.oversampling = options_.method_options.oversampling;
  opt.power_iterations = options_.method_options.power_iterations;
  opt.num_threads = options_.method_options.num_threads;
  opt.sweep_callback = options_.method_options.sweep_callback;
  return opt;
}

void Engine::FinishRun(EngineRun* run) const {
  if (run->stats.completion != StatusCode::kOk) {
    run->status = Status(run->stats.completion,
                         run->stats.completion_detail.empty()
                             ? "run interrupted"
                             : run->stats.completion_detail);
  }
  RecordSweepMetrics(run->stats);
}

ShardedDTuckerOptions Engine::ShardedOptionsFromMethod() {
  ShardedDTuckerOptions opt;
  opt.dtucker = DTuckerOptionsFromMethod();
  opt.num_ranks = options_.num_ranks;
  return opt;
}

Result<EngineRun> Engine::Solve(const Tensor& x) {
  DT_RETURN_NOT_OK(options_.Validate(x.shape()));
  ApplyBlasThreads();
  if (options_.num_ranks > 0) {
    // Sharded slice-parallel path (num_ranks == 1 still shards, so rank
    // counts compare within one reduction scheme).
    EngineRun run;
    DT_ASSIGN_OR_RETURN(
        run.decomposition,
        ShardedDTucker(x, ShardedOptionsFromMethod(), &run.stats));
    run.stored_bytes = run.decomposition.ByteSize();
    if (options_.measure_error) {
      run.relative_error = run.decomposition.RelativeErrorAgainst(x);
    } else if (!run.stats.error_history.empty()) {
      run.relative_error = run.stats.error_history.back();
    }
    FinishRun(&run);
    return run;
  }
  MethodOptions opts = options_.method_options;
  opts.tucker.run_context = &ctx_;
  DT_ASSIGN_OR_RETURN(
      MethodRun method_run,
      RunTuckerMethod(options_.method, x, opts, options_.measure_error));
  EngineRun run;
  run.decomposition = std::move(method_run.decomposition);
  run.stats = std::move(method_run.stats);
  run.relative_error = method_run.relative_error;
  run.stored_bytes = method_run.stored_bytes;
  // RunTuckerMethod already published the sweep metrics; FinishRun only
  // needs to fold the completion code (re-publishing gauges is idempotent).
  FinishRun(&run);
  return run;
}

Result<EngineRun> Engine::SolveFile(const std::string& path) {
  DT_RETURN_NOT_OK(RequireDTucker("SolveFile"));
  ApplyBlasThreads();
  if (options_.num_ranks > 0) {
    EngineRun run;
    DT_ASSIGN_OR_RETURN(
        run.decomposition,
        ShardedDTuckerFromFile(path, ShardedOptionsFromMethod(), &run.stats));
    run.stored_bytes = run.stats.working_bytes;
    if (!run.stats.error_history.empty()) {
      run.relative_error = run.stats.error_history.back();
    }
    FinishRun(&run);
    return run;
  }
  DTuckerOptions opt = DTuckerOptionsFromMethod();
  EngineRun run;
  DT_ASSIGN_OR_RETURN(run.decomposition,
                      DTuckerFromFile(path, opt, &run.stats));
  run.stored_bytes = run.stats.working_bytes;
  if (!run.stats.error_history.empty()) {
    run.relative_error = run.stats.error_history.back();
  }
  FinishRun(&run);
  return run;
}

Result<EngineRun> Engine::SolveApproximation(const SliceApproximation& approx) {
  DT_RETURN_NOT_OK(RequireDTucker("SolveApproximation"));
  ApplyBlasThreads();
  DTuckerOptions opt = DTuckerOptionsFromMethod();
  EngineRun run;
  DT_ASSIGN_OR_RETURN(run.decomposition,
                      DTuckerFromApproximation(approx, opt, &run.stats));
  run.stored_bytes = approx.ByteSize();
  if (!run.stats.error_history.empty()) {
    run.relative_error = run.stats.error_history.back();
  }
  FinishRun(&run);
  return run;
}

}  // namespace dtucker
