// Engine: the one-stop execution facade over every Tucker solver in the
// repository.
//
// It bundles the pieces a production caller otherwise wires by hand —
// solver selection (baselines/registry.h), options validation, an owned
// RunContext for cooperative cancellation/deadlines, BLAS thread setup,
// and telemetry publication — behind three entry points:
//
//   Engine engine(options);
//   auto run = engine.Solve(x);                  // any method, in-memory
//   auto run = engine.SolveFile(path);           // D-Tucker, out-of-core
//   auto run = engine.SolveApproximation(ap);    // D-Tucker, query phase
//
// Graceful degradation: when the attached RunContext trips mid-iteration,
// the solver returns its best-so-far decomposition and the EngineRun comes
// back with `status` holding kCancelled/kDeadlineExceeded (the Result
// itself is OK — there *is* a usable value). Interruptions before any
// usable state exists (e.g. during the approximation phase) surface as an
// error Result instead.
#ifndef DTUCKER_DTUCKER_ENGINE_H_
#define DTUCKER_DTUCKER_ENGINE_H_

#include <string>

#include "baselines/registry.h"
#include "common/run_context.h"
#include "common/status.h"
#include "dtucker/adaptive/cost_model.h"
#include "dtucker/adaptive/tuner.h"
#include "dtucker/dtucker.h"
#include "dtucker/out_of_core.h"
#include "dtucker/sharded_dtucker.h"
#include "tucker/tucker.h"

namespace dtucker {

// How the engine picks per-phase execution variants for D-Tucker runs.
enum class SolverPolicy {
  kFixed,  // Run the plan in solver_spec / method_options.variants as-is.
  kAuto,   // Cost-model-driven per-phase dispatch (dtucker/adaptive/).
};

struct EngineOptions {
  // Which solver Solve() dispatches to. SolveFile/SolveApproximation are
  // D-Tucker-specific and require kDTucker.
  TuckerMethod method = TuckerMethod::kDTucker;
  // Shared + per-method knobs. `method_options.tucker.run_context` is
  // overwritten on every solve with the effective context — the engine's
  // own, or the per-call override passed to Solve/SolveFile/
  // SolveApproximation.
  MethodOptions method_options;
  // When > 0, the process-wide BLAS pool is sized to this before solving
  // (linalg/blas.h SetBlasThreads). 0 leaves the current setting alone.
  int blas_threads = 0;
  // Rank count for sharded slice-parallel D-Tucker
  // (dtucker/sharded_dtucker.h). 0 (default) keeps the classic unsharded
  // solver. Any value >= 1 — including 1 — routes Solve/SolveFile through
  // the sharded path with that many in-process ranks, so rank-count
  // comparisons (--ranks=4 vs --ranks=1) stay within one reduction scheme
  // and are bitwise-comparable; requires method == kDTucker. The shared
  // BLAS pool is partitioned across the ranks for the run's duration.
  int num_ranks = 0;
  // Transport the sharded path's rank communicators use (num_ranks > 0
  // only): in-process mailboxes, a shared directory, or a POSIX
  // shared-memory segment. Results are bitwise-identical across the three
  // (comm/communicator.h); the CLI spells this --transport={inproc,file,shm}.
  CommTransport comm_transport = CommTransport::kInProcess;
  // SPMD rank mode: when >= 0, this process *is* rank `spmd_rank` of an
  // externally launched group of num_ranks processes (the CLI's
  // --rank-procs fork mode). Solve/SolveFile then build one communicator
  // on comm_transport (file or shm — inproc cannot cross processes)
  // rendezvousing at comm_scratch and run the rank entry point directly
  // instead of spawning rank threads. -1 (default): the engine drives all
  // ranks itself.
  int spmd_rank = -1;
  // Rendezvous point shared by the rank group: the file transport's
  // directory or the shm segment name. Required in spmd_rank mode; in the
  // self-driving mode it optionally pins the auto-generated rendezvous
  // name (the caller then owns cleanup).
  std::string comm_scratch;
  // Measure the true reconstruction error after Solve() (O(volume); turn
  // off for pure-timing runs). File/approximation paths always report the
  // compressed-form error from the sweep telemetry instead.
  bool measure_error = true;
  // Variant dispatch policy (D-Tucker only; other methods ignore it).
  SolverPolicy solver_policy = SolverPolicy::kFixed;
  // Fixed-policy plan spec, comma-separated "axis=name" (see
  // adaptive::ParsePlan; the CLI's --solver= value minus "auto"). Empty
  // keeps method_options.variants. Unknown axes/names are rejected by
  // Validate with the full registered-variant list.
  std::string solver_spec;
  // Calibration file for the auto policy's cost model (flat JSON from
  // bench_adaptive_json). Empty uses built-in defaults; a missing or
  // corrupt file logs one warning and degrades to the defaults.
  std::string calibration_path;
  // Relative squared-error budget for the HOOI starting point; > 0 lets
  // the auto policy consider gram=sketched (see adaptive::GramVariant).
  double sketch_error_budget = 0.0;

  Status Validate(const std::vector<Index>& shape) const;
};

struct EngineRun {
  TuckerDecomposition decomposition;
  TuckerStats stats;
  // OK for a full run; kCancelled/kDeadlineExceeded when the run was
  // interrupted and `decomposition` is the (valid) best-so-far state.
  Status status;
  // Relative squared reconstruction error (see EngineOptions::measure_error
  // for which reference tensor).
  double relative_error = 0.0;
  std::size_t stored_bytes = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  // Clean shutdown persists the auto policy's online-refined calibration
  // back to calibration_path (see PersistCalibration) — skipped when the
  // run was cancelled, so an interrupted session cannot clobber a good
  // calibration file with partially-refined coefficients.
  ~Engine();

  // Not copyable (owns the RunContext the solvers poll); not movable either
  // so the context address stays stable for any thread holding it.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }

  // The owned execution-control context, shared by every solve. Safe to
  // poke from any thread while a solve runs on another.
  RunContext& context() { return ctx_; }
  void RequestCancel() { ctx_.RequestCancel(); }
  void SetDeadlineAfter(double seconds) { ctx_.SetDeadlineAfter(seconds); }
  void ClearDeadline() { ctx_.ClearDeadline(); }

  // Runs options().method on an in-memory tensor.
  //
  // Every entry point has a second form taking an explicit per-call
  // RunContext that overrides the engine-owned context for that solve
  // (nullptr falls back to the owned one). A long-lived engine can then be
  // shared across a sequence of jobs that each bring their own
  // deadline/cancellation — the serving layer's per-job contexts — without
  // the deadline of one job leaking into the next through engine state.
  // The caller owns the override context and must keep it alive for the
  // duration of the call; RequestCancel()/SetDeadlineAfter() on the engine
  // do NOT reach a solve running under an override (poke the override
  // context instead). Solves remain one-at-a-time per engine: the
  // adaptive-policy state (cost model refinement) is not synchronized.
  Result<EngineRun> Solve(const Tensor& x) { return Solve(x, nullptr); }
  Result<EngineRun> Solve(const Tensor& x, const RunContext* ctx);

  // Out-of-core D-Tucker on a DTNSR001 file (requires method == kDTucker).
  // Transient read faults are retried under the effective context's
  // io_retry policy.
  Result<EngineRun> SolveFile(const std::string& path) {
    return SolveFile(path, nullptr);
  }
  Result<EngineRun> SolveFile(const std::string& path, const RunContext* ctx);

  // D-Tucker query phase on an existing compressed tensor (requires
  // method == kDTucker).
  Result<EngineRun> SolveApproximation(const SliceApproximation& approx) {
    return SolveApproximation(approx, nullptr);
  }
  Result<EngineRun> SolveApproximation(const SliceApproximation& approx,
                                       const RunContext* ctx);

  // Writes the cost model's current coefficients — including any scale.*
  // factors refined online from measured phase times — to
  // options().calibration_path as the same flat JSON bench_adaptive_json
  // emits, via write-temp + atomic rename (a concurrent reader sees either
  // the old file or the new one, never a torn write). InvalidArgument when
  // no calibration_path is configured. Called automatically by the
  // destructor after an auto-policy run refined the model, unless the
  // engine's context was cancelled.
  Status PersistCalibration();

 private:
  // Folds the solver-reported completion code into run->status and
  // publishes the per-sweep telemetry metrics.
  void FinishRun(EngineRun* run) const;
  // The context a solve actually polls: the per-call override when given,
  // otherwise the engine-owned one.
  const RunContext* EffectiveContext(const RunContext* override_ctx) const {
    return override_ctx != nullptr ? override_ctx : &ctx_;
  }
  DTuckerOptions DTuckerOptionsFromMethod(const RunContext* ctx);
  ShardedDTuckerOptions ShardedOptionsFromMethod(const RunContext* ctx);
  // Builds this process's communicator for spmd_rank mode (file/shm at
  // comm_scratch), wires the run context/timeout, and tags the calling
  // thread + communicator for cross-rank tracing.
  Result<std::unique_ptr<Communicator>> MakeSpmdCommunicator(
      const RunContext* ctx);
  Status RequireDTucker(const char* entry) const;
  void ApplyBlasThreads() const;

  // Resolves the variant plan for a D-Tucker run on `shape`: the parsed
  // solver_spec (fixed policy) or the tuner's choice (auto policy), with
  // the decision recorded for RecordAdaptiveRun. Non-D-Tucker methods get
  // the default plan.
  Result<adaptive::PhaseVariantPlan> ResolvePlan(
      const std::vector<Index>& shape, adaptive::PlanDecision* decision);
  // Fills stats.selected_variants / predicted-seconds, publishes the
  // adaptive.* metrics, and feeds measured phase times back into the cost
  // model (online refinement, auto policy only).
  void RecordAdaptiveRun(const std::vector<Index>& shape,
                         const adaptive::PhaseVariantPlan& plan,
                         const adaptive::PlanDecision& decision,
                         TuckerStats* stats);

  EngineOptions options_;
  RunContext ctx_;
  // Cost model state for the auto policy: calibration loaded lazily on
  // first use, then refined online from measured phase times.
  adaptive::CostModel cost_model_;
  bool calibration_loaded_ = false;
  // Set when online refinement fed a measured time into the model — the
  // destructor only rewrites calibration_path if there is something new.
  bool calibration_dirty_ = false;
};

}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_ENGINE_H_
