#include "dtucker/online_dtucker.h"

#include "common/timer.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "tensor/tensor_ops.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {

Status OnlineDTuckerOptions::Validate(const std::vector<Index>& shape) const {
  DT_RETURN_NOT_OK(dtucker.Validate(shape));
  if (refit_sweeps < 0) {
    return Status::InvalidArgument("refit_sweeps must be non-negative");
  }
  return Status::OK();
}

OnlineDTucker::OnlineDTucker(OnlineDTuckerOptions options)
    : options_(std::move(options)) {}

void OnlineDTucker::AccumulateGrams(Index first) {
  for (Index l = first; l < approx_.NumSlices(); ++l) {
    const SliceSvd& sl = approx_.slices[static_cast<std::size_t>(l)];
    // The scaled factors are staged in TLS scratch — no per-slice
    // UTimesS()/VTimesS() allocations.
    internal_dtucker::AccumulateScaledFactorGram(sl, 0, /*s_inv=*/1.0,
                                                 /*beta=*/1.0, &gram1_);
    internal_dtucker::AccumulateScaledFactorGram(sl, 1, /*s_inv=*/1.0,
                                                 /*beta=*/1.0, &gram2_);
  }
}

StatusCode OnlineDTucker::Refit(int sweeps) {
  const std::vector<Index>& ranks = options_.dtucker.tucker.ranks;
  const RunContext* ctx = options_.dtucker.tucker.run_context;
  const Index order = static_cast<Index>(approx_.shape.size());
  std::vector<Matrix> factors(static_cast<std::size_t>(order));

  // A1/A2 from the incrementally maintained Grams.
  factors[0] = TopEigenvectorsSym(gram1_, ranks[0]);
  factors[1] = TopEigenvectorsSym(gram2_, ranks[1]);
  // Trailing factors (including the grown temporal mode) from the small
  // projected tensor, matricization-free via the mode Grams. The workspace
  // is shared across the refit sweeps so they stop churning the allocator.
  internal_dtucker::SweepWorkspace ws;
  internal_dtucker::BuildProjectedCoreInto(approx_, factors[0], factors[1],
                                           /*s_inv=*/1.0, &ws.z);
  for (Index n = 2; n < order; ++n) {
    factors[static_cast<std::size_t>(n)] = LeadingModeVectorsViaGram(
        ws.z, n, ranks[static_cast<std::size_t>(n)]);
  }
  Tensor core = *internal_dtucker::ContractTrailing(ws.z, factors,
                                                    /*skip_mode=*/-1, &ws);

  // The rebuild above always completes (each step is bounded and a valid
  // decomposition needs all of them); only the sweep loop is interruptible,
  // with the same snapshot/rollback contract as DTuckerFromApproximation.
  StatusCode stop = StatusCode::kOk;
  const bool armed = ctx != nullptr;
  std::vector<Matrix> factors_snapshot;
  Tensor core_snapshot;
  for (int s = 0; s < sweeps; ++s) {
    stop = RunContext::CheckOrOk(ctx);
    if (stop != StatusCode::kOk) break;
    if (armed) {
      factors_snapshot = factors;
      core_snapshot = core;
    }
    if (!internal_dtucker::DTuckerSweep(approx_, ranks, &factors, &core, &ws,
                                        /*s_inv=*/1.0, ctx)) {
      factors = std::move(factors_snapshot);
      core = std::move(core_snapshot);
      stop = RunContext::CheckOrOk(ctx);
      if (stop == StatusCode::kOk) stop = StatusCode::kCancelled;
      break;
    }
  }
  dec_.factors = std::move(factors);
  dec_.core = std::move(core);
  return stop;
}

Status OnlineDTucker::Initialize(const Tensor& x) {
  if (initialized_) {
    return Status::FailedPrecondition("OnlineDTucker already initialized");
  }
  DT_RETURN_NOT_OK(options_.Validate(x.shape()));

  last_stats_ = TuckerStats();
  Timer timer;
  SliceApproximationOptions approx_opts;
  approx_opts.slice_rank = std::min(options_.dtucker.EffectiveSliceRank(),
                                    std::min(x.dim(0), x.dim(1)));
  approx_opts.oversampling = options_.dtucker.oversampling;
  approx_opts.power_iterations = options_.dtucker.power_iterations;
  approx_opts.seed = options_.dtucker.tucker.seed;
  approx_opts.num_threads = options_.dtucker.num_threads;
  approx_opts.run_context = options_.dtucker.tucker.run_context;
  DT_ASSIGN_OR_RETURN(approx_, ApproximateSlices(x, approx_opts));
  last_stats_.preprocess_seconds = timer.Seconds();

  gram1_ = Matrix(x.dim(0), x.dim(0));
  gram2_ = Matrix(x.dim(1), x.dim(1));
  AccumulateGrams(0);

  Timer refit_timer;
  const StatusCode stop = Refit(options_.dtucker.tucker.max_iterations);
  last_stats_.iterate_seconds = refit_timer.Seconds();
  last_stats_.completion = stop;
  // The ingest itself succeeded; an interruption only cut the refit short,
  // so the instance is initialized and consistent either way.
  initialized_ = true;
  if (stop != StatusCode::kOk) {
    last_stats_.completion_detail = "online initialize refit interrupted";
    return Status(stop, "online initialize refit interrupted "
                        "(decomposition holds the last completed sweep)");
  }
  return Status::OK();
}

Status OnlineDTucker::Append(const Tensor& chunk) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize before Append");
  }
  if (chunk.order() != static_cast<Index>(approx_.shape.size())) {
    return Status::InvalidArgument("chunk order mismatch");
  }
  const Index last = chunk.order() - 1;
  for (Index n = 0; n < last; ++n) {
    if (chunk.dim(n) != approx_.Dim(n)) {
      return Status::InvalidArgument(
          "chunk must match the tensor in every mode but the last");
    }
  }
  if (chunk.dim(last) <= 0) {
    return Status::InvalidArgument("empty chunk");
  }

  last_stats_ = TuckerStats();
  Timer timer;
  SliceApproximationOptions approx_opts;
  approx_opts.slice_rank = approx_.slice_rank;
  approx_opts.oversampling = options_.dtucker.oversampling;
  approx_opts.power_iterations = options_.dtucker.power_iterations;
  // Distinct seed stream per append batch.
  approx_opts.seed =
      options_.dtucker.tucker.seed + 0x51ED270B * (approx_.NumSlices() + 1);
  approx_opts.num_threads = options_.dtucker.num_threads;
  approx_opts.run_context = options_.dtucker.tucker.run_context;
  DT_ASSIGN_OR_RETURN(
      std::vector<SliceSvd> new_slices,
      ApproximateSliceRange(chunk, 0, chunk.NumFrontalSlices(), approx_opts));
  last_stats_.preprocess_seconds = timer.Seconds();

  const Index old_count = approx_.NumSlices();
  for (auto& sl : new_slices) approx_.slices.push_back(std::move(sl));
  approx_.shape[static_cast<std::size_t>(last)] += chunk.dim(last);
  AccumulateGrams(old_count);

  Timer refit_timer;
  const StatusCode stop = Refit(options_.refit_sweeps);
  last_stats_.iterate_seconds = refit_timer.Seconds();
  last_stats_.completion = stop;
  if (stop != StatusCode::kOk) {
    last_stats_.completion_detail = "online append refit interrupted";
    // The chunk is ingested (slices + Grams); only the warm refit was cut
    // short, so the decomposition is the last completed state.
    return Status(stop, "online append refit interrupted "
                        "(chunk ingested; decomposition not fully refreshed)");
  }
  return Status::OK();
}

}  // namespace dtucker
