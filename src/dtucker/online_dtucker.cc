#include "dtucker/online_dtucker.h"

#include "common/timer.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "tensor/tensor_ops.h"
#include "tucker/hosvd.h"
#include "tucker/tucker_als.h"

namespace dtucker {

OnlineDTucker::OnlineDTucker(OnlineDTuckerOptions options)
    : options_(std::move(options)) {}

void OnlineDTucker::AccumulateGrams(Index first) {
  for (Index l = first; l < approx_.NumSlices(); ++l) {
    const SliceSvd& sl = approx_.slices[static_cast<std::size_t>(l)];
    // The scaled factors are staged in TLS scratch — no per-slice
    // UTimesS()/VTimesS() allocations.
    internal_dtucker::AccumulateScaledFactorGram(sl, 0, /*s_inv=*/1.0,
                                                 /*beta=*/1.0, &gram1_);
    internal_dtucker::AccumulateScaledFactorGram(sl, 1, /*s_inv=*/1.0,
                                                 /*beta=*/1.0, &gram2_);
  }
}

void OnlineDTucker::Refit(int sweeps) {
  const Index order = static_cast<Index>(approx_.shape.size());
  std::vector<Matrix> factors(static_cast<std::size_t>(order));

  // A1/A2 from the incrementally maintained Grams.
  factors[0] = TopEigenvectorsSym(gram1_, options_.ranks[0]);
  factors[1] = TopEigenvectorsSym(gram2_, options_.ranks[1]);
  // Trailing factors (including the grown temporal mode) from the small
  // projected tensor, matricization-free via the mode Grams. The workspace
  // is shared across the refit sweeps so they stop churning the allocator.
  internal_dtucker::SweepWorkspace ws;
  internal_dtucker::BuildProjectedCoreInto(approx_, factors[0], factors[1],
                                           /*s_inv=*/1.0, &ws.z);
  for (Index n = 2; n < order; ++n) {
    factors[static_cast<std::size_t>(n)] = LeadingModeVectorsViaGram(
        ws.z, n, options_.ranks[static_cast<std::size_t>(n)]);
  }
  Tensor core = *internal_dtucker::ContractTrailing(ws.z, factors,
                                                    /*skip_mode=*/-1, &ws);

  for (int s = 0; s < sweeps; ++s) {
    internal_dtucker::DTuckerSweep(approx_, options_.ranks, &factors, &core,
                                   &ws, /*s_inv=*/1.0);
  }
  dec_.factors = std::move(factors);
  dec_.core = std::move(core);
}

Status OnlineDTucker::Initialize(const Tensor& x) {
  if (initialized_) {
    return Status::FailedPrecondition("OnlineDTucker already initialized");
  }
  if (x.order() < 3) {
    return Status::InvalidArgument("D-TuckerO requires an order >= 3 tensor");
  }
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), options_.ranks));

  last_stats_ = TuckerStats();
  Timer timer;
  SliceApproximationOptions approx_opts;
  approx_opts.slice_rank =
      std::min(options_.EffectiveSliceRank(), std::min(x.dim(0), x.dim(1)));
  approx_opts.oversampling = options_.oversampling;
  approx_opts.power_iterations = options_.power_iterations;
  approx_opts.seed = options_.seed;
  approx_opts.num_threads = options_.num_threads;
  DT_ASSIGN_OR_RETURN(approx_, ApproximateSlices(x, approx_opts));
  last_stats_.preprocess_seconds = timer.Seconds();

  gram1_ = Matrix(x.dim(0), x.dim(0));
  gram2_ = Matrix(x.dim(1), x.dim(1));
  AccumulateGrams(0);

  Timer refit_timer;
  Refit(options_.max_iterations);
  last_stats_.iterate_seconds = refit_timer.Seconds();
  initialized_ = true;
  return Status::OK();
}

Status OnlineDTucker::Append(const Tensor& chunk) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize before Append");
  }
  if (chunk.order() != static_cast<Index>(approx_.shape.size())) {
    return Status::InvalidArgument("chunk order mismatch");
  }
  const Index last = chunk.order() - 1;
  for (Index n = 0; n < last; ++n) {
    if (chunk.dim(n) != approx_.Dim(n)) {
      return Status::InvalidArgument(
          "chunk must match the tensor in every mode but the last");
    }
  }
  if (chunk.dim(last) <= 0) {
    return Status::InvalidArgument("empty chunk");
  }

  last_stats_ = TuckerStats();
  Timer timer;
  SliceApproximationOptions approx_opts;
  approx_opts.slice_rank = approx_.slice_rank;
  approx_opts.oversampling = options_.oversampling;
  approx_opts.power_iterations = options_.power_iterations;
  // Distinct seed stream per append batch.
  approx_opts.seed = options_.seed + 0x51ED270B * (approx_.NumSlices() + 1);
  approx_opts.num_threads = options_.num_threads;
  DT_ASSIGN_OR_RETURN(
      std::vector<SliceSvd> new_slices,
      ApproximateSliceRange(chunk, 0, chunk.NumFrontalSlices(), approx_opts));
  last_stats_.preprocess_seconds = timer.Seconds();

  const Index old_count = approx_.NumSlices();
  for (auto& sl : new_slices) approx_.slices.push_back(std::move(sl));
  approx_.shape[static_cast<std::size_t>(last)] += chunk.dim(last);
  AccumulateGrams(old_count);

  Timer refit_timer;
  Refit(options_.refit_sweeps);
  last_stats_.iterate_seconds = refit_timer.Seconds();
  return Status::OK();
}

}  // namespace dtucker
