// D-TuckerO: online/streaming extension of D-Tucker.
//
// When new data arrives along the last (temporal) mode, only the new
// frontal slices are compressed with randomized SVD; previously compressed
// slices and the incrementally maintained mode-1/mode-2 Gram matrices are
// reused. The factors are then refreshed with a small number of warm HOOI
// sweeps over the slice structure. The expensive part of D-Tucker — the
// O(I1*I2*L*Js) approximation pass — is thus paid only for the new slices,
// which is the paper family's streaming story (experiment E9).
#ifndef DTUCKER_DTUCKER_ONLINE_DTUCKER_H_
#define DTUCKER_DTUCKER_ONLINE_DTUCKER_H_

#include "common/status.h"
#include "dtucker/dtucker.h"

namespace dtucker {

struct OnlineDTuckerOptions {
  // The underlying solver's knobs (composition, like DTuckerOptions itself:
  // shared surface as a named field, online-only knobs alongside it).
  // Execution control lives at dtucker.tucker.run_context; an interruption
  // during a refit leaves the ingested state consistent and returns
  // kCancelled/kDeadlineExceeded from Initialize/Append.
  DTuckerOptions dtucker;
  // HOOI sweeps run after each Append (warm-started; a few suffice).
  int refit_sweeps = 3;

  Status Validate(const std::vector<Index>& shape) const;
};

// Deprecated spelling kept for one release while callers migrate.
using LegacyOnlineDTuckerOptions [[deprecated("use OnlineDTuckerOptions")]] =
    OnlineDTuckerOptions;

class OnlineDTucker {
 public:
  explicit OnlineDTucker(OnlineDTuckerOptions options);

  // Not copyable (holds large state); movable.
  OnlineDTucker(const OnlineDTucker&) = delete;
  OnlineDTucker& operator=(const OnlineDTucker&) = delete;
  OnlineDTucker(OnlineDTucker&&) = default;
  OnlineDTucker& operator=(OnlineDTucker&&) = default;

  // Ingests the first chunk (order >= 3). Runs a full D-Tucker fit.
  Status Initialize(const Tensor& x);

  // Appends a chunk whose shape matches the current tensor in every mode
  // except the last; compresses only the new slices and refits.
  Status Append(const Tensor& chunk);

  bool initialized() const { return initialized_; }

  // Current decomposition of everything ingested so far.
  const TuckerDecomposition& decomposition() const { return dec_; }

  // The accumulated compressed representation.
  const SliceApproximation& approximation() const { return approx_; }

  // Shape of the full ingested tensor.
  const std::vector<Index>& shape() const { return approx_.shape; }

  // Timing of the most recent Initialize/Append call.
  const TuckerStats& last_stats() const { return last_stats_; }

 private:
  // Recomputes A1/A2 from the incremental Grams, trailing factors from the
  // projected tensor, then runs `sweeps` warm HOOI sweeps. Returns kOk, or
  // the interruption code when the sweep loop was cut short (dec_ then
  // holds the last completed state).
  StatusCode Refit(int sweeps);

  // Adds the Gram contributions of slices [first, end) to gram1_/gram2_.
  void AccumulateGrams(Index first);

  OnlineDTuckerOptions options_;
  SliceApproximation approx_;
  Matrix gram1_;  // sum_l (U<l>S<l>)(U<l>S<l>)^T, I1 x I1.
  Matrix gram2_;  // sum_l (V<l>S<l>)(V<l>S<l>)^T, I2 x I2.
  TuckerDecomposition dec_;
  TuckerStats last_stats_;
  bool initialized_ = false;
};

}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_ONLINE_DTUCKER_H_
