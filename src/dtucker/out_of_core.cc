#include "dtucker/out_of_core.h"

#include <algorithm>

#include "common/timer.h"
#include "data/tensor_file.h"
#include "rsvd/rsvd.h"

namespace dtucker {

Result<std::vector<SliceSvd>> ApproximateSliceRangeFromFile(
    const std::string& path, Index first, Index count,
    const SliceApproximationOptions& options) {
  DT_ASSIGN_OR_RETURN(TensorFileReader reader, TensorFileReader::Open(path));
  if (reader.order() < 3) {
    return Status::InvalidArgument(
        "out-of-core approximation requires an order >= 3 tensor");
  }
  const Index min_dim = std::min(reader.dim(0), reader.dim(1));
  if (options.slice_rank <= 0 || options.slice_rank > min_dim) {
    return Status::InvalidArgument("slice_rank must be in [1, min(I1, I2)]");
  }
  if (first < 0 || count < 0 || first + count > reader.NumFrontalSlices()) {
    return Status::OutOfRange("slice range outside the tensor file");
  }

  RsvdOptions base;
  base.rank = options.slice_rank;
  base.oversampling = options.oversampling;
  base.power_iterations = options.power_iterations;
  base.qr = options.qr_variant;

  std::vector<SliceSvd> out;
  out.reserve(static_cast<std::size_t>(count));

  const RunContext* ctx = options.run_context;
  Matrix slice(reader.dim(0), reader.dim(1));  // Reused buffer.
  for (Index l = first; l < first + count; ++l) {
    // Per-slice interruption checkpoint (same hard-stop semantics as the
    // in-memory path: a half-compressed tensor has no usable partial), then
    // a retrying read so a transient storage fault does not kill a
    // multi-hour streaming pass.
    if (ctx != nullptr) {
      DT_RETURN_NOT_OK(ctx->CheckStatus("out-of-core slice approximation"));
    }
    DT_RETURN_NOT_OK(reader.ReadFrontalSlicesWithRetry(l, 1, slice.data(), ctx));
    RsvdOptions rsvd = base;
    // Same per-slice seed schedule as the in-memory path, so results are
    // bit-identical.
    rsvd.seed = options.seed + static_cast<uint64_t>(l) * 0x9E3779B9ULL;
    SvdResult svd;
    if (options.method == SliceSvdMethod::kRandomized) {
      svd = RandomizedSvd(slice, rsvd);
    } else {
      svd = ThinSvd(slice);
      svd.Truncate(options.slice_rank);
    }
    if (options.adaptive_tolerance > 0.0) {
      const double total = slice.SquaredNorm();
      double kept = 0.0;
      Index rank = static_cast<Index>(svd.s.size());
      for (std::size_t j = 0; j < svd.s.size(); ++j) {
        kept += svd.s[j] * svd.s[j];
        if (total <= 0.0 ||
            (total - kept) <= options.adaptive_tolerance * total) {
          rank = static_cast<Index>(j + 1);
          break;
        }
      }
      svd.Truncate(std::max<Index>(1, rank));
    }
    out.push_back(
        SliceSvd{std::move(svd.u), std::move(svd.s), std::move(svd.v)});
  }
  return out;
}

Result<SliceApproximation> ApproximateSlicesFromFile(
    const std::string& path, const SliceApproximationOptions& options) {
  // Header peek for the shape; the range routine re-opens, which is cheap
  // next to streaming the payload.
  DT_ASSIGN_OR_RETURN(TensorFileReader reader, TensorFileReader::Open(path));
  const Index num_slices = reader.NumFrontalSlices();
  DT_ASSIGN_OR_RETURN(
      std::vector<SliceSvd> slices,
      ApproximateSliceRangeFromFile(path, 0, num_slices, options));
  SliceApproximation approx;
  approx.shape = reader.shape();
  approx.slice_rank = options.slice_rank;
  approx.slices = std::move(slices);
  return approx;
}

Result<TuckerDecomposition> DTuckerFromFile(const std::string& path,
                                            const DTuckerOptions& options,
                                            TuckerStats* stats) {
  // Peek the header to clamp the slice rank against the actual slice dims.
  Index min_dim;
  {
    DT_ASSIGN_OR_RETURN(TensorFileReader reader, TensorFileReader::Open(path));
    min_dim = std::min(reader.dim(0), reader.dim(1));
  }
  SliceApproximationOptions approx_opts;
  approx_opts.oversampling = options.oversampling;
  approx_opts.power_iterations = options.power_iterations;
  approx_opts.seed = options.tucker.seed;
  approx_opts.slice_rank = std::min(options.EffectiveSliceRank(), min_dim);
  approx_opts.run_context = options.tucker.run_context;

  Timer timer;
  DT_ASSIGN_OR_RETURN(SliceApproximation approx,
                      ApproximateSlicesFromFile(path, approx_opts));
  if (stats != nullptr) stats->preprocess_seconds = timer.Seconds();
  return DTuckerFromApproximation(approx, options, stats);
}

}  // namespace dtucker
