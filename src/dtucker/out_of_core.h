// Out-of-core D-Tucker: compress tensors larger than RAM.
//
// The approximation phase only ever needs one frontal slice at a time, so
// a DTNSR001 file can be compressed while holding O(I1 * I2) doubles plus
// the (small) growing slice factors — the strongest form of the paper's
// memory-efficiency claim. The resulting SliceApproximation is identical
// (bit-for-bit, same seeds) to what the in-memory path produces, and the
// query phase proceeds as usual.
#ifndef DTUCKER_DTUCKER_OUT_OF_CORE_H_
#define DTUCKER_DTUCKER_OUT_OF_CORE_H_

#include <string>

#include "common/status.h"
#include "dtucker/dtucker.h"
#include "dtucker/slice_approximation.h"

namespace dtucker {

// Streams the tensor in `path` (DTNSR001, order >= 3) slice by slice and
// compresses it. Peak resident tensor data: one slice (times num_threads
// when threaded).
Result<SliceApproximation> ApproximateSlicesFromFile(
    const std::string& path, const SliceApproximationOptions& options);

// Compresses only frontal slices [first, first + count) of the file — the
// out-of-core counterpart of ApproximateSliceRange, and the building block
// of the sharded solver (dtucker/sharded_dtucker.h): a rank streams and
// compresses exactly its shard, so no process ever touches tensor data it
// does not own. Seeds follow the same global per-slice schedule, so the
// concatenation of every shard's output is bit-identical to a whole-file
// (or in-memory) pass. count == 0 is legal (degenerate shard) and returns
// an empty vector after validating the header.
Result<std::vector<SliceSvd>> ApproximateSliceRangeFromFile(
    const std::string& path, Index first, Index count,
    const SliceApproximationOptions& options);

// Full out-of-core D-Tucker: stream-compress, then run the initialization
// and iteration phases on the compressed form. The raw tensor never
// resides in memory.
Result<TuckerDecomposition> DTuckerFromFile(const std::string& path,
                                            const DTuckerOptions& options,
                                            TuckerStats* stats = nullptr);

}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_OUT_OF_CORE_H_
