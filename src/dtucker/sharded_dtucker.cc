#include "dtucker/sharded_dtucker.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "comm/telemetry_gather.h"
#include "common/logging.h"
#include "common/memory.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "data/tensor_file.h"
#include "dtucker/out_of_core.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/qr.h"
#include "tensor/tensor_utils.h"
#include "tucker/hosvd.h"

namespace dtucker {

namespace {

using internal_dtucker::AccumulateScaledFactorGram;
using internal_dtucker::BuildModeOneCarrierInto;
using internal_dtucker::BuildModeTwoCarrierInto;
using internal_dtucker::BuildProjectedCoreInto;
using internal_dtucker::ContractTrailing;
using internal_dtucker::SweepWorkspace;

// Same bounded inner eigensolve as the unsharded sweep (dtucker.cc): the
// outer HOOI loop absorbs the slack of an inexact factor update.
constexpr SubspaceIterationOptions kInnerEig{/*max_sweeps=*/4,
                                             /*ritz_tolerance=*/1e-9};

Index TrailingVolume(const std::vector<Index>& shape) {
  Index l = 1;
  for (std::size_t n = 2; n < shape.size(); ++n) l *= shape[n];
  return l;
}

// Records the enclosing scope's wall time into a latency histogram on
// every exit path (the sweep stages return early through
// DT_RETURN_NOT_OK).
class StageTimer {
 public:
  explicit StageTimer(Histogram* histogram) : histogram_(histogram) {}
  ~StageTimer() {
    histogram_->Record(static_cast<std::uint64_t>(timer_.Seconds() * 1e9));
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Histogram* histogram_;
  Timer timer_;
};

// Everything a collective phase needs about this rank's shard.
struct ShardContext {
  const SliceApproximation* local = nullptr;  // Shape {I1, I2, nlocal}.
  std::vector<Index> full_shape;              // Global tensor shape.
  ShardPlan plan;
  Communicator* comm = nullptr;
  double s_inv = 1.0;
  // Per-phase execution variants (adaptive layer). The gram axis is
  // ignored here: the sharded Gram is always the exact chunked reduction,
  // which keeps the cross-rank bitwise-identity contract trivially intact.
  adaptive::PhaseVariantPlan variants;
  // DTuckerOptions::shard_trailing_updates: sweep-time trailing factor
  // updates and core refresh run on the rank's own Z slab instead of a
  // gathered Z (see ShardedSweep). Identical on every rank, so the
  // branch choice stays in lockstep.
  bool shard_trailing = true;
  // Eig/qr choices bundled for the replicated small solves.
  SubspaceIterationOptions EigOptions() const {
    SubspaceIterationOptions o;
    o.solver = variants.eig;
    o.qr = variants.qr;
    return o;
  }
  SubspaceIterationOptions InnerEigOptions() const {
    SubspaceIterationOptions o = kInnerEig;
    o.solver = variants.eig;
    o.qr = variants.qr;
    return o;
  }
};

// Reusable per-rank buffers across sweeps, wrapping the unsharded
// workspace (whose z slot holds the *gathered* full projected tensor, so
// the trailing-mode code is shared verbatim).
struct ShardWorkspace {
  SweepWorkspace ws;
  Tensor z_local;                // This rank's Z slab (J1 x J2 x nlocal).
  Tensor w;                      // Reduced carrier contraction target.
  Matrix kron;                   // Trailing Kronecker weights (nlocal x P).
  std::vector<Matrix> partials;  // Per-chunk GEMM partials.
  std::vector<std::size_t> z_counts;  // Owned-slice counts per rank.
  // Sharded trailing-update scratch (order-3 fast path).
  Matrix trailing_gram;  // Small-side Gram C = Z_(3)^T Z_(3) (m x m).
  Matrix ut_local;       // This rank's factor rows, transposed (k x nlocal).
  Matrix ut_all;         // Gathered panel, transposed (k x L).
  Matrix trailing_u;     // Unnormalized factor panel (L x k).
};

// Maps an agreed status code back to a Status.
Status StatusFromCode(StatusCode code, const char* what) {
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, what);
}

// The cross-rank interruption agreement: every rank contributes its local
// status code, the max (an arbitrary but deterministic total order; all
// interruption codes are non-zero) is reduced and broadcast, and every
// rank leaves with the identical verdict — so control flow stays in
// lockstep no matter which rank tripped. Collective: all ranks must call
// at the same point.
Result<StatusCode> AgreeOnStop(Communicator* comm, StatusCode local) {
  double code = static_cast<double>(local);
  DT_RETURN_NOT_OK(comm->AllReduceMax(&code, 1));
  return static_cast<StatusCode>(static_cast<int>(code));
}

// Runs body(c, chunk_slice_begin, chunk_slice_end) serially over this
// rank's chunks, in ascending chunk order — step 2 of the canonical
// reduction (comm/sharding.h).
template <typename Body>
void ForEachLocalChunk(const ShardPlan& plan, const Body& body) {
  for (Index c = plan.chunk_begin; c < plan.chunk_end; ++c) {
    body(c - plan.chunk_begin, plan.ChunkSliceBegin(c), plan.ChunkSliceEnd(c));
  }
}

// G = sum_l F_l diag(s_l * s_inv)^2 F_l^T over *all* ranks' slices
// (F = U for m == 0, V for m == 1): local per-chunk accumulation, pairwise
// tree over the local chunk partials, binomial AllReduceSum across ranks.
// For power-of-two rank counts this composes into the same global tree as
// a 1-rank run (see comm/sharding.h).
Status ShardedStackedFactorGram(const ShardContext& sc, int m, Matrix* g) {
  const Index dim = sc.full_shape[static_cast<std::size_t>(m)];
  const Index nchunks = sc.plan.NumLocalChunks();
  std::vector<Matrix> partials(static_cast<std::size_t>(nchunks));
  ForEachLocalChunk(sc.plan, [&](Index i, Index begin, Index end) {
    Matrix& p = partials[static_cast<std::size_t>(i)];
    p = Matrix::Uninitialized(dim, dim);
    for (Index l = begin; l < end; ++l) {
      const std::size_t l_loc =
          static_cast<std::size_t>(l - sc.plan.slice_begin);
      AccumulateScaledFactorGram(sc.local->slices[l_loc], m, sc.s_inv,
                                 l == begin ? 0.0 : 1.0, &p);
    }
  });
  TreeCombine(&partials, [](Matrix* dst, const Matrix& src) {
    Axpy(1.0, src.data(), dst->data(), dst->size());
  });
  if (g->rows() != dim || g->cols() != dim) {
    *g = Matrix::Uninitialized(dim, dim);
  }
  if (partials.empty()) {
    std::fill(g->data(), g->data() + g->size(), 0.0);
  } else {
    std::memcpy(g->data(), partials[0].data(),
                static_cast<std::size_t>(g->size()) * sizeof(double));
  }
  return sc.comm->AllReduceSum(g);
}

// ||X~||^2 over all ranks, through the same canonical reduction.
Result<double> ShardedApproxSquaredNorm(const ShardContext& sc) {
  const Index nchunks = sc.plan.NumLocalChunks();
  std::vector<double> partials(static_cast<std::size_t>(nchunks), 0.0);
  ForEachLocalChunk(sc.plan, [&](Index i, Index begin, Index end) {
    double acc = 0.0;
    for (Index l = begin; l < end; ++l) {
      const SliceSvd& sl =
          sc.local->slices[static_cast<std::size_t>(l - sc.plan.slice_begin)];
      for (double s : sl.s) {
        const double v = s * sc.s_inv;
        acc += v * v;
      }
    }
    partials[static_cast<std::size_t>(i)] = acc;
  });
  TreeCombine(&partials,
              [](double* dst, const double& src) { *dst += src; });
  double total = partials.empty() ? 0.0 : partials[0];
  DT_RETURN_NOT_OK(sc.comm->AllReduceSum(&total, 1));
  return total;
}

// Global largest slice singular value (max is exactly associative, so a
// plain reduce is bitwise-deterministic), then the unsharded band rule.
Result<double> ShardedScale(const ShardContext& sc) {
  double smax = 0.0;
  for (const auto& sl : sc.local->slices) {
    if (!sl.s.empty()) smax = std::max(smax, sl.s.front());
  }
  DT_RETURN_NOT_OK(sc.comm->AllReduceMax(&smax, 1));
  if (smax > 0.0 && (smax < 1e-100 || smax > 1e100)) return smax;
  return 1.0;
}

// Rows of the trailing Kronecker-weight matrix for this rank's slices:
// kron[l_loc, p] = prod_{n >= 3} A(n)[i_n(l), j_n(p)], where the global
// slice index l decomposes mode-3-fastest into (i_3, ..., i_N) and the
// column index p j_3-fastest into (j_3, ..., j_N). With this matrix the
// mode-1 update's "build carrier T1, contract every trailing mode" chain
// collapses to one GEMM per chunk: W = T1_(unfold) * kron is exactly
// X~ x_2 A2^T x_3 A3^T ... x_N AN^T restricted to the owned slices, and
// the frontal-slab layout of T1 is already the needed unfolding. Returns
// the trailing rank product P.
Index BuildKroneckerWeights(const std::vector<Matrix>& factors,
                            const std::vector<Index>& full_shape,
                            const ShardPlan& plan, Matrix* kron) {
  const Index order = static_cast<Index>(full_shape.size());
  Index p_total = 1;
  for (Index n = 2; n < order; ++n) {
    p_total *= factors[static_cast<std::size_t>(n)].cols();
  }
  const Index nlocal = plan.NumLocalSlices();
  if (kron->rows() != nlocal || kron->cols() != p_total) {
    *kron = Matrix::Uninitialized(nlocal, p_total);
  }
  std::vector<double> row(static_cast<std::size_t>(p_total));
  std::vector<double> next(static_cast<std::size_t>(p_total));
  for (Index l_loc = 0; l_loc < nlocal; ++l_loc) {
    Index rem = plan.slice_begin + l_loc;
    row[0] = 1.0;
    Index sz = 1;
    for (Index n = 2; n < order; ++n) {
      const Index dim_n = full_shape[static_cast<std::size_t>(n)];
      const Index idx = rem % dim_n;
      rem /= dim_n;
      const Matrix& a = factors[static_cast<std::size_t>(n)];
      const Index jn = a.cols();
      for (Index j = 0; j < jn; ++j) {
        const double w = a.col_data(j)[idx];
        double* dst = next.data() + static_cast<std::size_t>(j * sz);
        for (Index q = 0; q < sz; ++q) dst[q] = w * row[static_cast<std::size_t>(q)];
      }
      sz *= jn;
      std::swap(row, next);
    }
    for (Index p = 0; p < p_total; ++p) {
      kron->col_data(p)[l_loc] = row[static_cast<std::size_t>(p)];
    }
  }
  return p_total;
}

// W = sum over ALL slices of carrier_slab_l (x) kron_row_l, i.e. the fully
// trailing-contracted carrier, shaped `out_shape` (slab_rows x P flat).
// One GEMM per owned chunk (inner dimension = that chunk's slice count, an
// operand-deterministic unit), pairwise tree over the chunk partials,
// binomial AllReduceSum across ranks — the canonical reduction again, so
// the result is bitwise rank-count-invariant for power-of-two counts.
Status ReduceCarrierContraction(const ShardContext& sc, const Tensor& carrier,
                                Index slab_rows, const Matrix& kron,
                                Index p_total,
                                const std::vector<Index>& out_shape,
                                ShardWorkspace* sw, Tensor* out) {
  DT_TRACE_SPAN("dtucker.shard.carrier_reduce");
  out->ResizeTo(out_shape);
  const Index nlocal = sc.plan.NumLocalSlices();
  const Index nchunks = sc.plan.NumLocalChunks();
  sw->partials.resize(static_cast<std::size_t>(nchunks));
  ForEachLocalChunk(sc.plan, [&](Index i, Index begin, Index end) {
    Matrix& p = sw->partials[static_cast<std::size_t>(i)];
    if (p.rows() != slab_rows || p.cols() != p_total) {
      p = Matrix::Uninitialized(slab_rows, p_total);
    }
    const std::size_t col0 = static_cast<std::size_t>(begin - sc.plan.slice_begin);
    GemmRaw(Trans::kNo, Trans::kNo, slab_rows, p_total, end - begin,
            /*alpha=*/1.0,
            carrier.data() + col0 * static_cast<std::size_t>(slab_rows),
            slab_rows, kron.data() + col0, nlocal, /*beta=*/0.0, p.data(),
            slab_rows);
  });
  TreeCombine(&sw->partials, [](Matrix* dst, const Matrix& src) {
    Axpy(1.0, src.data(), dst->data(), dst->size());
  });
  const std::size_t total =
      static_cast<std::size_t>(slab_rows) * static_cast<std::size_t>(p_total);
  if (sw->partials.empty()) {
    std::fill(out->data(), out->data() + total, 0.0);
  } else {
    std::memcpy(out->data(), sw->partials[0].data(), total * sizeof(double));
  }
  return sc.comm->AllReduceSum(out->data(), total);
}

// Every rank's owned-slice count, reconstructed locally and cached. The
// plan is a pure function of (L, R, r), so no counts exchange is needed;
// MakeShardPlan cannot fail here because the group size was validated when
// this rank's own plan was built.
const std::vector<std::size_t>& RankSliceCounts(const ShardContext& sc,
                                                ShardWorkspace* sw) {
  if (sw->z_counts.size() != static_cast<std::size_t>(sc.comm->size())) {
    sw->z_counts.resize(static_cast<std::size_t>(sc.comm->size()));
    for (int r = 0; r < sc.comm->size(); ++r) {
      ShardPlan peer =
          MakeShardPlan(sc.plan.num_slices, sc.plan.num_ranks, r).ValueOrDie();
      sw->z_counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(peer.NumLocalSlices());
    }
  }
  return sw->z_counts;
}

// Builds this rank's Z slab and assembles the full projected tensor
// (J1 x J2 x I3 x ... x IN) on every rank. Pure concatenation in global
// slice order — no floating-point combine — so the gathered Z is bitwise
// identical to a single-rank build regardless of the rank count.
Status GatherProjectedCore(const ShardContext& sc, const Matrix& a1,
                           const Matrix& a2, ShardWorkspace* sw) {
  DT_TRACE_SPAN("dtucker.shard.gather_z");
  BuildProjectedCoreInto(*sc.local, a1, a2, sc.s_inv, &sw->z_local,
                         sc.variants.carrier);
  std::vector<Index> zshape = sc.full_shape;
  zshape[0] = a1.cols();
  zshape[1] = a2.cols();
  sw->ws.z.ResizeTo(zshape);
  const std::size_t slab =
      static_cast<std::size_t>(a1.cols()) * static_cast<std::size_t>(a2.cols());
  const std::vector<std::size_t>& slice_counts = RankSliceCounts(sc, sw);
  std::vector<std::size_t> counts(slice_counts.size());
  for (std::size_t r = 0; r < counts.size(); ++r) {
    counts[r] = slice_counts[r] * slab;
  }
  return sc.comm->AllGatherV(sw->z_local.data(), counts, sw->ws.z.data());
}

// Whether the sweep-time trailing update runs sharded: order-3 (the
// paper's primary case — one trailing mode whose Gram decomposes slice by
// slice on the chunk grid) with a trailing rank small enough for the
// small-side Gram. Orders >= 4 fall back to the gathered-Z path: there a
// trailing unfolding's columns group several slices whose indices straddle
// shard boundaries, so the small-side Gram no longer shards on the slice
// grid (and Z is tiny for the shapes that path serves). Pure function of
// options + shape, hence identical on every rank.
bool UseShardedTrailing(const ShardContext& sc,
                        const std::vector<Index>& ranks) {
  return sc.shard_trailing && sc.full_shape.size() == 3 &&
         ranks[2] <= ranks[0] * ranks[1];
}

// Sharded mode-3 factor update (order-3), never materializing the gathered
// Z. With B = Z_(3)^T (m x L, m = J1*J2, column l = vec(z_l)):
//   1. Small-side Gram C = B B^T = sum_l vec(z_l) vec(z_l)^T through the
//      canonical reduction — one GEMM per owned chunk, pairwise tree over
//      chunk partials, binomial AllReduceSum — so C is replicated and
//      bitwise rank-count-invariant (power-of-two counts).
//   2. Replicated small eig: W = top-k eigenvectors of C, the dominant
//      right singular basis of the mode-3 unfolding.
//   3. Each rank recovers only its own rows of the unnormalized panel
//      U = Z_(3) W, computed transposed (k x nlocal) so step 4 is a pure
//      ascending-rank concatenation with no floating-point combine.
//   4. AllGatherV + local transpose to L x k.
//   5. Replicated thin QR restores orthonormal columns. Identical inputs
//      and a deterministic kernel keep every rank in bitwise agreement.
// The computed basis spans the same subspace as the replicated
// LeadingModeVectorsViaGram update but through a different factorization,
// so its bits differ from the shard_trailing_updates=false variant (the
// cross-rank-count identity is what the contract guarantees).
Status ShardedTrailingFactorUpdate(const ShardContext& sc,
                                   const std::vector<Index>& ranks,
                                   std::vector<Matrix>* factors,
                                   ShardWorkspace* sw) {
  DT_TRACE_SPAN("dtucker.shard.update_trailing_sharded");
  const Index m = ranks[0] * ranks[1];
  const Index k = ranks[2];
  const Index big_l = sc.plan.num_slices;
  const Index nlocal = sc.plan.NumLocalSlices();
  const Index nchunks = sc.plan.NumLocalChunks();
  sw->partials.resize(static_cast<std::size_t>(nchunks));
  ForEachLocalChunk(sc.plan, [&](Index i, Index begin, Index end) {
    Matrix& p = sw->partials[static_cast<std::size_t>(i)];
    if (p.rows() != m || p.cols() != m) p = Matrix::Uninitialized(m, m);
    const double* z0 =
        sw->z_local.data() +
        static_cast<std::size_t>(begin - sc.plan.slice_begin) *
            static_cast<std::size_t>(m);
    GemmRaw(Trans::kNo, Trans::kYes, m, m, end - begin, /*alpha=*/1.0, z0, m,
            z0, m, /*beta=*/0.0, p.data(), m);
  });
  TreeCombine(&sw->partials, [](Matrix* dst, const Matrix& src) {
    Axpy(1.0, src.data(), dst->data(), dst->size());
  });
  Matrix& c = sw->trailing_gram;
  if (c.rows() != m || c.cols() != m) c = Matrix::Uninitialized(m, m);
  if (sw->partials.empty()) {
    std::fill(c.data(), c.data() + c.size(), 0.0);
  } else {
    std::memcpy(c.data(), sw->partials[0].data(),
                static_cast<std::size_t>(c.size()) * sizeof(double));
  }
  DT_RETURN_NOT_OK(sc.comm->AllReduceSum(&c));
  const Matrix w =
      TopEigenvectorsSym(c, k, &sw->ws.subspace[2], sc.InnerEigOptions());
  Matrix& ut = sw->ut_local;
  if (ut.rows() != k || ut.cols() != nlocal) {
    ut = Matrix::Uninitialized(k, nlocal);
  }
  if (nlocal > 0) {
    GemmRaw(Trans::kYes, Trans::kNo, k, nlocal, m, /*alpha=*/1.0, w.data(), m,
            sw->z_local.data(), m, /*beta=*/0.0, ut.data(), k);
  }
  const std::vector<std::size_t>& slice_counts = RankSliceCounts(sc, sw);
  std::vector<std::size_t> counts(slice_counts.size());
  for (std::size_t r = 0; r < counts.size(); ++r) {
    counts[r] = slice_counts[r] * static_cast<std::size_t>(k);
  }
  Matrix& ut_all = sw->ut_all;
  if (ut_all.rows() != k || ut_all.cols() != big_l) {
    ut_all = Matrix::Uninitialized(k, big_l);
  }
  DT_RETURN_NOT_OK(sc.comm->AllGatherV(ut.data(), counts, ut_all.data()));
  Matrix& u = sw->trailing_u;
  if (u.rows() != big_l || u.cols() != k) {
    u = Matrix::Uninitialized(big_l, k);
  }
  for (Index l = 0; l < big_l; ++l) {
    const double* src = ut_all.col_data(l);
    for (Index j = 0; j < k; ++j) u.col_data(j)[l] = src[j];
  }
  (*factors)[2] = QrOrthonormalize(u, sc.variants.qr);
  return Status::OK();
}

struct InitResult {
  std::vector<Matrix> factors;
  Tensor core;
};

// Initialization phase, sharded: reduced Grams for A1/A2, gathered Z for
// the trailing factors and the first core. All panels are collective and
// every rank runs all of them (matching the unsharded contract that an
// interruption degrades the run to "initialization only" rather than
// aborting it); the caller agrees on the interruption verdict afterwards.
Status ShardedInitialize(const ShardContext& sc,
                         const std::vector<Index>& ranks, ShardWorkspace* sw,
                         InitResult* init) {
  DT_TRACE_SPAN("dtucker.shard.initialization");
  const Index order = static_cast<Index>(sc.full_shape.size());
  init->factors.resize(static_cast<std::size_t>(order));
  Matrix gram;
  DT_RETURN_NOT_OK(ShardedStackedFactorGram(sc, 0, &gram));
  init->factors[0] = TopEigenvectorsSym(gram, ranks[0], /*subspace=*/nullptr,
                                        sc.EigOptions());
  DT_RETURN_NOT_OK(ShardedStackedFactorGram(sc, 1, &gram));
  init->factors[1] = TopEigenvectorsSym(gram, ranks[1], /*subspace=*/nullptr,
                                        sc.EigOptions());

  if (static_cast<Index>(sw->ws.subspace.size()) < order) {
    sw->ws.subspace.resize(static_cast<std::size_t>(order));
  }
  DT_RETURN_NOT_OK(
      GatherProjectedCore(sc, init->factors[0], init->factors[1], sw));
  // From here on everything operates on the replicated small Z —
  // bitwise-identical input on every rank, deterministic solvers, so the
  // ranks stay in agreement without further communication.
  for (Index n = 2; n < order; ++n) {
    init->factors[static_cast<std::size_t>(n)] = LeadingModeVectorsViaGram(
        sw->ws.z, n, ranks[static_cast<std::size_t>(n)],
        &sw->ws.subspace[static_cast<std::size_t>(n)], sc.EigOptions());
  }
  init->core = *ContractTrailing(sw->ws.z, init->factors, /*skip_mode=*/-1,
                                 &sw->ws);
  return Status::OK();
}

// Where a sweep observed the agreed interruption.
enum class SweepStop { kNone, kEntry, kMid };

// One sharded HOOI sweep. Mirrors internal_dtucker::DTuckerSweep with the
// mode-1/2 carrier contractions reduced across ranks, the trailing update
// and core refresh sharded over this rank's Z slab (order-3 fast path —
// see UseShardedTrailing) or replicated on the gathered Z (fallback and
// shard_trailing_updates=false). Interruption checkpoints are
// *agreement points* (AgreeOnStop) so every rank observes the same verdict
// at the same boundary; `stop`/`where` report it. A communicator failure
// is returned as an error Status.
Status ShardedSweep(const ShardContext& sc, const std::vector<Index>& ranks,
                    const RunContext* ctx, std::vector<Matrix>* factors,
                    Tensor* core, ShardWorkspace* sw, StatusCode* stop,
                    SweepStop* where) {
  DT_TRACE_SPAN("dtucker.shard.sweep");
  *where = SweepStop::kNone;
  const Index order = static_cast<Index>(sc.full_shape.size());
  auto agree = [&](SweepStop boundary) -> Result<bool> {
    DT_ASSIGN_OR_RETURN(StatusCode agreed,
                        AgreeOnStop(sc.comm, RunContext::CheckOrOk(ctx)));
    if (agreed == StatusCode::kOk) return false;
    *stop = agreed;
    *where = boundary;
    return true;
  };

  DT_ASSIGN_OR_RETURN(bool stopped, agree(SweepStop::kEntry));
  if (stopped) return Status::OK();

  // The trailing factors are frozen during the mode-1/2 updates, so one
  // Kronecker-weight build serves both.
  const Index p_total =
      BuildKroneckerWeights(*factors, sc.full_shape, sc.plan, &sw->kron);
  const Index i1 = sc.full_shape[0];
  const Index i2 = sc.full_shape[1];
  {
    DT_TRACE_SPAN("dtucker.shard.update_mode1");
    static Histogram& stage_hist = MetricHistogram("dtucker.stage_ns.mode1");
    StageTimer stage_timer(&stage_hist);
    BuildModeOneCarrierInto(*sc.local, (*factors)[1], sc.s_inv,
                            &sw->ws.carrier, sc.variants.carrier);
    const Index j2 = (*factors)[1].cols();
    std::vector<Index> wshape = sc.full_shape;
    wshape[1] = j2;
    for (Index n = 2; n < order; ++n) {
      wshape[static_cast<std::size_t>(n)] =
          (*factors)[static_cast<std::size_t>(n)].cols();
    }
    DT_RETURN_NOT_OK(ReduceCarrierContraction(sc, sw->ws.carrier, i1 * j2,
                                              sw->kron, p_total, wshape, sw,
                                              &sw->w));
    (*factors)[0] = LeadingModeVectorsViaGram(
        sw->w, 0, ranks[0], &sw->ws.subspace[0], sc.InnerEigOptions());
  }
  DT_ASSIGN_OR_RETURN(stopped, agree(SweepStop::kMid));
  if (stopped) return Status::OK();
  {
    // Mode-2 update, on the fresh A1. Like the unsharded T2, the carrier
    // is laid out mode-1-first so the update is a mode-0 problem on W.
    DT_TRACE_SPAN("dtucker.shard.update_mode2");
    static Histogram& stage_hist = MetricHistogram("dtucker.stage_ns.mode2");
    StageTimer stage_timer(&stage_hist);
    BuildModeTwoCarrierInto(*sc.local, (*factors)[0], sc.s_inv,
                            &sw->ws.carrier, sc.variants.carrier);
    const Index j1 = (*factors)[0].cols();
    std::vector<Index> wshape = sc.full_shape;
    wshape[0] = i2;
    wshape[1] = j1;
    for (Index n = 2; n < order; ++n) {
      wshape[static_cast<std::size_t>(n)] =
          (*factors)[static_cast<std::size_t>(n)].cols();
    }
    DT_RETURN_NOT_OK(ReduceCarrierContraction(sc, sw->ws.carrier, i2 * j1,
                                              sw->kron, p_total, wshape, sw,
                                              &sw->w));
    (*factors)[1] = LeadingModeVectorsViaGram(
        sw->w, 0, ranks[1], &sw->ws.subspace[1], sc.InnerEigOptions());
  }
  DT_ASSIGN_OR_RETURN(stopped, agree(SweepStop::kMid));
  if (stopped) return Status::OK();
  {
    DT_TRACE_SPAN("dtucker.shard.update_trailing");
    static Histogram& stage_hist =
        MetricHistogram("dtucker.stage_ns.trailing");
    StageTimer stage_timer(&stage_hist);
    if (UseShardedTrailing(sc, ranks)) {
      // Sharded trailing update: refresh only this rank's Z slab on the
      // fresh A1/A2 and recover the mode-3 factor from the small-side
      // Gram reduced through the canonical tree — the full Z is never
      // gathered during sweeps.
      BuildProjectedCoreInto(*sc.local, (*factors)[0], (*factors)[1],
                             sc.s_inv, &sw->z_local, sc.variants.carrier);
      DT_RETURN_NOT_OK(ShardedTrailingFactorUpdate(sc, ranks, factors, sw));
    } else {
      // Replicated fallback (orders >= 4, oversized trailing rank, or
      // shard_trailing_updates = false): trailing updates on the gathered
      // Z — replicated compute, zero communication past the gather.
      DT_RETURN_NOT_OK(
          GatherProjectedCore(sc, (*factors)[0], (*factors)[1], sw));
      for (Index n = 2; n < order; ++n) {
        (*factors)[static_cast<std::size_t>(n)] = LeadingModeVectorsViaGram(
            *ContractTrailing(sw->ws.z, *factors, /*skip_mode=*/n, &sw->ws), n,
            ranks[static_cast<std::size_t>(n)],
            &sw->ws.subspace[static_cast<std::size_t>(n)],
            sc.InnerEigOptions());
      }
    }
  }
  DT_ASSIGN_OR_RETURN(stopped, agree(SweepStop::kMid));
  if (stopped) return Status::OK();
  {
    DT_TRACE_SPAN("dtucker.shard.core_refresh");
    static Histogram& stage_hist =
        MetricHistogram("dtucker.stage_ns.core_refresh");
    StageTimer stage_timer(&stage_hist);
    if (sc.shard_trailing) {
      // Sharded core refresh (any order): contract this rank's Z slab —
      // current in both branches above — against Kronecker weights rebuilt
      // from the *updated* trailing factors, through the same fixed
      // reduction tree the mode-1/2 updates use.
      const Index p2 =
          BuildKroneckerWeights(*factors, sc.full_shape, sc.plan, &sw->kron);
      DT_RETURN_NOT_OK(ReduceCarrierContraction(sc, sw->z_local,
                                                ranks[0] * ranks[1], sw->kron,
                                                p2, ranks, sw, core));
    } else {
      *core = *ContractTrailing(sw->ws.z, *factors, /*skip_mode=*/-1, &sw->ws);
    }
  }
  return Status::OK();
}

}  // namespace

Status ShardedDTuckerOptions::Validate(const std::vector<Index>& shape) const {
  DT_RETURN_NOT_OK(dtucker.Validate(shape));
  if (dtucker.auto_reorder) {
    return Status::InvalidArgument(
        "sharded D-Tucker does not support auto_reorder; permute the tensor "
        "(or drop --ranks) instead");
  }
  if (num_ranks < 1) {
    return Status::InvalidArgument("num_ranks must be >= 1");
  }
  const Index l = TrailingVolume(shape);
  if (static_cast<Index>(num_ranks) > l) {
    return Status::InvalidArgument(
        "num_ranks (" + std::to_string(num_ranks) +
        ") exceeds the slice count L=" + std::to_string(l) +
        "; reduce --ranks to at most the trailing-mode volume");
  }
  if (comm_timeout_seconds <= 0.0) {
    return Status::InvalidArgument("comm_timeout_seconds must be positive");
  }
  return Status::OK();
}

Result<TuckerDecomposition> ShardedDTuckerFromLocalApproximation(
    const SliceApproximation& local, const std::vector<Index>& full_shape,
    const ShardPlan& plan, const DTuckerOptions& options, Communicator* comm,
    TuckerStats* stats) {
  // A degenerate shard (zero owned slices, legal when the rank count
  // exceeds the chunk grid) fails the strict shape check — its trailing
  // dimension is 0 — so it is validated structurally below instead.
  if (!plan.Degenerate()) DT_RETURN_NOT_OK(local.Validate());
  DT_RETURN_NOT_OK(options.Validate(full_shape));
  if (options.auto_reorder) {
    return Status::InvalidArgument(
        "sharded D-Tucker does not support auto_reorder");
  }
  if (plan.rank != comm->rank() || plan.num_ranks != comm->size()) {
    return Status::InvalidArgument(
        "shard plan does not match the communicator's rank/size");
  }
  if (plan.num_slices != TrailingVolume(full_shape)) {
    return Status::InvalidArgument(
        "shard plan slice count does not match the tensor shape");
  }
  if (local.NumSlices() != plan.NumLocalSlices() ||
      local.Dim(0) != full_shape[0] || local.Dim(1) != full_shape[1]) {
    return Status::InvalidArgument(
        "local approximation does not match this rank's shard");
  }

  // Clock alignment before the first traced collective, so every exported
  // span of this run already sits on rank 0's time axis. Gated on flags
  // that are derived identically on every rank (collective discipline).
  if (TelemetryGatherEnabled() && TraceEnabled()) {
    Status align = AlignTraceClockWithRoot(comm);
    if (!align.ok()) {
      DT_LOG(WARNING) << "trace clock alignment failed: " << align.message();
    }
  }

  ShardContext sc;
  sc.local = &local;
  sc.full_shape = full_shape;
  sc.plan = plan;
  sc.comm = comm;
  sc.variants = options.variants;
  sc.shard_trailing = options.shard_trailing_updates;
  DT_ASSIGN_OR_RETURN(const double scale, ShardedScale(sc));
  sc.s_inv = 1.0 / scale;  // Exactly 1.0 in the common case.
  DT_ASSIGN_OR_RETURN(const double approx_norm2, ShardedApproxSquaredNorm(sc));

  const RunContext* ctx = options.tucker.run_context;
  const std::vector<Index>& ranks = options.tucker.ranks;

  Timer init_timer;
  ShardWorkspace sw;
  InitResult state;
  DT_RETURN_NOT_OK(ShardedInitialize(sc, ranks, &sw, &state));
  // One verdict for the whole init phase: all panels always run (each is a
  // bounded collective unit), so a cancel during init degrades the run to
  // initialization-only on every rank at once.
  DT_ASSIGN_OR_RETURN(StatusCode stop,
                      AgreeOnStop(comm, RunContext::CheckOrOk(ctx)));
  GlobalPhaseTimer().Add("dtucker.initialization", init_timer.Seconds());
  if (stats != nullptr) stats->init_seconds = init_timer.Seconds();
  const char* stop_phase = stop != StatusCode::kOk ? "initialization" : nullptr;

  Timer iterate_timer;
  DT_TRACE_SPAN("dtucker.shard.iteration");
  double prev_error =
      OrthogonalTuckerRelativeError(approx_norm2, state.core.SquaredNorm());
  if (stats != nullptr) stats->error_history.push_back(prev_error);
  static Counter& eig_sweeps = MetricCounter("eig.subspace_sweeps");
  double prev_fit = 1.0 - std::sqrt(std::max(prev_error, 0.0));
  const bool do_callback = options.sweep_callback && comm->rank() == 0;

  // The sharded loop always snapshots: a cancel can originate on *any*
  // rank, so every rank must be able to roll a mid-sweep abort back to the
  // last completed sweep — that is what keeps the returned decompositions
  // identical across the group.
  std::vector<Matrix> factors_snapshot;
  Tensor core_snapshot;

  int it = 0;
  for (; it < options.tucker.max_iterations; ++it) {
    if (stop != StatusCode::kOk) {
      if (stop_phase == nullptr) stop_phase = "between iteration sweeps";
      break;
    }
    Timer sweep_timer;
    const std::uint64_t eig_before = eig_sweeps.Value();
    factors_snapshot = state.factors;
    core_snapshot = state.core;
    SweepStop where = SweepStop::kNone;
    DT_RETURN_NOT_OK(ShardedSweep(sc, ranks, ctx, &state.factors, &state.core,
                                  &sw, &stop, &where));
    if (where != SweepStop::kNone) {
      if (where == SweepStop::kMid) {
        state.factors = std::move(factors_snapshot);
        state.core = std::move(core_snapshot);
        stop_phase = "mid-sweep (rolled back to the previous sweep)";
      } else {
        stop_phase = "between iteration sweeps";
      }
      break;
    }
    // Convergence bookkeeping runs on replicated, bitwise-identical values
    // (the core is the same on every rank), so each rank takes the same
    // branch below without any extra communication.
    const double error = OrthogonalTuckerRelativeError(
        approx_norm2, state.core.SquaredNorm());
    if (stats != nullptr) stats->error_history.push_back(error);
    const bool want_telemetry = stats != nullptr || do_callback;
    if (want_telemetry) {
      SweepTelemetry t;
      t.sweep = it + 1;
      t.relative_error = error;
      t.fit = 1.0 - std::sqrt(std::max(error, 0.0));
      t.delta_fit = t.fit - prev_fit;
      t.seconds = sweep_timer.Seconds();
      t.subspace_iterations = eig_sweeps.Value() - eig_before;
      prev_fit = t.fit;
      if (stats != nullptr) stats->sweep_history.push_back(t);
      if (do_callback) options.sweep_callback(t);
    }
    static Histogram& sweep_hist = MetricHistogram("dtucker.sweep_ns");
    sweep_hist.Record(
        static_cast<std::uint64_t>(sweep_timer.Seconds() * 1e9));
    const double delta = std::fabs(prev_error - error);
    prev_error = error;
    if (delta < options.tucker.tolerance) {
      ++it;
      break;
    }
  }
  GlobalPhaseTimer().Add("dtucker.iteration", iterate_timer.Seconds());
  MetricGauge("process.peak_rss_bytes")
      .SetMax(static_cast<double>(PeakRssBytes()));
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
    // The per-rank footprint — the whole point of sharding: this rank only
    // ever held its own shard of the compressed form.
    stats->working_bytes = local.ByteSize();
    stats->completion = stop;
    if (stop != StatusCode::kOk) {
      stats->completion_detail =
          std::string(StatusCodeToString(stop)) + " during " +
          (stop_phase != nullptr ? stop_phase : "iteration") + "; " +
          std::to_string(it) + " completed sweep(s)";
    }
  }

  // Run-end telemetry gather. Cancelled/rolled-back runs reach this point
  // too (graceful degradation returns the best-so-far decomposition), so
  // aborted runs still produce one merged trace. Collective, gated on a
  // flag that is uniform across ranks; a failed gather degrades to the
  // per-rank fallback files, never fails the solve.
  if (TelemetryGatherEnabled()) {
    Status gathered = GatherRankTelemetry(comm);
    if (!gathered.ok()) {
      DT_LOG(WARNING) << "cross-rank telemetry gather failed: "
                      << gathered.message();
    }
  }

  TuckerDecomposition dec;
  dec.factors = std::move(state.factors);
  dec.core = std::move(state.core);
  if (scale != 1.0) dec.core *= scale;
  return dec;
}

namespace {

// Shared tail of the per-rank approximation phase: agree on the outcome
// before anyone proceeds (a failed rank would otherwise leave its peers
// blocked in the first collective until the communicator timeout), then
// assemble the local SliceApproximation with this shard's shape.
Result<SliceApproximation> FinishLocalApproximation(
    Result<std::vector<SliceSvd>> slices_result, const ShardPlan& plan,
    const std::vector<Index>& full_shape, Index slice_rank,
    Communicator* comm) {
  const StatusCode local_code = slices_result.ok()
                                    ? StatusCode::kOk
                                    : slices_result.status().code();
  DT_ASSIGN_OR_RETURN(StatusCode agreed, AgreeOnStop(comm, local_code));
  if (agreed != StatusCode::kOk) {
    if (!slices_result.ok()) return slices_result.status();
    return StatusFromCode(agreed,
                          "a peer rank failed during the approximation phase");
  }
  SliceApproximation local;
  local.shape = {full_shape[0], full_shape[1], plan.NumLocalSlices()};
  local.slice_rank = slice_rank;
  local.slices = std::move(slices_result).ValueOrDie();
  return local;
}

SliceApproximationOptions ApproxOptionsFor(const DTuckerOptions& options,
                                           Index min_dim) {
  SliceApproximationOptions approx_opts;
  approx_opts.slice_rank = std::min(options.EffectiveSliceRank(), min_dim);
  approx_opts.oversampling = options.oversampling;
  approx_opts.power_iterations = options.power_iterations;
  approx_opts.seed = options.tucker.seed;
  approx_opts.num_threads = options.num_threads;
  approx_opts.run_context = options.tucker.run_context;
  approx_opts.qr_variant = options.variants.qr;
  return approx_opts;
}

}  // namespace

Result<TuckerDecomposition> ShardedDTuckerRank(const Tensor& x,
                                               const DTuckerOptions& options,
                                               Communicator* comm,
                                               TuckerStats* stats) {
  DT_RETURN_NOT_OK(options.Validate(x.shape()));
  if (options.tucker.validate_input) DT_RETURN_NOT_OK(ValidateFinite(x));
  DT_ASSIGN_OR_RETURN(
      ShardPlan plan,
      MakeShardPlan(TrailingVolume(x.shape()), comm->size(), comm->rank()));
  const SliceApproximationOptions approx_opts =
      ApproxOptionsFor(options, std::min(x.dim(0), x.dim(1)));

  Timer approx_timer;
  Result<std::vector<SliceSvd>> slices = [&] {
    DT_TRACE_SPAN("dtucker.approximation");
    return ApproximateSliceRange(x, plan.slice_begin, plan.NumLocalSlices(),
                                 approx_opts);
  }();
  DT_ASSIGN_OR_RETURN(
      SliceApproximation local,
      FinishLocalApproximation(std::move(slices), plan, x.shape(),
                               approx_opts.slice_rank, comm));
  GlobalPhaseTimer().Add("dtucker.approximation", approx_timer.Seconds());
  if (stats != nullptr) stats->preprocess_seconds = approx_timer.Seconds();

  return ShardedDTuckerFromLocalApproximation(local, x.shape(), plan, options,
                                              comm, stats);
}

Result<TuckerDecomposition> ShardedDTuckerRankFromFile(
    const std::string& path, const DTuckerOptions& options, Communicator* comm,
    TuckerStats* stats) {
  // Header peek for the shape; each rank then streams only its own shard.
  std::vector<Index> shape;
  {
    DT_ASSIGN_OR_RETURN(TensorFileReader reader, TensorFileReader::Open(path));
    shape = reader.shape();
  }
  DT_RETURN_NOT_OK(options.Validate(shape));
  DT_ASSIGN_OR_RETURN(
      ShardPlan plan,
      MakeShardPlan(TrailingVolume(shape), comm->size(), comm->rank()));
  const SliceApproximationOptions approx_opts =
      ApproxOptionsFor(options, std::min(shape[0], shape[1]));

  Timer approx_timer;
  Result<std::vector<SliceSvd>> slices = [&] {
    DT_TRACE_SPAN("dtucker.approximation");
    return ApproximateSliceRangeFromFile(path, plan.slice_begin,
                                         plan.NumLocalSlices(), approx_opts);
  }();
  DT_ASSIGN_OR_RETURN(
      SliceApproximation local,
      FinishLocalApproximation(std::move(slices), plan, shape,
                               approx_opts.slice_rank, comm));
  GlobalPhaseTimer().Add("dtucker.approximation", approx_timer.Seconds());
  if (stats != nullptr) stats->preprocess_seconds = approx_timer.Seconds();

  return ShardedDTuckerFromLocalApproximation(local, shape, plan, options,
                                              comm, stats);
}

namespace {

// Restores the process-wide pool partition count on scope exit.
class PoolPartitionGuard {
 public:
  explicit PoolPartitionGuard(int partitions) : previous_(PoolPartitions()) {
    SetPoolPartitions(partitions);
  }
  ~PoolPartitionGuard() { SetPoolPartitions(previous_); }
  PoolPartitionGuard(const PoolPartitionGuard&) = delete;
  PoolPartitionGuard& operator=(const PoolPartitionGuard&) = delete;

 private:
  int previous_;
};

// Spawns one thread per rank, runs `rank_fn` on each, and returns rank 0's
// result (all ranks finish identically). Communicators are built on the
// requested transport *serially in the driver thread* before any rank
// thread starts — rank 0 first, because the shm segment must exist before
// a peer maps it (the peers' bounded setup poll would also work, but
// serial creation makes setup failures synchronous errors here). The
// shared BLAS pool is partitioned across the ranks for the duration, and
// the approximation-phase worker budget is split evenly.
Result<TuckerDecomposition> RunInProcessRanks(
    const ShardedDTuckerOptions& options,
    const std::function<Result<TuckerDecomposition>(
        const DTuckerOptions&, Communicator*, TuckerStats*)>& rank_fn,
    TuckerStats* stats) {
  const int num_ranks = options.num_ranks;
  // Distinguishes concurrent/successive runs sharing one process when the
  // caller did not pin a rendezvous name.
  static std::atomic<int> run_counter{0};
  std::shared_ptr<InProcessGroup> group;
  std::vector<std::unique_ptr<Communicator>> owned;
  std::vector<Communicator*> comms(static_cast<std::size_t>(num_ranks),
                                   nullptr);
  std::string scratch = options.comm_scratch;
  bool remove_scratch_dir = false;
  switch (options.transport) {
    case CommTransport::kInProcess:
      group = InProcessGroup::Create(num_ranks);
      for (int r = 0; r < num_ranks; ++r) {
        comms[static_cast<std::size_t>(r)] = group->comm(r);
      }
      break;
    case CommTransport::kFile: {
      if (scratch.empty()) {
        scratch = "/tmp/dtucker_comm_" + std::to_string(getpid()) + "_" +
                  std::to_string(run_counter.fetch_add(1));
        remove_scratch_dir = true;
      }
      for (int r = 0; r < num_ranks; ++r) {
        DT_ASSIGN_OR_RETURN(std::unique_ptr<Communicator> c,
                            CreateFileCommunicator(scratch, r, num_ranks));
        comms[static_cast<std::size_t>(r)] = c.get();
        owned.push_back(std::move(c));
      }
      break;
    }
    case CommTransport::kShm: {
      if (scratch.empty()) {
        scratch = "/dtucker-" + std::to_string(getpid()) + "-" +
                  std::to_string(run_counter.fetch_add(1));
      }
      for (int r = 0; r < num_ranks; ++r) {
        DT_ASSIGN_OR_RETURN(std::unique_ptr<Communicator> c,
                            CreateShmCommunicator(scratch, r, num_ranks));
        comms[static_cast<std::size_t>(r)] = c.get();
        owned.push_back(std::move(c));
      }
      break;
    }
  }
  PoolPartitionGuard partition_guard(num_ranks);

  // All rank threads of one run share a flow-id namespace: collective
  // call k on every rank carries the same flow id, which is what binds
  // the rank-local spans into one cross-rank flow arrow in the merged
  // trace. The counter keeps concurrent/successive runs in one process
  // from colliding.
  const std::uint64_t flow_group =
      static_cast<std::uint64_t>(run_counter.fetch_add(1)) + 1;

  std::vector<std::unique_ptr<Result<TuckerDecomposition>>> results(
      static_cast<std::size_t>(num_ranks));
  std::vector<TuckerStats> rank_stats(static_cast<std::size_t>(num_ranks));
  auto run_rank = [&](int r) {
    // Each rank thread's spans export under pid == r (its own Perfetto
    // lane). Shared pool workers stay on the default (rank 0) lane.
    SetTraceRankForCurrentThread(r);
    DTuckerOptions rank_options = options.dtucker;
    if (r != 0) rank_options.sweep_callback = nullptr;
    rank_options.num_threads =
        std::max(1, options.dtucker.num_threads / num_ranks);
    Communicator* comm = comms[static_cast<std::size_t>(r)];
    comm->set_timeout_seconds(options.comm_timeout_seconds);
    comm->set_trace_flow_group(flow_group);
    results[static_cast<std::size_t>(r)] =
        std::make_unique<Result<TuckerDecomposition>>(rank_fn(
            rank_options, comm, &rank_stats[static_cast<std::size_t>(r)]));
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks - 1));
  for (int r = 1; r < num_ranks; ++r) {
    threads.emplace_back(run_rank, r);
  }
  run_rank(0);
  for (std::thread& t : threads) t.join();

  // Auto-generated rendezvous state is this function's to clean up: the
  // communicators first (rank 0's shm destructor unlinks the segment),
  // then the file transport's scratch directory, best-effort. A
  // caller-pinned scratch is the caller's to remove.
  owned.clear();
  if (remove_scratch_dir) {
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
  }

  // Rank 0 speaks for the group; a peer-only failure (possible only on an
  // asymmetric transport fault) still surfaces as an error.
  for (int r = 1; r < num_ranks; ++r) {
    const Result<TuckerDecomposition>& peer =
        *results[static_cast<std::size_t>(r)];
    if (!peer.ok() && results[0]->ok()) return peer.status();
  }
  if (stats != nullptr) *stats = rank_stats[0];
  return std::move(*results[0]);
}

}  // namespace

Result<TuckerDecomposition> ShardedDTucker(const Tensor& x,
                                           const ShardedDTuckerOptions& options,
                                           TuckerStats* stats) {
  DT_RETURN_NOT_OK(options.Validate(x.shape()));
  return RunInProcessRanks(
      options,
      [&x](const DTuckerOptions& opt, Communicator* comm, TuckerStats* st) {
        return ShardedDTuckerRank(x, opt, comm, st);
      },
      stats);
}

Result<TuckerDecomposition> ShardedDTuckerFromFile(
    const std::string& path, const ShardedDTuckerOptions& options,
    TuckerStats* stats) {
  std::vector<Index> shape;
  {
    DT_ASSIGN_OR_RETURN(TensorFileReader reader, TensorFileReader::Open(path));
    shape = reader.shape();
  }
  DT_RETURN_NOT_OK(options.Validate(shape));
  return RunInProcessRanks(
      options,
      [&path](const DTuckerOptions& opt, Communicator* comm, TuckerStats* st) {
        return ShardedDTuckerRankFromFile(path, opt, comm, st);
      },
      stats);
}

}  // namespace dtucker
