// Sharded slice-parallel D-Tucker: the slice dimension distributed across
// communicator ranks.
//
// D-Tucker's three phases decompose naturally over the L frontal slices:
//
//   Approximation   — embarrassingly parallel; rank r compresses only its
//                     owned slice range (streaming just that shard when the
//                     tensor lives in a file), so no rank ever touches
//                     tensor data it does not own.
//   Initialization  — the stacked-factor Grams sum per-slice contributions;
//                     each rank accumulates its shard's partial and a
//                     tree-shaped AllReduceSum combines them. The small
//                     projected tensor Z is assembled by a pure-concatenation
//                     all-gather of per-shard slabs.
//   Iteration       — the mode-1/2 carrier contractions reduce per-chunk
//                     GEMM partials through the same tree. Trailing-mode
//                     updates are sharded too (order-3, the paper's
//                     primary case): the small-side trailing Gram
//                     accumulates per-slice outer products of the rank's
//                     own Z slab through the canonical chunk tree, each
//                     rank recovers its own rows of the factor panel
//                     locally, and a pure-concatenation all-gather plus a
//                     replicated thin QR finishes the update — the
//                     gathered Z is never materialized during sweeps. The
//                     core refresh reduces the rank's Z slab against the
//                     full trailing Kronecker weights through the same
//                     tree (any order). Orders >= 4 keep the replicated
//                     gathered-Z trailing updates (Z is small there and
//                     the per-i_n column groups straddle shard
//                     boundaries); DTuckerOptions::shard_trailing_updates
//                     = false restores the fully replicated PR 6 behavior
//                     as a benchmark baseline.
//
// Determinism: every floating-point reduction follows the canonical chunk
// grid of comm/sharding.h — fixed chunks, serial accumulation within a
// chunk, pairwise tree over chunk partials, binomial tree across ranks.
// Because shard boundaries are chunk boundaries, the composed global
// reduction tree is the *same tree* for every power-of-two rank count
// (<= kShardChunkCount), so a 4-rank run reproduces a 1-rank sharded run
// bit for bit (given equal BLAS settings per rank). The sharded path's
// bits differ from the unsharded solver's (dtucker.h), whose left-fold
// reduction predates the tree — the two agree to rounding error only.
//
// Execution control: each rank polls its own RunContext
// (options.tucker.run_context) locally, but never aborts a collective
// mid-flight. Instead the ranks agree on interruption at fixed sweep and
// mode boundaries by max-reducing their local status codes, so a cancel or
// deadline on any one rank stops every rank at the same boundary with the
// same rolled-back state — all ranks return the last completed sweep.
//
// Threading: in-process ranks share the process-wide BLAS pool; the driver
// brackets the run with SetPoolPartitions so R ranks split the pool
// instead of oversubscribing it, and splits the approximation-phase worker
// budget (num_threads) evenly across ranks.
#ifndef DTUCKER_DTUCKER_SHARDED_DTUCKER_H_
#define DTUCKER_DTUCKER_SHARDED_DTUCKER_H_

#include <string>

#include "comm/communicator.h"
#include "comm/sharding.h"
#include "common/status.h"
#include "dtucker/dtucker.h"

namespace dtucker {

struct ShardedDTuckerOptions {
  DTuckerOptions dtucker;
  // Rank count for the in-process drivers (ShardedDTucker /
  // ShardedDTuckerFromFile), which spawn one thread per rank. Must be in
  // [1, L] for a tensor with L frontal slices; ranks beyond the chunk grid
  // (kShardChunkCount) own zero slices but stay in lockstep. The SPMD
  // entry points ignore this field (the communicator fixes the group).
  int num_ranks = 1;
  // Upper bound on any single blocking communicator wait; a crashed peer
  // surfaces as kUnavailable after this long instead of a deadlock.
  double comm_timeout_seconds = 120.0;

  // Transport the in-process drivers build their rank communicators on.
  // All three produce bitwise-identical results (the collective algorithms
  // are shared — see comm/communicator.h); kFile/kShm exist here mainly so
  // tests and benchmarks can exercise the multi-process rendezvous paths
  // from one process. The SPMD entry points ignore this field (the caller
  // already built the communicator).
  CommTransport transport = CommTransport::kInProcess;
  // Rendezvous namespace for the multi-process transports: a scratch
  // directory for kFile, a shm_open name ("/name") for kShm. Empty (the
  // default) generates a fresh process-unique name and removes it after
  // the run. Ignored for kInProcess.
  std::string comm_scratch;

  // Validates the D-Tucker surface plus the rank count against the shape.
  // num_ranks > L is an InvalidArgument (every rank must be addressable on
  // the slice grid), never a crash.
  Status Validate(const std::vector<Index>& shape) const;
};

// In-process driver: runs `options.num_ranks` rank threads over an
// InProcessGroup and returns rank 0's decomposition (all ranks finish with
// bitwise-identical results). `stats`, `sweep_callback` and the error
// history are reported from rank 0's perspective. auto_reorder is not
// supported in the sharded path (InvalidArgument).
Result<TuckerDecomposition> ShardedDTucker(const Tensor& x,
                                           const ShardedDTuckerOptions& options,
                                           TuckerStats* stats = nullptr);

// Out-of-core in-process driver: each rank streams and compresses only its
// own shard of the DTNSR001 file, so peak resident tensor data per rank is
// one slice. The raw tensor is never materialized.
Result<TuckerDecomposition> ShardedDTuckerFromFile(
    const std::string& path, const ShardedDTuckerOptions& options,
    TuckerStats* stats = nullptr);

// SPMD entry points: one call per rank, `comm` fixes the rank/group (e.g.
// a FileCommunicator when ranks are separate processes — the no-MPI
// multi-process transport). Every rank must call with identical `options`
// and tensor/path; each returns the full (identical) decomposition.
// `options.num_threads` is used as given — per-process callers own their
// thread budget. The caller is responsible for SetPoolPartitions when
// ranks share one process.
Result<TuckerDecomposition> ShardedDTuckerRank(const Tensor& x,
                                               const DTuckerOptions& options,
                                               Communicator* comm,
                                               TuckerStats* stats = nullptr);

Result<TuckerDecomposition> ShardedDTuckerRankFromFile(
    const std::string& path, const DTuckerOptions& options, Communicator* comm,
    TuckerStats* stats = nullptr);

// Query-phase SPMD entry: initialization + iteration on a rank's local
// shard of an existing slice approximation. `local` holds only the owned
// slices with shape {I1, I2, NumLocalSlices} matching `plan`; `full_shape`
// is the global tensor shape. Building block of the entry points above and
// of white-box tests.
Result<TuckerDecomposition> ShardedDTuckerFromLocalApproximation(
    const SliceApproximation& local, const std::vector<Index>& full_shape,
    const ShardPlan& plan, const DTuckerOptions& options, Communicator* comm,
    TuckerStats* stats = nullptr);

}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_SHARDED_DTUCKER_H_
