#include "dtucker/slice_approximation.h"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/gemm_kernel.h"

namespace dtucker {

namespace {

// One pass per column: writing src[i] * s_j straight into the fresh matrix
// halves the memory traffic of the copy-then-Scal formulation.
Matrix ScaledColumns(const Matrix& factor, const std::vector<double>& s) {
  Matrix out(factor.rows(), factor.cols());
  for (Index j = 0; j < out.cols(); ++j) {
    const double sj = s[static_cast<std::size_t>(j)];
    const double* src = factor.col_data(j);
    double* dst = out.col_data(j);
    for (Index i = 0; i < out.rows(); ++i) dst[i] = src[i] * sj;
  }
  return out;
}

}  // namespace

Matrix SliceSvd::UTimesS() const { return ScaledColumns(u, s); }

Matrix SliceSvd::VTimesS() const { return ScaledColumns(v, s); }

Matrix SliceSvd::Reconstruct() const { return MultiplyNT(UTimesS(), v); }

std::vector<Index> SliceApproximation::TrailingShape() const {
  return std::vector<Index>(shape.begin() + 2, shape.end());
}

std::size_t SliceApproximation::ByteSize() const {
  std::size_t bytes = 0;
  for (const auto& sl : slices) {
    bytes += sl.u.ByteSize() + sl.v.ByteSize() + sl.s.size() * sizeof(double);
  }
  return bytes;
}

Tensor SliceApproximation::ReconstructDense() const {
  Tensor out(shape);
  for (Index l = 0; l < NumSlices(); ++l) {
    out.SetFrontalSlice(l, slices[static_cast<std::size_t>(l)].Reconstruct());
  }
  return out;
}

double SliceApproximation::RelativeErrorAgainst(const Tensor& x) const {
  return RelativeError(x, ReconstructDense());
}

Status SliceApproximation::Validate() const {
  if (shape.size() < 3) {
    return Status::InvalidArgument("approximation shape must have order >= 3");
  }
  Index expected_slices = 1;
  for (std::size_t k = 2; k < shape.size(); ++k) {
    if (shape[k] <= 0) {
      return Status::InvalidArgument("non-positive trailing dimension");
    }
    expected_slices *= shape[k];
  }
  if (NumSlices() != expected_slices) {
    return Status::InvalidArgument(
        "slice count " + std::to_string(NumSlices()) +
        " does not match the trailing shape (" +
        std::to_string(expected_slices) + ")");
  }
  for (Index l = 0; l < NumSlices(); ++l) {
    const SliceSvd& sl = slices[static_cast<std::size_t>(l)];
    const Index rank = static_cast<Index>(sl.s.size());
    if (rank < 1) {
      return Status::InvalidArgument("slice " + std::to_string(l) +
                                     " has no components");
    }
    if (sl.u.rows() != shape[0] || sl.v.rows() != shape[1] ||
        sl.u.cols() != rank || sl.v.cols() != rank) {
      return Status::InvalidArgument("slice " + std::to_string(l) +
                                     " has inconsistent factor shapes");
    }
  }
  return Status::OK();
}

Result<std::vector<SliceSvd>> ApproximateSliceRange(
    const Tensor& x, Index first, Index count,
    const SliceApproximationOptions& options) {
  if (x.order() < 3) {
    return Status::InvalidArgument(
        "slice approximation requires an order >= 3 tensor");
  }
  const Index min_dim = std::min(x.dim(0), x.dim(1));
  if (options.slice_rank <= 0 || options.slice_rank > min_dim) {
    return Status::InvalidArgument(
        "slice_rank must be in [1, min(I1, I2)]");
  }
  if (first < 0 || count < 0 || first + count > x.NumFrontalSlices()) {
    return Status::OutOfRange("slice range outside the tensor");
  }

  RsvdOptions base;
  base.rank = options.slice_rank;
  base.oversampling = options.oversampling;
  base.power_iterations = options.power_iterations;
  base.qr = options.qr_variant;

  DT_TRACE_SPAN("dtucker.slice_range");
  std::vector<SliceSvd> out(static_cast<std::size_t>(count));
  // Per-slice interruption checkpoint. The first worker to observe a
  // cancellation/deadline records the code; later slices (on any thread)
  // skip their work so the whole loop drains within one slice's worth of
  // compute per worker.
  std::atomic<int> stop_code{static_cast<int>(StatusCode::kOk)};
  auto compress_one = [&](std::size_t i) {
    if (stop_code.load(std::memory_order_relaxed) !=
        static_cast<int>(StatusCode::kOk)) {
      return;
    }
    const StatusCode check = RunContext::CheckOrOk(options.run_context);
    if (check != StatusCode::kOk) {
      stop_code.store(static_cast<int>(check), std::memory_order_relaxed);
      return;
    }
    DT_TRACE_SPAN("dtucker.slice_svd");
    const Index l = first + static_cast<Index>(i);
    Matrix slice = x.FrontalSlice(l);
    // Extreme magnitudes denormalize the squared quantities inside the SVD
    // (Gram entries, Jacobi dots); normalize the slice and fold the scale
    // back into the singular values. Only applied outside a wide safe
    // band, so ordinary inputs are bit-identical with or without it.
    double scale = 1.0;
    const double max_abs = slice.MaxAbs();
    if (max_abs > 0.0 && (max_abs < 1e-100 || max_abs > 1e100)) {
      scale = max_abs;
      slice *= 1.0 / scale;
    }
    SvdResult svd;
    if (options.method == SliceSvdMethod::kRandomized) {
      RsvdOptions rsvd = base;
      // Independent, deterministic test matrix per slice.
      rsvd.seed = options.seed + static_cast<uint64_t>(l) * 0x9E3779B9ULL;
      svd = RandomizedSvd(slice, rsvd);
    } else {
      svd = ThinSvd(slice);
      svd.Truncate(options.slice_rank);
    }
    if (options.adaptive_tolerance > 0.0) {
      // Keep the smallest prefix whose tail energy is below tolerance.
      const double total = slice.SquaredNorm();
      double kept = 0.0;
      Index rank = static_cast<Index>(svd.s.size());
      for (std::size_t j = 0; j < svd.s.size(); ++j) {
        kept += svd.s[j] * svd.s[j];
        if (total <= 0.0 ||
            (total - kept) <= options.adaptive_tolerance * total) {
          rank = static_cast<Index>(j + 1);
          break;
        }
      }
      svd.Truncate(std::max<Index>(1, rank));
    }
    if (scale != 1.0) {
      for (double& s : svd.s) s *= scale;
    }
    out[i] = SliceSvd{std::move(svd.u), std::move(svd.s), std::move(svd.v)};
  };
  if (options.num_threads > 1 && count > 1) {
    // Slice-level parallelism is the better axis here (independent rSVDs);
    // the worker scope keeps the per-slice GEMMs off the shared BLAS pool,
    // which would otherwise oversubscribe the machine.
    ThreadPool pool(static_cast<std::size_t>(options.num_threads));
    pool.ParallelFor(static_cast<std::size_t>(count), [&](std::size_t i) {
      BlasWorkerScope scope;
      compress_one(i);
    });
  } else {
    for (std::size_t i = 0; i < static_cast<std::size_t>(count); ++i) {
      compress_one(i);
    }
  }
  const StatusCode stopped =
      static_cast<StatusCode>(stop_code.load(std::memory_order_relaxed));
  if (stopped != StatusCode::kOk) {
    // No partial result: a half-compressed tensor cannot seed the query
    // phase, so the interruption is a hard stop here.
    return Status(stopped, "slice approximation interrupted");
  }
  return out;
}

Result<SliceApproximation> ApproximateSlices(
    const Tensor& x, const SliceApproximationOptions& options) {
  DT_ASSIGN_OR_RETURN(
      std::vector<SliceSvd> slices,
      ApproximateSliceRange(x, 0, x.NumFrontalSlices(), options));
  SliceApproximation approx;
  approx.shape = x.shape();
  approx.slice_rank = options.slice_rank;
  approx.slices = std::move(slices);
  return approx;
}

}  // namespace dtucker
