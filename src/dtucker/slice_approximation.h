// Approximation phase of D-Tucker: per-slice randomized SVD compression.
//
// An N-order tensor X (I1 x I2 x I3 x ... x IN) is viewed as
// L = I3*...*IN frontal slice matrices X<l> (I1 x I2). Each slice is
// compressed to a rank-Js factorization X<l> ~= U<l> diag(s<l>) V<l>^T.
// This single pass over the raw tensor is all D-Tucker ever reads of it:
// the initialization and iteration phases work purely on the
// (I1 + I2 + 1) * Js * L numbers stored here.
#ifndef DTUCKER_DTUCKER_SLICE_APPROXIMATION_H_
#define DTUCKER_DTUCKER_SLICE_APPROXIMATION_H_

#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "rsvd/rsvd.h"
#include "tensor/tensor.h"

namespace dtucker {

// Rank-Js SVD factors of one frontal slice.
struct SliceSvd {
  Matrix u;               // I1 x Js.
  std::vector<double> s;  // Js singular values, descending.
  Matrix v;               // I2 x Js.

  // U diag(s): the "scaled left factor" (I1 x Js).
  Matrix UTimesS() const;
  // V diag(s) (I2 x Js).
  Matrix VTimesS() const;
  // U diag(s) V^T (I1 x I2).
  Matrix Reconstruct() const;
};

enum class SliceSvdMethod {
  kRandomized,  // Halko-style rSVD (the paper's choice; one pass-ish).
  kExact,       // Full thin SVD then truncate (ablation reference).
};

struct SliceApproximationOptions {
  Index slice_rank = 10;     // Js (the maximum rank when adaptive).
  Index oversampling = 5;    // rSVD oversampling p.
  int power_iterations = 1;  // rSVD power iterations q.
  uint64_t seed = 42;
  SliceSvdMethod method = SliceSvdMethod::kRandomized;
  // When > 0, each slice keeps only as many components as needed to push
  // its relative squared truncation error below this value (capped at
  // slice_rank, floor 1). Smooth scenes store fewer numbers than busy
  // ones; every consumer of SliceApproximation handles per-slice ranks.
  double adaptive_tolerance = 0.0;
  // QR strategy forwarded into the per-slice rSVD orthonormalizations (the
  // adaptive execution layer's qr axis; kAuto is the size heuristic).
  QrVariant qr_variant = QrVariant::kAuto;
  // Worker threads for the per-slice SVDs. Slices are independent and each
  // draws from its own seeded stream, so the result is bit-identical to
  // the single-threaded run. Default 1 matches the paper's protocol.
  int num_threads = 1;
  // Optional execution control, polled once per slice. The approximation
  // phase has no usable partial state, so an interruption here surfaces as
  // a kCancelled/kDeadlineExceeded error from ApproximateSlices.
  const RunContext* run_context = nullptr;
};

// The compressed tensor: shape metadata plus one SliceSvd per slice.
struct SliceApproximation {
  std::vector<Index> shape;  // Original tensor shape (order >= 3).
  Index slice_rank = 0;
  std::vector<SliceSvd> slices;  // L entries, mode-3-fastest order.

  Index NumSlices() const { return static_cast<Index>(slices.size()); }
  Index Dim(Index mode) const {
    return shape[static_cast<std::size_t>(mode)];
  }
  // Trailing shape (I3, ..., IN) — the slice grid.
  std::vector<Index> TrailingShape() const;

  // Logical bytes of the stored factors (the method's preprocessing
  // footprint reported by experiment E3).
  std::size_t ByteSize() const;

  // Dense reconstruction of the approximated tensor (tests / error
  // measurement on small problems).
  Tensor ReconstructDense() const;

  // Relative squared error of the slice approximation against `x`.
  double RelativeErrorAgainst(const Tensor& x) const;

  // Structural consistency: slice count matches the trailing shape, every
  // slice's factor shapes agree with (I1, I2) and each other. Returned by
  // the query-phase entry points before touching the data.
  Status Validate() const;
};

// Runs the approximation phase. Requires order >= 3 and
// slice_rank <= min(I1, I2).
Result<SliceApproximation> ApproximateSlices(
    const Tensor& x, const SliceApproximationOptions& options);

// Compresses only slices [first, first+count) of `x` — the building block
// for the online variant, which appends new slices without recompressing
// old ones.
Result<std::vector<SliceSvd>> ApproximateSliceRange(
    const Tensor& x, Index first, Index count,
    const SliceApproximationOptions& options);

}  // namespace dtucker

#endif  // DTUCKER_DTUCKER_SLICE_APPROXIMATION_H_
