#include "fft/fft.h"

#include <cmath>

#include "common/logging.h"

namespace dtucker {

namespace {

bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Iterative radix-2 Cooley-Tukey; n must be a power of two.
// `sign` is -1 for forward, +1 for inverse (no normalization here).
void Radix2(std::vector<Complex>* data, int sign) {
  auto& x = *data;
  const std::size_t n = x.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex u = x[i + k];
        Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z transform for arbitrary n, built on a power-of-two
// radix-2 convolution. `sign` as in Radix2.
void Bluestein(std::vector<Complex>* data, int sign) {
  auto& x = *data;
  const std::size_t n = x.size();
  const std::size_t m = NextPowerOfTwo(2 * n - 1);

  // Chirp: w[j] = exp(sign * pi * i * j^2 / n). Index j^2 mod 2n keeps the
  // argument bounded for large n.
  std::vector<Complex> chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t j2 = (j * j) % (2 * n);
    const double ang = sign * M_PI * static_cast<double>(j2) /
                       static_cast<double>(n);
    chirp[j] = Complex(std::cos(ang), std::sin(ang));
  }

  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (std::size_t j = 0; j < n; ++j) a[j] = x[j] * chirp[j];
  b[0] = std::conj(chirp[0]);
  for (std::size_t j = 1; j < n; ++j) {
    b[j] = b[m - j] = std::conj(chirp[j]);
  }

  Radix2(&a, -1);
  Radix2(&b, -1);
  for (std::size_t j = 0; j < m; ++j) a[j] *= b[j];
  Radix2(&a, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t j = 0; j < n; ++j) x[j] = a[j] * inv_m * chirp[j];
}

void Transform(std::vector<Complex>* x, int sign) {
  const std::size_t n = x->size();
  if (n <= 1) return;
  if (IsPowerOfTwo(n)) {
    Radix2(x, sign);
  } else {
    Bluestein(x, sign);
  }
}

}  // namespace

void Fft(std::vector<Complex>* x) { Transform(x, -1); }

void InverseFft(std::vector<Complex>* x) {
  Transform(x, +1);
  const double inv = 1.0 / static_cast<double>(x->size());
  for (auto& v : *x) v *= inv;
}

std::vector<Complex> RealFftSpectrum(const std::vector<double>& x) {
  std::vector<Complex> c(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = Complex(x[i], 0.0);
  Fft(&c);
  return c;
}

std::vector<double> SpectrumToReal(std::vector<Complex> spectrum) {
  InverseFft(&spectrum);
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = spectrum[i].real();
  return out;
}

std::vector<double> CircularConvolve(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  DT_CHECK_EQ(a.size(), b.size()) << "convolution length mismatch";
  std::vector<Complex> fa = RealFftSpectrum(a);
  std::vector<Complex> fb = RealFftSpectrum(b);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  return SpectrumToReal(std::move(fa));
}

}  // namespace dtucker
