// Complex FFT with arbitrary-length support.
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey transform;
// other lengths fall back to Bluestein's chirp-z algorithm (which reduces
// to a power-of-two convolution). This exists to support TensorSketch
// (src/sketch/), where the sketch dimension is a user parameter and the
// core operation is circular convolution of CountSketch vectors.
#ifndef DTUCKER_FFT_FFT_H_
#define DTUCKER_FFT_FFT_H_

#include <complex>
#include <vector>

namespace dtucker {

using Complex = std::complex<double>;

// In-place forward DFT: x[k] = sum_j x[j] exp(-2*pi*i*j*k/n).
void Fft(std::vector<Complex>* x);

// In-place inverse DFT (includes the 1/n normalization).
void InverseFft(std::vector<Complex>* x);

// Circular convolution of two real vectors of equal length n:
// out[k] = sum_j a[j] * b[(k - j) mod n]. Computed via FFT in O(n log n).
std::vector<double> CircularConvolve(const std::vector<double>& a,
                                     const std::vector<double>& b);

// Elementwise product in the frequency domain for repeated convolutions:
// forward-transforms a real vector into a complex spectrum.
std::vector<Complex> RealFftSpectrum(const std::vector<double>& x);

// Inverse of RealFftSpectrum composed with elementwise products: transforms
// a spectrum back and keeps the real part.
std::vector<double> SpectrumToReal(std::vector<Complex> spectrum);

}  // namespace dtucker

#endif  // DTUCKER_FFT_FFT_H_
