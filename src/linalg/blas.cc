#include "linalg/blas.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "linalg/gemm_kernel.h"

namespace dtucker {

namespace {

// Problems below these sizes skip the packed engine: either the right-hand
// side is thin enough that packing overhead is not amortized (the dominant
// (I1 x I2)*(I2 x J), J ~ 10 shape of the approximation phase), one side is
// thinner than a micro-tile row panel (padding would waste most of the
// kernel's work), or the whole product is tiny (the J x J x J multiplies of
// the iteration phase).
constexpr Index kThinN = 16;
constexpr Index kThinM = 16;
constexpr Index kSmallVolume = 32 * 32 * 32;

// Shape window for the tall-k A^T B kernel below: a small (<= 32 x 64)
// output with a long reduction dimension, and an A panel small enough
// (m * k doubles, <= 2 MiB) to stay cache-resident while the n sweep
// re-reads it. This is the W = V^T C / Gram-block shape of the blocked QR.
constexpr Index kTallTnMaxM = 32;
constexpr Index kTallTnMaxN = 64;
constexpr Index kTallTnMinK = 256;
constexpr Index kTallTnMaxAPanel = Index(1) << 18;  // m * k doubles.

// Flop thresholds below which threading costs more than it saves.
constexpr Index kGemmParallelVolume = 1 << 23;   // m*n*k (~2 x 512^2 x 16).
constexpr Index kGemvParallelVolume = 1 << 20;   // m*n.

// Legacy cache blocks for the unpacked thin path: an MC x KC panel of A
// (256*256*8 = 512 KiB) stays resident while the j-loop streams columns of
// B and C.
constexpr Index kThinBlockM = 256;
constexpr Index kThinBlockK = 256;

// op(B)(l, j) for a column-major B with leading dimension ldb.
template <bool kTransB>
inline double OpB(const double* b, Index ldb, Index l, Index j) {
  return kTransB ? b[j + l * ldb] : b[l + j * ldb];
}

// C(mb x n) += alpha * A(mb x kb) * op(B), A column-major, no transpose.
// Inner kernel: jki ordering with 4-way k unrolling; each C column is a sum
// of scaled A columns (axpy form), streaming contiguous memory.
template <bool kTransB>
void ThinBlockAxpy(Index mb, Index n, Index kb, double alpha, const double* a,
                   Index lda, const double* b, Index ldb, double* c,
                   Index ldc) {
  for (Index j = 0; j < n; ++j) {
    double* cj = c + j * ldc;
    Index l = 0;
    for (; l + 4 <= kb; l += 4) {
      const double b0 = alpha * OpB<kTransB>(b, ldb, l + 0, j);
      const double b1 = alpha * OpB<kTransB>(b, ldb, l + 1, j);
      const double b2 = alpha * OpB<kTransB>(b, ldb, l + 2, j);
      const double b3 = alpha * OpB<kTransB>(b, ldb, l + 3, j);
      const double* a0 = a + (l + 0) * lda;
      const double* a1 = a + (l + 1) * lda;
      const double* a2 = a + (l + 2) * lda;
      const double* a3 = a + (l + 3) * lda;
      for (Index i = 0; i < mb; ++i) {
        cj[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
      }
    }
    for (; l < kb; ++l) {
      const double bl = alpha * OpB<kTransB>(b, ldb, l, j);
      const double* al = a + l * lda;
      for (Index i = 0; i < mb; ++i) cj[i] += bl * al[i];
    }
  }
}

// Thin path, trans_a == kNo: cache-blocked axpy kernel over rows
// [row0, row1) of C. Row-disjoint, so safe to run from pool workers.
template <bool kTransB>
void ThinPathN(Index row0, Index row1, Index n, Index k, double alpha,
               const double* a, Index lda, const double* b, Index ldb,
               double* c, Index ldc) {
  for (Index l0 = 0; l0 < k; l0 += kThinBlockK) {
    const Index kb = std::min(kThinBlockK, k - l0);
    // op(B) block starting at row l0: advance by l0 rows of op(B).
    const double* bblk = kTransB ? b + l0 * ldb : b + l0;
    for (Index i0 = row0; i0 < row1; i0 += kThinBlockM) {
      const Index mb = std::min(kThinBlockM, row1 - i0);
      ThinBlockAxpy<kTransB>(mb, n, kb, alpha, a + i0 + l0 * lda, lda, bblk,
                             ldb, c + i0, ldc);
    }
  }
}

// Thin path, trans_a == kYes: dot-product form over rows [row0, row1) of C
// (columns of the stored A, each contiguous).
template <bool kTransB>
void ThinPathT(Index row0, Index row1, Index n, Index k, double alpha,
               const double* a, Index lda, const double* b, Index ldb,
               double* c, Index ldc) {
  for (Index j = 0; j < n; ++j) {
    double* cj = c + j * ldc;
    for (Index i = row0; i < row1; ++i) {
      const double* ai = a + i * lda;
      double s;
      if (!kTransB) {
        s = Dot(ai, b + j * ldb, k);
      } else {
        s = 0.0;
        for (Index l = 0; l < k; ++l) s += ai[l] * b[j + l * ldb];
      }
      cj[i] += alpha * s;
    }
  }
}

void GemmThinPath(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
                  double alpha, const double* a, Index lda, const double* b,
                  Index ldb, double* c, Index ldc) {
  auto run_rows = [&](Index row0, Index row1) {
    if (trans_a == Trans::kNo) {
      if (trans_b == Trans::kNo) {
        ThinPathN<false>(row0, row1, n, k, alpha, a, lda, b, ldb, c, ldc);
      } else {
        ThinPathN<true>(row0, row1, n, k, alpha, a, lda, b, ldb, c, ldc);
      }
    } else {
      if (trans_b == Trans::kNo) {
        ThinPathT<false>(row0, row1, n, k, alpha, a, lda, b, ldb, c, ldc);
      } else {
        ThinPathT<true>(row0, row1, n, k, alpha, a, lda, b, ldb, c, ldc);
      }
    }
  };
  ThreadPool* pool = SharedBlasPool();
  if (pool != nullptr && !InBlasWorker() && m * n * k >= kGemmParallelVolume &&
      m > 1) {
    pool->ParallelForRanges(
        static_cast<std::size_t>(m), /*min_grain=*/64,
        [&](std::size_t begin, std::size_t end) {
          BlasWorkerScope scope;
          run_rows(static_cast<Index>(begin), static_cast<Index>(end));
        });
  } else {
    run_rows(0, m);
  }
}

// C(m x n) += alpha * A^T B for small m, n and large k: both operands are
// contiguous column streams, so instead of packing, each 4x4 tile of C is
// held in native-width vector accumulators while the k loop streams one
// vector of rows at a time (16 FMAs against 8 loads per step —
// compute-bound where the packed path is dominated by packing a B panel it
// barely reuses). Always serial: the output is tiny and a fixed summation
// order keeps results identical across thread counts.
#if defined(__GNUC__) || defined(__clang__)
#if defined(__AVX512F__)
constexpr Index kTallTnVecLen = 8;
#elif defined(__AVX__)
constexpr Index kTallTnVecLen = 4;
#else
constexpr Index kTallTnVecLen = 2;
#endif
// Explicit vector accumulators (same reasoning as the GEMM micro kernel: a
// plain double array spills to the stack). aligned(8) because the column
// streams land on arbitrary 8-byte offsets.
typedef double TallVec __attribute__((
    vector_size(kTallTnVecLen * sizeof(double)), aligned(8)));

void GemmTallTnTile(Index k, const double* const* ac, const double* const* bc,
                    double alpha, double* c, Index ldc) {
  TallVec acc[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) acc[i][j] = TallVec{};
  }
  Index r = 0;
  for (; r + kTallTnVecLen <= k; r += kTallTnVecLen) {
    TallVec av[4], bv[4];
    for (int i = 0; i < 4; ++i) {
      av[i] = *reinterpret_cast<const TallVec*>(ac[i] + r);
    }
    for (int j = 0; j < 4; ++j) {
      bv[j] = *reinterpret_cast<const TallVec*>(bc[j] + r);
    }
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) acc[i][j] += av[i] * bv[j];
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double s = 0.0;
      for (Index l = 0; l < kTallTnVecLen; ++l) s += acc[i][j][l];
      for (Index rr = r; rr < k; ++rr) s += ac[i][rr] * bc[j][rr];
      c[i + j * ldc] += alpha * s;
    }
  }
}
#else
void GemmTallTnTile(Index k, const double* const* ac, const double* const* bc,
                    double alpha, double* c, Index ldc) {
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 4; ++i) c[i + j * ldc] += alpha * Dot(ac[i], bc[j], k);
  }
}
#endif

void GemmTallTnPath(Index m, Index n, Index k, double alpha, const double* a,
                    Index lda, const double* b, Index ldb, double* c,
                    Index ldc) {
  for (Index j0 = 0; j0 < n; j0 += 4) {
    const Index jb = std::min<Index>(4, n - j0);
    for (Index i0 = 0; i0 < m; i0 += 4) {
      const Index ib = std::min<Index>(4, m - i0);
      if (ib == 4 && jb == 4) {
        const double* ac[4];
        const double* bc[4];
        for (int i = 0; i < 4; ++i) ac[i] = a + (i0 + i) * lda;
        for (int j = 0; j < 4; ++j) bc[j] = b + (j0 + j) * ldb;
        GemmTallTnTile(k, ac, bc, alpha, c + i0 + j0 * ldc, ldc);
      } else {
        for (Index j = 0; j < jb; ++j) {
          for (Index i = 0; i < ib; ++i) {
            c[(i0 + i) + (j0 + j) * ldc] +=
                alpha * Dot(a + (i0 + i) * lda, b + (j0 + j) * ldb, k);
          }
        }
      }
    }
  }
}

// Packed three-level path (see linalg/gemm_kernel.h for the layout). The
// ic loop — disjoint row blocks of C — is the parallel axis; every worker
// packs its own A block into its thread-local buffer while sharing the
// caller-packed B panel read-only.
// `overwrite_c` is the beta = 0 contract: the first kc block stores its
// result into C (which may hold garbage) instead of accumulating, so the
// caller skips its zero-fill pass and the kernel its read of C.
void GemmPackedPath(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
                    double alpha, const double* a, Index lda, const double* b,
                    Index ldb, double* c, Index ldc, bool overwrite_c) {
  ThreadPool* pool = SharedBlasPool();
  const bool threaded =
      pool != nullptr && !InBlasWorker() && m * n * k >= kGemmParallelVolume;
  for (Index jc = 0; jc < n; jc += kGemmNC) {
    const Index nb = std::min(kGemmNC, n - jc);
    for (Index lc = 0; lc < k; lc += kGemmKC) {
      const Index kb = std::min(kGemmKC, k - lc);
      const bool overwrite = overwrite_c && lc == 0;
      double* bpack = TlsPackBufferB(PackedBSize(kb, nb));
      const double* bsrc =
          trans_b == Trans::kNo ? b + lc + jc * ldb : b + jc + lc * ldb;
      PackB(trans_b, kb, nb, bsrc, ldb, bpack);
      const Index num_blocks = (m + kGemmMC - 1) / kGemmMC;
      auto run_block = [&](Index ib) {
        const Index i0 = ib * kGemmMC;
        const Index mb = std::min(kGemmMC, m - i0);
        double* apack = TlsPackBufferA(PackedASize(mb, kb));
        const double* asrc =
            trans_a == Trans::kNo ? a + i0 + lc * lda : a + lc + i0 * lda;
        PackA(trans_a, mb, kb, alpha, asrc, lda, apack);
        GemmMacroKernel(mb, nb, kb, apack, bpack, c + i0 + jc * ldc, ldc,
                        overwrite);
      };
      if (threaded && num_blocks > 1) {
        pool->ParallelFor(static_cast<std::size_t>(num_blocks),
                          [&](std::size_t ib) {
                            BlasWorkerScope scope;
                            run_block(static_cast<Index>(ib));
                          });
      } else {
        for (Index ib = 0; ib < num_blocks; ++ib) run_block(ib);
      }
    }
  }
}

}  // namespace

void GemmRaw(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
             double alpha, const double* a, Index lda, const double* b,
             Index ldb, double beta, double* c, Index ldc) {
  if (m == 0 || n == 0) return;

  {
    // Counters only — no span: GemmRaw is called per J x J x J product in
    // the sweep inner loops, where even a disabled TraceSpan would show up.
    static Counter& calls = MetricCounter("gemm.calls");
    static Counter& flops = MetricCounter("gemm.flops");
    calls.Add(1);
    flops.Add(2ull * static_cast<std::uint64_t>(m) *
              static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k));
  }

  // Route first: the beta handling below depends on it. Short-m transposed
  // products whose row count fills whole micro-tiles (the W = V^T C shape
  // of the blocked QR: m = panel width, k large) take a dedicated k-major
  // kernel; small or narrow products the dot-form thin path; everything
  // else the packed three-level path.
  const bool no_product = k == 0 || alpha == 0.0;
  const bool tall_tn = trans_a == Trans::kYes && trans_b == Trans::kNo &&
                       m <= kTallTnMaxM && n <= kTallTnMaxN &&
                       k >= kTallTnMinK && m * k <= kTallTnMaxAPanel;
  const bool m_fills_tiles = m % kGemmMR == 0;
  const bool thin = n <= kThinN || (m <= kThinM && !m_fills_tiles) ||
                    m * n * k <= kSmallVolume;
  const bool packed = !no_product && !tall_tn && !thin;

  // Scale C by beta. The packed path handles beta = 0 itself (the first kc
  // block stores instead of accumulating), so a product headed there skips
  // this pass over C entirely; the tall-T^T-A and thin paths accumulate
  // into small or short C blocks where the memset is noise.
  if (beta == 0.0) {
    if (!packed) {
      for (Index j = 0; j < n; ++j) {
        std::memset(c + j * ldc, 0,
                    static_cast<std::size_t>(m) * sizeof(double));
      }
    }
  } else if (beta != 1.0) {
    for (Index j = 0; j < n; ++j) Scal(beta, c + j * ldc, m);
  }
  if (no_product) return;

  if (tall_tn) {
    GemmTallTnPath(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  if (thin) {
    GemmThinPath(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  GemmPackedPath(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc,
                 /*overwrite_c=*/beta == 0.0);
}

void GemvRaw(Trans trans_a, Index m, Index n, double alpha, const double* a,
             Index lda, const double* x, double beta, double* y) {
  {
    static Counter& calls = MetricCounter("gemv.calls");
    static Counter& flops = MetricCounter("gemv.flops");
    calls.Add(1);
    flops.Add(2ull * static_cast<std::uint64_t>(m) *
              static_cast<std::uint64_t>(n));
  }
  ThreadPool* pool = SharedBlasPool();
  const bool threaded =
      pool != nullptr && !InBlasWorker() && m * n >= kGemvParallelVolume;
  if (trans_a == Trans::kNo) {
    // y(m) = alpha * A(m x n) * x(n) + beta * y: axpy form over disjoint
    // row ranges of y.
    auto run_rows = [&](Index r0, Index r1) {
      const Index len = r1 - r0;
      if (beta == 0.0) {
        std::memset(y + r0, 0, static_cast<std::size_t>(len) * sizeof(double));
      } else if (beta != 1.0) {
        Scal(beta, y + r0, len);
      }
      for (Index j = 0; j < n; ++j) {
        Axpy(alpha * x[j], a + r0 + j * lda, y + r0, len);
      }
    };
    if (threaded) {
      pool->ParallelForRanges(static_cast<std::size_t>(m), /*min_grain=*/1024,
                              [&](std::size_t begin, std::size_t end) {
                                BlasWorkerScope scope;
                                run_rows(static_cast<Index>(begin),
                                         static_cast<Index>(end));
                              });
    } else {
      run_rows(0, m);
    }
  } else {
    // y(n) = alpha * A^T * x(m) + beta * y: one dot per output element.
    auto run_cols = [&](Index j0, Index j1) {
      for (Index j = j0; j < j1; ++j) {
        double s = Dot(a + j * lda, x, m);
        y[j] = alpha * s + (beta == 0.0 ? 0.0 : beta * y[j]);
      }
    };
    if (threaded) {
      pool->ParallelForRanges(static_cast<std::size_t>(n), /*min_grain=*/8,
                              [&](std::size_t begin, std::size_t end) {
                                BlasWorkerScope scope;
                                run_cols(static_cast<Index>(begin),
                                         static_cast<Index>(end));
                              });
    } else {
      run_cols(0, n);
    }
  }
}

double Dot(const double* x, const double* y, Index n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

void Axpy(double alpha, const double* x, double* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scal(double alpha, double* x, Index n) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

void TrmmUpperRaw(Trans trans_t, Index n, Index ncols, const double* t,
                  Index ldt, double* w, Index ldw) {
  if (n == 0 || ncols == 0) return;
  if (trans_t == Trans::kYes) {
    // w_i := sum_{j <= i} T(j, i) w_j = dot(T(0:i+1, i), w(0:i+1)): column i
    // of T is contiguous, and a descending sweep is safe in place (entry i
    // only reads entries <= i, which later iterations never touch).
    for (Index c = 0; c < ncols; ++c) {
      double* wc = w + c * ldw;
      for (Index i = n - 1; i >= 0; --i) {
        wc[i] = Dot(t + i * ldt, wc, i + 1);
      }
    }
    return;
  }
  // w := T w accumulated column by column: out(0:j+1) += w_j * T(0:j+1, j).
  // The accumulation target would clobber inputs still needed, so stage the
  // original column in a small scratch buffer.
  std::vector<double> tmp(static_cast<std::size_t>(n));
  for (Index c = 0; c < ncols; ++c) {
    double* wc = w + c * ldw;
    std::memcpy(tmp.data(), wc, static_cast<std::size_t>(n) * sizeof(double));
    std::memset(wc, 0, static_cast<std::size_t>(n) * sizeof(double));
    for (Index j = 0; j < n; ++j) {
      Axpy(tmp[static_cast<std::size_t>(j)], t + j * ldt, wc, j + 1);
    }
  }
}

void TrsmUpperRaw(Index n, Index ncols, const double* r, Index ldr, double* x,
                  Index ldx) {
  for (Index c = 0; c < ncols; ++c) {
    double* xc = x + c * ldx;
    for (Index j = n - 1; j >= 0; --j) {
      const double* rj = r + j * ldr;
      DT_CHECK(rj[j] != 0.0) << "singular triangular system";
      const double xj = xc[j] / rj[j];
      xc[j] = xj;
      // Eliminate x_j from the rows above: x(0:j) -= x_j * R(0:j, j).
      Axpy(-xj, rj, xc, j);
    }
  }
}

void TrsmLowerRaw(Index n, Index ncols, const double* l, Index ldl, double* x,
                  Index ldx) {
  for (Index c = 0; c < ncols; ++c) {
    double* xc = x + c * ldx;
    for (Index j = 0; j < n; ++j) {
      const double* lj = l + j * ldl;
      DT_CHECK(lj[j] != 0.0) << "singular triangular system";
      const double xj = xc[j] / lj[j];
      xc[j] = xj;
      // Eliminate x_j from the rows below: x(j+1:n) -= x_j * L(j+1:n, j).
      Axpy(-xj, lj + j + 1, xc + j + 1, n - j - 1);
    }
  }
}

double Nrm2(const double* x, Index n) {
  // Fast path: plain sum of squares, vectorized explicitly (no -ffast-math,
  // so the compiler would otherwise keep the serial reduction order and the
  // per-element divisions of the scaled loop below). Falls through to the
  // scaled loop whenever the plain sum leaves the comfortably-normal range —
  // overflow (inf), underflow toward denormals, or an all-zero vector.
#if defined(__GNUC__) || defined(__clang__)
  typedef double Nrm2Vec
      __attribute__((vector_size(kTallTnVecLen * sizeof(double)), aligned(8)));
  Nrm2Vec acc0 = Nrm2Vec{};
  Nrm2Vec acc1 = Nrm2Vec{};
  Index i = 0;
  for (; i + 2 * kTallTnVecLen <= n; i += 2 * kTallTnVecLen) {
    const Nrm2Vec v0 = *reinterpret_cast<const Nrm2Vec*>(x + i);
    const Nrm2Vec v1 =
        *reinterpret_cast<const Nrm2Vec*>(x + i + kTallTnVecLen);
    acc0 += v0 * v0;
    acc1 += v1 * v1;
  }
  acc0 += acc1;
  double ssq_plain = 0.0;
  for (Index l = 0; l < kTallTnVecLen; ++l) ssq_plain += acc0[l];
  for (; i < n; ++i) ssq_plain += x[i] * x[i];
#else
  double ssq_plain = 0.0;
  for (Index i = 0; i < n; ++i) ssq_plain += x[i] * x[i];
#endif
  // Squares of entries below ~1e-146 or above ~1e146 lose accuracy or
  // overflow in double; a sum strictly inside (1e-292, 1e292) cannot have
  // been contaminated by either.
  if (ssq_plain > 1e-292 && ssq_plain < 1e292) return std::sqrt(ssq_plain);

  // Scaled accumulation to avoid overflow/underflow for extreme values.
  double scale = 0.0, ssq = 1.0;
  for (Index i = 0; i < n; ++i) {
    if (x[i] != 0.0) {
      double ax = std::fabs(x[i]);
      if (scale < ax) {
        ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
        scale = ax;
      } else {
        ssq += (ax / scale) * (ax / scale);
      }
    }
  }
  return scale * std::sqrt(ssq);
}

void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c) {
  const Index m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const Index ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const Index kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const Index n = trans_b == Trans::kNo ? b.cols() : b.rows();
  DT_CHECK_EQ(ka, kb) << "GEMM inner dimension mismatch";
  DT_CHECK(c->rows() == m && c->cols() == n) << "GEMM output shape mismatch";
  GemmRaw(trans_a, trans_b, m, n, ka, alpha, a.data(), a.rows(), b.data(),
          b.rows(), beta, c->data(), c->rows());
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyTN(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  Gemm(Trans::kYes, Trans::kNo, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyNT(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  Gemm(Trans::kNo, Trans::kYes, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyTT(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.rows());
  Gemm(Trans::kYes, Trans::kYes, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix Gram(const Matrix& a) {
  const Index n = a.cols();
  Matrix g(n, n);
  if (n <= 32 && SharedBlasPool() == nullptr) {
    // Small serial case: direct dot products exploit symmetry (half the
    // flops) and beat any kernel setup cost.
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i <= j; ++i) {
        double s = Dot(a.col_data(i), a.col_data(j), a.rows());
        g(i, j) = s;
        g(j, i) = s;
      }
    }
    return g;
  }
  GemmRaw(Trans::kYes, Trans::kNo, n, n, a.rows(), 1.0, a.data(), a.rows(),
          a.data(), a.rows(), 0.0, g.data(), n);
  // Enforce exact symmetry (the blocked kernel's rounding is orderless).
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      const double s = 0.5 * (g(i, j) + g(j, i));
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

}  // namespace dtucker
