#include "linalg/blas.h"

#include <cmath>
#include <cstring>
#include <vector>

namespace dtucker {

namespace {

// Cache block sizes: an MC x KC panel of A (256*256*8 = 512 KiB) targets L2;
// the j-loop streams columns of B and C through L1.
constexpr Index kBlockM = 256;
constexpr Index kBlockK = 256;

// C(mb x n) += A(mb x kb) * B(kb x n), all column-major, no transposes.
// Inner kernel: jki ordering with 4-way k unrolling; each C column is
// updated as a sum of scaled A columns (axpy form), which streams
// contiguous memory for column-major data.
void GemmBlockNN(Index mb, Index n, Index kb, double alpha, const double* a,
                 Index lda, const double* b, Index ldb, double* c, Index ldc) {
  for (Index j = 0; j < n; ++j) {
    double* cj = c + j * ldc;
    const double* bj = b + j * ldb;
    Index l = 0;
    for (; l + 4 <= kb; l += 4) {
      const double b0 = alpha * bj[l + 0];
      const double b1 = alpha * bj[l + 1];
      const double b2 = alpha * bj[l + 2];
      const double b3 = alpha * bj[l + 3];
      const double* a0 = a + (l + 0) * lda;
      const double* a1 = a + (l + 1) * lda;
      const double* a2 = a + (l + 2) * lda;
      const double* a3 = a + (l + 3) * lda;
      for (Index i = 0; i < mb; ++i) {
        cj[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
      }
    }
    for (; l < kb; ++l) {
      const double bl = alpha * bj[l];
      const double* al = a + l * lda;
      for (Index i = 0; i < mb; ++i) cj[i] += bl * al[i];
    }
  }
}

// Copies op(X) (shape rows x cols after the op) into a fresh col-major
// buffer with leading dimension = rows.
std::vector<double> MaterializeOp(Trans trans, Index rows, Index cols,
                                  const double* x, Index ldx) {
  std::vector<double> out(static_cast<std::size_t>(rows * cols));
  if (trans == Trans::kNo) {
    for (Index j = 0; j < cols; ++j) {
      std::memcpy(out.data() + j * rows, x + j * ldx,
                  static_cast<std::size_t>(rows) * sizeof(double));
    }
  } else {
    // out(i, j) = x(j, i).
    for (Index j = 0; j < cols; ++j) {
      double* dst = out.data() + j * rows;
      for (Index i = 0; i < rows; ++i) dst[i] = x[j + i * ldx];
    }
  }
  return out;
}

}  // namespace

void GemmRaw(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
             double alpha, const double* a, Index lda, const double* b,
             Index ldb, double beta, double* c, Index ldc) {
  // Scale C by beta first.
  if (beta == 0.0) {
    for (Index j = 0; j < n; ++j) {
      std::memset(c + j * ldc, 0, static_cast<std::size_t>(m) * sizeof(double));
    }
  } else if (beta != 1.0) {
    for (Index j = 0; j < n; ++j) Scal(beta, c + j * ldc, m);
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  // Normalize transposed operands into temporary col-major buffers. The
  // O(size) copy is negligible next to the O(m*n*k) multiply, and lets the
  // blocked kernel assume the NN layout.
  std::vector<double> a_copy, b_copy;
  const double* a_nn = a;
  Index lda_nn = lda;
  if (trans_a == Trans::kYes) {
    a_copy = MaterializeOp(Trans::kYes, m, k, a, lda);
    a_nn = a_copy.data();
    lda_nn = m;
  }
  const double* b_nn = b;
  Index ldb_nn = ldb;
  if (trans_b == Trans::kYes) {
    b_copy = MaterializeOp(Trans::kYes, k, n, b, ldb);
    b_nn = b_copy.data();
    ldb_nn = k;
  }

  for (Index l0 = 0; l0 < k; l0 += kBlockK) {
    const Index kb = std::min(kBlockK, k - l0);
    for (Index i0 = 0; i0 < m; i0 += kBlockM) {
      const Index mb = std::min(kBlockM, m - i0);
      GemmBlockNN(mb, n, kb, alpha, a_nn + i0 + l0 * lda_nn, lda_nn,
                  b_nn + l0, ldb_nn, c + i0, ldc);
    }
  }
}

void GemvRaw(Trans trans_a, Index m, Index n, double alpha, const double* a,
             Index lda, const double* x, double beta, double* y) {
  if (trans_a == Trans::kNo) {
    // y(m) = alpha * A(m x n) * x(n) + beta * y.
    if (beta == 0.0) {
      std::memset(y, 0, static_cast<std::size_t>(m) * sizeof(double));
    } else if (beta != 1.0) {
      Scal(beta, y, m);
    }
    for (Index j = 0; j < n; ++j) Axpy(alpha * x[j], a + j * lda, y, m);
  } else {
    // y(n) = alpha * A^T * x(m) + beta * y.
    for (Index j = 0; j < n; ++j) {
      double s = Dot(a + j * lda, x, m);
      y[j] = alpha * s + (beta == 0.0 ? 0.0 : beta * y[j]);
    }
  }
}

double Dot(const double* x, const double* y, Index n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

void Axpy(double alpha, const double* x, double* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scal(double alpha, double* x, Index n) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

double Nrm2(const double* x, Index n) {
  // Scaled accumulation to avoid overflow/underflow for extreme values.
  double scale = 0.0, ssq = 1.0;
  for (Index i = 0; i < n; ++i) {
    if (x[i] != 0.0) {
      double ax = std::fabs(x[i]);
      if (scale < ax) {
        ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
        scale = ax;
      } else {
        ssq += (ax / scale) * (ax / scale);
      }
    }
  }
  return scale * std::sqrt(ssq);
}

void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c) {
  const Index m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const Index ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const Index kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const Index n = trans_b == Trans::kNo ? b.cols() : b.rows();
  DT_CHECK_EQ(ka, kb) << "GEMM inner dimension mismatch";
  DT_CHECK(c->rows() == m && c->cols() == n) << "GEMM output shape mismatch";
  GemmRaw(trans_a, trans_b, m, n, ka, alpha, a.data(), a.rows(), b.data(),
          b.rows(), beta, c->data(), c->rows());
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyTN(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  Gemm(Trans::kYes, Trans::kNo, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyNT(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  Gemm(Trans::kNo, Trans::kYes, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyTT(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.rows());
  Gemm(Trans::kYes, Trans::kYes, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix Gram(const Matrix& a) {
  const Index n = a.cols();
  Matrix g(n, n);
  if (n <= 32) {
    // Small cases: direct dot products beat the blocked kernel's setup.
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i <= j; ++i) {
        double s = Dot(a.col_data(i), a.col_data(j), a.rows());
        g(i, j) = s;
        g(j, i) = s;
      }
    }
    return g;
  }
  GemmRaw(Trans::kYes, Trans::kNo, n, n, a.rows(), 1.0, a.data(), a.rows(),
          a.data(), a.rows(), 0.0, g.data(), n);
  // Enforce exact symmetry (the blocked kernel's rounding is orderless).
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      const double s = 0.5 * (g(i, j) + g(j, i));
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

}  // namespace dtucker
