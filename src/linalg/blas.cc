#include "linalg/blas.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "linalg/gemm_kernel.h"

namespace dtucker {

namespace {

// Problems below these sizes skip the packed engine: either the right-hand
// side is thin enough that packing overhead is not amortized (the dominant
// (I1 x I2)*(I2 x J), J ~ 10 shape of the approximation phase), one side is
// thinner than a micro-tile row panel (padding would waste most of the
// kernel's work), or the whole product is tiny (the J x J x J multiplies of
// the iteration phase).
constexpr Index kThinN = 16;
constexpr Index kThinM = 16;
constexpr Index kSmallVolume = 32 * 32 * 32;

// Flop thresholds below which threading costs more than it saves.
constexpr Index kGemmParallelVolume = 1 << 23;   // m*n*k (~2 x 512^2 x 16).
constexpr Index kGemvParallelVolume = 1 << 20;   // m*n.

// Legacy cache blocks for the unpacked thin path: an MC x KC panel of A
// (256*256*8 = 512 KiB) stays resident while the j-loop streams columns of
// B and C.
constexpr Index kThinBlockM = 256;
constexpr Index kThinBlockK = 256;

// op(B)(l, j) for a column-major B with leading dimension ldb.
template <bool kTransB>
inline double OpB(const double* b, Index ldb, Index l, Index j) {
  return kTransB ? b[j + l * ldb] : b[l + j * ldb];
}

// C(mb x n) += alpha * A(mb x kb) * op(B), A column-major, no transpose.
// Inner kernel: jki ordering with 4-way k unrolling; each C column is a sum
// of scaled A columns (axpy form), streaming contiguous memory.
template <bool kTransB>
void ThinBlockAxpy(Index mb, Index n, Index kb, double alpha, const double* a,
                   Index lda, const double* b, Index ldb, double* c,
                   Index ldc) {
  for (Index j = 0; j < n; ++j) {
    double* cj = c + j * ldc;
    Index l = 0;
    for (; l + 4 <= kb; l += 4) {
      const double b0 = alpha * OpB<kTransB>(b, ldb, l + 0, j);
      const double b1 = alpha * OpB<kTransB>(b, ldb, l + 1, j);
      const double b2 = alpha * OpB<kTransB>(b, ldb, l + 2, j);
      const double b3 = alpha * OpB<kTransB>(b, ldb, l + 3, j);
      const double* a0 = a + (l + 0) * lda;
      const double* a1 = a + (l + 1) * lda;
      const double* a2 = a + (l + 2) * lda;
      const double* a3 = a + (l + 3) * lda;
      for (Index i = 0; i < mb; ++i) {
        cj[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
      }
    }
    for (; l < kb; ++l) {
      const double bl = alpha * OpB<kTransB>(b, ldb, l, j);
      const double* al = a + l * lda;
      for (Index i = 0; i < mb; ++i) cj[i] += bl * al[i];
    }
  }
}

// Thin path, trans_a == kNo: cache-blocked axpy kernel over rows
// [row0, row1) of C. Row-disjoint, so safe to run from pool workers.
template <bool kTransB>
void ThinPathN(Index row0, Index row1, Index n, Index k, double alpha,
               const double* a, Index lda, const double* b, Index ldb,
               double* c, Index ldc) {
  for (Index l0 = 0; l0 < k; l0 += kThinBlockK) {
    const Index kb = std::min(kThinBlockK, k - l0);
    // op(B) block starting at row l0: advance by l0 rows of op(B).
    const double* bblk = kTransB ? b + l0 * ldb : b + l0;
    for (Index i0 = row0; i0 < row1; i0 += kThinBlockM) {
      const Index mb = std::min(kThinBlockM, row1 - i0);
      ThinBlockAxpy<kTransB>(mb, n, kb, alpha, a + i0 + l0 * lda, lda, bblk,
                             ldb, c + i0, ldc);
    }
  }
}

// Thin path, trans_a == kYes: dot-product form over rows [row0, row1) of C
// (columns of the stored A, each contiguous).
template <bool kTransB>
void ThinPathT(Index row0, Index row1, Index n, Index k, double alpha,
               const double* a, Index lda, const double* b, Index ldb,
               double* c, Index ldc) {
  for (Index j = 0; j < n; ++j) {
    double* cj = c + j * ldc;
    for (Index i = row0; i < row1; ++i) {
      const double* ai = a + i * lda;
      double s;
      if (!kTransB) {
        s = Dot(ai, b + j * ldb, k);
      } else {
        s = 0.0;
        for (Index l = 0; l < k; ++l) s += ai[l] * b[j + l * ldb];
      }
      cj[i] += alpha * s;
    }
  }
}

void GemmThinPath(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
                  double alpha, const double* a, Index lda, const double* b,
                  Index ldb, double* c, Index ldc) {
  auto run_rows = [&](Index row0, Index row1) {
    if (trans_a == Trans::kNo) {
      if (trans_b == Trans::kNo) {
        ThinPathN<false>(row0, row1, n, k, alpha, a, lda, b, ldb, c, ldc);
      } else {
        ThinPathN<true>(row0, row1, n, k, alpha, a, lda, b, ldb, c, ldc);
      }
    } else {
      if (trans_b == Trans::kNo) {
        ThinPathT<false>(row0, row1, n, k, alpha, a, lda, b, ldb, c, ldc);
      } else {
        ThinPathT<true>(row0, row1, n, k, alpha, a, lda, b, ldb, c, ldc);
      }
    }
  };
  ThreadPool* pool = SharedBlasPool();
  if (pool != nullptr && !InBlasWorker() && m * n * k >= kGemmParallelVolume &&
      m > 1) {
    pool->ParallelForRanges(
        static_cast<std::size_t>(m), /*min_grain=*/64,
        [&](std::size_t begin, std::size_t end) {
          BlasWorkerScope scope;
          run_rows(static_cast<Index>(begin), static_cast<Index>(end));
        });
  } else {
    run_rows(0, m);
  }
}

// Packed three-level path (see linalg/gemm_kernel.h for the layout). The
// ic loop — disjoint row blocks of C — is the parallel axis; every worker
// packs its own A block into its thread-local buffer while sharing the
// caller-packed B panel read-only.
void GemmPackedPath(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
                    double alpha, const double* a, Index lda, const double* b,
                    Index ldb, double* c, Index ldc) {
  ThreadPool* pool = SharedBlasPool();
  const bool threaded =
      pool != nullptr && !InBlasWorker() && m * n * k >= kGemmParallelVolume;
  for (Index jc = 0; jc < n; jc += kGemmNC) {
    const Index nb = std::min(kGemmNC, n - jc);
    for (Index lc = 0; lc < k; lc += kGemmKC) {
      const Index kb = std::min(kGemmKC, k - lc);
      double* bpack = TlsPackBufferB(PackedBSize(kb, nb));
      const double* bsrc =
          trans_b == Trans::kNo ? b + lc + jc * ldb : b + jc + lc * ldb;
      PackB(trans_b, kb, nb, bsrc, ldb, bpack);
      const Index num_blocks = (m + kGemmMC - 1) / kGemmMC;
      auto run_block = [&](Index ib) {
        const Index i0 = ib * kGemmMC;
        const Index mb = std::min(kGemmMC, m - i0);
        double* apack = TlsPackBufferA(PackedASize(mb, kb));
        const double* asrc =
            trans_a == Trans::kNo ? a + i0 + lc * lda : a + lc + i0 * lda;
        PackA(trans_a, mb, kb, alpha, asrc, lda, apack);
        GemmMacroKernel(mb, nb, kb, apack, bpack, c + i0 + jc * ldc, ldc);
      };
      if (threaded && num_blocks > 1) {
        pool->ParallelFor(static_cast<std::size_t>(num_blocks),
                          [&](std::size_t ib) {
                            BlasWorkerScope scope;
                            run_block(static_cast<Index>(ib));
                          });
      } else {
        for (Index ib = 0; ib < num_blocks; ++ib) run_block(ib);
      }
    }
  }
}

}  // namespace

void GemmRaw(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
             double alpha, const double* a, Index lda, const double* b,
             Index ldb, double beta, double* c, Index ldc) {
  // Scale C by beta first.
  if (beta == 0.0) {
    for (Index j = 0; j < n; ++j) {
      std::memset(c + j * ldc, 0, static_cast<std::size_t>(m) * sizeof(double));
    }
  } else if (beta != 1.0) {
    for (Index j = 0; j < n; ++j) Scal(beta, c + j * ldc, m);
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  if (n <= kThinN || m <= kThinM || m * n * k <= kSmallVolume) {
    GemmThinPath(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  GemmPackedPath(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

void GemvRaw(Trans trans_a, Index m, Index n, double alpha, const double* a,
             Index lda, const double* x, double beta, double* y) {
  ThreadPool* pool = SharedBlasPool();
  const bool threaded =
      pool != nullptr && !InBlasWorker() && m * n >= kGemvParallelVolume;
  if (trans_a == Trans::kNo) {
    // y(m) = alpha * A(m x n) * x(n) + beta * y: axpy form over disjoint
    // row ranges of y.
    auto run_rows = [&](Index r0, Index r1) {
      const Index len = r1 - r0;
      if (beta == 0.0) {
        std::memset(y + r0, 0, static_cast<std::size_t>(len) * sizeof(double));
      } else if (beta != 1.0) {
        Scal(beta, y + r0, len);
      }
      for (Index j = 0; j < n; ++j) {
        Axpy(alpha * x[j], a + r0 + j * lda, y + r0, len);
      }
    };
    if (threaded) {
      pool->ParallelForRanges(static_cast<std::size_t>(m), /*min_grain=*/1024,
                              [&](std::size_t begin, std::size_t end) {
                                BlasWorkerScope scope;
                                run_rows(static_cast<Index>(begin),
                                         static_cast<Index>(end));
                              });
    } else {
      run_rows(0, m);
    }
  } else {
    // y(n) = alpha * A^T * x(m) + beta * y: one dot per output element.
    auto run_cols = [&](Index j0, Index j1) {
      for (Index j = j0; j < j1; ++j) {
        double s = Dot(a + j * lda, x, m);
        y[j] = alpha * s + (beta == 0.0 ? 0.0 : beta * y[j]);
      }
    };
    if (threaded) {
      pool->ParallelForRanges(static_cast<std::size_t>(n), /*min_grain=*/8,
                              [&](std::size_t begin, std::size_t end) {
                                BlasWorkerScope scope;
                                run_cols(static_cast<Index>(begin),
                                         static_cast<Index>(end));
                              });
    } else {
      run_cols(0, n);
    }
  }
}

double Dot(const double* x, const double* y, Index n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

void Axpy(double alpha, const double* x, double* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scal(double alpha, double* x, Index n) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

double Nrm2(const double* x, Index n) {
  // Scaled accumulation to avoid overflow/underflow for extreme values.
  double scale = 0.0, ssq = 1.0;
  for (Index i = 0; i < n; ++i) {
    if (x[i] != 0.0) {
      double ax = std::fabs(x[i]);
      if (scale < ax) {
        ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
        scale = ax;
      } else {
        ssq += (ax / scale) * (ax / scale);
      }
    }
  }
  return scale * std::sqrt(ssq);
}

void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c) {
  const Index m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const Index ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const Index kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const Index n = trans_b == Trans::kNo ? b.cols() : b.rows();
  DT_CHECK_EQ(ka, kb) << "GEMM inner dimension mismatch";
  DT_CHECK(c->rows() == m && c->cols() == n) << "GEMM output shape mismatch";
  GemmRaw(trans_a, trans_b, m, n, ka, alpha, a.data(), a.rows(), b.data(),
          b.rows(), beta, c->data(), c->rows());
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyTN(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  Gemm(Trans::kYes, Trans::kNo, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyNT(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  Gemm(Trans::kNo, Trans::kYes, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix MultiplyTT(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.rows());
  Gemm(Trans::kYes, Trans::kYes, 1.0, a, b, 0.0, &c);
  return c;
}

Matrix Gram(const Matrix& a) {
  const Index n = a.cols();
  Matrix g(n, n);
  if (n <= 32 && SharedBlasPool() == nullptr) {
    // Small serial case: direct dot products exploit symmetry (half the
    // flops) and beat any kernel setup cost.
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i <= j; ++i) {
        double s = Dot(a.col_data(i), a.col_data(j), a.rows());
        g(i, j) = s;
        g(j, i) = s;
      }
    }
    return g;
  }
  GemmRaw(Trans::kYes, Trans::kNo, n, n, a.rows(), 1.0, a.data(), a.rows(),
          a.data(), a.rows(), 0.0, g.data(), n);
  // Enforce exact symmetry (the blocked kernel's rounding is orderless).
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      const double s = 0.5 * (g(i, j) + g(j, i));
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

}  // namespace dtucker
