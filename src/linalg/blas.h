// Hand-written BLAS-style kernels (no external BLAS is available).
//
// The raw-pointer routines operate on column-major data with explicit
// leading dimensions; the Matrix overloads are the interface the rest of
// the library uses. GemmRaw is cache-blocked; everything else is simple
// loops that the compiler vectorizes under -O3 -march=native.
#ifndef DTUCKER_LINALG_BLAS_H_
#define DTUCKER_LINALG_BLAS_H_

#include "linalg/matrix.h"

namespace dtucker {

enum class Trans { kNo, kYes };

// C = alpha * op(A) * op(B) + beta * C, column-major, op per `trans`.
// Shapes: op(A) is m x k, op(B) is k x n, C is m x n.
void GemmRaw(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
             double alpha, const double* a, Index lda, const double* b,
             Index ldb, double beta, double* c, Index ldc);

// y = alpha * op(A) * x + beta * y.
void GemvRaw(Trans trans_a, Index m, Index n, double alpha, const double* a,
             Index lda, const double* x, double beta, double* y);

double Dot(const double* x, const double* y, Index n);
void Axpy(double alpha, const double* x, double* y, Index n);
void Scal(double alpha, double* x, Index n);
double Nrm2(const double* x, Index n);

// Matrix-level conveniences. All return newly allocated results.
Matrix Multiply(const Matrix& a, const Matrix& b);    // A * B
Matrix MultiplyTN(const Matrix& a, const Matrix& b);  // A^T * B
Matrix MultiplyNT(const Matrix& a, const Matrix& b);  // A * B^T
Matrix MultiplyTT(const Matrix& a, const Matrix& b);  // A^T * B^T

// General form: C = alpha * op(A) * op(B) + beta * C (C must be presized).
void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c);

// Gram matrix A^T A (symmetric, computed directly).
Matrix Gram(const Matrix& a);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_BLAS_H_
