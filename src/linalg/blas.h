// Hand-written BLAS-style kernels (no external BLAS is available).
//
// The raw-pointer routines operate on column-major data with explicit
// leading dimensions; the Matrix overloads are the interface the rest of
// the library uses. GemmRaw is a packed, register-blocked, optionally
// multithreaded kernel (see linalg/gemm_kernel.h for the engine); the
// level-1 routines are simple loops that the compiler vectorizes under
// -O3 -march=native.
#ifndef DTUCKER_LINALG_BLAS_H_
#define DTUCKER_LINALG_BLAS_H_

#include "linalg/matrix.h"

namespace dtucker {

enum class Trans { kNo, kYes };

// Process-wide BLAS thread count. The default is 1 (serial, deterministic
// scheduling). Values > 1 lazily build a shared worker pool that GemmRaw,
// GemvRaw, Gram, and the tensor mode products use for their macro loops;
// <= 0 means "use std::thread::hardware_concurrency()". Call this once at
// startup (e.g. from a --threads flag): it must not race with in-flight
// BLAS calls, because resizing joins and replaces the old pool.
void SetBlasThreads(int num_threads);
int GetBlasThreads();

// C = alpha * op(A) * op(B) + beta * C, column-major, op per `trans`.
// Shapes: op(A) is m x k, op(B) is k x n, C is m x n. Transposed operands
// are absorbed by panel packing — no materialized copy is ever made.
void GemmRaw(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
             double alpha, const double* a, Index lda, const double* b,
             Index ldb, double beta, double* c, Index ldc);

// y = alpha * op(A) * x + beta * y.
void GemvRaw(Trans trans_a, Index m, Index n, double alpha, const double* a,
             Index lda, const double* x, double beta, double* y);

double Dot(const double* x, const double* y, Index n);
void Axpy(double alpha, const double* x, double* y, Index n);
void Scal(double alpha, double* x, Index n);
double Nrm2(const double* x, Index n);

// Triangular kernels. `t`/`r`/`l` are n x n column-major with the given
// leading dimension; entries outside the referenced triangle are never
// read. All loops sweep columns of the triangle (contiguous memory), the
// orientation that matches the storage.

// W := op(T) * W for upper-triangular T; W is n x ncols, leading dim ldw.
// This is the compact-WY "T-apply" of the blocked QR (see linalg/qr.cc).
void TrmmUpperRaw(Trans trans_t, Index n, Index ncols, const double* t,
                  Index ldt, double* w, Index ldw);

// In-place triangular solves, X (n x ncols): R X = B (upper, back
// substitution) and L X = B (lower, forward substitution) in axpy form.
// Diagonal entries must be nonzero (DT_CHECK).
void TrsmUpperRaw(Index n, Index ncols, const double* r, Index ldr, double* x,
                  Index ldx);
void TrsmLowerRaw(Index n, Index ncols, const double* l, Index ldl, double* x,
                  Index ldx);

// Matrix-level conveniences. All return newly allocated results.
Matrix Multiply(const Matrix& a, const Matrix& b);    // A * B
Matrix MultiplyTN(const Matrix& a, const Matrix& b);  // A^T * B
Matrix MultiplyNT(const Matrix& a, const Matrix& b);  // A * B^T
Matrix MultiplyTT(const Matrix& a, const Matrix& b);  // A^T * B^T

// General form: C = alpha * op(A) * op(B) + beta * C (C must be presized).
void Gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix* c);

// Gram matrix A^T A (symmetric, computed directly).
Matrix Gram(const Matrix& a);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_BLAS_H_
