#include "linalg/cholesky.h"

#include <cmath>

#include "linalg/blas.h"
#include "linalg/qr.h"

namespace dtucker {

Result<Matrix> Cholesky(const Matrix& a) {
  const Index n = a.rows();
  if (n != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  // Right-looking algorithm: after pivot k, subtract the rank-1 update
  // from the trailing columns with contiguous axpys (cache-friendly for
  // column-major storage, ~n^3/3 vectorized flops).
  Matrix l = a;
  for (Index k = 0; k < n; ++k) {
    const double d = l(k, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      return Status::NumericalError("matrix is not positive definite");
    }
    const double s = std::sqrt(d);
    l(k, k) = s;
    double* colk = l.col_data(k);
    Scal(1.0 / s, colk + k + 1, n - k - 1);
    for (Index j = k + 1; j < n; ++j) {
      Axpy(-colk[j], colk + j, l.col_data(j) + j, n - j);
    }
  }
  // Zero the (stale) strict upper triangle.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) l(i, j) = 0.0;
  }
  return l;
}

Result<Matrix> SolveSpd(const Matrix& a, const Matrix& b) {
  DT_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  Matrix y = SolveLowerTriangular(l, b);
  // L^T x = y.
  Matrix lt = l.Transposed();
  return SolveUpperTriangular(lt, y);
}

}  // namespace dtucker
