// Cholesky factorization and SPD solves.
#ifndef DTUCKER_LINALG_CHOLESKY_H_
#define DTUCKER_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace dtucker {

// Computes the lower-triangular L with A = L L^T for symmetric positive
// definite A. Returns NumericalError if A is not (numerically) SPD.
Result<Matrix> Cholesky(const Matrix& a);

// Solves A X = B for SPD A via Cholesky.
Result<Matrix> SolveSpd(const Matrix& a, const Matrix& b);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_CHOLESKY_H_
