#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/metrics.h"
#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eigen_tridiag.h"
#include "linalg/qr.h"

namespace dtucker {

EigenSymResult EigenSym(const Matrix& a) {
  DT_CHECK_EQ(a.rows(), a.cols()) << "EigenSym requires a square matrix";
  const Index n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::Identity(n);
  const double eps = std::numeric_limits<double>::epsilon();
  const int max_sweeps = 100;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass; stop when negligible.
    double off = 0.0, diag = 0.0;
    for (Index j = 0; j < n; ++j) {
      diag += m(j, j) * m(j, j);
      for (Index i = 0; i < j; ++i) off += 2.0 * m(i, j) * m(i, j);
    }
    if (off <= eps * eps * (diag + off) || off == 0.0) break;

    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= eps * std::sqrt(std::fabs(m(p, p) * m(q, q))) ||
            apq == 0.0) {
          continue;
        }
        const double tau = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::fabs(tau) + std::sqrt(1.0 + tau * tau)), tau);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Update rows/cols p and q of the symmetric matrix.
        for (Index i = 0; i < n; ++i) {
          const double mip = m(i, p), miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (Index i = 0; i < n; ++i) {
          const double mpi = m(p, i), mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (Index i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<double> values(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) values[static_cast<std::size_t>(i)] = m(i, i);
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return values[static_cast<std::size_t>(x)] >
           values[static_cast<std::size_t>(y)];
  });

  EigenSymResult out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = Matrix(n, n);
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<std::size_t>(j)];
    out.values[static_cast<std::size_t>(j)] =
        values[static_cast<std::size_t>(src)];
    for (Index i = 0; i < n; ++i) out.vectors(i, j) = v(i, src);
  }
  return out;
}

namespace {

// Dense solve for the sketch-sized problems inside TopEigenvectorsSym: the
// QL solver is several times faster than Jacobi at these sizes; Jacobi is
// the fallback for (pathological) QL non-convergence.
EigenSymResult EigenSymFast(const Matrix& a) {
  Result<EigenSymResult> qr = EigenSymQr(a);
  if (qr.ok()) return std::move(qr).ValueOrDie();
  return EigenSym(a);
}

}  // namespace

Matrix TopEigenvectorsSym(const Matrix& a, Index k, Matrix* subspace,
                          const SubspaceIterationOptions& options) {
  const Index n = a.rows();
  DT_CHECK_EQ(n, a.cols()) << "TopEigenvectorsSym requires a square matrix";
  DT_CHECK(k > 0 && k <= n) << "k out of range";

  // Forced dense variants (adaptive execution layer): solve the full
  // spectrum and truncate. Neither reads nor writes the warm-start basis.
  if (options.solver == EigSolverVariant::kJacobi) {
    return EigenSym(a).vectors.LeftCols(k);
  }
  if (options.solver == EigSolverVariant::kQl) {
    return EigenSymFast(a).vectors.LeftCols(k);
  }

  // Small problems (or nearly-full spectra): a dense solve is both exact
  // and fast enough. Skipped when the subspace variant is forced.
  if (options.solver == EigSolverVariant::kAuto && (n <= 64 || 2 * k >= n)) {
    return EigenSymFast(a).vectors.LeftCols(k);
  }

  // Randomized subspace iteration with oversampling. For PSD matrices the
  // per-sweep contraction factor of the k-th direction is
  // (lambda_{s+1}/lambda_k)^2, so a handful of sweeps suffice whenever the
  // sketch width s clears the cluster around lambda_k.
  const Index s = std::min(n, k + std::min<Index>(k, 8) + 2);
  Matrix q;
  if (subspace != nullptr && subspace->rows() == n && subspace->cols() == s) {
    // Warm start from the caller's basis (assumed orthonormal: it is the
    // basis this routine handed back on a previous call).
    q = *subspace;
  } else {
    Rng rng(0x70B5EEDULL + static_cast<uint64_t>(n) * 1315423911ULL +
            static_cast<uint64_t>(k));
    q = QrOrthonormalize(Matrix::GaussianRandom(n, s, rng), options.qr);
  }

  std::vector<double> prev_ritz;
  Matrix z(n, s);
  Matrix h(s, s);
  // Flat spectra (lambda_{s+1} ~ lambda_k) converge slowly in the angles
  // but the Ritz *values* stabilize quickly; the default 1e-11 relative is
  // far below anything the factor updates can observe, and the sweep cap
  // bounds the worst case.
  const double ritz_tolerance = options.ritz_tolerance;
  const int max_sweeps = options.max_sweeps;
  static Counter& subspace_sweeps = MetricCounter("eig.subspace_sweeps");
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    subspace_sweeps.Add(1);
    Gemm(Trans::kNo, Trans::kNo, 1.0, a, q, 0.0, &z);
    // Rayleigh quotient H = Q^T A Q for the convergence check.
    Gemm(Trans::kYes, Trans::kNo, 1.0, q, z, 0.0, &h);
    // Symmetrize against roundoff before reading Ritz values.
    for (Index j = 0; j < s; ++j) {
      for (Index i = 0; i < j; ++i) {
        const double v = 0.5 * (h(i, j) + h(j, i));
        h(i, j) = v;
        h(j, i) = v;
      }
    }
    EigenSymResult ritz = EigenSymFast(h);
    bool converged = false;
    if (!prev_ritz.empty()) {
      const double scale = std::max(std::fabs(ritz.values[0]), 1e-300);
      double max_delta = 0;
      for (Index i = 0; i < k; ++i) {
        max_delta = std::max(
            max_delta, std::fabs(ritz.values[static_cast<std::size_t>(i)] -
                                 prev_ritz[static_cast<std::size_t>(i)]));
      }
      converged = max_delta <= ritz_tolerance * scale;
    }
    prev_ritz = ritz.values;
    if (converged) {
      // Rayleigh-Ritz extraction from the current (pre-update) basis.
      Matrix out = Multiply(q, ritz.vectors.LeftCols(k));
      if (subspace != nullptr) *subspace = std::move(q);
      return out;
    }
    q = QrOrthonormalize(z, options.qr);
  }
  // Fallback extraction after max_sweeps.
  Gemm(Trans::kNo, Trans::kNo, 1.0, a, q, 0.0, &z);
  Gemm(Trans::kYes, Trans::kNo, 1.0, q, z, 0.0, &h);
  EigenSymResult ritz = EigenSymFast(h);
  Matrix out = Multiply(q, ritz.vectors.LeftCols(k));
  if (subspace != nullptr) *subspace = std::move(q);
  return out;
}

}  // namespace dtucker
