// Symmetric eigendecomposition via the classical Jacobi method.
//
// Used for Gram-matrix based factor updates and as an independent check of
// the SVD (eig(A^T A) = singular values squared).
#ifndef DTUCKER_LINALG_EIGEN_SYM_H_
#define DTUCKER_LINALG_EIGEN_SYM_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/qr.h"

namespace dtucker {

struct EigenSymResult {
  std::vector<double> values;  // Descending.
  Matrix vectors;              // Column k is the eigenvector of values[k].
};

// Requires a symmetric square matrix (symmetry is assumed, the strictly
// upper triangle is read).
EigenSymResult EigenSym(const Matrix& a);

// Which eigensolver TopEigenvectorsSym runs. kAuto is the production
// default: the size heuristic in the implementation (dense QL below the
// crossover or when the target rank covers most of the spectrum,
// randomized subspace iteration above it). The forced variants are the
// named strategies the input-adaptive execution layer (dtucker/adaptive/)
// dispatches between; each is deterministic on its own, so any fixed
// choice keeps the bitwise thread/rank-determinism contracts.
enum class EigSolverVariant {
  kAuto,
  kJacobi,    // Full dense Jacobi sweeps (high-accuracy reference).
  kQl,        // Householder tridiagonalization + QL (dense workhorse).
  kSubspace,  // Randomized warm-started subspace iteration.
};

// Knobs for the randomized subspace iteration inside TopEigenvectorsSym.
// The defaults solve to near machine precision. Iterative outer loops
// (HOOI/ALS sweeps) can afford a looser tolerance and a tighter sweep cap:
// the outer iteration corrects any slack in the inner solve, and on flat
// spectra — where the Ritz values drift below 1e-11 only after hundreds of
// sweeps — the cap is what bounds the cost. Both paths stay deterministic;
// the dense small-problem fallback ignores these knobs.
struct SubspaceIterationOptions {
  int max_sweeps = 50;
  double ritz_tolerance = 1e-11;
  // Strategy dispatch for the adaptive execution layer: which solver runs,
  // and which QR variant re-orthonormalizes the iterated basis.
  EigSolverVariant solver = EigSolverVariant::kAuto;
  QrVariant qr = QrVariant::kAuto;
};

// Top-k eigenvectors of a symmetric PSD matrix (descending eigenvalues).
// Small problems use the full Jacobi solver; large ones use randomized
// subspace iteration with Rayleigh-Ritz extraction, which is the O(n^2 k)
// workhorse behind every factor update in this library (ALS and D-Tucker
// both extract leading singular vectors from n x n Gram matrices).
// Deterministic: the start basis is seeded from (n, k).
//
// `subspace` (optional, in/out) warm-starts the subspace iteration: when it
// holds an orthonormal basis with the dimensions of the iteration sketch
// (n x s), it replaces the random start, and on return it receives the
// final basis. Passing the same Matrix across a sequence of calls on
// slowly-moving operands (ALS/HOOI sweeps) cuts the iteration to the one or
// two sweeps the Ritz check needs. A mismatched or empty matrix is ignored
// as input and simply overwritten. The dense small-problem path neither
// reads nor writes it.
Matrix TopEigenvectorsSym(const Matrix& a, Index k, Matrix* subspace = nullptr,
                          const SubspaceIterationOptions& options = {});

}  // namespace dtucker

#endif  // DTUCKER_LINALG_EIGEN_SYM_H_
