// Symmetric eigendecomposition via the classical Jacobi method.
//
// Used for Gram-matrix based factor updates and as an independent check of
// the SVD (eig(A^T A) = singular values squared).
#ifndef DTUCKER_LINALG_EIGEN_SYM_H_
#define DTUCKER_LINALG_EIGEN_SYM_H_

#include <vector>

#include "linalg/matrix.h"

namespace dtucker {

struct EigenSymResult {
  std::vector<double> values;  // Descending.
  Matrix vectors;              // Column k is the eigenvector of values[k].
};

// Requires a symmetric square matrix (symmetry is assumed, the strictly
// upper triangle is read).
EigenSymResult EigenSym(const Matrix& a);

// Top-k eigenvectors of a symmetric PSD matrix (descending eigenvalues).
// Small problems use the full Jacobi solver; large ones use randomized
// subspace iteration with Rayleigh-Ritz extraction, which is the O(n^2 k)
// workhorse behind every factor update in this library (ALS and D-Tucker
// both extract leading singular vectors from n x n Gram matrices).
// Deterministic: the start basis is seeded from (n, k).
Matrix TopEigenvectorsSym(const Matrix& a, Index k);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_EIGEN_SYM_H_
