#include "linalg/eigen_tridiag.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.h"

namespace dtucker {

namespace {

// Householder reduction of a symmetric matrix to tridiagonal form,
// accumulating the orthogonal transform in `z` (tred2, adapted from the
// classical EISPACK/NR formulation). On return d holds the diagonal,
// e[1..n-1] the subdiagonal (e[0] = 0), and z the accumulated transform.
void Tridiagonalize(Matrix* z, std::vector<double>* d,
                    std::vector<double>* e) {
  const Index n = z->rows();
  d->assign(static_cast<std::size_t>(n), 0.0);
  e->assign(static_cast<std::size_t>(n), 0.0);
  auto& a = *z;

  for (Index i = n - 1; i >= 1; --i) {
    const Index l = i - 1;
    double h = 0.0, scale = 0.0;
    if (l > 0) {
      for (Index k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        (*e)[static_cast<std::size_t>(i)] = a(i, l);
      } else {
        for (Index k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        (*e)[static_cast<std::size_t>(i)] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (Index j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (Index k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (Index k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          (*e)[static_cast<std::size_t>(j)] = g / h;
          f += (*e)[static_cast<std::size_t>(j)] * a(i, j);
        }
        const double hh = f / (h + h);
        for (Index j = 0; j <= l; ++j) {
          f = a(i, j);
          g = (*e)[static_cast<std::size_t>(j)] - hh * f;
          (*e)[static_cast<std::size_t>(j)] = g;
          for (Index k = 0; k <= j; ++k) {
            a(j, k) -= f * (*e)[static_cast<std::size_t>(k)] + g * a(i, k);
          }
        }
      }
    } else {
      (*e)[static_cast<std::size_t>(i)] = a(i, l);
    }
    (*d)[static_cast<std::size_t>(i)] = h;
  }
  (*d)[0] = 0.0;
  (*e)[0] = 0.0;
  // Accumulate the transformation.
  for (Index i = 0; i < n; ++i) {
    const Index l = i - 1;
    if ((*d)[static_cast<std::size_t>(i)] != 0.0) {
      for (Index j = 0; j <= l; ++j) {
        double g = 0.0;
        for (Index k = 0; k <= l; ++k) g += a(i, k) * a(k, j);
        for (Index k = 0; k <= l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    (*d)[static_cast<std::size_t>(i)] = a(i, i);
    a(i, i) = 1.0;
    for (Index j = 0; j <= l; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal (d, e), rotating the
// eigenvector matrix z along. Returns false if an eigenvalue fails to
// converge within the sweep budget.
bool QlImplicit(std::vector<double>& d, std::vector<double>& e, Matrix* z) {
  const Index n = static_cast<Index>(d.size());
  // Shift e down for the classical indexing e[0..n-2] used below.
  for (Index i = 1; i < n; ++i) e[static_cast<std::size_t>(i - 1)] =
      e[static_cast<std::size_t>(i)];
  e[static_cast<std::size_t>(n - 1)] = 0.0;

  for (Index l = 0; l < n; ++l) {
    int iterations = 0;
    Index m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[static_cast<std::size_t>(m)]) +
                          std::fabs(d[static_cast<std::size_t>(m + 1)]);
        if (std::fabs(e[static_cast<std::size_t>(m)]) <=
            std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (++iterations == 50) return false;
        double g = (d[static_cast<std::size_t>(l + 1)] -
                    d[static_cast<std::size_t>(l)]) /
                   (2.0 * e[static_cast<std::size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] /
                (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        bool underflow = false;
        for (Index i = m - 1; i >= l; --i) {
          double f = s * e[static_cast<std::size_t>(i)];
          const double b = c * e[static_cast<std::size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<std::size_t>(i + 1)] = r;
          if (r == 0.0) {
            // Rotation underflow: deflate and restart this eigenvalue.
            d[static_cast<std::size_t>(i + 1)] -= p;
            e[static_cast<std::size_t>(m)] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i + 1)] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i + 1)] = g + p;
          g = c * r - b;
          // Rotate eigenvectors.
          for (Index k = 0; k < n; ++k) {
            f = (*z)(k, i + 1);
            (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
            (*z)(k, i) = c * (*z)(k, i) - s * f;
          }
          if (i == l) break;  // Avoid signed wrap below l == 0.
        }
        if (underflow) continue;
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

Result<EigenSymResult> EigenSymQr(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("EigenSymQr requires a square matrix");
  }
  const Index n = a.rows();
  if (n == 0) return EigenSymResult{{}, Matrix(0, 0)};

  Matrix z = a;
  std::vector<double> d, e;
  Tridiagonalize(&z, &d, &e);
  if (!QlImplicit(d, e, &z)) {
    return Status::NumericalError("QL iteration failed to converge");
  }

  // Sort descending.
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return d[static_cast<std::size_t>(x)] > d[static_cast<std::size_t>(y)];
  });
  EigenSymResult out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = Matrix(n, n);
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<std::size_t>(j)];
    out.values[static_cast<std::size_t>(j)] = d[static_cast<std::size_t>(src)];
    std::copy(z.col_data(src), z.col_data(src) + n, out.vectors.col_data(j));
  }
  return out;
}

}  // namespace dtucker
