// Symmetric eigendecomposition via Householder tridiagonalization and
// implicit-shift QL iteration — the classical O(n^3) dense route.
//
// Faster than the Jacobi solver in linalg/eigen_sym.h for medium and large
// n (one reduction plus O(n^2) iteration instead of several full Jacobi
// sweeps); Jacobi remains the high-accuracy reference the tests compare
// against.
#ifndef DTUCKER_LINALG_EIGEN_TRIDIAG_H_
#define DTUCKER_LINALG_EIGEN_TRIDIAG_H_

#include "common/status.h"
#include "linalg/eigen_sym.h"

namespace dtucker {

// Same contract as EigenSym: descending eigenvalues, orthonormal
// eigenvectors in columns. Returns NumericalError if the QL iteration
// exceeds its sweep budget (pathological input).
Result<EigenSymResult> EigenSymQr(const Matrix& a);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_EIGEN_TRIDIAG_H_
