#include "linalg/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace dtucker {

namespace {

inline Index RoundUp(Index x, Index to) { return (x + to - 1) / to * to; }

// One kMR x kNR tile of C += Apack-sliver * Bpack-sliver.
//
// The accumulators are explicit native-width vectors (GCC/Clang vector
// extensions) so they provably live in registers: a plain double array of
// this size gets spilled to the stack by GCC, costing ~4x throughput. The
// packed slivers are kGemmPackAlignment-aligned with kMR*8 / kNR*8 both
// multiples of the vector width, so the aligned vector loads below are
// valid; zero padding lets every tile run the full-size compute.
#if defined(__GNUC__) || defined(__clang__)
#if defined(__AVX512F__)
constexpr Index kVecLen = 8;
#elif defined(__AVX__)
constexpr Index kVecLen = 4;
#else
constexpr Index kVecLen = 2;
#endif
typedef double Vec __attribute__((vector_size(kVecLen * sizeof(double))));
constexpr Index kVecPerMR = kGemmMR / kVecLen;
static_assert(kGemmMR % kVecLen == 0, "MR must be a vector multiple");

template <bool kOverwrite>
void MicroKernel(Index kb, const double* __restrict ap,
                 const double* __restrict bp, double* __restrict c, Index ldc,
                 Index mr, Index nr) {
  Vec acc[kVecPerMR][kGemmNR];
  for (Index v = 0; v < kVecPerMR; ++v) {
    for (Index j = 0; j < kGemmNR; ++j) acc[v][j] = Vec{} ;
  }
  for (Index l = 0; l < kb; ++l) {
    const double* a = ap + l * kGemmMR;
    const double* b = bp + l * kGemmNR;
    Vec av[kVecPerMR];
    for (Index v = 0; v < kVecPerMR; ++v) {
      av[v] = *reinterpret_cast<const Vec*>(a + v * kVecLen);
    }
    for (Index j = 0; j < kGemmNR; ++j) {
      const double bj = b[j];
      for (Index v = 0; v < kVecPerMR; ++v) acc[v][j] += av[v] * bj;
    }
  }
  alignas(kGemmPackAlignment) double out[kGemmMR * kGemmNR];
  for (Index v = 0; v < kVecPerMR; ++v) {
    for (Index j = 0; j < kGemmNR; ++j) {
      *reinterpret_cast<Vec*>(out + v * kVecLen + j * kGemmMR) = acc[v][j];
    }
  }
  for (Index j = 0; j < nr; ++j) {
    double* cj = c + j * ldc;
    const double* sj = out + kGemmMR * j;
    if (kOverwrite) {
      for (Index i = 0; i < mr; ++i) cj[i] = sj[i];
    } else {
      for (Index i = 0; i < mr; ++i) cj[i] += sj[i];
    }
  }
}
#else
// Portable fallback for non-GNU compilers: scalar accumulator tile.
template <bool kOverwrite>
void MicroKernel(Index kb, const double* __restrict ap,
                 const double* __restrict bp, double* __restrict c, Index ldc,
                 Index mr, Index nr) {
  double acc[kGemmMR * kGemmNR] = {};
  for (Index l = 0; l < kb; ++l) {
    const double* a = ap + l * kGemmMR;
    const double* b = bp + l * kGemmNR;
    for (Index j = 0; j < kGemmNR; ++j) {
      const double bj = b[j];
      for (Index i = 0; i < kGemmMR; ++i) {
        acc[i + kGemmMR * j] += bj * a[i];
      }
    }
  }
  for (Index j = 0; j < nr; ++j) {
    double* cj = c + j * ldc;
    const double* sj = acc + kGemmMR * j;
    if (kOverwrite) {
      for (Index i = 0; i < mr; ++i) cj[i] = sj[i];
    } else {
      for (Index i = 0; i < mr; ++i) cj[i] += sj[i];
    }
  }
}
#endif

}  // namespace

std::size_t PackedASize(Index mb, Index kb) {
  return static_cast<std::size_t>(RoundUp(mb, kGemmMR)) *
         static_cast<std::size_t>(kb);
}

std::size_t PackedBSize(Index kb, Index nb) {
  return static_cast<std::size_t>(kb) *
         static_cast<std::size_t>(RoundUp(nb, kGemmNR));
}

void PackA(Trans trans, Index mb, Index kb, double alpha, const double* a,
           Index lda, double* dst) {
  for (Index p = 0; p < mb; p += kGemmMR) {
    const Index pr = std::min(kGemmMR, mb - p);
    if (trans == Trans::kNo) {
      // op(A)(p+i, l) = a[p+i + l*lda]: contiguous rows per column.
      for (Index l = 0; l < kb; ++l) {
        const double* src = a + p + l * lda;
        double* d = dst + l * kGemmMR;
        for (Index i = 0; i < pr; ++i) d[i] = alpha * src[i];
        for (Index i = pr; i < kGemmMR; ++i) d[i] = 0.0;
      }
    } else {
      // op(A)(p+i, l) = a[l + (p+i)*lda]: walk stored columns of A so the
      // reads are contiguous; the strided writes stay inside one sliver.
      for (Index i = 0; i < pr; ++i) {
        const double* src = a + (p + i) * lda;
        double* d = dst + i;
        for (Index l = 0; l < kb; ++l) d[l * kGemmMR] = alpha * src[l];
      }
      for (Index i = pr; i < kGemmMR; ++i) {
        double* d = dst + i;
        for (Index l = 0; l < kb; ++l) d[l * kGemmMR] = 0.0;
      }
    }
    dst += kGemmMR * kb;
  }
}

void PackB(Trans trans, Index kb, Index nb, const double* b, Index ldb,
           double* dst) {
  for (Index q = 0; q < nb; q += kGemmNR) {
    const Index qc = std::min(kGemmNR, nb - q);
    if (trans == Trans::kNo) {
      // op(B)(l, q+c) = b[l + (q+c)*ldb]: contiguous column reads.
      for (Index c = 0; c < qc; ++c) {
        const double* src = b + (q + c) * ldb;
        double* d = dst + c;
        for (Index l = 0; l < kb; ++l) d[l * kGemmNR] = src[l];
      }
      for (Index c = qc; c < kGemmNR; ++c) {
        double* d = dst + c;
        for (Index l = 0; l < kb; ++l) d[l * kGemmNR] = 0.0;
      }
    } else {
      // op(B)(l, q+c) = b[q+c + l*ldb]: each packed row is a contiguous
      // read of kNR stored-row elements.
      for (Index l = 0; l < kb; ++l) {
        const double* src = b + q + l * ldb;
        double* d = dst + l * kGemmNR;
        for (Index c = 0; c < qc; ++c) d[c] = src[c];
        for (Index c = qc; c < kGemmNR; ++c) d[c] = 0.0;
      }
    }
    dst += kGemmNR * kb;
  }
}

void GemmMacroKernel(Index mb, Index nb, Index kb, const double* apack,
                     const double* bpack, double* c, Index ldc,
                     bool overwrite) {
  for (Index jr = 0; jr < nb; jr += kGemmNR) {
    const Index nr = std::min(kGemmNR, nb - jr);
    const double* bp = bpack + (jr / kGemmNR) * (kGemmNR * kb);
    for (Index ir = 0; ir < mb; ir += kGemmMR) {
      const Index mr = std::min(kGemmMR, mb - ir);
      const double* ap = apack + (ir / kGemmMR) * (kGemmMR * kb);
      if (overwrite) {
        MicroKernel<true>(kb, ap, bp, c + ir + jr * ldc, ldc, mr, nr);
      } else {
        MicroKernel<false>(kb, ap, bp, c + ir + jr * ldc, ldc, mr, nr);
      }
    }
  }
}

namespace {

// Grow-only 64-byte-aligned scratch buffer. One instance lives per thread
// per operand (thread_local below), so repeated GEMM calls reuse the same
// allocation; pool workers keep theirs for the pool's lifetime.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { std::free(ptr_); }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  double* Ensure(std::size_t doubles) {
    if (doubles > capacity_) {
      std::free(ptr_);
      std::size_t bytes = doubles * sizeof(double);
      bytes = (bytes + kGemmPackAlignment - 1) / kGemmPackAlignment *
              kGemmPackAlignment;
      ptr_ = std::aligned_alloc(kGemmPackAlignment, bytes);
      DT_CHECK(ptr_ != nullptr) << "pack buffer allocation failed";
      // Growth only — steady state adds nothing, so the counter reports the
      // footprint of pack scratch actually allocated across all threads.
      static Counter& pack_bytes = MetricCounter("gemm.pack_bytes");
      pack_bytes.Add(bytes - capacity_ * sizeof(double));
      capacity_ = bytes / sizeof(double);
    }
    DT_DCHECK(reinterpret_cast<std::uintptr_t>(ptr_) % kGemmPackAlignment ==
              0);
    return static_cast<double*>(ptr_);
  }

 private:
  void* ptr_ = nullptr;
  std::size_t capacity_ = 0;
};

std::atomic<int> g_blas_threads{1};
std::mutex g_pool_mutex;
ThreadPool* g_pool = nullptr;  // Guarded by g_pool_mutex; leaked at exit.
std::size_t g_pool_threads = 0;

thread_local bool tls_in_blas_worker = false;

}  // namespace

double* TlsPackBufferA(std::size_t doubles) {
  thread_local AlignedBuffer buffer;
  return buffer.Ensure(doubles);
}

double* TlsPackBufferB(std::size_t doubles) {
  thread_local AlignedBuffer buffer;
  return buffer.Ensure(doubles);
}

void SetBlasThreads(int num_threads) {
  if (num_threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  g_blas_threads.store(num_threads, std::memory_order_relaxed);
}

int GetBlasThreads() {
  return g_blas_threads.load(std::memory_order_relaxed);
}

ThreadPool* SharedBlasPool() {
  const std::size_t want = static_cast<std::size_t>(GetBlasThreads());
  if (want <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr || g_pool_threads != want) {
    // Resizing joins the old workers first; SetBlasThreads must not race
    // with in-flight BLAS calls (documented in blas.h).
    delete g_pool;
    g_pool = new ThreadPool(want);
    g_pool_threads = want;
  }
  return g_pool;
}

bool InBlasWorker() { return tls_in_blas_worker; }

BlasWorkerScope::BlasWorkerScope() : previous_(tls_in_blas_worker) {
  tls_in_blas_worker = true;
}

BlasWorkerScope::~BlasWorkerScope() { tls_in_blas_worker = previous_; }

}  // namespace dtucker
