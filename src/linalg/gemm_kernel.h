// The packed, register-blocked GEMM engine behind linalg/blas.h.
//
// Layout follows the classic three-level (BLIS-style) scheme:
//
//   for jc in steps of kGemmNC:            // C column panel        (L3)
//     for lc in steps of kGemmKC:          // rank-KC update
//       pack op(B)(lc.., jc..) -> Bpack    // kNR-column slivers    (L1)
//       for ic in steps of kGemmMC:        // parallelized          (L2)
//         pack op(A)(ic.., lc..) -> Apack  // kMR-row slivers
//         macro kernel: kMR x kNR register micro-tiles over Apack/Bpack
//
// Packing absorbs operand transposes (both orientations read into the same
// panel format), so transposed GEMM never materializes a full copy of the
// operand: the working set is one MC x KC A block and one KC x NC B panel,
// held in thread-local buffers that are reused across calls.
//
// Threading: the ic loop runs on a process-wide pool configured with
// SetBlasThreads (declared in linalg/blas.h). Code that parallelizes at a
// coarser grain (slice loops, mode-product slabs) wraps its worker bodies
// in BlasWorkerScope so nested GEMM calls stay serial instead of fighting
// for the same pool.
#ifndef DTUCKER_LINALG_GEMM_KERNEL_H_
#define DTUCKER_LINALG_GEMM_KERNEL_H_

#include <cstddef>

#include "linalg/blas.h"

namespace dtucker {

class ThreadPool;

// Register micro-tile, sized to the vector register file of the target
// ISA: two native vectors of C rows times kNR columns of accumulators
// (16 of 32 zmm registers under AVX-512, 12 of 16 ymm under AVX2), leaving
// room for the A vectors and B broadcasts.
#if defined(__AVX512F__)
inline constexpr Index kGemmMR = 16;
inline constexpr Index kGemmNR = 8;
#elif defined(__AVX__)
inline constexpr Index kGemmMR = 8;
inline constexpr Index kGemmNR = 6;
#else
inline constexpr Index kGemmMR = 4;
inline constexpr Index kGemmNR = 4;
#endif

// Cache blocks. The A block (kGemmMC x kGemmKC = 320 KiB) targets L2; one
// kMR x kKC A sliver (40 KiB) plus one kKC x kNR B sliver (20 KiB) cycle
// through L1 while a micro-tile of C lives in registers. The B panel
// (kGemmKC x kGemmNC, <= 10 MiB) targets L3.
inline constexpr Index kGemmMC = 128;
inline constexpr Index kGemmKC = 320;
inline constexpr Index kGemmNC = 4096;

static_assert(kGemmMC % kGemmMR == 0, "MC must be a multiple of MR");
static_assert(kGemmNC % kGemmNR == 0, "NC must be a multiple of NR");

// Byte alignment of the pack buffers (one cache line / one zmm vector).
inline constexpr std::size_t kGemmPackAlignment = 64;

// Doubles needed to pack an mb x kb block of op(A) / a kb x nb block of
// op(B), including zero padding of edge slivers up to kMR / kNR.
std::size_t PackedASize(Index mb, Index kb);
std::size_t PackedBSize(Index kb, Index nb);

// Packs the mb x kb block of op(A) whose top-left element is op(A)(0, 0) at
// `a` (leading dimension lda, orientation per `trans`) into kMR-row slivers:
// sliver p holds rows [p*kMR, (p+1)*kMR) column by column, contiguously.
// Every element is scaled by alpha; edge rows are zero-padded so the micro
// kernel can always run a full tile.
void PackA(Trans trans, Index mb, Index kb, double alpha, const double* a,
           Index lda, double* dst);

// Packs the kb x nb block of op(B) into kNR-column slivers: sliver q holds
// columns [q*kNR, (q+1)*kNR) row by row, contiguously. Edge columns are
// zero-padded.
void PackB(Trans trans, Index kb, Index nb, const double* b, Index ldb,
           double* dst);

// C(mb x nb) += Apack * Bpack, where the packs were produced by PackA/PackB
// (alpha already folded into Apack). C is column-major with leading
// dimension ldc. With overwrite = true the tile is stored instead of
// accumulated (C = Apack * Bpack): the beta = 0 path, which skips both the
// caller's zero-fill pass over C and the kernel's read of it — C may hold
// garbage (even NaN) and every element of the block is written.
void GemmMacroKernel(Index mb, Index nb, Index kb, const double* apack,
                     const double* bpack, double* c, Index ldc,
                     bool overwrite = false);

// Thread-local pack buffers, grown on demand and aligned to
// kGemmPackAlignment. Pool worker threads keep theirs alive for the pool's
// lifetime, so steady-state GEMM performs no allocation.
double* TlsPackBufferA(std::size_t doubles);
double* TlsPackBufferB(std::size_t doubles);

// The process-wide BLAS pool, lazily (re)built to the SetBlasThreads
// setting. Returns nullptr when the setting is 1 thread (the default).
ThreadPool* SharedBlasPool();

// True while the calling thread is executing inside a BLAS-parallel region
// (either the pool's own macro loops or a coarser-grained caller that
// entered a BlasWorkerScope). Threaded kernels fall back to their serial
// paths when set, preventing nested use of the shared pool.
bool InBlasWorker();

// RAII marker for coarse-grained parallel regions (slice loops, tensor slab
// loops): while alive on a thread, GEMM/GEMV calls from that thread run
// serially.
class BlasWorkerScope {
 public:
  BlasWorkerScope();
  ~BlasWorkerScope();
  BlasWorkerScope(const BlasWorkerScope&) = delete;
  BlasWorkerScope& operator=(const BlasWorkerScope&) = delete;

 private:
  bool previous_;
};

}  // namespace dtucker

#endif  // DTUCKER_LINALG_GEMM_KERNEL_H_
