#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"

namespace dtucker {

Result<LanczosResult> LanczosTopEigenpairs(const Matrix& a, Index k,
                                           const LanczosOptions& options) {
  const Index n = a.rows();
  if (n != a.cols()) {
    return Status::InvalidArgument("Lanczos requires a square matrix");
  }
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k out of range for Lanczos");
  }

  const Index m = options.max_subspace > 0
                      ? std::min(options.max_subspace, n)
                      : std::min(n, std::max<Index>(2 * k + 10, 30));
  if (m < k) {
    return Status::InvalidArgument("max_subspace smaller than k");
  }

  // Krylov basis Q (n x m), tridiagonal coefficients alpha/beta.
  Matrix q(n, m);
  std::vector<double> alpha, beta;
  alpha.reserve(static_cast<std::size_t>(m));
  beta.reserve(static_cast<std::size_t>(m));

  Rng rng(options.seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  rng.FillGaussian(v.data(), v.size());
  {
    const double nrm = Nrm2(v.data(), n);
    for (Index i = 0; i < n; ++i) q(i, 0) = v[static_cast<std::size_t>(i)] / nrm;
  }

  LanczosResult result;
  std::vector<double> w(static_cast<std::size_t>(n));
  Index built = 0;
  for (Index j = 0; j < m; ++j) {
    // w = A q_j.
    GemvRaw(Trans::kNo, n, n, 1.0, a.data(), n, q.col_data(j), 0.0, w.data());
    ++result.matvecs;
    const double aj = Dot(w.data(), q.col_data(j), n);
    alpha.push_back(aj);
    // w -= alpha_j q_j + beta_{j-1} q_{j-1}.
    Axpy(-aj, q.col_data(j), w.data(), n);
    if (j > 0) Axpy(-beta.back(), q.col_data(j - 1), w.data(), n);
    // Full reorthogonalization against the whole basis (twice is enough).
    for (int pass = 0; pass < 2; ++pass) {
      for (Index i = 0; i <= j; ++i) {
        const double c = Dot(w.data(), q.col_data(i), n);
        Axpy(-c, q.col_data(i), w.data(), n);
      }
    }
    built = j + 1;
    const double bj = Nrm2(w.data(), n);
    if (j + 1 == m) break;
    if (bj < 1e-14 * std::fabs(alpha[0]) + 1e-300) {
      // Invariant subspace found early.
      break;
    }
    // Convergence test: the Ritz pair (theta_i, y_i) of the j+1 step
    // tridiagonal has residual ||A x_i - theta_i x_i|| = beta_j * |y_i[j]|.
    if (built >= k) {
      Matrix t(built, built);
      for (Index i = 0; i < built; ++i) {
        t(i, i) = alpha[static_cast<std::size_t>(i)];
        if (i + 1 < built) {
          t(i, i + 1) = beta[static_cast<std::size_t>(i)];
          t(i + 1, i) = beta[static_cast<std::size_t>(i)];
        }
      }
      EigenSymResult small = EigenSym(t);
      const double scale = std::max(std::fabs(small.values[0]), 1e-300);
      bool all_converged = true;
      for (Index i = 0; i < k; ++i) {
        const double residual = bj * std::fabs(small.vectors(built - 1, i));
        if (residual > options.tolerance * scale) {
          all_converged = false;
          break;
        }
      }
      if (all_converged) break;
    }
    beta.push_back(bj);
    double* next = q.col_data(j + 1);
    for (Index i = 0; i < n; ++i) next[i] = w[static_cast<std::size_t>(i)] / bj;
  }

  if (built < k) {
    return Status::NumericalError(
        "Lanczos basis collapsed before reaching k directions");
  }

  // Ritz extraction: eigen-decompose the built x built tridiagonal.
  Matrix t(built, built);
  for (Index i = 0; i < built; ++i) {
    t(i, i) = alpha[static_cast<std::size_t>(i)];
    if (i + 1 < built) {
      t(i, i + 1) = beta[static_cast<std::size_t>(i)];
      t(i + 1, i) = beta[static_cast<std::size_t>(i)];
    }
  }
  EigenSymResult eig = EigenSym(t);

  result.values.assign(eig.values.begin(), eig.values.begin() + k);
  result.vectors = Multiply(q.LeftCols(built), eig.vectors.LeftCols(k));
  return result;
}

}  // namespace dtucker
