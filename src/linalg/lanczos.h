// Lanczos iteration for top-k eigenpairs of symmetric matrices.
//
// An alternative extreme-eigenpair engine to the randomized subspace
// iteration in TopEigenvectorsSym: builds a Krylov tridiagonalization with
// full reorthogonalization and extracts Ritz pairs. Converges faster per
// matrix-vector product when the spectrum has isolated leading
// eigenvalues; used as a cross-check in tests and selectable by
// performance-sensitive callers.
#ifndef DTUCKER_LINALG_LANCZOS_H_
#define DTUCKER_LINALG_LANCZOS_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dtucker {

struct LanczosOptions {
  Index max_subspace = 0;   // 0: min(n, max(2k + 10, 30)).
  double tolerance = 1e-12; // Relative Ritz-residual stop.
  uint64_t seed = 7;        // Start vector.
};

struct LanczosResult {
  std::vector<double> values;  // k Ritz values, descending.
  Matrix vectors;              // n x k Ritz vectors.
  int matvecs = 0;             // Matrix-vector products consumed.
};

// Computes the k largest eigenpairs of symmetric `a`. Requires
// 1 <= k <= n. Ties/clusters are handled by the full-reorthogonalized
// basis; for k close to n, prefer EigenSym.
Result<LanczosResult> LanczosTopEigenpairs(const Matrix& a, Index k,
                                           const LanczosOptions& options = {});

}  // namespace dtucker

#endif  // DTUCKER_LINALG_LANCZOS_H_
