#include "linalg/lu.h"

#include <cmath>

namespace dtucker {

namespace {

// In-place factorization PA = LU; returns pivot rows or an error status.
// On success `a` holds L (unit diagonal, below) and U (upper).
Status Factorize(Matrix* a, std::vector<Index>* pivots, int* sign) {
  const Index n = a->rows();
  if (n != a->cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  pivots->resize(static_cast<std::size_t>(n));
  *sign = 1;
  for (Index k = 0; k < n; ++k) {
    // Partial pivot: largest |a(i,k)| for i >= k.
    Index p = k;
    double best = std::fabs((*a)(k, k));
    for (Index i = k + 1; i < n; ++i) {
      double v = std::fabs((*a)(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      return Status::NumericalError("singular matrix in LU factorization");
    }
    (*pivots)[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      *sign = -*sign;
      for (Index j = 0; j < n; ++j) std::swap((*a)(k, j), (*a)(p, j));
    }
    const double inv = 1.0 / (*a)(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const double lik = (*a)(i, k) * inv;
      (*a)(i, k) = lik;
      for (Index j = k + 1; j < n; ++j) (*a)(i, j) -= lik * (*a)(k, j);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Matrix> SolveLu(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("LU solve: rhs row mismatch");
  }
  Matrix lu = a;
  std::vector<Index> pivots;
  int sign = 0;
  DT_RETURN_NOT_OK(Factorize(&lu, &pivots, &sign));

  const Index n = a.rows();
  Matrix x = b;
  // Apply row permutation.
  for (Index k = 0; k < n; ++k) {
    Index p = pivots[static_cast<std::size_t>(k)];
    if (p != k) {
      for (Index c = 0; c < x.cols(); ++c) std::swap(x(k, c), x(p, c));
    }
  }
  // Forward substitution (unit lower).
  for (Index c = 0; c < x.cols(); ++c) {
    for (Index i = 1; i < n; ++i) {
      double s = x(i, c);
      for (Index j = 0; j < i; ++j) s -= lu(i, j) * x(j, c);
      x(i, c) = s;
    }
  }
  // Back substitution (upper).
  for (Index c = 0; c < x.cols(); ++c) {
    for (Index i = n - 1; i >= 0; --i) {
      double s = x(i, c);
      for (Index j = i + 1; j < n; ++j) s -= lu(i, j) * x(j, c);
      x(i, c) = s / lu(i, i);
    }
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  return SolveLu(a, Matrix::Identity(a.rows()));
}

Result<double> Determinant(const Matrix& a) {
  Matrix lu = a;
  std::vector<Index> pivots;
  int sign = 0;
  Status st = Factorize(&lu, &pivots, &sign);
  if (!st.ok()) {
    if (st.code() == StatusCode::kNumericalError) return 0.0;  // Singular.
    return st;
  }
  double det = sign;
  for (Index i = 0; i < a.rows(); ++i) det *= lu(i, i);
  return det;
}

}  // namespace dtucker
