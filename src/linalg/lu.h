// LU factorization with partial pivoting, linear solves, and inverses.
#ifndef DTUCKER_LINALG_LU_H_
#define DTUCKER_LINALG_LU_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dtucker {

// Solves A X = B with partial-pivoted Gaussian elimination.
// Returns NumericalError on (numerically) singular A.
Result<Matrix> SolveLu(const Matrix& a, const Matrix& b);

// A^{-1} via SolveLu against the identity. Prefer SolveLu when possible.
Result<Matrix> Inverse(const Matrix& a);

// Determinant via the LU factorization (small matrices).
Result<double> Determinant(const Matrix& a);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_LU_H_
