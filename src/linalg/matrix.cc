#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/rng.h"

namespace dtucker {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(static_cast<Index>(rows.size())),
      cols_(rows.size() == 0 ? 0 : static_cast<Index>(rows.begin()->size())),
      data_(static_cast<std::size_t>(rows_ * cols_)) {
  Index i = 0;
  for (const auto& row : rows) {
    DT_CHECK_EQ(static_cast<Index>(row.size()), cols_)
        << "ragged initializer list";
    Index j = 0;
    for (double v : row) {
      (*this)(i, j) = v;
      ++j;
    }
    ++i;
  }
}

Matrix Matrix::Identity(Index n) {
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Constant(Index rows, Index cols, double value) {
  Matrix m = Uninitialized(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::GaussianRandom(Index rows, Index cols, Rng& rng) {
  Matrix m = Uninitialized(rows, cols);
  rng.FillGaussian(m.data(), static_cast<std::size_t>(m.size()));
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m = Uninitialized(static_cast<Index>(values.size()), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m.data()[i] = values[i];
  return m;
}

Matrix Matrix::Diagonal(const std::vector<double>& diag) {
  Index n = static_cast<Index>(diag.size());
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = diag[static_cast<std::size_t>(i)];
  return m;
}

void Matrix::Fill(double value) {
  for (auto& v : data_) v = value;
}

Matrix Matrix::Transposed() const {
  Matrix t = Uninitialized(cols_, rows_);
  for (Index j = 0; j < cols_; ++j) {
    const double* src = col_data(j);
    for (Index i = 0; i < rows_; ++i) t(j, i) = src[i];
  }
  return t;
}

Matrix Matrix::Block(Index r0, Index c0, Index nr, Index nc) const {
  DT_CHECK(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0 && r0 + nr <= rows_ &&
           c0 + nc <= cols_)
      << "block (" << r0 << "," << c0 << ")+" << nr << "x" << nc
      << " out of range for " << rows_ << "x" << cols_;
  Matrix b = Uninitialized(nr, nc);
  for (Index j = 0; j < nc; ++j) {
    const double* src = col_data(c0 + j) + r0;
    double* dst = b.col_data(j);
    for (Index i = 0; i < nr; ++i) dst[i] = src[i];
  }
  return b;
}

void Matrix::SetBlock(Index r0, Index c0, const Matrix& block) {
  DT_CHECK(r0 >= 0 && c0 >= 0 && r0 + block.rows() <= rows_ &&
           c0 + block.cols() <= cols_)
      << "SetBlock out of range";
  for (Index j = 0; j < block.cols(); ++j) {
    const double* src = block.col_data(j);
    double* dst = col_data(c0 + j) + r0;
    for (Index i = 0; i < block.rows(); ++i) dst[i] = src[i];
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DT_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DT_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::FrobeniusNorm() const { return std::sqrt(SquaredNorm()); }

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  char buf[64];
  for (Index i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[[" : " [");
    for (Index j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "% .*f", precision, (*this)(i, j));
      os << buf << (j + 1 < cols_ ? ", " : "");
    }
    os << (i + 1 < rows_ ? "]\n" : "]]");
  }
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      if (std::fabs(a(i, j) - b(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace dtucker
