// Dense column-major matrix of doubles.
//
// This is the workhorse type of the whole library. Storage is column-major
// (element (i,j) at data[i + j*rows]) to match the tensor layout in
// src/tensor/ (mode-1-fastest), which makes mode-1 unfoldings and slice
// matrices zero-copy views over tensor memory.
#ifndef DTUCKER_LINALG_MATRIX_H_
#define DTUCKER_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace dtucker {

class Rng;

using Index = std::ptrdiff_t;

namespace internal {

// std::allocator whose default-construct is a no-op, so the storage vector
// can be sized without a zero-fill pass. Matrix's ordinary constructors
// still zero explicitly; only Matrix::Uninitialized skips it.
template <class T>
struct DefaultInitAllocator : std::allocator<T> {
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  template <class U>
  void construct(U* p) {
    ::new (static_cast<void*>(p)) U;
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace internal

class Matrix {
 public:
  // An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  // Zero-initialized contents.
  Matrix(Index rows, Index cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {
    DT_DCHECK(rows >= 0);
    DT_DCHECK(cols >= 0);
  }

  // Storage without the zero-fill pass, for hot paths that overwrite every
  // element before any read (e.g. thin-Q formation, copy-and-scale
  // factories). Reading an element before writing it is undefined.
  static Matrix Uninitialized(Index rows, Index cols) {
    DT_DCHECK(rows >= 0);
    DT_DCHECK(cols >= 0);
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_.resize(static_cast<std::size_t>(rows * cols));
    return m;
  }

  // Row-major initializer list for small literals in tests:
  //   Matrix m({{1, 2}, {3, 4}});
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  static Matrix Zero(Index rows, Index cols) { return Matrix(rows, cols); }
  static Matrix Identity(Index n);
  static Matrix Constant(Index rows, Index cols, double value);
  // I.i.d. standard normal entries drawn from `rng`.
  static Matrix GaussianRandom(Index rows, Index cols, Rng& rng);
  // Column vector from data.
  static Matrix ColumnVector(const std::vector<double>& values);
  static Matrix Diagonal(const std::vector<double>& diag);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(Index i, Index j) {
    DT_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }
  double operator()(Index i, Index j) const {
    DT_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* col_data(Index j) { return data_.data() + j * rows_; }
  const double* col_data(Index j) const { return data_.data() + j * rows_; }

  // Fills all entries with `value`.
  void Fill(double value);
  void SetZero() { Fill(0.0); }

  // Returns the transpose as a new matrix.
  Matrix Transposed() const;

  // Sub-matrix copy: rows [r0, r0+nr), cols [c0, c0+nc).
  Matrix Block(Index r0, Index c0, Index nr, Index nc) const;
  // Writes `block` into this matrix at (r0, c0). Shapes must fit.
  void SetBlock(Index r0, Index c0, const Matrix& block);

  // First `k` columns / rows as a copy.
  Matrix LeftCols(Index k) const { return Block(0, 0, rows_, k); }
  Matrix TopRows(Index k) const { return Block(0, 0, k, cols_); }
  Matrix Col(Index j) const { return Block(0, j, rows_, 1); }
  Matrix Row(Index i) const { return Block(i, 0, 1, cols_); }

  // Elementwise arithmetic (shapes must match).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  // Frobenius norm and its square.
  double FrobeniusNorm() const;
  double SquaredNorm() const;

  // Maximum absolute entry.
  double MaxAbs() const;

  // Human-readable rendering (small matrices; tests & debugging).
  std::string ToString(int precision = 4) const;

  // Logical payload size in bytes (for memory accounting).
  std::size_t ByteSize() const { return data_.size() * sizeof(double); }

 private:
  Index rows_;
  Index cols_;
  std::vector<double, internal::DefaultInitAllocator<double>> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

// True if shapes match and all entries differ by at most `tol`.
bool AlmostEqual(const Matrix& a, const Matrix& b, double tol = 1e-10);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_MATRIX_H_
