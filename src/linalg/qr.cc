#include "linalg/qr.h"

#include <cmath>
#include <vector>

#include "linalg/blas.h"

namespace dtucker {

namespace {

// In-place Householder factorization (LAPACK dgeqrf layout): on return the
// upper triangle of `a` holds R and the columns below the diagonal hold the
// Householder vectors; `tau[k]` holds the reflector coefficients.
void HouseholderFactorize(Matrix* a, std::vector<double>* tau) {
  const Index m = a->rows();
  const Index n = a->cols();
  const Index p = std::min(m, n);
  tau->assign(static_cast<std::size_t>(p), 0.0);

  for (Index k = 0; k < p; ++k) {
    double* col = a->col_data(k) + k;
    const Index len = m - k;
    double alpha = col[0];
    double xnorm = len > 1 ? Nrm2(col + 1, len - 1) : 0.0;
    if (xnorm == 0.0) {
      (*tau)[static_cast<std::size_t>(k)] = 0.0;
      continue;
    }
    double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
    double t = (beta - alpha) / beta;
    double scale = 1.0 / (alpha - beta);
    Scal(scale, col + 1, len - 1);
    (*tau)[static_cast<std::size_t>(k)] = t;
    col[0] = beta;

    // Apply (I - tau v v^T) to the trailing columns; v = [1; col[1:]].
    for (Index j = k + 1; j < n; ++j) {
      double* cj = a->col_data(j) + k;
      double s = cj[0] + Dot(col + 1, cj + 1, len - 1);
      s *= t;
      cj[0] -= s;
      Axpy(-s, col + 1, cj + 1, len - 1);
    }
  }
}

// Forms the thin Q (m x p) from the factorization produced above.
Matrix FormQ(const Matrix& fact, const std::vector<double>& tau) {
  const Index m = fact.rows();
  const Index p = static_cast<Index>(tau.size());
  Matrix q(m, p);
  for (Index j = 0; j < p; ++j) q(j, j) = 1.0;

  // Apply reflectors in reverse order: Q = H_0 H_1 ... H_{p-1} * I.
  for (Index k = p - 1; k >= 0; --k) {
    const double t = tau[static_cast<std::size_t>(k)];
    if (t == 0.0) continue;
    const double* v = fact.col_data(k) + k;  // v[0] implicit 1.
    const Index len = m - k;
    for (Index j = k; j < p; ++j) {
      double* cj = q.col_data(j) + k;
      double s = cj[0] + Dot(v + 1, cj + 1, len - 1);
      s *= t;
      cj[0] -= s;
      Axpy(-s, v + 1, cj + 1, len - 1);
    }
  }
  return q;
}

}  // namespace

QrResult ThinQr(const Matrix& a) {
  Matrix fact = a;
  std::vector<double> tau;
  HouseholderFactorize(&fact, &tau);

  const Index p = static_cast<Index>(tau.size());
  Matrix r(p, a.cols());
  for (Index j = 0; j < a.cols(); ++j) {
    const Index top = std::min(j + 1, p);
    for (Index i = 0; i < top; ++i) r(i, j) = fact(i, j);
  }
  return QrResult{FormQ(fact, tau), std::move(r)};
}

Matrix QrOrthonormalize(const Matrix& a) {
  Matrix fact = a;
  std::vector<double> tau;
  HouseholderFactorize(&fact, &tau);
  return FormQ(fact, tau);
}

Matrix SolveUpperTriangular(const Matrix& r, const Matrix& b) {
  const Index n = r.rows();
  DT_CHECK_EQ(n, r.cols()) << "R must be square";
  DT_CHECK_EQ(n, b.rows()) << "rhs row mismatch";
  Matrix x = b;
  for (Index c = 0; c < x.cols(); ++c) {
    double* xc = x.col_data(c);
    for (Index i = n - 1; i >= 0; --i) {
      double s = xc[i];
      for (Index j = i + 1; j < n; ++j) s -= r(i, j) * xc[j];
      DT_CHECK(r(i, i) != 0.0) << "singular triangular system";
      xc[i] = s / r(i, i);
    }
  }
  return x;
}

Matrix SolveLowerTriangular(const Matrix& l, const Matrix& b) {
  const Index n = l.rows();
  DT_CHECK_EQ(n, l.cols()) << "L must be square";
  DT_CHECK_EQ(n, b.rows()) << "rhs row mismatch";
  Matrix x = b;
  for (Index c = 0; c < x.cols(); ++c) {
    double* xc = x.col_data(c);
    for (Index i = 0; i < n; ++i) {
      double s = xc[i];
      for (Index j = 0; j < i; ++j) s -= l(i, j) * xc[j];
      DT_CHECK(l(i, i) != 0.0) << "singular triangular system";
      xc[i] = s / l(i, i);
    }
  }
  return x;
}

}  // namespace dtucker
