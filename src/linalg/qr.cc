#include "linalg/qr.h"

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "linalg/blas.h"

namespace dtucker {

namespace {

// Thread-local scratch for the factorization copy (dgeqrf layout), the
// dense reflector matrix V, and the block reflector workspace W (the
// TlsPackBuffer pattern of the GEMM engine): consecutive factorizations —
// e.g. one ThinQr per slice inside the rSVD — reuse the same pages instead
// of faulting in fresh zeroed ones each call.
double* TlsQrScratchFact(std::size_t doubles) {
  static thread_local std::vector<double> buf;
  if (buf.size() < doubles) buf.resize(doubles);
  return buf.data();
}

double* TlsQrScratchV(std::size_t doubles) {
  static thread_local std::vector<double> buf;
  if (buf.size() < doubles) buf.resize(doubles);
  return buf.data();
}

double* TlsQrScratchW(std::size_t doubles) {
  static thread_local std::vector<double> buf;
  if (buf.size() < doubles) buf.resize(doubles);
  return buf.data();
}

// Vectorized dot product for the leaf factorization only. Dot() in blas.cc
// is deliberately scalar (no -ffast-math, so the compiler must preserve the
// serial reduction order); the leaves sit on the critical path of the
// blocked factorization, and a reordered reduction is fine there because
// leaf-blocked shapes are not bit-compared against the unblocked reference
// — single-panel shapes (min(m, n) < 2 * kQrPanelLeaf), which ARE
// bit-compared, never reach this function.
#if defined(__GNUC__) || defined(__clang__)
#if defined(__AVX512F__)
constexpr Index kQrVecLen = 8;
#elif defined(__AVX__)
constexpr Index kQrVecLen = 4;
#else
constexpr Index kQrVecLen = 2;
#endif
// aligned(8): the reflector tails start at arbitrary 8-byte offsets.
typedef double QrVec __attribute__((
    vector_size(kQrVecLen * sizeof(double)), aligned(8)));

double DotVec(const double* x, const double* y, Index n) {
  QrVec acc0 = QrVec{};
  QrVec acc1 = QrVec{};
  Index i = 0;
  for (; i + 2 * kQrVecLen <= n; i += 2 * kQrVecLen) {
    acc0 += *reinterpret_cast<const QrVec*>(x + i) *
            *reinterpret_cast<const QrVec*>(y + i);
    acc1 += *reinterpret_cast<const QrVec*>(x + i + kQrVecLen) *
            *reinterpret_cast<const QrVec*>(y + i + kQrVecLen);
  }
  acc0 += acc1;
  double s = 0.0;
  for (Index l = 0; l < kQrVecLen; ++l) s += acc0[l];
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}
#else
double DotVec(const double* x, const double* y, Index n) {
  return Dot(x, y, n);
}
#endif

// Unblocked Householder factorization of columns [k0, k1) of the m-row
// column-major array `a` (LAPACK dgeqrf layout): on return the upper
// triangle holds R and the columns below the diagonal hold the Householder
// vectors; `tau[k]` holds the reflector coefficients. Each reflector is
// applied immediately to columns [k+1, cend) — the leaf for the blocked
// driver, the whole matrix for the unblocked reference. kVectorDot selects
// the reduction used in the apply step: the unblocked reference and narrow
// panels keep the scalar Dot (bit-reproducible against the reference), the
// leaves of wide panels use the vectorized one.
template <bool kVectorDot>
void FactorPanelImpl(double* a, Index m, Index k0, Index k1, Index cend,
                     double* tau) {
  for (Index k = k0; k < k1; ++k) {
    double* col = a + k * m + k;
    const Index len = m - k;
    double alpha = col[0];
    double xnorm = len > 1 ? Nrm2(col + 1, len - 1) : 0.0;
    if (xnorm == 0.0) {
      tau[k] = 0.0;
      continue;
    }
    double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
    double t = (beta - alpha) / beta;
    Scal(1.0 / (alpha - beta), col + 1, len - 1);
    tau[k] = t;
    col[0] = beta;

    // Apply (I - tau v v^T) to the trailing columns; v = [1; col[1:]].
    for (Index j = k + 1; j < cend; ++j) {
      double* cj = a + j * m + k;
      double s = cj[0] + (kVectorDot ? DotVec(col + 1, cj + 1, len - 1)
                                     : Dot(col + 1, cj + 1, len - 1));
      s *= t;
      cj[0] -= s;
      Axpy(-s, col + 1, cj + 1, len - 1);
    }
  }
}

void FactorPanel(Matrix* a, Index k0, Index k1, Index cend,
                 std::vector<double>* tau) {
  FactorPanelImpl<false>(a->data(), a->rows(), k0, k1, cend, tau->data());
}

// Materializes columns [c0, c1) of the dense unit lower-trapezoidal V into
// scratch storage: explicit zeros above the diagonal, explicit unit, the
// reflector tail from the dgeqrf layout. Each element is written exactly
// once, so the scratch needs no prior zeroing. (A reflector skipped with
// tau = 0 had a zero tail, so its V column comes out as e_c.)
void MaterializeV(const double* fact, Index m, Index c0, Index c1, double* v,
                  Index ldv) {
  for (Index c = c0; c < c1; ++c) {
    double* dst = v + c * ldv;
    std::memset(dst, 0, static_cast<std::size_t>(c) * sizeof(double));
    dst[c] = 1.0;
    std::memcpy(dst + c + 1, fact + c * m + c + 1,
                static_cast<std::size_t>(m - c - 1) * sizeof(double));
  }
}

// dlarft, forward columnwise, from a precomputed Gram block: column i of
// the kb x kb upper-triangular T is
//   T(0:i, i) = -tau_i * T(0:i, 0:i) * g(0:i, i),   T(i, i) = tau_i,
// where column i of `g` (leading dimension ldg) holds V^T v_i. Only the
// upper triangle of T is written (plus explicit zeros above a tau = 0
// diagonal, which keeps that reflector's whole T row at exact zero so its
// V column never contributes).
void BuildTFromGram(const double* tau, const double* g, Index ldg, Index kb,
                    double* t, Index ldt) {
  for (Index i = 0; i < kb; ++i) {
    const double ti = tau[i];
    double* tcol = t + i * ldt;
    tcol[i] = ti;
    if (i == 0) continue;
    if (ti == 0.0) {
      for (Index j = 0; j < i; ++j) tcol[j] = 0.0;
      continue;
    }
    const double* gi = g + static_cast<std::size_t>(i) * ldg;
    for (Index j = 0; j < i; ++j) tcol[j] = -ti * gi[j];
    TrmmUpperRaw(Trans::kNo, i, 1, t, ldt, tcol, ldt);
  }
}

// C := (I - V op(T) V^T) C for the len x nc block at `c` (leading dim ldc)
// — op(T) = T applies the aggregate's H_1...H_kb, op(T) = T^T its
// transpose. Three level-3 steps: W = V^T C (the tall-k A^T B kernel),
// W := op(T) W, C -= V W. V and T are raw views into the factorization's
// scratch storage.
void ApplyBlockReflector(const double* v, Index ldv, Index len, Index kb,
                         const double* t, Index ldt, Trans trans_t, double* c,
                         Index ldc, Index nc) {
  double* w = TlsQrScratchW(static_cast<std::size_t>(kb) * nc);
  GemmRaw(Trans::kYes, Trans::kNo, kb, nc, len, 1.0, v, ldv, c, ldc, 0.0, w,
          kb);
  TrmmUpperRaw(trans_t, kb, nc, t, ldt, w, kb);
  GemmRaw(Trans::kNo, Trans::kNo, len, nc, kb, -1.0, v, ldv, w, kb, 1.0, c,
          ldc);
}

// A factorization plus the whole-matrix compact-WY aggregate
// H_1 H_2 ... H_p = I - V T V^T: `fact` is the dgeqrf-layout factorization
// and V the dense unit lower-trapezoidal reflector matrix (m x p, zeros
// made explicit so every application is a plain GEMM) — both live in
// thread-local scratch, valid until the next factorization on this thread —
// and T the p x p upper-triangular factor, assembled panel by panel with
// the block-merge rule
//   T <- [[T_a, -T_a (V_a^T V_b) T_b], [0, T_b]].
// A single T for all of Q is what lets FormQBlocked collapse to one GEMM.
struct BlockedFactorization {
  Index m = 0;
  Index n = 0;
  const double* fact = nullptr;  // m x n, dgeqrf layout (scratch).
  Matrix t;
  std::vector<double> tau;
  const double* v = nullptr;  // m x p, leading dimension m (scratch).
};

Index PanelWidth(Index p) {
  return p >= kQrWidePanelMin ? kQrPanelWidthLarge : kQrPanelWidthSmall;
}

BlockedFactorization FactorizeBlocked(const Matrix& in) {
  const Index m = in.rows();
  const Index n = in.cols();
  const Index p = std::min(m, n);
  const Index nb = PanelWidth(p);

  BlockedFactorization f;
  f.m = m;
  f.n = n;
  f.tau.assign(static_cast<std::size_t>(p), 0.0);
  f.t = Matrix(p, p);  // Zero-initialized: strictly lower part stays zero.
  double* a = TlsQrScratchFact(static_cast<std::size_t>(m) * n);
  std::memcpy(a, in.data(), static_cast<std::size_t>(m) * n * sizeof(double));
  f.fact = a;
  double* v = TlsQrScratchV(static_cast<std::size_t>(m) * p);
  f.v = v;
  // Scratch for one Gram block row g = V_b^T V(:, 0:k1) and its transposed
  // leading columns (the merge's cross product).
  std::vector<double> g(static_cast<std::size_t>(nb) * p);
  std::vector<double> cross(static_cast<std::size_t>(p) * nb);

  for (Index k0 = 0; k0 < p; k0 += nb) {
    const Index kb = std::min(nb, p - k0);
    const Index k1 = k0 + kb;

    if (kb >= 2 * kQrPanelLeaf) {
      // Two-level panel: factor kQrPanelLeaf-column leaves with the
      // unblocked code, then push each leaf into the rest of the panel as
      // a block reflector, so the level-2 work scales with the leaf width,
      // not the panel width.
      for (Index l0 = k0; l0 < k1; l0 += kQrPanelLeaf) {
        const Index lb = std::min(kQrPanelLeaf, k1 - l0);
        const Index l1 = l0 + lb;
        FactorPanelImpl<true>(a, m, l0, l1, l1, f.tau.data());
        MaterializeV(a, m, l0, l1, v, m);
        if (l1 < k1) {
          double gleaf[kQrPanelLeaf * kQrPanelLeaf];
          double tleaf[kQrPanelLeaf * kQrPanelLeaf];
          const double* vleaf = v + static_cast<std::size_t>(l0) * m + l0;
          GemmRaw(Trans::kYes, Trans::kNo, lb, lb, m - l0, 1.0, vleaf, m,
                  vleaf, m, 0.0, gleaf, lb);
          BuildTFromGram(f.tau.data() + l0, gleaf, lb, lb, tleaf, lb);
          ApplyBlockReflector(vleaf, m, m - l0, lb, tleaf, lb, Trans::kYes,
                              a + l1 * m + l0, m, k1 - l1);
        }
      }
    } else {
      // Narrow panel (possible only when p < 2 * kQrPanelLeaf, or for the
      // ragged last panel): plain level-2 factorization with the scalar
      // reduction. For a single-panel matrix this reproduces the unblocked
      // R bit for bit.
      FactorPanelImpl<false>(a, m, k0, k1, k1, f.tau.data());
      MaterializeV(a, m, k0, k1, v, m);
    }

    // One Gram block row against every reflector so far: columns [0, k0)
    // are the cross products the T merge needs, columns [k0, k1) the
    // panel-internal products the T diagonal block needs. All those
    // V columns are zero above row k0, so the products start there.
    GemmRaw(Trans::kYes, Trans::kNo, kb, k1, m - k0, 1.0,
            v + static_cast<std::size_t>(k0) * m + k0, m, v + k0, m, 0.0,
            g.data(), kb);

    // T diagonal block (dlarft) from the panel-internal part of g.
    double* tdiag = f.t.col_data(k0) + k0;
    BuildTFromGram(f.tau.data() + k0,
                   g.data() + static_cast<std::size_t>(k0) * kb, kb, kb,
                   tdiag, f.t.rows());

    // Merge into the global aggregate:
    // T(0:k0, k0:k1) = -T_prev * (V_a^T V_b) * T_b, with V_a^T V_b the
    // transpose of g's leading k0 columns.
    if (k0 > 0) {
      for (Index j = 0; j < kb; ++j) {
        for (Index i = 0; i < k0; ++i) {
          cross[static_cast<std::size_t>(j) * k0 + i] =
              g[static_cast<std::size_t>(i) * kb + j];
        }
      }
      // Dense GEMM is safe: T_b's strictly lower part is exact zeros.
      GemmRaw(Trans::kNo, Trans::kNo, k0, kb, kb, -1.0, cross.data(), k0,
              tdiag, p, 0.0, f.t.col_data(k0), p);
      TrmmUpperRaw(Trans::kNo, k0, kb, f.t.data(), p, f.t.col_data(k0), p);
    }

    // Trailing update with the transposed aggregate: R's remaining columns
    // are Q^T A = (I - V T^T V^T) A applied panel by panel.
    if (k1 < n) {
      ApplyBlockReflector(v + static_cast<std::size_t>(k0) * m + k0, m,
                          m - k0, kb, tdiag, p, Trans::kYes, a + k1 * m + k0,
                          m, n - k1);
    }
  }
  return f;
}

// Forms the thin Q (m x p) in one sweep: Q = (I - V T V^T) E with E the
// first p columns of the identity, so V^T E is just V's leading p x p
// block transposed (unit upper triangular) and
//   Q = E - V (T V1^T)
// — a p x p triangular multiply plus a single m x p x p GEMM. This is the
// payoff of carrying one aggregate T for the whole factorization: Q
// formation runs entirely on the packed GEMM instead of reapplying panels.
Matrix FormQBlocked(const BlockedFactorization& f) {
  const Index m = f.m;
  const Index p = static_cast<Index>(f.tau.size());
  Matrix w(p, p);  // Zero-initialized: strictly lower part stays zero.
  for (Index j = 0; j < p; ++j) {
    double* wc = w.col_data(j);
    const double* vrow = f.v + j;  // Row j of V, stride m.
    for (Index i = 0; i <= j; ++i) {
      wc[i] = vrow[static_cast<std::size_t>(i) * m];
    }
  }
  TrmmUpperRaw(Trans::kNo, p, p, f.t.data(), p, w.data(), p);
  // beta = 0 on uninitialized storage: the packed GEMM's overwrite path
  // makes its single pass over Q the only pass — no zero-fill, no C read.
  Matrix q = Matrix::Uninitialized(m, p);
  GemmRaw(Trans::kNo, Trans::kNo, m, p, p, -1.0, f.v, m, w.data(), p, 0.0,
          q.data(), m);
  for (Index j = 0; j < p; ++j) q(j, j) += 1.0;
  return q;
}

// Copies R (p x n upper triangle) out of a dgeqrf-layout factorization.
Matrix ExtractR(const double* fact, Index m, Index n, Index p) {
  Matrix r(p, n);
  for (Index j = 0; j < n; ++j) {
    const Index top = std::min(j + 1, p);
    const double* src = fact + j * m;
    double* dst = r.col_data(j);
    for (Index i = 0; i < top; ++i) dst[i] = src[i];
  }
  return r;
}

Matrix ExtractR(const Matrix& fact, Index p) {
  return ExtractR(fact.data(), fact.rows(), fact.cols(), p);
}

// Unblocked thin-Q formation (reference path and small-matrix fast path):
// apply reflectors in reverse order, Q = H_0 H_1 ... H_{p-1} * I.
Matrix FormQUnblocked(const Matrix& fact, const std::vector<double>& tau) {
  const Index m = fact.rows();
  const Index p = static_cast<Index>(tau.size());
  Matrix q(m, p);
  for (Index j = 0; j < p; ++j) q(j, j) = 1.0;

  for (Index k = p - 1; k >= 0; --k) {
    const double t = tau[static_cast<std::size_t>(k)];
    if (t == 0.0) continue;
    const double* v = fact.col_data(k) + k;  // v[0] implicit 1.
    const Index len = m - k;
    for (Index j = k; j < p; ++j) {
      double* cj = q.col_data(j) + k;
      double s = cj[0] + Dot(v + 1, cj + 1, len - 1);
      s *= t;
      cj[0] -= s;
      Axpy(-s, v + 1, cj + 1, len - 1);
    }
  }
  return q;
}

bool UseUnblocked(const Matrix& a, QrVariant variant) {
  switch (variant) {
    case QrVariant::kBlocked:
      return false;
    case QrVariant::kScalar:
      return true;
    case QrVariant::kAuto:
      break;
  }
  return std::min(a.rows(), a.cols()) <= kQrUnblockedMax;
}

}  // namespace

QrResult ThinQr(const Matrix& a, QrVariant variant) {
  static Counter& calls = MetricCounter("qr.calls");
  calls.Add(1);
  DT_TRACE_SPAN("qr.thin");
  if (UseUnblocked(a, variant)) return ThinQrUnblocked(a);
  BlockedFactorization f = FactorizeBlocked(a);
  Matrix r = ExtractR(f.fact, f.m, f.n, static_cast<Index>(f.tau.size()));
  return QrResult{FormQBlocked(f), std::move(r)};
}

Matrix QrOrthonormalize(const Matrix& a, QrVariant variant) {
  static Counter& calls = MetricCounter("qr.calls");
  calls.Add(1);
  DT_TRACE_SPAN("qr.orthonormalize");
  if (UseUnblocked(a, variant)) return QrOrthonormalizeUnblocked(a);
  return FormQBlocked(FactorizeBlocked(a));
}

QrResult ThinQrUnblocked(const Matrix& a) {
  Matrix fact = a;
  const Index p = std::min(a.rows(), a.cols());
  std::vector<double> tau(static_cast<std::size_t>(p), 0.0);
  FactorPanel(&fact, 0, p, a.cols(), &tau);
  Matrix r = ExtractR(fact, p);
  return QrResult{FormQUnblocked(fact, tau), std::move(r)};
}

Matrix QrOrthonormalizeUnblocked(const Matrix& a) {
  Matrix fact = a;
  const Index p = std::min(a.rows(), a.cols());
  std::vector<double> tau(static_cast<std::size_t>(p), 0.0);
  FactorPanel(&fact, 0, p, a.cols(), &tau);
  return FormQUnblocked(fact, tau);
}

Matrix SolveUpperTriangular(const Matrix& r, const Matrix& b) {
  const Index n = r.rows();
  DT_CHECK_EQ(n, r.cols()) << "R must be square";
  DT_CHECK_EQ(n, b.rows()) << "rhs row mismatch";
  Matrix x = b;
  TrsmUpperRaw(n, x.cols(), r.data(), n, x.data(), n);
  return x;
}

Matrix SolveLowerTriangular(const Matrix& l, const Matrix& b) {
  const Index n = l.rows();
  DT_CHECK_EQ(n, l.cols()) << "L must be square";
  DT_CHECK_EQ(n, b.rows()) << "rhs row mismatch";
  Matrix x = b;
  TrsmLowerRaw(n, x.cols(), l.data(), n, x.data(), n);
  return x;
}

}  // namespace dtucker
