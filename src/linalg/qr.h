// Householder QR decomposition.
//
// ThinQr(A) for A (m x n) returns Q (m x min(m,n)) with orthonormal columns
// and upper-triangular R (min(m,n) x n) such that A = Q R. This is the
// orthogonalization primitive used by randomized range finders, HOOI, and
// the D-Tucker iteration phase.
#ifndef DTUCKER_LINALG_QR_H_
#define DTUCKER_LINALG_QR_H_

#include "linalg/matrix.h"

namespace dtucker {

struct QrResult {
  Matrix q;  // m x min(m,n), orthonormal columns.
  Matrix r;  // min(m,n) x n, upper triangular.
};

QrResult ThinQr(const Matrix& a);

// Returns only the orthonormal factor Q (saves forming R when the caller
// just needs an orthonormal basis of range(A)).
Matrix QrOrthonormalize(const Matrix& a);

// Solves R x = b for upper-triangular R (n x n) and b (n x k).
// Requires all diagonal entries of R to be nonzero.
Matrix SolveUpperTriangular(const Matrix& r, const Matrix& b);

// Solves L x = b for lower-triangular L (n x n) and b (n x k).
Matrix SolveLowerTriangular(const Matrix& l, const Matrix& b);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_QR_H_
