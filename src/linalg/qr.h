// Householder QR decomposition, blocked compact-WY form.
//
// ThinQr(A) for A (m x n) returns Q (m x min(m,n)) with orthonormal columns
// and upper-triangular R (min(m,n) x n) such that A = Q R. This is the
// orthogonalization primitive used by randomized range finders, HOOI, and
// the D-Tucker iteration phase.
//
// The implementation factors kQrPanelLeaf-column leaves with unblocked
// level-2 Householder code, aggregates them into kQr*PanelWidth-column
// panels and the panels into a single whole-matrix compact-WY form
// H_1...H_p = I - V T V^T (LAPACK dlarft plus the block-merge rule), and
// applies every aggregate — to the rest of the panel, to the trailing
// matrix, and to the identity when forming the thin Q, which collapses to
// one m x p x p GEMM — as level-3 calls on the kernels in linalg/blas.h.
// Trailing updates therefore draw threads from the shared SetBlasThreads()
// pool (with its nested-parallelism guard) and inherit the kernels'
// bitwise-deterministic scheduling: the factorization is bit-identical
// across thread counts. See DESIGN.md §7.
#ifndef DTUCKER_LINALG_QR_H_
#define DTUCKER_LINALG_QR_H_

#include "linalg/matrix.h"

namespace dtucker {

// Matrices with min(m, n) <= kQrUnblockedMax skip the compact-WY machinery
// entirely (the V/T/workspace setup costs more than it saves on the J x J
// problems of the iteration phase). Above that, panels are
// kQrPanelWidthSmall columns wide, or kQrPanelWidthLarge once min(m, n)
// reaches kQrWidePanelMin — wide enough to amortize packing, narrow enough
// that the level-2 panel factorization stays a small fraction of the work.
// Inside a panel of at least 2 * kQrPanelLeaf columns, kQrPanelLeaf-column
// leaves are factored level-2 and pushed right as block reflectors, so the
// level-2 work scales with the leaf width, not the panel width. A
// factorization with min(m, n) < 2 * kQrPanelLeaf is a single level-2
// panel, so its R is bit-identical to the unblocked reference.
inline constexpr Index kQrUnblockedMax = 12;
inline constexpr Index kQrPanelLeaf = 8;
inline constexpr Index kQrPanelWidthSmall = 32;
inline constexpr Index kQrPanelWidthLarge = 32;
inline constexpr Index kQrWidePanelMin = 192;

// Which QR implementation a call runs. kAuto is the production default:
// the size heuristic above (unblocked at or below kQrUnblockedMax,
// compact-WY blocked beyond). The forced variants exist for the
// input-adaptive execution layer (dtucker/adaptive/): every variant is a
// named, individually-dispatchable strategy so the cost-model tuner can
// pick per workload, and each one is bitwise thread-deterministic on its
// own. kScalar forces the level-2 reference path (competitive on narrow
// panels where the compact-WY setup does not amortize); kBlocked forces
// the level-3 path even on small inputs.
enum class QrVariant {
  kAuto,
  kBlocked,
  kScalar,
};

struct QrResult {
  Matrix q;  // m x min(m,n), orthonormal columns.
  Matrix r;  // min(m,n) x n, upper triangular.
};

QrResult ThinQr(const Matrix& a, QrVariant variant = QrVariant::kAuto);

// Returns only the orthonormal factor Q (saves forming R when the caller
// just needs an orthonormal basis of range(A)).
Matrix QrOrthonormalize(const Matrix& a, QrVariant variant = QrVariant::kAuto);

// Reference level-2 implementations (one reflector at a time, rank-1
// updates). Kept as the correctness baseline for tests and the speedup
// baseline for benchmarks; not used by the library itself.
QrResult ThinQrUnblocked(const Matrix& a);
Matrix QrOrthonormalizeUnblocked(const Matrix& a);

// Solves R x = b for upper-triangular R (n x n) and b (n x k).
// Requires all diagonal entries of R to be nonzero.
Matrix SolveUpperTriangular(const Matrix& r, const Matrix& b);

// Solves L x = b for lower-triangular L (n x n) and b (n x k).
Matrix SolveLowerTriangular(const Matrix& l, const Matrix& b);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_QR_H_
