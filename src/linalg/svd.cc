#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/blas.h"
#include "linalg/qr.h"

namespace dtucker {

namespace {

// One-sided Jacobi SVD of a square-ish matrix W (m x n, m >= n): rotates
// pairs of columns until they are mutually orthogonal. On return,
// W = U diag(s) and `v` accumulates the right rotations.
void OneSidedJacobi(Matrix* w, Matrix* v) {
  const Index n = w->cols();
  const Index m = w->rows();
  *v = Matrix::Identity(n);
  const double eps = std::numeric_limits<double>::epsilon();
  const int max_sweeps = 60;

  // Squared column norms (the diagonal of W^T W), computed once and kept
  // current through the rotation identities below — each pair then costs
  // one Dot (the off-diagonal entry) instead of three. The cached values
  // only steer the convergence test and rotation angles; the singular
  // values are re-measured exactly from the final columns by the caller.
  std::vector<double> colsq(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    const double* wj = w->col_data(j);
    colsq[static_cast<std::size_t>(j)] = Dot(wj, wj, m);
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        double* wp = w->col_data(p);
        double* wq = w->col_data(q);
        const double app = colsq[static_cast<std::size_t>(p)];
        const double aqq = colsq[static_cast<std::size_t>(q)];
        const double apq = Dot(wp, wq, m);
        if (std::fabs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        rotated = true;
        // Jacobi rotation that zeroes the (p,q) entry of W^T W.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::fabs(tau) + std::sqrt(1.0 + tau * tau)), tau);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (Index i = 0; i < m; ++i) {
          const double a = wp[i], b = wq[i];
          wp[i] = c * a - s * b;
          wq[i] = s * a + c * b;
        }
        double* vp = v->col_data(p);
        double* vq = v->col_data(q);
        for (Index i = 0; i < n; ++i) {
          const double a = vp[i], b = vq[i];
          vp[i] = c * a - s * b;
          vq[i] = s * a + c * b;
        }
        const double cross = 2.0 * c * s * apq;
        colsq[static_cast<std::size_t>(p)] =
            c * c * app - cross + s * s * aqq;
        colsq[static_cast<std::size_t>(q)] =
            s * s * app + cross + c * c * aqq;
      }
    }
    if (!rotated) break;
  }
}

// Extracts (U, s) from the post-Jacobi W = U diag(s) and sorts everything
// descending. Zero columns get an arbitrary orthonormal completion skipped:
// their singular value is 0 and U column is left as zeros (callers truncate).
SvdResult ExtractAndSort(Matrix w, Matrix v) {
  const Index m = w.rows();
  const Index n = w.cols();
  std::vector<double> s(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    s[static_cast<std::size_t>(j)] = Nrm2(w.col_data(j), m);
  }
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return s[static_cast<std::size_t>(a)] > s[static_cast<std::size_t>(b)];
  });

  SvdResult out;
  out.u = Matrix(m, n);
  out.v = Matrix(v.rows(), n);
  out.s.resize(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<std::size_t>(j)];
    const double sj = s[static_cast<std::size_t>(src)];
    out.s[static_cast<std::size_t>(j)] = sj;
    const double inv = sj > 0.0 ? 1.0 / sj : 0.0;
    const double* wc = w.col_data(src);
    double* uc = out.u.col_data(j);
    for (Index i = 0; i < m; ++i) uc[i] = wc[i] * inv;
    const double* vc = v.col_data(src);
    double* ovc = out.v.col_data(j);
    for (Index i = 0; i < v.rows(); ++i) ovc[i] = vc[i];
  }
  return out;
}

}  // namespace

Matrix SvdResult::Reconstruct() const {
  Matrix us = UTimesS();
  return MultiplyNT(us, v);
}

Matrix SvdResult::UTimesS() const {
  // Fused copy+scale: one pass over each column instead of copy-then-Scal.
  Matrix us(u.rows(), u.cols());
  for (Index j = 0; j < us.cols(); ++j) {
    const double sj = s[static_cast<std::size_t>(j)];
    const double* src = u.col_data(j);
    double* dst = us.col_data(j);
    for (Index i = 0; i < us.rows(); ++i) dst[i] = src[i] * sj;
  }
  return us;
}

void SvdResult::Truncate(Index k) {
  if (k >= static_cast<Index>(s.size())) return;
  u = u.LeftCols(k);
  v = v.LeftCols(k);
  s.resize(static_cast<std::size_t>(k));
}

SvdResult ThinSvd(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (m == 0 || n == 0) {
    return SvdResult{Matrix(m, 0), {}, Matrix(n, 0)};
  }
  if (m < n) {
    // SVD of A^T = V S U^T, then swap factors.
    SvdResult t = ThinSvd(a.Transposed());
    return SvdResult{std::move(t.v), std::move(t.s), std::move(t.u)};
  }
  if (m > n) {
    // QR precondition: A = Q R, SVD(R) = Ur S V^T, so U = Q Ur.
    QrResult qr = ThinQr(a);
    SvdResult inner = ThinSvd(qr.r);
    return SvdResult{Multiply(qr.q, inner.u), std::move(inner.s),
                     std::move(inner.v)};
  }
  // Square case: one-sided Jacobi.
  Matrix w = a;
  Matrix v;
  OneSidedJacobi(&w, &v);
  return ExtractAndSort(std::move(w), std::move(v));
}

Matrix LeadingLeftSingularVectors(const Matrix& a, Index k) {
  DT_CHECK_LE(k, std::min(a.rows(), a.cols()))
      << "requested more singular vectors than min(m,n)";
  SvdResult svd = ThinSvd(a);
  svd.Truncate(k);
  return svd.u;
}

}  // namespace dtucker
