// Singular value decomposition.
//
// ThinSvd computes A = U diag(s) V^T with U (m x p), V (n x p),
// p = min(m, n), singular values sorted in descending order. The
// implementation is one-sided Jacobi, preconditioned with a QR
// factorization for tall matrices (and a transpose for wide ones), which is
// accurate to high relative precision and has no convergence pathologies —
// the right trade-off for the small-to-medium factor computations this
// library performs (the large-matrix path goes through rsvd/ instead).
#ifndef DTUCKER_LINALG_SVD_H_
#define DTUCKER_LINALG_SVD_H_

#include <vector>

#include "linalg/matrix.h"

namespace dtucker {

struct SvdResult {
  Matrix u;               // m x p, orthonormal columns.
  std::vector<double> s;  // p singular values, descending.
  Matrix v;               // n x p, orthonormal columns.

  // Reconstructs U * diag(s) * V^T.
  Matrix Reconstruct() const;

  // Truncates to the top `k` components (no-op if k >= p).
  void Truncate(Index k);

  // U * diag(s) as a matrix (the "scaled left factor" D-Tucker stores).
  Matrix UTimesS() const;
};

SvdResult ThinSvd(const Matrix& a);

// Convenience: the first k left singular vectors of A (k <= min(m,n)).
Matrix LeadingLeftSingularVectors(const Matrix& a, Index k);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_SVD_H_
