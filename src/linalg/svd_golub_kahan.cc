#include "linalg/svd_golub_kahan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/blas.h"

namespace dtucker {

namespace {

// Givens parameters (c, s) with  c*a + s*b = r  and  -s*a + c*b = 0.
void GivensPair(double a, double b, double* c, double* s) {
  if (b == 0.0) {
    *c = 1.0;
    *s = 0.0;
    return;
  }
  const double r = std::hypot(a, b);
  *c = a / r;
  *s = b / r;
}

// Columns (i, j) of M: col_i' = c*col_i + s*col_j, col_j' = -s*col_i + c*col_j.
void RotateColumns(Matrix* m, Index i, Index j, double c, double s) {
  double* ci = m->col_data(i);
  double* cj = m->col_data(j);
  const Index rows = m->rows();
  for (Index r = 0; r < rows; ++r) {
    const double a = ci[r], b = cj[r];
    ci[r] = c * a + s * b;
    cj[r] = -s * a + c * b;
  }
}

// Householder bidiagonalization of a (m x n, m >= n): A = U1 B V1^T with B
// upper bidiagonal. On return `a` holds the reflector vectors; d/e hold the
// bidiagonal.
void Bidiagonalize(Matrix* a, std::vector<double>* tauq,
                   std::vector<double>* taup, std::vector<double>* d,
                   std::vector<double>* e) {
  const Index m = a->rows();
  const Index n = a->cols();
  tauq->assign(static_cast<std::size_t>(n), 0.0);
  taup->assign(static_cast<std::size_t>(n), 0.0);
  d->assign(static_cast<std::size_t>(n), 0.0);
  e->assign(static_cast<std::size_t>(n > 0 ? n - 1 : 0), 0.0);

  for (Index k = 0; k < n; ++k) {
    // Column reflector annihilating a(k+1:, k).
    {
      double* col = a->col_data(k) + k;
      const Index len = m - k;
      const double alpha = col[0];
      const double xnorm = len > 1 ? Nrm2(col + 1, len - 1) : 0.0;
      if (xnorm == 0.0) {
        (*tauq)[static_cast<std::size_t>(k)] = 0.0;
        (*d)[static_cast<std::size_t>(k)] = alpha;
      } else {
        const double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
        const double tau = (beta - alpha) / beta;
        Scal(1.0 / (alpha - beta), col + 1, len - 1);
        (*tauq)[static_cast<std::size_t>(k)] = tau;
        (*d)[static_cast<std::size_t>(k)] = beta;
        col[0] = beta;
        // Apply (I - tau v v^T) to trailing columns.
        for (Index j = k + 1; j < n; ++j) {
          double* cj = a->col_data(j) + k;
          double dot = cj[0] + Dot(col + 1, cj + 1, len - 1);
          dot *= tau;
          cj[0] -= dot;
          Axpy(-dot, col + 1, cj + 1, len - 1);
        }
        col[0] = beta;  // Keep beta on the diagonal slot.
      }
    }
    if (k < n - 1) {
      // Row reflector annihilating a(k, k+2:).
      const Index len = n - k - 1;
      // Gather the row segment a(k, k+1:n-1).
      std::vector<double> row(static_cast<std::size_t>(len));
      for (Index j = 0; j < len; ++j) row[static_cast<std::size_t>(j)] =
          (*a)(k, k + 1 + j);
      const double alpha = row[0];
      const double xnorm = len > 1 ? Nrm2(row.data() + 1, len - 1) : 0.0;
      if (xnorm == 0.0) {
        (*taup)[static_cast<std::size_t>(k)] = 0.0;
        (*e)[static_cast<std::size_t>(k)] = alpha;
      } else {
        const double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
        const double tau = (beta - alpha) / beta;
        const double inv = 1.0 / (alpha - beta);
        for (Index j = 1; j < len; ++j) row[static_cast<std::size_t>(j)] *= inv;
        row[0] = 1.0;
        (*taup)[static_cast<std::size_t>(k)] = tau;
        (*e)[static_cast<std::size_t>(k)] = beta;
        // Apply (I - tau v v^T) from the right to rows k+1..m-1.
        for (Index i = k + 1; i < m; ++i) {
          double dot = 0;
          for (Index j = 0; j < len; ++j) {
            dot += (*a)(i, k + 1 + j) * row[static_cast<std::size_t>(j)];
          }
          dot *= tau;
          for (Index j = 0; j < len; ++j) {
            (*a)(i, k + 1 + j) -= dot * row[static_cast<std::size_t>(j)];
          }
        }
        // Store the reflector in the row (skipping the implicit 1).
        for (Index j = 1; j < len; ++j) {
          (*a)(k, k + 1 + j) = row[static_cast<std::size_t>(j)];
        }
        (*a)(k, k + 1) = beta;
      }
    }
  }
}

// Accumulates U1 (m x n) from the stored column reflectors.
Matrix FormU(const Matrix& fact, const std::vector<double>& tauq) {
  const Index m = fact.rows();
  const Index n = fact.cols();
  Matrix u(m, n);
  for (Index j = 0; j < n; ++j) u(j, j) = 1.0;
  for (Index k = n - 1; k >= 0; --k) {
    const double tau = tauq[static_cast<std::size_t>(k)];
    if (tau == 0.0) continue;
    const double* v = fact.col_data(k) + k;  // v[0] implicit 1.
    const Index len = m - k;
    for (Index j = k; j < n; ++j) {
      double* cj = u.col_data(j) + k;
      double dot = cj[0] + Dot(v + 1, cj + 1, len - 1);
      dot *= tau;
      cj[0] -= dot;
      Axpy(-dot, v + 1, cj + 1, len - 1);
    }
  }
  return u;
}

// Accumulates V1 (n x n) from the stored row reflectors.
Matrix FormV(const Matrix& fact, const std::vector<double>& taup) {
  const Index n = fact.cols();
  Matrix v = Matrix::Identity(n);
  for (Index k = n - 2; k >= 0; --k) {
    const double tau = taup[static_cast<std::size_t>(k)];
    if (tau == 0.0) continue;
    const Index len = n - k - 1;
    // Reflector vector: [1, fact(k, k+2..)] over coordinates k+1..n-1.
    std::vector<double> w(static_cast<std::size_t>(len));
    w[0] = 1.0;
    for (Index j = 1; j < len; ++j) {
      w[static_cast<std::size_t>(j)] = fact(k, k + 1 + j);
    }
    for (Index col = 0; col < n; ++col) {
      double* c = v.col_data(col) + (k + 1);
      double dot = Dot(w.data(), c, len);
      dot *= tau;
      Axpy(-dot, w.data(), c, len);
    }
  }
  return v;
}

}  // namespace

Result<SvdResult> ThinSvdGolubKahan(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (m == 0 || n == 0) {
    return SvdResult{Matrix(m, 0), {}, Matrix(n, 0)};
  }
  if (m < n) {
    DT_ASSIGN_OR_RETURN(SvdResult t, ThinSvdGolubKahan(a.Transposed()));
    return SvdResult{std::move(t.v), std::move(t.s), std::move(t.u)};
  }

  Matrix fact = a;
  std::vector<double> tauq, taup, d, e;
  Bidiagonalize(&fact, &tauq, &taup, &d, &e);
  Matrix u = FormU(fact, tauq);
  Matrix v = FormV(fact, taup);

  // Implicit-shift QR on the bidiagonal (d, e).
  const double eps = std::numeric_limits<double>::epsilon();
  double norm = 0;
  for (Index i = 0; i < n; ++i) norm = std::max(norm, std::fabs(d[i]));
  for (Index i = 0; i + 1 < n; ++i) norm = std::max(norm, std::fabs(e[i]));
  if (norm == 0.0) {
    // Zero matrix: all singular values zero.
    SvdResult out;
    out.u = std::move(u);
    out.v = std::move(v);
    out.s.assign(static_cast<std::size_t>(n), 0.0);
    return out;
  }

  const int max_total_steps = 60 * static_cast<int>(n);
  int steps = 0;
  Index hi = n - 1;
  while (hi > 0) {
    // Deflate negligible superdiagonals.
    for (Index i = 0; i < hi; ++i) {
      if (std::fabs(e[i]) <= eps * (std::fabs(d[i]) + std::fabs(d[i + 1]))) {
        e[i] = 0.0;
      }
    }
    if (e[hi - 1] == 0.0) {
      --hi;
      continue;
    }
    // Active block [lo, hi] with nonzero superdiagonals.
    Index lo = hi - 1;
    while (lo > 0 && e[lo - 1] != 0.0) --lo;

    // Zero diagonal inside the block: rotate the offending row away so the
    // block splits (Demmel-Kahan cancellation).
    bool cancelled = false;
    for (Index i = lo; i < hi; ++i) {
      if (std::fabs(d[i]) <= eps * norm) {
        // Chase e[i] rightward with left rotations against rows i, j+1.
        double f = e[i];
        e[i] = 0.0;
        for (Index j = i + 1; j <= hi && f != 0.0; ++j) {
          double c, s;
          GivensPair(d[j], f, &c, &s);
          const double dj = d[j];
          d[j] = c * dj + s * f;
          if (j < hi) {
            f = -s * e[j];
            e[j] = c * e[j];
          }
          // Left rotation acting on rows (j, i): U columns (j, i).
          RotateColumns(&u, j, i, c, -s);
        }
        cancelled = true;
        break;
      }
    }
    if (cancelled) continue;

    if (++steps > max_total_steps) {
      return Status::NumericalError(
          "Golub-Kahan QR iteration failed to converge");
    }

    // Wilkinson shift from the trailing 2x2 of B^T B.
    const double dm = d[hi - 1], dn_ = d[hi], em = e[hi - 1];
    const double eml = hi >= 2 && hi - 2 >= lo ? e[hi - 2] : 0.0;
    const double t11 = dm * dm + eml * eml;
    const double t22 = dn_ * dn_ + em * em;
    const double t12 = dm * em;
    const double delta = 0.5 * (t11 - t22);
    const double denom =
        delta + std::copysign(std::hypot(delta, t12), delta == 0 ? 1 : delta);
    const double mu = denom != 0.0 ? t22 - (t12 * t12) / denom : t22;

    double y = d[lo] * d[lo] - mu;
    double z = d[lo] * e[lo];
    for (Index k = lo; k < hi; ++k) {
      double c, s;
      // Right rotation on columns (k, k+1).
      GivensPair(y, z, &c, &s);
      if (k > lo) e[k - 1] = c * y + s * z;
      const double dk = d[k], ek = e[k], dk1 = d[k + 1];
      d[k] = c * dk + s * ek;
      e[k] = -s * dk + c * ek;
      double bulge = s * dk1;  // Fill-in at (k+1, k).
      d[k + 1] = c * dk1;
      RotateColumns(&v, k, k + 1, c, s);

      // Left rotation on rows (k, k+1) to kill the bulge.
      GivensPair(d[k], bulge, &c, &s);
      d[k] = c * d[k] + s * bulge;
      const double ek2 = e[k], dk2 = d[k + 1];
      e[k] = c * ek2 + s * dk2;
      d[k + 1] = -s * ek2 + c * dk2;
      if (k + 1 < hi) {
        const double ek1 = e[k + 1];
        bulge = s * ek1;  // Fill-in at (k, k+2).
        e[k + 1] = c * ek1;
        y = e[k];
        z = bulge;
      }
      RotateColumns(&u, k, k + 1, c, s);
    }
  }

  // Fix signs and sort descending.
  for (Index i = 0; i < n; ++i) {
    if (d[i] < 0.0) {
      d[i] = -d[i];
      Scal(-1.0, v.col_data(i), v.rows());
    }
  }
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&](Index x, Index y) { return d[x] > d[y]; });

  SvdResult out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.s.resize(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<std::size_t>(j)];
    out.s[static_cast<std::size_t>(j)] = d[src];
    std::copy(u.col_data(src), u.col_data(src) + m, out.u.col_data(j));
    std::copy(v.col_data(src), v.col_data(src) + n, out.v.col_data(j));
  }
  return out;
}

}  // namespace dtucker
