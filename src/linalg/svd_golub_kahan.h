// Golub-Kahan SVD: Householder bidiagonalization followed by implicit-
// shift QR iteration on the bidiagonal (Golub & Van Loan, Alg. 8.6.2).
//
// The classical LAPACK-style dense SVD. Compared to the one-sided Jacobi
// solver in linalg/svd.h it is faster for medium/large square matrices
// (O(mn^2) with a small constant vs. Jacobi's several O(mn^2) sweeps) at
// slightly lower relative accuracy for tiny singular values. Exposed as an
// alternative engine and cross-checked against Jacobi in tests.
#ifndef DTUCKER_LINALG_SVD_GOLUB_KAHAN_H_
#define DTUCKER_LINALG_SVD_GOLUB_KAHAN_H_

#include "common/status.h"
#include "linalg/svd.h"

namespace dtucker {

// Thin SVD with the same contract as ThinSvd (descending singular values,
// orthonormal U (m x p), V (n x p), p = min(m, n)). Returns
// NumericalError if the QR iteration fails to converge (pathological
// inputs; does not occur for finite well-scaled data).
Result<SvdResult> ThinSvdGolubKahan(const Matrix& a);

}  // namespace dtucker

#endif  // DTUCKER_LINALG_SVD_GOLUB_KAHAN_H_
