#include "rsvd/rsvd.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/qr.h"

namespace dtucker {

namespace {

Index SketchSize(const Matrix& a, const RsvdOptions& options) {
  return std::min(options.rank + options.oversampling,
                  std::min(a.rows(), a.cols()));
}

}  // namespace

Matrix RandomizedRangeFinder(const Matrix& a, const RsvdOptions& options) {
  const Index sketch = SketchSize(a, options);
  DT_CHECK_GT(sketch, 0) << "empty sketch";

  Rng rng(options.seed);
  Matrix omega = Matrix::GaussianRandom(a.cols(), sketch, rng);
  Matrix y = Multiply(a, omega);          // m x sketch.
  Matrix q = QrOrthonormalize(y, options.qr);

  for (int it = 0; it < options.power_iterations; ++it) {
    // Subspace iteration with re-orthonormalization: Q <- orth(A A^T Q).
    Matrix z = MultiplyTN(a, q);          // n x sketch.
    z = QrOrthonormalize(z, options.qr);
    y = Multiply(a, z);                   // m x sketch.
    q = QrOrthonormalize(y, options.qr);
  }
  return q;
}

// Both branches below reduce A to a (sketch x sketch) core before the
// Jacobi SVD ever runs, and read A exactly once more than the power loop
// needs — the projection B = Q^T A of the textbook algorithm is folded
// away (see DESIGN.md §7):
//
//   q >= 1:  the final power product Y = A Z doubles as the projection.
//            With [Q, R] = qr(Y) it holds Q^T A Z = R exactly, so
//            A ~= A Z Z^T = Q R Z^T and SVD(R) finishes the job without
//            another pass over A. 2q + 1 passes, versus 2q + 2 for the
//            range-finder-then-project formulation.
//   q == 0:  B = Q^T A is unavoidable (no Z exists), but the wide
//            (sketch x n) B is pre-reduced by an LQ-style QR of B^T so
//            Jacobi rotates only the (sketch x sketch) triangle.
SvdResult RandomizedSvd(const Matrix& a, const RsvdOptions& options) {
  static Counter& calls = MetricCounter("rsvd.calls");
  calls.Add(1);
  DT_TRACE_SPAN("rsvd");
  const Index target = std::min(options.rank, std::min(a.rows(), a.cols()));
  const Index sketch = SketchSize(a, options);
  DT_CHECK_GT(sketch, 0) << "empty sketch";

  Rng rng(options.seed);
  Matrix omega = Matrix::GaussianRandom(a.cols(), sketch, rng);
  Matrix q = QrOrthonormalize(Multiply(a, omega), options.qr);  // Pass 1.

  if (options.power_iterations <= 0) {
    Matrix b = MultiplyTN(q, a);          // sketch x n (pass 2 over A).
    QrResult lq = ThinQr(b.Transposed(), options.qr);
    // B = (Q_b R_b)^T = R_b^T Q_b^T: SVD the small square core R_b^T.
    SvdResult core = ThinSvd(lq.r.Transposed());
    SvdResult out{Multiply(q, core.u), std::move(core.s),
                  Multiply(lq.q, core.v)};
    out.Truncate(target);
    return out;
  }

  Matrix z;
  QrResult yqr;
  for (int it = 0; it < options.power_iterations; ++it) {
    z = QrOrthonormalize(MultiplyTN(a, q), options.qr);     // n x sketch.
    if (it + 1 < options.power_iterations) {
      q = QrOrthonormalize(Multiply(a, z), options.qr);     // m x sketch.
    } else {
      // Last half-iteration: keep R so the product is also the projection.
      yqr = ThinQr(Multiply(a, z), options.qr);
      q = std::move(yqr.q);
    }
  }
  SvdResult core = ThinSvd(yqr.r);        // sketch x sketch: Jacobi direct.
  SvdResult out{Multiply(q, core.u), std::move(core.s),
                Multiply(z, core.v)};
  out.Truncate(target);
  return out;
}

}  // namespace dtucker
