#include "rsvd/rsvd.h"

#include <algorithm>

#include "linalg/blas.h"
#include "linalg/qr.h"

namespace dtucker {

Matrix RandomizedRangeFinder(const Matrix& a, const RsvdOptions& options) {
  const Index m = a.rows();
  const Index n = a.cols();
  const Index sketch =
      std::min(options.rank + options.oversampling, std::min(m, n));
  DT_CHECK_GT(sketch, 0) << "empty sketch";

  Rng rng(options.seed);
  Matrix omega = Matrix::GaussianRandom(n, sketch, rng);
  Matrix y = Multiply(a, omega);          // m x sketch.
  Matrix q = QrOrthonormalize(y);

  for (int it = 0; it < options.power_iterations; ++it) {
    // Subspace iteration with re-orthonormalization: Q <- orth(A A^T Q).
    Matrix z = MultiplyTN(a, q);          // n x sketch.
    z = QrOrthonormalize(z);
    y = Multiply(a, z);                   // m x sketch.
    q = QrOrthonormalize(y);
  }
  return q;
}

SvdResult RandomizedSvd(const Matrix& a, const RsvdOptions& options) {
  const Index target = std::min(options.rank, std::min(a.rows(), a.cols()));
  Matrix q = RandomizedRangeFinder(a, options);
  // Project: B = Q^T A (sketch x n), exact SVD of the small B.
  Matrix b = MultiplyTN(q, a);
  SvdResult svd = ThinSvd(b);
  svd.u = Multiply(q, svd.u);
  svd.Truncate(target);
  return svd;
}

}  // namespace dtucker
