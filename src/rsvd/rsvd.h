// Randomized SVD (Halko, Martinsson & Tropp 2011).
//
// This is the primitive D-Tucker's approximation phase applies to every
// slice matrix: a rank-`rank` factorization A ~= U diag(s) V^T computed
// from a small number of matrix-vector sweeps, with oversampling and
// optional power iterations for spectral-decay robustness.
//
// RandomizedSvd never re-reads A after the power loop: with q >= 1 power
// iterations the final product Y = A Z doubles as the projection (QR of Y
// gives Q^T A Z = R exactly, so A ~= Q R Z^T), saving one full pass over A
// per call relative to the range-finder-then-project formulation, and the
// small SVD always runs on a (sketch x sketch) square core.
#ifndef DTUCKER_RSVD_RSVD_H_
#define DTUCKER_RSVD_RSVD_H_

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/svd.h"

namespace dtucker {

struct RsvdOptions {
  Index rank = 10;            // Target rank J.
  Index oversampling = 5;     // Extra random directions p; sketch uses J+p.
  int power_iterations = 1;   // q; each adds two passes but sharpens decay.
  uint64_t seed = 42;         // Seed for the Gaussian test matrix.
  // QR strategy for the range-finder/power-loop orthonormalizations (the
  // adaptive execution layer dispatches this per workload; kAuto is the
  // production size heuristic).
  QrVariant qr = QrVariant::kAuto;
};

// Orthonormal basis Q (m x min(rank+oversampling, min(m,n))) approximating
// range(A), via Y = (A A^T)^q A Omega with QR re-orthonormalization between
// power iterations.
Matrix RandomizedRangeFinder(const Matrix& a, const RsvdOptions& options);

// Rank-`options.rank` truncated SVD. Output factors have exactly
// min(rank, min(m, n)) columns.
SvdResult RandomizedSvd(const Matrix& a, const RsvdOptions& options);

}  // namespace dtucker

#endif  // DTUCKER_RSVD_RSVD_H_
