#include "serve/job_queue.h"

#include <utility>

#include "common/logging.h"

namespace dtucker {

JobQueue::JobQueue(int capacity) : capacity_(capacity) {
  DT_CHECK_GE(capacity, 1) << "job queue needs capacity >= 1";
}

Status JobQueue::TryPush(std::shared_ptr<ServeJob> job, int priority) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return Status::FailedPrecondition("job queue is closed");
    }
    if (static_cast<int>(entries_.size()) >= capacity_) {
      return Status::ResourceExhausted(
          "job queue full (" + std::to_string(capacity_) +
          " pending); retry later or shed load");
    }
    entries_.push(Entry{priority, next_sequence_++, std::move(job)});
  }
  available_.notify_one();
  return Status::OK();
}

std::shared_ptr<ServeJob> JobQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_.wait(lock, [this] { return closed_ || !entries_.empty(); });
  if (entries_.empty()) return nullptr;  // Closed and drained.
  // priority_queue::top() is const-only; the Entry is copied cheaply (one
  // shared_ptr bump) and popped.
  Entry e = entries_.top();
  entries_.pop();
  return std::move(e.job);
}

void JobQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  available_.notify_all();
}

int JobQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(entries_.size());
}

}  // namespace dtucker
