// Bounded priority job queue with admission control — the front door of
// the decomposition server (serve/server.h).
//
// Admission is non-blocking: TryPush() either accepts the job or rejects
// it immediately with kResourceExhausted when `capacity` entries are
// already pending, so an overloaded server sheds load at the door instead
// of growing an unbounded backlog (callers see the rejection and retry
// with backoff or route elsewhere). Dispatch order is highest priority
// first, FIFO within a priority level (a monotone sequence number breaks
// ties), so a burst of background jobs cannot starve an interactive one
// and equal-priority jobs keep their arrival order.
//
// Thread safety: all methods are internally synchronized. Pop() blocks
// until an entry arrives or Close() is called; after Close() the pending
// entries drain in order and further Pop()s return nullptr (worker
// shutdown). The queue stores opaque shared_ptr<ServeJob> handles — the
// job record itself lives in server.cc.
#ifndef DTUCKER_SERVE_JOB_QUEUE_H_
#define DTUCKER_SERVE_JOB_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "common/status.h"

namespace dtucker {

struct ServeJob;  // Defined in serve/server.cc.

class JobQueue {
 public:
  // `capacity` >= 1: the maximum number of pending (queued, not yet
  // popped) jobs.
  explicit JobQueue(int capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Admits `job` at `priority` (higher runs first), or rejects with
  // kResourceExhausted (queue full) / kFailedPrecondition (queue closed).
  Status TryPush(std::shared_ptr<ServeJob> job, int priority);

  // Blocks until a job is available and returns the highest-priority one;
  // returns nullptr once the queue is closed and drained.
  std::shared_ptr<ServeJob> Pop();

  // Stops admission and wakes every Pop(); already-pending entries still
  // drain in priority order.
  void Close();

  // Pending entries right now (admission headroom = capacity() - Depth()).
  int Depth() const;
  int capacity() const { return capacity_; }

 private:
  struct Entry {
    int priority = 0;
    std::uint64_t sequence = 0;
    std::shared_ptr<ServeJob> job;
  };
  // std::priority_queue pops the *largest* element: order by priority,
  // then inverted sequence so equal priorities pop in arrival order.
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.sequence > b.sequence;
    }
  };

  const int capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLess> entries_;
  std::uint64_t next_sequence_ = 0;
  bool closed_ = false;
};

}  // namespace dtucker

#endif  // DTUCKER_SERVE_JOB_QUEUE_H_
