#include "serve/model_cache.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace dtucker {

Status ModelCacheOptions::Validate() const {
  if (max_entries < 1) {
    return Status::InvalidArgument("cache max_entries must be >= 1");
  }
  if (max_bytes == 0) {
    return Status::InvalidArgument("cache max_bytes must be > 0");
  }
  return Status::OK();
}

ModelCache::ModelCache(ModelCacheOptions options)
    : options_(std::move(options)) {
  DT_CHECK(options_.Validate().ok()) << "invalid ModelCacheOptions";
}

std::shared_ptr<const CachedModel> ModelCache::Get(const std::string& key) {
  static Counter& hits = MetricCounter("serve.cache.hits");
  static Counter& misses = MetricCounter("serve.cache.misses");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    misses.Add(1);
    PublishGaugesLocked();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  hits.Add(1);
  PublishGaugesLocked();
  return it->second.model;
}

void ModelCache::Put(const std::string& key,
                     std::shared_ptr<const CachedModel> model) {
  static Counter& insertions = MetricCounter("serve.cache.insertions");
  DT_CHECK(model != nullptr) << "cannot cache a null model";
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replace in place and refresh recency.
    bytes_ -= it->second.model->bytes;
    bytes_ += model->bytes;
    it->second.model = std::move(model);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(key);
    bytes_ += model->bytes;
    entries_.emplace(key, EntryRec{std::move(model), lru_.begin()});
  }
  ++stats_.insertions;
  insertions.Add(1);
  EvictLocked();
  PublishGaugesLocked();
}

bool ModelCache::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) != 0;
}

ModelCache::Stats ModelCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = static_cast<int>(entries_.size());
  s.bytes = bytes_;
  return s;
}

void ModelCache::EvictLocked() {
  static Counter& evictions = MetricCounter("serve.cache.evictions");
  while (entries_.size() > 1 &&
         (static_cast<int>(entries_.size()) > options_.max_entries ||
          bytes_ > options_.max_bytes)) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.model->bytes;
    entries_.erase(it);  // Readers holding the shared_ptr keep their view.
    lru_.pop_back();
    ++stats_.evictions;
    evictions.Add(1);
  }
}

void ModelCache::PublishGaugesLocked() {
  static Gauge& entries = MetricGauge("serve.cache.entries");
  static Gauge& bytes = MetricGauge("serve.cache.bytes");
  static Gauge& hit_ratio = MetricGauge("serve.cache.hit_ratio");
  entries.Set(static_cast<double>(entries_.size()));
  bytes.Set(static_cast<double>(bytes_));
  const std::uint64_t lookups = stats_.hits + stats_.misses;
  if (lookups > 0) {
    hit_ratio.Set(static_cast<double>(stats_.hits) /
                  static_cast<double>(lookups));
  }
}

}  // namespace dtucker
