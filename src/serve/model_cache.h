// LRU cache of completed decompositions, keyed by the canonical model key
// (serve/server.h ModelSpec::CanonicalKey).
//
// Ownership story (the part that matters under concurrency): the cache
// hands out std::shared_ptr<const CachedModel> — shared ownership of an
// immutable snapshot, NOT a deep copy and NOT a borrowed reference.
// Eviction merely drops the cache's own reference; a reader that obtained
// the model before the eviction keeps a valid, immutable view for as long
// as it holds the pointer, so a query can never observe factors freed
// under it, and N deduplicated jobs returning the same pointer are
// bitwise-identical by construction. The flip side: a cached model's
// memory is only reclaimed once the last outstanding reader drops it —
// eviction bounds the cache's *retained* set, not the transient total.
//
// Capacity is bounded twice — entry count and logical bytes
// (decomposition ByteSize) — and eviction walks the LRU tail until both
// bounds hold. Get() bumps recency; Contains() does not (for tests that
// probe eviction order without perturbing it).
//
// Thread safety: all methods are internally synchronized (one mutex; the
// values are immutable so only the index needs protecting).
#ifndef DTUCKER_SERVE_MODEL_CACHE_H_
#define DTUCKER_SERVE_MODEL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "tucker/tucker.h"

namespace dtucker {

// One completed decomposition plus the run metadata queries and repeat
// Solves are answered from. Immutable once inserted.
struct CachedModel {
  TuckerDecomposition decomposition;
  TuckerStats stats;
  double relative_error = 0.0;
  // Logical bytes of the decomposition (core + factors) charged against
  // ModelCacheOptions::max_bytes.
  std::size_t bytes = 0;
};

struct ModelCacheOptions {
  int max_entries = 64;
  std::size_t max_bytes = std::size_t{512} << 20;  // 512 MiB of factors.

  Status Validate() const;
};

class ModelCache {
 public:
  explicit ModelCache(ModelCacheOptions options);

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  // Shared ownership of the cached model, or nullptr on miss. A hit moves
  // the entry to the front of the LRU order.
  std::shared_ptr<const CachedModel> Get(const std::string& key);

  // Inserts (or replaces) the model under `key` and evicts from the LRU
  // tail until both capacity bounds hold again. The new entry itself is
  // never evicted by its own insertion (the cache always holds at least
  // the most recent model, even if it alone exceeds max_bytes).
  void Put(const std::string& key, std::shared_ptr<const CachedModel> model);

  // Whether `key` is resident, without touching recency.
  bool Contains(const std::string& key) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    int entries = 0;
    std::size_t bytes = 0;
  };
  Stats GetStats() const;

 private:
  void EvictLocked();
  void PublishGaugesLocked();

  struct EntryRec {
    std::shared_ptr<const CachedModel> model;
    std::list<std::string>::iterator lru_it;
  };

  const ModelCacheOptions options_;
  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // Front = most recently used.
  std::unordered_map<std::string, EntryRec> entries_;
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace dtucker

#endif  // DTUCKER_SERVE_MODEL_CACHE_H_
