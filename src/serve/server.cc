#include "serve/server.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "tucker/reconstruct.h"

namespace dtucker {

namespace {

std::uint64_t Fnv1aHash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

Status ModelSpec::Validate() const {
  if (dataset_id.empty()) {
    return Status::InvalidArgument(
        "ModelSpec::dataset_id is required (the cache never hashes tensor "
        "contents)");
  }
  if (ranks.empty()) {
    return Status::InvalidArgument("ModelSpec::ranks must not be empty");
  }
  for (std::size_t n = 0; n < ranks.size(); ++n) {
    if (ranks[n] < 1) {
      return Status::InvalidArgument("ModelSpec::ranks[" + std::to_string(n) +
                                     "] must be >= 1");
    }
  }
  if (max_iterations < 1) {
    return Status::InvalidArgument("ModelSpec::max_iterations must be >= 1");
  }
  if (!(tolerance > 0)) {
    return Status::InvalidArgument("ModelSpec::tolerance must be > 0");
  }
  if (!solver_spec.empty()) {
    DT_RETURN_NOT_OK(adaptive::ParsePlan(solver_spec).status());
  }
  return Status::OK();
}

std::string ModelSpec::CanonicalKey() const {
  std::string key = dataset_id;
  key += "|r=";
  for (std::size_t n = 0; n < ranks.size(); ++n) {
    if (n > 0) key += ',';
    key += std::to_string(ranks[n]);
  }
  key += "|it=" + std::to_string(max_iterations);
  char tol[40];
  std::snprintf(tol, sizeof(tol), "%.17g", tolerance);
  key += "|tol=";
  key += tol;
  key += "|seed=" + std::to_string(seed);
  key += "|plan=" + solver_spec;
  return key;
}

std::uint64_t ModelSpec::CanonicalHash() const {
  return Fnv1aHash(CanonicalKey());
}

Status SolveRequest::Validate() const {
  DT_RETURN_NOT_OK(model.Validate());
  const bool has_tensor = tensor != nullptr;
  const bool has_path = !tensor_path.empty();
  if (has_tensor == has_path) {
    return Status::InvalidArgument(
        "SolveRequest needs exactly one of tensor / tensor_path");
  }
  if (deadline_seconds < 0) {
    return Status::InvalidArgument(
        "SolveRequest::deadline_seconds must be non-negative");
  }
  return Status::OK();
}

Status ServerOptions::Validate() const {
  if (num_workers < 1) {
    return Status::InvalidArgument("ServerOptions::num_workers must be >= 1");
  }
  if (queue_capacity < 1) {
    return Status::InvalidArgument(
        "ServerOptions::queue_capacity must be >= 1");
  }
  DT_RETURN_NOT_OK(cache.Validate());
  if (engine.spmd_rank >= 0) {
    return Status::InvalidArgument(
        "the server drives whole solves; engine.spmd_rank mode (one rank of "
        "an external group) cannot be served");
  }
  return Status::OK();
}

DecompositionServer::DecompositionServer(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      cache_(options_.cache) {
  DT_CHECK(options_.Validate().ok()) << "invalid ServerOptions";
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DecompositionServer::~DecompositionServer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    for (auto& [id, job] : jobs_) {
      if (!job->done) job->ctx.RequestCancel();
    }
  }
  // Close() stops admission and wakes the workers; pending entries still
  // drain, and every one of them observes its cancelled context before
  // running, so queued waiters get kCancelled rather than hanging.
  queue_.Close();
  for (std::thread& w : workers_) w.join();
}

Result<JobId> DecompositionServer::Submit(SolveRequest request) {
  static Counter& submitted = MetricCounter("serve.jobs.submitted");
  static Counter& rejected = MetricCounter("serve.jobs.rejected");
  static Counter& from_cache = MetricCounter("serve.jobs.from_cache");
  static Counter& dedup = MetricCounter("serve.jobs.dedup");
  static Gauge& depth_gauge = MetricGauge("serve.queue.depth");
  DT_RETURN_NOT_OK(request.Validate());
  const std::string key = request.model.CanonicalKey();

  auto job = std::make_shared<ServeJob>();
  job->request = std::move(request);
  job->key = key;
  job->submit_tp = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(mutex_);
  if (shutting_down_) {
    return Status::FailedPrecondition("server is shutting down");
  }
  job->id = next_job_id_++;

  // Fast path 1: resident in the cache — answer without a queue slot.
  if (std::shared_ptr<const CachedModel> cached = cache_.Get(key)) {
    job->done = true;
    job->result.model = std::move(cached);
    job->result.from_cache = true;
    jobs_[job->id] = job;
    ++stats_.submitted;
    ++stats_.served_from_cache;
    CountCompletionLocked(job->result);
    submitted.Add(1);
    from_cache.Add(1);
    MetricHistogram("serve.job_ns").Record(ElapsedNs(job->submit_tp));
    return job->id;
  }

  // Fast path 2: an identical job is already in flight — attach as a
  // follower instead of running the same solve twice (single-flight).
  auto inflight_it = inflight_.find(key);
  if (inflight_it != inflight_.end()) {
    job->is_follower = true;
    inflight_it->second->followers.push_back(job);
    jobs_[job->id] = job;
    ++stats_.submitted;
    ++stats_.dedup_followers;
    submitted.Add(1);
    dedup.Add(1);
    return job->id;
  }

  // Slow path: a fresh leader through admission control. The deadline is
  // armed now so queue wait counts against the budget.
  if (job->request.deadline_seconds > 0) {
    job->ctx.SetDeadlineAfter(job->request.deadline_seconds);
  }
  const Status admitted = queue_.TryPush(job, job->request.priority);
  if (!admitted.ok()) {
    ++stats_.rejected;
    rejected.Add(1);
    return admitted;
  }
  inflight_[key] = job;
  jobs_[job->id] = job;
  ++stats_.submitted;
  submitted.Add(1);
  depth_gauge.Set(static_cast<double>(queue_.Depth()));
  return job->id;
}

Result<JobResult> DecompositionServer::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::InvalidArgument("unknown (or already reaped) job id " +
                                   std::to_string(id));
  }
  std::shared_ptr<ServeJob> job = it->second;
  job_done_.wait(lock, [&job] { return job->done; });
  JobResult result = job->result;
  jobs_.erase(id);
  return result;
}

Status DecompositionServer::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::InvalidArgument("unknown (or already reaped) job id " +
                                   std::to_string(id));
  }
  if (it->second->is_follower) {
    return Status::FailedPrecondition(
        "job " + std::to_string(id) +
        " is deduplicated onto an identical in-flight job; cancel the "
        "leader to stop the shared run");
  }
  it->second->ctx.RequestCancel();
  return Status::OK();
}

Result<JobResult> DecompositionServer::Solve(SolveRequest request) {
  DT_ASSIGN_OR_RETURN(const JobId id, Submit(std::move(request)));
  return Wait(id);
}

void DecompositionServer::WorkerLoop() {
  static Gauge& depth_gauge = MetricGauge("serve.queue.depth");
  while (std::shared_ptr<ServeJob> job = queue_.Pop()) {
    depth_gauge.Set(static_cast<double>(queue_.Depth()));
    MetricHistogram("serve.queue_wait_ns").Record(ElapsedNs(job->submit_tp));
    ExecuteJob(job);
  }
}

void DecompositionServer::ExecuteJob(const std::shared_ptr<ServeJob>& job) {
  DT_TRACE_SPAN("serve.job");
  static Counter& executed = MetricCounter("serve.jobs.executed");
  static Gauge& active_gauge = MetricGauge("serve.jobs.active");
  if (options_.job_begin_hook) options_.job_begin_hook(job->request);

  // A job whose context already tripped (cancelled while queued, deadline
  // spent on queue wait, server shutdown) completes without an Engine run;
  // the queue stats and everything else stay intact.
  const StatusCode pre = job->ctx.Check();
  if (pre != StatusCode::kOk) {
    JobResult result;
    result.status = Status(pre, "job interrupted before execution");
    CompleteJob(job, std::move(result));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++active_jobs_;
    ++stats_.executed;
    active_gauge.Set(static_cast<double>(active_jobs_));
  }
  executed.Add(1);

  Result<EngineRun> run = Status::OK();
  {
    // Fair sharing: while this job runs it holds one pool-partition lease,
    // so concurrent jobs split the process-wide BLAS pool's fan-out
    // instead of each claiming it whole.
    PoolPartitionLease lease;
    const ModelSpec& spec = job->request.model;
    EngineOptions eopt = options_.engine;
    eopt.method_options.tucker.ranks = spec.ranks;
    eopt.method_options.tucker.max_iterations = spec.max_iterations;
    eopt.method_options.tucker.tolerance = spec.tolerance;
    eopt.method_options.tucker.seed = spec.seed;
    eopt.solver_spec = spec.solver_spec;
    Engine engine(eopt);
    Timer exec_timer;
    run = job->request.tensor != nullptr
              ? engine.Solve(*job->request.tensor, &job->ctx)
              : engine.SolveFile(job->request.tensor_path, &job->ctx);
    MetricHistogram("serve.exec_ns")
        .Record(static_cast<std::uint64_t>(exec_timer.Seconds() * 1e9));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_jobs_;
    active_gauge.Set(static_cast<double>(active_jobs_));
  }

  JobResult result;
  if (!run.ok()) {
    result.status = run.status();
  } else {
    EngineRun engine_run = std::move(run).ValueOrDie();
    auto model = std::make_shared<CachedModel>();
    model->decomposition = std::move(engine_run.decomposition);
    model->stats = std::move(engine_run.stats);
    model->relative_error = engine_run.relative_error;
    model->bytes = model->decomposition.ByteSize();
    result.status = engine_run.status;
    result.model = std::move(model);
    // Only complete runs are cached: a best-so-far partial from a
    // cancelled/deadline-exceeded job must not short-circuit a later full
    // solve of the same model.
    if (result.status.ok()) {
      cache_.Put(job->key, result.model);
    }
  }
  CompleteJob(job, std::move(result));
}

void DecompositionServer::CompleteJob(const std::shared_ptr<ServeJob>& job,
                                      JobResult result) {
  static Histogram& job_ns = MetricHistogram("serve.job_ns");
  std::lock_guard<std::mutex> lock(mutex_);
  job->result = std::move(result);
  job->done = true;
  job_ns.Record(ElapsedNs(job->submit_tp));
  CountCompletionLocked(job->result);
  auto inflight_it = inflight_.find(job->key);
  if (inflight_it != inflight_.end() && inflight_it->second == job) {
    inflight_.erase(inflight_it);
  }
  // Single-flight fan-out: every follower receives the same shared model
  // (bitwise-identical by construction).
  for (const std::shared_ptr<ServeJob>& follower : job->followers) {
    follower->result = job->result;
    follower->result.deduplicated = true;
    follower->done = true;
    job_ns.Record(ElapsedNs(follower->submit_tp));
    CountCompletionLocked(follower->result);
  }
  job->followers.clear();
  job_done_.notify_all();
}

void DecompositionServer::CountCompletionLocked(const JobResult& result) {
  static Counter& completed = MetricCounter("serve.jobs.completed");
  static Counter& cancelled = MetricCounter("serve.jobs.cancelled");
  static Counter& deadline = MetricCounter("serve.jobs.deadline_exceeded");
  ++stats_.completed;
  completed.Add(1);
  if (result.status.code() == StatusCode::kCancelled) {
    ++stats_.cancelled;
    cancelled.Add(1);
  } else if (result.status.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.deadline_exceeded;
    deadline.Add(1);
  }
}

Result<std::shared_ptr<const CachedModel>> DecompositionServer::GetModel(
    const ModelSpec& spec) {
  DT_RETURN_NOT_OK(spec.Validate());
  std::shared_ptr<const CachedModel> model = cache_.Get(spec.CanonicalKey());
  if (model == nullptr) {
    return Status::FailedPrecondition(
        "model not resident: " + spec.CanonicalKey() +
        " — Submit a Solve for it first (queries never trigger compute)");
  }
  return model;
}

Result<ElementQueryResponse> DecompositionServer::QueryElement(
    const ModelSpec& spec, const ElementQueryRequest& req) {
  DT_TRACE_SPAN("serve.query.element");
  Timer timer;
  DT_ASSIGN_OR_RETURN(std::shared_ptr<const CachedModel> model,
                      GetModel(spec));
  ElementQueryResponse resp;
  DT_ASSIGN_OR_RETURN(resp.values,
                      ReconstructElements(model->decomposition, req.indices));
  MetricCounter("serve.queries.element").Add(req.indices.size());
  MetricHistogram("serve.query_ns.element")
      .Record(static_cast<std::uint64_t>(timer.Seconds() * 1e9));
  return resp;
}

Result<FiberQueryResponse> DecompositionServer::QueryFiber(
    const ModelSpec& spec, const FiberQueryRequest& req) {
  DT_TRACE_SPAN("serve.query.fiber");
  Timer timer;
  DT_ASSIGN_OR_RETURN(std::shared_ptr<const CachedModel> model,
                      GetModel(spec));
  FiberQueryResponse resp;
  resp.fibers.reserve(req.anchors.size());
  for (const std::vector<Index>& anchor : req.anchors) {
    DT_ASSIGN_OR_RETURN(
        std::vector<double> fiber,
        ReconstructFiber(model->decomposition, req.mode, anchor));
    resp.fibers.push_back(std::move(fiber));
  }
  MetricCounter("serve.queries.fiber").Add(req.anchors.size());
  MetricHistogram("serve.query_ns.fiber")
      .Record(static_cast<std::uint64_t>(timer.Seconds() * 1e9));
  return resp;
}

Result<SliceQueryResponse> DecompositionServer::QuerySlice(
    const ModelSpec& spec, const SliceQueryRequest& req) {
  DT_TRACE_SPAN("serve.query.slice");
  Timer timer;
  DT_ASSIGN_OR_RETURN(std::shared_ptr<const CachedModel> model,
                      GetModel(spec));
  SliceQueryResponse resp;
  resp.slices.reserve(req.slices.size());
  for (Index l : req.slices) {
    DT_ASSIGN_OR_RETURN(Matrix slice,
                        ReconstructFrontalSlice(model->decomposition, l));
    resp.slices.push_back(std::move(slice));
  }
  MetricCounter("serve.queries.slice").Add(req.slices.size());
  MetricHistogram("serve.query_ns.slice")
      .Record(static_cast<std::uint64_t>(timer.Seconds() * 1e9));
  return resp;
}

ServerStats DecompositionServer::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats s = stats_;
  s.queue_depth = queue_.Depth();
  s.active_jobs = active_jobs_;
  s.cache = cache_.GetStats();
  return s;
}

}  // namespace dtucker
