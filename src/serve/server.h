// DecompositionServer: a multi-tenant serving front end over the Engine
// facade — many concurrent jobs against one process, answered from cached
// factors whenever possible.
//
// The pieces (DESIGN.md §14):
//
//   - Admission + scheduling: a bounded priority job queue
//     (serve/job_queue.h). Submit() rejects with kResourceExhausted when
//     the queue is full; admitted jobs dispatch highest-priority-first,
//     FIFO within a priority, to a fixed pool of worker threads.
//   - Per-job execution control: every job owns a RunContext; a request
//     deadline is armed at admission (queue wait counts against it) and
//     the worker passes the context to the Engine via the per-call
//     override, so one job's deadline or cancellation never touches
//     another's.
//   - Fair compute sharing: each running job holds a PoolPartitionLease
//     (common/thread_pool.h), so two active jobs each fan out over ~half
//     the process-wide BLAS pool instead of both flooding it.
//   - Model cache + single-flight: completed decompositions land in an LRU
//     ModelCache keyed by ModelSpec::CanonicalKey. A Submit that matches a
//     resident model completes immediately from cache; one that matches a
//     job already *in flight* attaches to it as a follower — N concurrent
//     identical Solves run the Engine once and all N receive the same
//     (hence bitwise-identical) model.
//   - Factor-space queries: QueryElement / QueryFiber / QuerySlice answer
//     read-only requests straight from the cached (G, A(n)) via
//     tucker/reconstruct.h — O(prod J) per answer, never materializing X —
//     and are bitwise identical to indexing the full reconstruction.
//
// Everything observable rides the serve.* metrics namespace (counters
// serve.jobs.* / serve.cache.* / serve.queries.*, gauges serve.queue.depth
// and serve.jobs.active, histograms serve.job_ns / serve.queue_wait_ns /
// serve.exec_ns / serve.query_ns.*).
//
// Thread safety: the whole public surface may be called from any thread
// concurrently. Wait() blocks until the job completes and reaps its
// record; results are immutable shared snapshots (see serve/model_cache.h
// for the ownership story).
#ifndef DTUCKER_SERVE_SERVER_H_
#define DTUCKER_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "dtucker/engine.h"
#include "serve/job_queue.h"
#include "serve/model_cache.h"
#include "tucker/tucker.h"

namespace dtucker {

// Canonical identity of one decomposition: what the model cache keys on
// and what queries address. Two requests with equal ModelSpecs (same
// dataset, ranks, and solve knobs) are the same model — the server-wide
// EngineOptions (method, sharding, threads) are uniform across one
// server's jobs and therefore not part of the key.
struct ModelSpec {
  // Caller-chosen stable identity of the input data. Required: the server
  // never hashes tensor contents (that would cost a full pass over X).
  std::string dataset_id;
  std::vector<Index> ranks;  // Target Tucker ranks, one per mode.
  int max_iterations = 20;
  double tolerance = 1e-4;
  std::uint64_t seed = 42;
  // Fixed per-phase variant plan ("axis=name,..." — see EngineOptions::
  // solver_spec); empty keeps the default plan.
  std::string solver_spec;

  Status Validate() const;
  // The cache key: a canonical "dataset|ranks|iters|tol|seed|spec" string
  // (exact match, no hash collisions to reason about).
  std::string CanonicalKey() const;
  // FNV-1a hash of CanonicalKey() for logs and dashboards.
  std::uint64_t CanonicalHash() const;
};

// One decomposition job. The input tensor comes either as a caller-shared
// in-memory tensor or as a DTNSR001 file path (out-of-core SolveFile);
// exactly one of the two must be set.
struct SolveRequest {
  ModelSpec model;
  std::shared_ptr<const Tensor> tensor;
  std::string tensor_path;
  // Higher dispatches first; equal priorities run in admission order.
  int priority = 0;
  // Wall-time budget from admission (0 = none). Queue wait counts: a job
  // that expires while still queued completes with kDeadlineExceeded
  // without ever running.
  double deadline_seconds = 0;

  Status Validate() const;
};

using JobId = std::uint64_t;

// Forward declaration; the full record is defined after JobResult below.
struct ServeJob;

// Outcome of one job, shared by every waiter.
struct JobResult {
  // The completed (or best-so-far partial) decomposition; nullptr when the
  // job produced nothing usable (validation error, pre-run interruption).
  // Shared ownership: valid for as long as the caller holds it, even after
  // cache eviction.
  std::shared_ptr<const CachedModel> model;
  // kOk, or why the job ended early (kCancelled / kDeadlineExceeded /
  // solver errors). Partial best-so-far results carry the interruption
  // code here alongside a non-null model.
  Status status;
  bool from_cache = false;    // Served from the model cache, no Engine run.
  bool deduplicated = false;  // Attached to an identical in-flight job.
};

// Per-job record (internal; public only so the queue tests can build
// entries). `done`/`result`/`followers` are guarded by the server's
// mutex_; `ctx` is internally thread-safe (pokeable from Cancel() and the
// destructor while a worker runs the job); everything else is written
// once at Submit and read-only afterwards.
struct ServeJob {
  JobId id = 0;
  SolveRequest request;
  std::string key;
  bool is_follower = false;
  RunContext ctx;
  std::chrono::steady_clock::time_point submit_tp;
  bool done = false;
  JobResult result;
  std::vector<std::shared_ptr<ServeJob>> followers;  // Leader only.
};

struct ServerOptions {
  // Worker threads executing jobs (= maximum concurrently running solves).
  int num_workers = 2;
  // Pending-job bound for admission control (rejections return
  // kResourceExhausted).
  int queue_capacity = 64;
  ModelCacheOptions cache;
  // Base engine configuration for every job; the per-request ModelSpec
  // overrides ranks / max_iterations / tolerance / seed / solver_spec.
  EngineOptions engine;
  // Test seam: runs on the worker thread after a job is popped, before its
  // deadline check and Engine run. Leave empty in production.
  std::function<void(const SolveRequest&)> job_begin_hook;

  Status Validate() const;
};

// Point-in-time server counters (also published as serve.* metrics).
struct ServerStats {
  std::uint64_t submitted = 0;          // Admitted (incl. cache/dedup hits).
  std::uint64_t rejected = 0;           // Turned away at admission.
  std::uint64_t completed = 0;          // Jobs with a final result.
  std::uint64_t executed = 0;           // Actual Engine runs.
  std::uint64_t dedup_followers = 0;    // Jobs that rode an identical run.
  std::uint64_t served_from_cache = 0;  // Jobs answered from the cache.
  std::uint64_t cancelled = 0;          // Completed with kCancelled.
  std::uint64_t deadline_exceeded = 0;  // Completed with kDeadlineExceeded.
  int queue_depth = 0;
  int active_jobs = 0;  // Currently executing on workers.
  ModelCache::Stats cache;
};

// --- Factor-space query API ---------------------------------------------
// Batched read-only lookups against a cached model. All of them require
// the model to be resident (a prior Solve through this server); a miss is
// kFailedPrecondition, never a silent recompute — admission control stays
// in charge of all compute. Answers are bitwise identical to indexing
// TuckerDecomposition::Reconstruct() (tucker/reconstruct.h contract).

struct ElementQueryRequest {
  std::vector<std::vector<Index>> indices;  // One full index per element.
};
struct ElementQueryResponse {
  std::vector<double> values;  // values[i] = x(indices[i]).
};

struct FiberQueryRequest {
  Index mode = 0;  // The free mode; anchors pin every other mode.
  std::vector<std::vector<Index>> anchors;  // Entry at `mode` is ignored.
};
struct FiberQueryResponse {
  std::vector<std::vector<double>> fibers;  // fibers[i] has extent I_mode.
};

struct SliceQueryRequest {
  // Flattened trailing index per slice (mode-3 fastest, matching
  // Tensor::FrontalSlice).
  std::vector<Index> slices;
};
struct SliceQueryResponse {
  std::vector<Matrix> slices;  // I1 x I2 frontal slices.
};

class DecompositionServer {
 public:
  explicit DecompositionServer(ServerOptions options);

  // Shutdown: closes admission, cancels every queued and running job,
  // joins the workers. Queued jobs complete with kCancelled; results of
  // already-completed jobs stay retrievable until destruction finishes.
  ~DecompositionServer();

  DecompositionServer(const DecompositionServer&) = delete;
  DecompositionServer& operator=(const DecompositionServer&) = delete;

  const ServerOptions& options() const { return options_; }

  // Admits a job. Fast paths resolved at admission (no queue slot
  // consumed): a resident cache entry completes the job immediately; an
  // identical in-flight job absorbs this one as a follower. Otherwise the
  // job enters the priority queue — or is rejected with kResourceExhausted
  // when the queue is full.
  Result<JobId> Submit(SolveRequest request);

  // Blocks until the job completes, returns its result, and reaps the job
  // record (a second Wait on the same id is InvalidArgument).
  Result<JobResult> Wait(JobId id);

  // Requests cooperative cancellation of the job's own RunContext. Queued
  // jobs complete with kCancelled when popped; running jobs stop at the
  // solver's next checkpoint with their best-so-far state. Followers
  // cannot be cancelled independently of their leader (documented
  // limitation of single-flight).
  Status Cancel(JobId id);

  // Submit + Wait in one call.
  Result<JobResult> Solve(SolveRequest request);

  // Shared ownership of the resident model for `spec`, bumping its
  // recency; kFailedPrecondition when not resident.
  Result<std::shared_ptr<const CachedModel>> GetModel(const ModelSpec& spec);

  // Batched factor-space queries (see the request/response structs above).
  Result<ElementQueryResponse> QueryElement(const ModelSpec& spec,
                                            const ElementQueryRequest& req);
  Result<FiberQueryResponse> QueryFiber(const ModelSpec& spec,
                                        const FiberQueryRequest& req);
  Result<SliceQueryResponse> QuerySlice(const ModelSpec& spec,
                                        const SliceQueryRequest& req);

  ServerStats Stats() const;

 private:
  void WorkerLoop();
  void ExecuteJob(const std::shared_ptr<ServeJob>& job);
  // Finalizes `job` (and its followers) with `result`, updates stats, and
  // wakes waiters. Takes mutex_.
  void CompleteJob(const std::shared_ptr<ServeJob>& job, JobResult result);
  void CountCompletionLocked(const JobResult& result);

  ServerOptions options_;
  JobQueue queue_;
  ModelCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable job_done_;
  std::map<JobId, std::shared_ptr<ServeJob>> jobs_;
  // Single-flight index: canonical key -> the in-flight leader job.
  std::map<std::string, std::shared_ptr<ServeJob>> inflight_;
  JobId next_job_id_ = 1;
  ServerStats stats_;
  int active_jobs_ = 0;
  bool shutting_down_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace dtucker

#endif  // DTUCKER_SERVE_SERVER_H_
