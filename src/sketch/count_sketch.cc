#include "sketch/count_sketch.h"

#include "common/rng.h"

namespace dtucker {

CountSketch::CountSketch(Index input_dim, Index sketch_dim, uint64_t seed)
    : input_dim_(input_dim), sketch_dim_(sketch_dim) {
  DT_CHECK_GT(input_dim, 0);
  DT_CHECK_GT(sketch_dim, 0);
  Rng rng(seed);
  buckets_.resize(static_cast<std::size_t>(input_dim));
  signs_.resize(static_cast<std::size_t>(input_dim));
  for (Index i = 0; i < input_dim; ++i) {
    buckets_[static_cast<std::size_t>(i)] =
        static_cast<Index>(rng.UniformInt(static_cast<uint64_t>(sketch_dim)));
    signs_[static_cast<std::size_t>(i)] = rng.NextU64() & 1 ? 1.0 : -1.0;
  }
}

void CountSketch::ApplyColumn(const double* x, double* out) const {
  for (Index i = 0; i < input_dim_; ++i) {
    out[buckets_[static_cast<std::size_t>(i)]] +=
        signs_[static_cast<std::size_t>(i)] * x[i];
  }
}

Matrix CountSketch::Apply(const Matrix& a) const {
  DT_CHECK_EQ(a.rows(), input_dim_) << "CountSketch input dim mismatch";
  Matrix out(sketch_dim_, a.cols());
  for (Index j = 0; j < a.cols(); ++j) {
    ApplyColumn(a.col_data(j), out.col_data(j));
  }
  return out;
}

}  // namespace dtucker
