// CountSketch: the per-mode hashing primitive underlying TensorSketch.
//
// A CountSketch with sketch dimension m maps input coordinate i to bucket
// h(i) in [0, m) with sign sigma(i) in {-1, +1}; sketching a vector adds
// sigma(i) * x[i] into bucket h(i). It is an unbiased estimator of inner
// products with variance O(1/m).
#ifndef DTUCKER_SKETCH_COUNT_SKETCH_H_
#define DTUCKER_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace dtucker {

class CountSketch {
 public:
  CountSketch(Index input_dim, Index sketch_dim, uint64_t seed);

  Index input_dim() const { return input_dim_; }
  Index sketch_dim() const { return sketch_dim_; }

  Index Bucket(Index i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  double Sign(Index i) const { return signs_[static_cast<std::size_t>(i)]; }

  // Sketches each column of `a` (input_dim x c) into (sketch_dim x c).
  Matrix Apply(const Matrix& a) const;

  // Sketches a single column given by a raw pointer of length input_dim,
  // accumulating into `out` (length sketch_dim; caller zeroes it).
  void ApplyColumn(const double* x, double* out) const;

 private:
  Index input_dim_;
  Index sketch_dim_;
  std::vector<Index> buckets_;
  std::vector<double> signs_;
};

}  // namespace dtucker

#endif  // DTUCKER_SKETCH_COUNT_SKETCH_H_
