#include "sketch/tensor_sketch.h"

#include "fft/fft.h"

namespace dtucker {

TensorSketch::TensorSketch(std::vector<Index> dims, Index sketch_dim,
                           uint64_t seed)
    : dims_(std::move(dims)), sketch_dim_(sketch_dim) {
  DT_CHECK_GT(sketch_dim, 0);
  mode_sketches_.reserve(dims_.size());
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    mode_sketches_.emplace_back(dims_[k], sketch_dim,
                                seed + 0xABCD1234ULL * (k + 1));
  }
}

Matrix TensorSketch::SketchKronecker(
    const std::vector<const Matrix*>& factors) const {
  DT_CHECK_EQ(factors.size(), dims_.size()) << "one factor per mode";
  const Index k_modes = num_modes();

  // Per-mode: CountSketch every column, then FFT each sketched column.
  // spectra[k][j] is the spectrum of mode k's column j.
  std::vector<std::vector<std::vector<Complex>>> spectra(
      static_cast<std::size_t>(k_modes));
  Index total_cols = 1;
  for (Index k = 0; k < k_modes; ++k) {
    const Matrix& f = *factors[static_cast<std::size_t>(k)];
    DT_CHECK_EQ(f.rows(), dims_[static_cast<std::size_t>(k)])
        << "factor row mismatch at mode " << k;
    total_cols *= f.cols();
    Matrix cs = mode_sketches_[static_cast<std::size_t>(k)].Apply(f);
    auto& mode_spectra = spectra[static_cast<std::size_t>(k)];
    mode_spectra.resize(static_cast<std::size_t>(f.cols()));
    for (Index j = 0; j < f.cols(); ++j) {
      std::vector<double> col(cs.col_data(j),
                              cs.col_data(j) + sketch_dim_);
      mode_spectra[static_cast<std::size_t>(j)] = RealFftSpectrum(col);
    }
  }

  Matrix out(sketch_dim_, total_cols);
  std::vector<Index> tuple(static_cast<std::size_t>(k_modes), 0);
  for (Index c = 0; c < total_cols; ++c) {
    // Pointwise product of the per-mode spectra == circular convolution of
    // the CountSketches == TensorSketch of the Kronecker column.
    std::vector<Complex> acc =
        spectra[0][static_cast<std::size_t>(tuple[0])];
    for (Index k = 1; k < k_modes; ++k) {
      const auto& sk = spectra[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(
                                  tuple[static_cast<std::size_t>(k)])];
      for (Index i = 0; i < sketch_dim_; ++i) {
        acc[static_cast<std::size_t>(i)] *= sk[static_cast<std::size_t>(i)];
      }
    }
    std::vector<double> col = SpectrumToReal(std::move(acc));
    for (Index i = 0; i < sketch_dim_; ++i) {
      out(i, c) = col[static_cast<std::size_t>(i)];
    }
    // Advance the mode-0-fastest column tuple.
    for (Index k = 0; k < k_modes; ++k) {
      auto& tk = tuple[static_cast<std::size_t>(k)];
      if (++tk < factors[static_cast<std::size_t>(k)]->cols()) break;
      tk = 0;
    }
  }
  return out;
}

Matrix TensorSketch::SketchExplicit(const Matrix& y) const {
  Index rows = 1;
  for (Index d : dims_) rows *= d;
  DT_CHECK_EQ(y.rows(), rows) << "explicit sketch row mismatch";

  Matrix out(sketch_dim_, y.cols());
  // Walk rows maintaining the multi-index and the combined bucket/sign
  // incrementally.
  std::vector<Index> idx(dims_.size(), 0);
  Index bucket = 0;
  double sign = 1.0;
  // Initialize with all-zero coordinates.
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    bucket += mode_sketches_[k].Bucket(0);
    sign *= mode_sketches_[k].Sign(0);
  }
  for (Index r = 0; r < rows; ++r) {
    const Index b = bucket % sketch_dim_;
    for (Index c = 0; c < y.cols(); ++c) {
      out(b, c) += sign * y(r, c);
    }
    // Advance the multi-index; update bucket/sign contributions of the
    // modes that changed.
    for (std::size_t k = 0; k < dims_.size(); ++k) {
      bucket -= mode_sketches_[k].Bucket(idx[k]);
      sign /= mode_sketches_[k].Sign(idx[k]);
      if (++idx[k] < dims_[k]) {
        bucket += mode_sketches_[k].Bucket(idx[k]);
        sign *= mode_sketches_[k].Sign(idx[k]);
        break;
      }
      idx[k] = 0;
      bucket += mode_sketches_[k].Bucket(0);
      sign *= mode_sketches_[k].Sign(0);
    }
  }
  return out;
}

Matrix TensorSketch::SketchUnfoldingTransposed(const Tensor& x,
                                               Index mode) const {
  DT_CHECK_EQ(static_cast<Index>(dims_.size()), x.order() - 1)
      << "sketch must cover all modes but one";
  for (Index k = 0, d = 0; k < x.order(); ++k) {
    if (k == mode) continue;
    DT_CHECK_EQ(dims_[static_cast<std::size_t>(d)], x.dim(k))
        << "sketch dims must match the tensor with `mode` removed";
    ++d;
  }

  Matrix out(sketch_dim_, x.dim(mode));
  // One linear pass over the tensor (mode-1-fastest). Maintain the full
  // multi-index; the sketch row index is the multi-index with `mode`
  // removed (remaining modes keep their relative order, earliest fastest —
  // exactly the Kolda unfolding row ordering of X_(mode)^T).
  const Index order = x.order();
  std::vector<Index> idx(static_cast<std::size_t>(order), 0);
  // contribution[k]: bucket/sign contribution of mode k (skip `mode`).
  Index bucket = 0;
  double sign = 1.0;
  for (Index k = 0, d = 0; k < order; ++k) {
    if (k == mode) continue;
    bucket += mode_sketches_[static_cast<std::size_t>(d)].Bucket(0);
    sign *= mode_sketches_[static_cast<std::size_t>(d)].Sign(0);
    ++d;
  }

  const double* data = x.data();
  const Index total = x.size();
  for (Index flat = 0; flat < total; ++flat) {
    const Index b = bucket % sketch_dim_;
    out(b, idx[static_cast<std::size_t>(mode)]) += sign * data[flat];

    for (Index k = 0; k < order; ++k) {
      auto& ik = idx[static_cast<std::size_t>(k)];
      if (k == mode) {
        // The sketched coordinate ignores this mode.
        if (++ik < x.dim(k)) break;
        ik = 0;
        continue;
      }
      const Index d = k < mode ? k : k - 1;
      const auto& cs = mode_sketches_[static_cast<std::size_t>(d)];
      bucket -= cs.Bucket(ik);
      sign /= cs.Sign(ik);
      if (++ik < x.dim(k)) {
        bucket += cs.Bucket(ik);
        sign *= cs.Sign(ik);
        break;
      }
      ik = 0;
      bucket += cs.Bucket(0);
      sign *= cs.Sign(0);
    }
  }
  return out;
}

}  // namespace dtucker
