// TensorSketch (Pagh 2013; Pham & Pagh 2013) for Kronecker-structured
// matrices — the substrate of the Tucker-ts / Tucker-ttmts baselines
// (Malik & Becker, NeurIPS 2018).
//
// A TensorSketch over K modes with dimensions (d_0, ..., d_{K-1}) and
// sketch size m hashes a product-space coordinate i = (i_0, ..., i_{K-1})
// (with i_0 fastest, matching this library's unfolding convention) to
//   bucket(i) = (sum_k h_k(i_k)) mod m,   sign(i) = prod_k sigma_k(i_k).
// The punchline: the sketch of a Kronecker-structured column
// (x_{K-1} (x) ... (x) x_0) equals the circular convolution of the per-mode
// CountSketches, computable in O(sum_k d_k + K m log m) via FFT.
#ifndef DTUCKER_SKETCH_TENSOR_SKETCH_H_
#define DTUCKER_SKETCH_TENSOR_SKETCH_H_

#include <cstdint>
#include <vector>

#include "sketch/count_sketch.h"
#include "tensor/tensor.h"

namespace dtucker {

class TensorSketch {
 public:
  // `dims[k]` is the size of mode k of the product space; i_0 is the
  // fastest-varying coordinate.
  TensorSketch(std::vector<Index> dims, Index sketch_dim, uint64_t seed);

  Index sketch_dim() const { return sketch_dim_; }
  Index num_modes() const { return static_cast<Index>(dims_.size()); }
  const std::vector<Index>& dims() const { return dims_; }

  // Sketches the Kronecker product whose mode-k factor is *factors[k]
  // (rows = dims[k]). Column ordering: factor-0 column index fastest —
  // the same ordering as the columns of (A_{K-1} (x) ... (x) A_0), which
  // matches the Kolda unfolding identity used by the Tucker solvers.
  // Output: sketch_dim x prod_k cols_k. Uses the FFT fast path.
  Matrix SketchKronecker(const std::vector<const Matrix*>& factors) const;

  // Sketches an arbitrary (unstructured) matrix y with prod(dims) rows,
  // row index decomposed mode-0-fastest. O(rows * cols); one streaming
  // pass.
  Matrix SketchExplicit(const Matrix& y) const;

  // Sketches the transposed mode-n unfolding of `x` — i.e. computes
  // S * X_(mode)^T (sketch_dim x I_mode) — directly from the tensor,
  // without materializing the (huge) unfolding. Requires dims to equal the
  // tensor's shape with `mode` removed. This is the preprocessing pass of
  // the Tucker-ts family.
  Matrix SketchUnfoldingTransposed(const Tensor& x, Index mode) const;

 private:
  std::vector<Index> dims_;
  Index sketch_dim_;
  std::vector<CountSketch> mode_sketches_;
};

}  // namespace dtucker

#endif  // DTUCKER_SKETCH_TENSOR_SKETCH_H_
