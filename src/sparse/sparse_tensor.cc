#include "sparse/sparse_tensor.h"

namespace dtucker {

SparseTensor::SparseTensor(std::vector<Index> shape)
    : shape_(std::move(shape)) {
  Index volume = 1;
  strides_.resize(shape_.size());
  for (std::size_t n = 0; n < shape_.size(); ++n) {
    DT_CHECK_GE(shape_[n], 0) << "negative dimension";
    strides_[n] = volume;
    volume *= shape_[n];
  }
}

Index SparseTensor::volume() const {
  Index v = 1;
  for (Index d : shape_) v *= d;
  return v;
}

void SparseTensor::Reserve(std::size_t n) {
  flat_indices_.reserve(n);
  values_.reserve(n);
}

void SparseTensor::Add(const std::vector<Index>& idx, double value) {
  DT_DCHECK_EQ(static_cast<Index>(idx.size()), order());
  int64_t flat = 0;
  for (std::size_t n = 0; n < idx.size(); ++n) {
    DT_DCHECK(idx[n] >= 0 && idx[n] < shape_[n]);
    flat += static_cast<int64_t>(idx[n]) * strides_[n];
  }
  flat_indices_.push_back(flat);
  values_.push_back(value);
}

void SparseTensor::AddFlat(int64_t flat, double value) {
  DT_DCHECK(flat >= 0 && flat < volume());
  flat_indices_.push_back(flat);
  values_.push_back(value);
}

Tensor SparseTensor::ToDense() const {
  Tensor out(shape_);
  for (std::size_t e = 0; e < values_.size(); ++e) {
    out.data()[static_cast<std::size_t>(flat_indices_[e])] += values_[e];
  }
  return out;
}

double SparseTensor::SquaredNorm() const {
  // Note: duplicate coordinates make this an upper bound; consumers in this
  // project never create duplicates.
  double s = 0.0;
  for (double v : values_) s += v * v;
  return s;
}

Tensor SparseTensor::ModeProductDense(const Matrix& u, Index mode,
                                      Trans trans) const {
  DT_CHECK(mode >= 0 && mode < order()) << "mode out of range";
  const Index j_dim = trans == Trans::kNo ? u.rows() : u.cols();
  const Index contracted = trans == Trans::kNo ? u.cols() : u.rows();
  DT_CHECK_EQ(contracted, dim(mode)) << "sparse TTM dimension mismatch";

  std::vector<Index> new_shape = shape_;
  new_shape[static_cast<std::size_t>(mode)] = j_dim;
  Tensor out(std::move(new_shape));

  const Index stride = strides_[static_cast<std::size_t>(mode)];
  const Index dim_n = dim(mode);
  // Output strides: modes below `mode` unchanged; mode itself has the same
  // stride (front product is identical); modes above shrink by dim_n/j_dim.
  // Compute the output flat index from the decomposition
  //   flat = low + stride*(i_n + dim_n*high).
  for (std::size_t e = 0; e < values_.size(); ++e) {
    const int64_t flat = flat_indices_[e];
    const int64_t low = flat % stride;
    const int64_t rest = flat / stride;
    const int64_t i_n = rest % dim_n;
    const int64_t high = rest / dim_n;
    const double v = values_[e];
    const int64_t base = low + stride * j_dim * high;
    double* out_data = out.data();
    if (trans == Trans::kNo) {
      // op(U)(j, i_n) = u(j, i_n): strided column read.
      for (Index j = 0; j < j_dim; ++j) {
        out_data[base + stride * j] +=
            v * u(j, static_cast<Index>(i_n));
      }
    } else {
      // op(U)(j, i_n) = u(i_n, j): contiguous row read along u's row i_n.
      for (Index j = 0; j < j_dim; ++j) {
        out_data[base + stride * j] +=
            v * u(static_cast<Index>(i_n), j);
      }
    }
  }
  return out;
}

}  // namespace dtucker
