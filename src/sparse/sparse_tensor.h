// COO sparse tensor and the sparse mode-n product.
//
// Substrate for the MACH baseline (Tsourakakis 2010): MACH sparsifies a
// dense tensor by element sampling and then runs ALS where the *first*
// contraction of every factor update streams the nonzeros (O(nnz * J))
// instead of the full dense volume.
#ifndef DTUCKER_SPARSE_SPARSE_TENSOR_H_
#define DTUCKER_SPARSE_SPARSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "linalg/blas.h"
#include "linalg/matrix.h"
#include "tensor/tensor.h"

namespace dtucker {

class SparseTensor {
 public:
  explicit SparseTensor(std::vector<Index> shape);

  const std::vector<Index>& shape() const { return shape_; }
  Index order() const { return static_cast<Index>(shape_.size()); }
  Index dim(Index mode) const {
    return shape_[static_cast<std::size_t>(mode)];
  }
  std::size_t nnz() const { return values_.size(); }

  // Total elements of the dense shape.
  Index volume() const;

  void Reserve(std::size_t n);

  // Appends a nonzero at the given multi-index. Duplicate coordinates are
  // allowed and are treated additively by all consumers.
  void Add(const std::vector<Index>& idx, double value);

  // Appends a nonzero at a flat (mode-1-fastest) linear index.
  void AddFlat(int64_t flat, double value);

  // Densifies (for tests and small problems).
  Tensor ToDense() const;

  double SquaredNorm() const;

  // Sparse TTM: returns the dense tensor X x_mode op(U), where op(U) is
  // (J x I_mode) for Trans::kNo and U^T for Trans::kYes (U is I_mode x J).
  // Cost O(nnz * J); the result replaces I_mode by J.
  Tensor ModeProductDense(const Matrix& u, Index mode,
                          Trans trans = Trans::kNo) const;

  // Logical bytes held (indices + values), for space accounting.
  std::size_t ByteSize() const {
    return values_.size() * (sizeof(double) + sizeof(int64_t));
  }

 private:
  std::vector<Index> shape_;
  std::vector<Index> strides_;
  std::vector<int64_t> flat_indices_;
  std::vector<double> values_;
};

}  // namespace dtucker

#endif  // DTUCKER_SPARSE_SPARSE_TENSOR_H_
