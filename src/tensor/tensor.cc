#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/rng.h"

namespace dtucker {

Tensor::Tensor(std::vector<Index> shape) : shape_(std::move(shape)) {
  Index volume = 1;
  strides_.resize(shape_.size());
  for (std::size_t n = 0; n < shape_.size(); ++n) {
    DT_CHECK_GE(shape_[n], 0) << "negative dimension";
    strides_[n] = volume;
    volume *= shape_[n];
  }
  data_.assign(static_cast<std::size_t>(volume), 0.0);
}

Tensor Tensor::GaussianRandom(std::vector<Index> shape, Rng& rng) {
  Tensor t(std::move(shape));
  rng.FillGaussian(t.data(), t.data_.size());
  return t;
}

Tensor Tensor::FromFlat(std::vector<Index> shape, std::vector<double> data) {
  Tensor t(std::move(shape));
  DT_CHECK_EQ(t.data_.size(), data.size()) << "flat buffer volume mismatch";
  t.data_ = std::move(data);
  return t;
}

std::size_t Tensor::FlatIndex(const std::vector<Index>& idx) const {
  DT_DCHECK_EQ(static_cast<Index>(idx.size()), order());
  Index flat = 0;
  for (std::size_t n = 0; n < idx.size(); ++n) {
    DT_DCHECK(idx[n] >= 0 && idx[n] < shape_[n]);
    flat += idx[n] * strides_[n];
  }
  return static_cast<std::size_t>(flat);
}

double& Tensor::operator()(Index i, Index j, Index k) {
  DT_DCHECK_EQ(order(), 3);
  return data_[static_cast<std::size_t>(i + j * strides_[1] +
                                        k * strides_[2])];
}

double Tensor::operator()(Index i, Index j, Index k) const {
  DT_DCHECK_EQ(order(), 3);
  return data_[static_cast<std::size_t>(i + j * strides_[1] +
                                        k * strides_[2])];
}

double& Tensor::operator()(Index i, Index j, Index k, Index l) {
  DT_DCHECK_EQ(order(), 4);
  return data_[static_cast<std::size_t>(i + j * strides_[1] +
                                        k * strides_[2] + l * strides_[3])];
}

double Tensor::operator()(Index i, Index j, Index k, Index l) const {
  DT_DCHECK_EQ(order(), 4);
  return data_[static_cast<std::size_t>(i + j * strides_[1] +
                                        k * strides_[2] + l * strides_[3])];
}

double Tensor::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Tensor::FrobeniusNorm() const { return std::sqrt(SquaredNorm()); }

Tensor& Tensor::operator+=(const Tensor& other) {
  DT_CHECK(shape_ == other.shape_) << "shape mismatch";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  DT_CHECK(shape_ == other.shape_) << "shape mismatch";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Index Tensor::NumFrontalSlices() const {
  DT_CHECK_GE(order(), 2) << "frontal slices need order >= 2";
  Index n = 1;
  for (Index k = 2; k < order(); ++k) n *= dim(k);
  return n;
}

Matrix Tensor::FrontalSlice(Index l) const {
  DT_CHECK(l >= 0 && l < NumFrontalSlices()) << "slice index out of range";
  const Index rows = dim(0);
  const Index cols = dim(1);
  const std::size_t slice_size = static_cast<std::size_t>(rows * cols);
  Matrix m(rows, cols);
  std::memcpy(m.data(), data_.data() + static_cast<std::size_t>(l) * slice_size,
              slice_size * sizeof(double));
  return m;
}

void Tensor::SetFrontalSlice(Index l, const Matrix& m) {
  DT_CHECK(l >= 0 && l < NumFrontalSlices()) << "slice index out of range";
  DT_CHECK(m.rows() == dim(0) && m.cols() == dim(1)) << "slice shape mismatch";
  const std::size_t slice_size = static_cast<std::size_t>(m.size());
  std::memcpy(data_.data() + static_cast<std::size_t>(l) * slice_size,
              m.data(), slice_size * sizeof(double));
}

void Tensor::ResizeTo(const std::vector<Index>& shape) {
  Index volume = 1;
  strides_.resize(shape.size());
  for (std::size_t n = 0; n < shape.size(); ++n) {
    DT_CHECK_GE(shape[n], 0) << "negative dimension";
    strides_[n] = volume;
    volume *= shape[n];
  }
  shape_ = shape;
  data_.resize(static_cast<std::size_t>(volume));
}

Tensor Tensor::LastModeSlice(Index start, Index len) const {
  const Index last = order() - 1;
  DT_CHECK(start >= 0 && len >= 0 && start + len <= dim(last))
      << "last-mode slice out of range";
  std::vector<Index> new_shape = shape_;
  new_shape[static_cast<std::size_t>(last)] = len;
  Tensor out(std::move(new_shape));
  const std::size_t block =
      static_cast<std::size_t>(strides_[static_cast<std::size_t>(last)]);
  std::memcpy(out.data(), data_.data() + static_cast<std::size_t>(start) * block,
              static_cast<std::size_t>(len) * block * sizeof(double));
  return out;
}

Tensor Tensor::Reshaped(std::vector<Index> new_shape) const {
  Tensor out(std::move(new_shape));
  DT_CHECK_EQ(out.size(), size()) << "reshape volume mismatch";
  out.data_ = data_;
  return out;
}

Tensor Tensor::Permuted(const std::vector<Index>& perm) const {
  const Index n = order();
  DT_CHECK_EQ(static_cast<Index>(perm.size()), n) << "perm size mismatch";
  std::vector<Index> new_shape(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) {
    new_shape[static_cast<std::size_t>(k)] =
        shape_[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])];
  }
  Tensor out(new_shape);

  // Walk the source in linear order and scatter into the destination.
  std::vector<Index> idx(static_cast<std::size_t>(n), 0);
  const std::size_t total = data_.size();
  for (std::size_t flat = 0; flat < total; ++flat) {
    Index dst = 0;
    for (Index k = 0; k < n; ++k) {
      dst += idx[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] *
             out.strides_[static_cast<std::size_t>(k)];
    }
    out.data_[static_cast<std::size_t>(dst)] = data_[flat];
    // Increment the multi-index (mode-1 fastest).
    for (Index k = 0; k < n; ++k) {
      auto& ik = idx[static_cast<std::size_t>(k)];
      if (++ik < shape_[static_cast<std::size_t>(k)]) break;
      ik = 0;
    }
  }
  return out;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t n = 0; n < shape_.size(); ++n) {
    os << shape_[n] << (n + 1 < shape_.size() ? " x " : "");
  }
  os << ")";
  return os.str();
}

double RelativeError(const Tensor& x, const Tensor& y) {
  DT_CHECK(x.shape() == y.shape()) << "shape mismatch in RelativeError";
  double num = 0.0, den = 0.0;
  const double* xd = x.data();
  const double* yd = y.data();
  for (Index i = 0; i < x.size(); ++i) {
    const double d = xd[i] - yd[i];
    num += d * d;
    den += xd[i] * xd[i];
  }
  return den > 0 ? num / den : 0.0;
}

double InnerProduct(const Tensor& x, const Tensor& y) {
  DT_CHECK(x.shape() == y.shape()) << "shape mismatch in InnerProduct";
  double s = 0.0;
  for (Index i = 0; i < x.size(); ++i) s += x.data()[i] * y.data()[i];
  return s;
}

bool AlmostEqual(const Tensor& a, const Tensor& b, double tol) {
  if (a.shape() != b.shape()) return false;
  for (Index i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

}  // namespace dtucker
