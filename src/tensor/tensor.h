// Dense N-order tensor.
//
// Layout: mode-1-fastest ("generalized column-major", the Kolda
// convention): element (i_1, ..., i_N) lives at linear offset
//   i_1 + I_1*(i_2 + I_2*(i_3 + ...)).
// Consequences this library relies on:
//   * the mode-1 unfolding X_(1) is a zero-copy reinterpretation;
//   * frontal slices X(:,:,l) of a 3-order tensor (and more generally
//     X(:,:,i_3,...,i_N)) are contiguous I_1 x I_2 column-major matrices —
//     exactly the objects D-Tucker's approximation phase consumes.
#ifndef DTUCKER_TENSOR_TENSOR_H_
#define DTUCKER_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "linalg/matrix.h"

namespace dtucker {

class Rng;

class Tensor {
 public:
  // Empty 0-order tensor.
  Tensor() = default;

  // Zero-initialized tensor with the given shape (all dims must be >= 0).
  explicit Tensor(std::vector<Index> shape);

  static Tensor Zero(std::vector<Index> shape) { return Tensor(std::move(shape)); }
  // I.i.d. standard normal entries.
  static Tensor GaussianRandom(std::vector<Index> shape, Rng& rng);
  // Takes ownership of a flat buffer (must match the shape's volume).
  static Tensor FromFlat(std::vector<Index> shape, std::vector<double> data);

  Index order() const { return static_cast<Index>(shape_.size()); }
  const std::vector<Index>& shape() const { return shape_; }
  Index dim(Index mode) const {
    DT_DCHECK(mode >= 0 && mode < order());
    return shape_[static_cast<std::size_t>(mode)];
  }
  Index size() const { return static_cast<Index>(data_.size()); }
  std::size_t ByteSize() const { return data_.size() * sizeof(double); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Multi-index element access. `idx` has one entry per mode.
  double& At(const std::vector<Index>& idx) {
    return data_[FlatIndex(idx)];
  }
  double At(const std::vector<Index>& idx) const {
    return data_[FlatIndex(idx)];
  }

  // Convenience 3- and 4-order accessors used heavily in tests.
  double& operator()(Index i, Index j, Index k);
  double operator()(Index i, Index j, Index k) const;
  double& operator()(Index i, Index j, Index k, Index l);
  double operator()(Index i, Index j, Index k, Index l) const;

  double SquaredNorm() const;
  double FrobeniusNorm() const;

  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(double scalar);

  // Number of frontal slices: prod of dims 3..N (1 for a matrix).
  Index NumFrontalSlices() const;

  // Copies frontal slice number `l` (0-based, modes 3..N flattened in
  // mode-3-fastest order) into an I1 x I2 matrix. O(I1*I2) memcpy.
  Matrix FrontalSlice(Index l) const;

  // Overwrites frontal slice `l` with `m` (shape must be I1 x I2).
  void SetFrontalSlice(Index l, const Matrix& m);

  // Reshapes in place to `shape` without preserving contents. The backing
  // vector's capacity is retained, so a workspace tensor resized to the same
  // (or a smaller) volume performs no allocation. Contents are unspecified
  // for shrink-or-equal resizes and zero-filled growth is NOT guaranteed:
  // callers must overwrite every element.
  void ResizeTo(const std::vector<Index>& shape);

  // Copies the sub-tensor with last-mode indices [start, start+len).
  // The block is contiguous in memory, so this is a single memcpy.
  Tensor LastModeSlice(Index start, Index len) const;

  // Returns a tensor with the same data and a compatible new shape
  // (volumes must match). O(size) copy.
  Tensor Reshaped(std::vector<Index> new_shape) const;

  // Permutes modes: out(idx[perm[0]], ..., idx[perm[N-1]]) = in(idx).
  // perm must be a permutation of {0..N-1}.
  Tensor Permuted(const std::vector<Index>& perm) const;

  // Small-tensor rendering for debugging.
  std::string ShapeString() const;

 private:
  std::size_t FlatIndex(const std::vector<Index>& idx) const;

  std::vector<Index> shape_;
  std::vector<Index> strides_;  // strides_[n] = prod of dims < n.
  std::vector<double> data_;
};

// Relative squared reconstruction error ||X - Y||_F^2 / ||X||_F^2.
double RelativeError(const Tensor& x, const Tensor& y);

// Inner product <X, Y> = sum of elementwise products.
double InnerProduct(const Tensor& x, const Tensor& y);

bool AlmostEqual(const Tensor& a, const Tensor& b, double tol = 1e-10);

}  // namespace dtucker

#endif  // DTUCKER_TENSOR_TENSOR_H_
