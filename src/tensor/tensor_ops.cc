#include "tensor/tensor_ops.h"

#include <cstring>

#include "common/thread_pool.h"
#include "linalg/gemm_kernel.h"

namespace dtucker {

namespace {

// Splits the shape around `mode` into (front, dim, back) so the tensor can
// be treated as a (front x dim x back) array with front fastest.
struct ModeSplit {
  Index front = 1;
  Index dim = 0;
  Index back = 1;
};

ModeSplit SplitAtMode(const Tensor& x, Index mode) {
  DT_CHECK(mode >= 0 && mode < x.order()) << "mode out of range";
  ModeSplit s;
  for (Index k = 0; k < mode; ++k) s.front *= x.dim(k);
  s.dim = x.dim(mode);
  for (Index k = mode + 1; k < x.order(); ++k) s.back *= x.dim(k);
  return s;
}

}  // namespace

Matrix Unfold(const Tensor& x, Index mode) {
  const ModeSplit s = SplitAtMode(x, mode);
  Matrix out(s.dim, s.front * s.back);
  const double* src = x.data();
  if (mode == 0) {
    // Layout-preserving: flat buffer is already (dim x back) column-major.
    std::memcpy(out.data(), src,
                static_cast<std::size_t>(x.size()) * sizeof(double));
    return out;
  }
  // Source flat index: f + front*(i + dim*b); destination: (i, f + front*b).
  for (Index b = 0; b < s.back; ++b) {
    for (Index i = 0; i < s.dim; ++i) {
      const double* col = src + s.front * (i + s.dim * b);
      for (Index f = 0; f < s.front; ++f) {
        out(i, f + s.front * b) = col[f];
      }
    }
  }
  return out;
}

Tensor Fold(const Matrix& m, Index mode, const std::vector<Index>& shape) {
  Tensor out(shape);
  const ModeSplit s = SplitAtMode(out, mode);
  DT_CHECK(m.rows() == s.dim && m.cols() == s.front * s.back)
      << "Fold shape mismatch";
  double* dst = out.data();
  if (mode == 0) {
    std::memcpy(dst, m.data(),
                static_cast<std::size_t>(out.size()) * sizeof(double));
    return out;
  }
  for (Index b = 0; b < s.back; ++b) {
    for (Index i = 0; i < s.dim; ++i) {
      double* col = dst + s.front * (i + s.dim * b);
      for (Index f = 0; f < s.front; ++f) {
        col[f] = m(i, f + s.front * b);
      }
    }
  }
  return out;
}

Tensor ModeProduct(const Tensor& x, const Matrix& u, Index mode, Trans trans) {
  const ModeSplit s = SplitAtMode(x, mode);
  const Index j = trans == Trans::kNo ? u.rows() : u.cols();
  const Index contracted = trans == Trans::kNo ? u.cols() : u.rows();
  DT_CHECK_EQ(contracted, s.dim) << "ModeProduct dimension mismatch at mode "
                                 << mode;

  std::vector<Index> new_shape = x.shape();
  new_shape[static_cast<std::size_t>(mode)] = j;
  Tensor out(std::move(new_shape));

  if (mode == 0) {
    // out_(1) (j x front*back) = op(U) * X_(1); both unfoldings are
    // layout-preserving, so one GEMM over the flat buffers suffices.
    GemmRaw(trans == Trans::kNo ? Trans::kNo : Trans::kYes, Trans::kNo, j,
            s.back /* front == 1 */, s.dim, 1.0, u.data(), u.rows(), x.data(),
            s.dim, 0.0, out.data(), j);
    return out;
  }

  // For each back-slab b, the source (front x dim) block is contiguous and
  // column-major; compute out_slab = src_slab * op(U)^T.
  //   trans == kNo : op(U)^T = U^T (dim x j)   -> GEMM(N, T) with U.
  //   trans == kYes: op(U)^T = U   (dim x j)   -> GEMM(N, N) with U.
  const std::size_t src_slab = static_cast<std::size_t>(s.front * s.dim);
  const std::size_t dst_slab = static_cast<std::size_t>(s.front * j);
  auto run_slab = [&](Index b) {
    GemmRaw(Trans::kNo, trans == Trans::kNo ? Trans::kYes : Trans::kNo,
            s.front, j, s.dim, 1.0,
            x.data() + static_cast<std::size_t>(b) * src_slab, s.front,
            u.data(), u.rows(), 0.0,
            out.data() + static_cast<std::size_t>(b) * dst_slab, s.front);
  };
  // With enough independent slabs, parallelize across them (each writes a
  // disjoint output slab) and keep the per-slab GEMMs serial; otherwise run
  // the slab loop serially and let the big GEMMs thread internally.
  ThreadPool* pool = SharedBlasPool();
  if (pool != nullptr && !InBlasWorker() &&
      s.back >= static_cast<Index>(pool->num_threads())) {
    pool->ParallelForRanges(static_cast<std::size_t>(s.back), /*min_grain=*/1,
                            [&](std::size_t begin, std::size_t end) {
                              BlasWorkerScope scope;
                              for (std::size_t b = begin; b < end; ++b) {
                                run_slab(static_cast<Index>(b));
                              }
                            });
  } else {
    for (Index b = 0; b < s.back; ++b) run_slab(b);
  }
  return out;
}

Tensor ModeProductChain(const Tensor& x, const std::vector<Matrix>& matrices,
                        Index skip_mode, Trans trans) {
  DT_CHECK_EQ(static_cast<Index>(matrices.size()), x.order())
      << "need one matrix per mode";
  Tensor cur = x;
  for (Index n = 0; n < x.order(); ++n) {
    if (n == skip_mode) continue;
    cur = ModeProduct(cur, matrices[static_cast<std::size_t>(n)], n, trans);
  }
  return cur;
}

Matrix Kronecker(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (Index ja = 0; ja < a.cols(); ++ja) {
    for (Index jb = 0; jb < b.cols(); ++jb) {
      const Index j = ja * b.cols() + jb;
      for (Index ia = 0; ia < a.rows(); ++ia) {
        const double av = a(ia, ja);
        double* dst = out.col_data(j) + ia * b.rows();
        const double* src = b.col_data(jb);
        for (Index ib = 0; ib < b.rows(); ++ib) dst[ib] = av * src[ib];
      }
    }
  }
  return out;
}

Matrix KhatriRao(const Matrix& a, const Matrix& b) {
  DT_CHECK_EQ(a.cols(), b.cols()) << "Khatri-Rao column count mismatch";
  Matrix out(a.rows() * b.rows(), a.cols());
  for (Index j = 0; j < a.cols(); ++j) {
    double* dst = out.col_data(j);
    const double* bcol = b.col_data(j);
    for (Index ia = 0; ia < a.rows(); ++ia) {
      const double av = a(ia, j);
      for (Index ib = 0; ib < b.rows(); ++ib) {
        dst[ia * b.rows() + ib] = av * bcol[ib];
      }
    }
  }
  return out;
}

}  // namespace dtucker
