#include "tensor/tensor_ops.h"

#include <cstring>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "linalg/gemm_kernel.h"

namespace dtucker {

namespace {

// Splits the shape around `mode` into (front, dim, back) so the tensor can
// be treated as a (front x dim x back) array with front fastest.
struct ModeSplit {
  Index front = 1;
  Index dim = 0;
  Index back = 1;
};

ModeSplit SplitAtMode(const Tensor& x, Index mode) {
  DT_CHECK(mode >= 0 && mode < x.order()) << "mode out of range";
  ModeSplit s;
  for (Index k = 0; k < mode; ++k) s.front *= x.dim(k);
  s.dim = x.dim(mode);
  for (Index k = mode + 1; k < x.order(); ++k) s.back *= x.dim(k);
  return s;
}

// Number of independent accumulator chunks in ModeGram. A fixed constant
// (never derived from the thread count) so the floating-point reduction
// order — and therefore the result bits — do not change with
// SetBlasThreads().
constexpr Index kModeGramChunks = 8;

}  // namespace

Matrix Unfold(const Tensor& x, Index mode) {
  const ModeSplit s = SplitAtMode(x, mode);
  Matrix out(s.dim, s.front * s.back);
  const double* src = x.data();
  if (mode == 0) {
    // Layout-preserving: flat buffer is already (dim x back) column-major.
    std::memcpy(out.data(), src,
                static_cast<std::size_t>(x.size()) * sizeof(double));
    return out;
  }
  // Source flat index: f + front*(i + dim*b); destination: (i, f + front*b).
  for (Index b = 0; b < s.back; ++b) {
    for (Index i = 0; i < s.dim; ++i) {
      const double* col = src + s.front * (i + s.dim * b);
      for (Index f = 0; f < s.front; ++f) {
        out(i, f + s.front * b) = col[f];
      }
    }
  }
  return out;
}

Tensor Fold(const Matrix& m, Index mode, const std::vector<Index>& shape) {
  Tensor out(shape);
  const ModeSplit s = SplitAtMode(out, mode);
  DT_CHECK(m.rows() == s.dim && m.cols() == s.front * s.back)
      << "Fold shape mismatch";
  double* dst = out.data();
  if (mode == 0) {
    std::memcpy(dst, m.data(),
                static_cast<std::size_t>(out.size()) * sizeof(double));
    return out;
  }
  for (Index b = 0; b < s.back; ++b) {
    for (Index i = 0; i < s.dim; ++i) {
      double* col = dst + s.front * (i + s.dim * b);
      for (Index f = 0; f < s.front; ++f) {
        col[f] = m(i, f + s.front * b);
      }
    }
  }
  return out;
}

Matrix ModeGram(const Tensor& x, Index mode) {
  static Counter& calls = MetricCounter("tensor.mode_gram");
  calls.Add(1);
  DT_TRACE_SPAN("tensor.mode_gram");
  const ModeSplit s = SplitAtMode(x, mode);
  Matrix g = Matrix::Uninitialized(s.dim, s.dim);
  if (x.size() == 0) {
    // Degenerate unfolding with zero columns: the Gram is exactly zero.
    std::fill(g.data(), g.data() + g.size(), 0.0);
    return g;
  }
  if (mode == 0) {
    // The flat buffer already is X_(1) (dim x back) column-major; one GEMM
    // suffices and may thread internally (bitwise-deterministic by the
    // packed-GEMM contract, DESIGN.md §6).
    GemmRaw(Trans::kNo, Trans::kYes, s.dim, s.dim, s.back, 1.0, x.data(),
            s.dim, x.data(), s.dim, 0.0, g.data(), s.dim);
    return g;
  }

  // Back-slab b is a contiguous (front x dim) column-major block whose
  // columns are rows of X_(n), so G = sum_b slab_b^T slab_b.
  const std::size_t slab = static_cast<std::size_t>(s.front * s.dim);
  const double* src = x.data();
  const Index chunks = std::min(kModeGramChunks, s.back);
  auto run_chunk = [&](Index c, double* acc) {
    const Index begin = s.back * c / chunks;
    const Index end = s.back * (c + 1) / chunks;
    for (Index b = begin; b < end; ++b) {
      const double* sb = src + static_cast<std::size_t>(b) * slab;
      GemmRaw(Trans::kYes, Trans::kNo, s.dim, s.dim, s.front, 1.0, sb, s.front,
              sb, s.front, b == begin ? 0.0 : 1.0, acc, s.dim);
    }
  };
  if (chunks == 1) {
    // One slab: a single Gram GEMM that may thread internally.
    run_chunk(0, g.data());
    return g;
  }

  // Chunk 0 accumulates into g directly; chunks 1..C-1 into partials.
  // Serial and pooled paths execute the identical chunk structure.
  std::vector<Matrix> partials(static_cast<std::size_t>(chunks - 1));
  for (Matrix& p : partials) p = Matrix::Uninitialized(s.dim, s.dim);
  auto chunk_acc = [&](Index c) {
    return c == 0 ? g.data() : partials[static_cast<std::size_t>(c - 1)].data();
  };
  ThreadPool* pool = SharedBlasPool();
  if (pool != nullptr && !InBlasWorker()) {
    pool->ParallelForRanges(static_cast<std::size_t>(chunks), /*min_grain=*/1,
                            [&](std::size_t begin, std::size_t end) {
                              BlasWorkerScope scope;
                              for (std::size_t c = begin; c < end; ++c) {
                                const Index ci = static_cast<Index>(c);
                                run_chunk(ci, chunk_acc(ci));
                              }
                            });
  } else {
    for (Index c = 0; c < chunks; ++c) run_chunk(c, chunk_acc(c));
  }
  // Fixed-order reduction: ascending chunk index.
  for (Index c = 1; c < chunks; ++c) {
    Axpy(1.0, partials[static_cast<std::size_t>(c - 1)].data(), g.data(),
         g.size());
  }
  return g;
}

Tensor ModeProduct(const Tensor& x, const Matrix& u, Index mode, Trans trans) {
  Tensor out;
  ModeProductInto(x, u, mode, trans, &out);
  return out;
}

void ModeProductInto(const Tensor& x, const Matrix& u, Index mode, Trans trans,
                     Tensor* out) {
  static Counter& calls = MetricCounter("tensor.mode_product");
  calls.Add(1);
  DT_TRACE_SPAN("tensor.mode_product");
  DT_CHECK(static_cast<const Tensor*>(out) != &x)
      << "ModeProductInto output must not alias the input";
  const ModeSplit s = SplitAtMode(x, mode);
  const Index j = trans == Trans::kNo ? u.rows() : u.cols();
  const Index contracted = trans == Trans::kNo ? u.cols() : u.rows();
  DT_CHECK_EQ(contracted, s.dim) << "ModeProduct dimension mismatch at mode "
                                 << mode;

  std::vector<Index> new_shape = x.shape();
  new_shape[static_cast<std::size_t>(mode)] = j;
  out->ResizeTo(new_shape);

  if (mode == 0) {
    // out_(1) (j x front*back) = op(U) * X_(1); both unfoldings are
    // layout-preserving, so one GEMM over the flat buffers suffices.
    GemmRaw(trans == Trans::kNo ? Trans::kNo : Trans::kYes, Trans::kNo, j,
            s.back /* front == 1 */, s.dim, 1.0, u.data(), u.rows(), x.data(),
            s.dim, 0.0, out->data(), j);
    return;
  }

  // For each back-slab b, the source (front x dim) block is contiguous and
  // column-major; compute out_slab = src_slab * op(U)^T.
  //   trans == kNo : op(U)^T = U^T (dim x j)   -> GEMM(N, T) with U.
  //   trans == kYes: op(U)^T = U   (dim x j)   -> GEMM(N, N) with U.
  const std::size_t src_slab = static_cast<std::size_t>(s.front * s.dim);
  const std::size_t dst_slab = static_cast<std::size_t>(s.front * j);
  auto run_slab = [&](Index b) {
    GemmRaw(Trans::kNo, trans == Trans::kNo ? Trans::kYes : Trans::kNo,
            s.front, j, s.dim, 1.0,
            x.data() + static_cast<std::size_t>(b) * src_slab, s.front,
            u.data(), u.rows(), 0.0,
            out->data() + static_cast<std::size_t>(b) * dst_slab, s.front);
  };
  // With enough independent slabs, parallelize across them (each writes a
  // disjoint output slab) and keep the per-slab GEMMs serial; otherwise run
  // the slab loop serially and let the big GEMMs thread internally.
  ThreadPool* pool = SharedBlasPool();
  if (pool != nullptr && !InBlasWorker() &&
      s.back >= static_cast<Index>(pool->num_threads())) {
    pool->ParallelForRanges(static_cast<std::size_t>(s.back), /*min_grain=*/1,
                            [&](std::size_t begin, std::size_t end) {
                              BlasWorkerScope scope;
                              for (std::size_t b = begin; b < end; ++b) {
                                run_slab(static_cast<Index>(b));
                              }
                            });
  } else {
    for (Index b = 0; b < s.back; ++b) run_slab(b);
  }
}

Tensor ModeProductChain(const Tensor& x, const std::vector<Matrix>& matrices,
                        Index skip_mode, Trans trans) {
  DT_CHECK_EQ(static_cast<Index>(matrices.size()), x.order())
      << "need one matrix per mode";
  Tensor cur = x;
  for (Index n = 0; n < x.order(); ++n) {
    if (n == skip_mode) continue;
    cur = ModeProduct(cur, matrices[static_cast<std::size_t>(n)], n, trans);
  }
  return cur;
}

namespace {

// dst = alpha * src over `n` doubles via the level-1 kernels (memcpy stays
// in cache for the Scal pass; both legs vectorize).
inline void ScaledCopy(double alpha, const double* src, double* dst, Index n) {
  std::memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(double));
  Scal(alpha, dst, n);
}

}  // namespace

Matrix Kronecker(const Matrix& a, const Matrix& b) {
  Matrix out = Matrix::Uninitialized(a.rows() * b.rows(), a.cols() * b.cols());
  const Index brows = b.rows();
  for (Index ja = 0; ja < a.cols(); ++ja) {
    for (Index jb = 0; jb < b.cols(); ++jb) {
      double* dst = out.col_data(ja * b.cols() + jb);
      const double* src = b.col_data(jb);
      for (Index ia = 0; ia < a.rows(); ++ia, dst += brows) {
        ScaledCopy(a(ia, ja), src, dst, brows);
      }
    }
  }
  return out;
}

Matrix KhatriRao(const Matrix& a, const Matrix& b) {
  DT_CHECK_EQ(a.cols(), b.cols()) << "Khatri-Rao column count mismatch";
  Matrix out = Matrix::Uninitialized(a.rows() * b.rows(), a.cols());
  const Index brows = b.rows();
  for (Index j = 0; j < a.cols(); ++j) {
    double* dst = out.col_data(j);
    const double* bcol = b.col_data(j);
    for (Index ia = 0; ia < a.rows(); ++ia, dst += brows) {
      ScaledCopy(a(ia, j), bcol, dst, brows);
    }
  }
  return out;
}

}  // namespace dtucker
