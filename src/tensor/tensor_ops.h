// Tensor algebra: unfoldings, mode-n (TTM) products, Kronecker products.
//
// Conventions (Kolda & Bader, "Tensor Decompositions and Applications"):
//   * Unfold(X, n) is the I_n x (prod_{k != n} I_k) matricization with the
//     remaining modes ordered by increasing index, earlier modes fastest.
//   * ModeProduct(X, U, n) computes X x_n U where U is (J x I_n); the
//     result replaces dimension I_n by J. Pass Trans::kYes to contract with
//     U^T for a (I_n x J) matrix without materializing the transpose —
//     the form every ALS update uses (X x_n A^(n)T).
#ifndef DTUCKER_TENSOR_TENSOR_OPS_H_
#define DTUCKER_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "linalg/blas.h"
#include "linalg/matrix.h"
#include "tensor/tensor.h"

namespace dtucker {

// Mode-n matricization (copy). Unfold(X, 0) is layout-preserving (pure
// reinterpretation of the flat buffer into an I_1 x rest matrix).
Matrix Unfold(const Tensor& x, Index mode);

// Inverse of Unfold: folds an (shape[mode] x rest) matrix back into a
// tensor of the given shape.
Tensor Fold(const Matrix& m, Index mode, const std::vector<Index>& shape);

// Gram of the mode-n unfolding, G = X_(n) X_(n)^T (I_n x I_n), accumulated
// directly from the flat tensor buffer via contiguous back-slab GEMMs — no
// Unfold copy is ever materialized. Deterministic by construction: slabs are
// grouped into a fixed shape-derived chunk partition (never a function of
// the thread count) with per-chunk accumulators reduced in ascending order,
// so the result is bitwise-identical for every SetBlasThreads() value.
Matrix ModeGram(const Tensor& x, Index mode);

// X x_mode op(U), where op(U) = U (J x I_mode) for Trans::kNo and
// op(U) = U^T for Trans::kYes (U is I_mode x J). Never materializes an
// unfolding: works slab-by-slab with GEMMs on contiguous memory.
Tensor ModeProduct(const Tensor& x, const Matrix& u, Index mode,
                   Trans trans = Trans::kNo);

// ModeProduct into a caller-owned output tensor. `out` is resized in place
// (retaining its backing allocation), so a workspace tensor reused across
// sweep iterations reaches a steady state with zero allocator traffic.
// `out` must not alias `x`.
void ModeProductInto(const Tensor& x, const Matrix& u, Index mode, Trans trans,
                     Tensor* out);

// Applies op(matrices[k]) along every mode k != skip_mode (pass
// skip_mode = -1 to contract every mode). Modes are applied in ascending
// order, shrinking the working tensor as early as possible.
Tensor ModeProductChain(const Tensor& x, const std::vector<Matrix>& matrices,
                        Index skip_mode, Trans trans = Trans::kNo);

// Kronecker product A (x) B: (ma*mb) x (na*nb).
Matrix Kronecker(const Matrix& a, const Matrix& b);

// Column-wise Khatri-Rao product: A and B must have equal column counts.
Matrix KhatriRao(const Matrix& a, const Matrix& b);

}  // namespace dtucker

#endif  // DTUCKER_TENSOR_TENSOR_OPS_H_
