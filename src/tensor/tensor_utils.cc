#include "tensor/tensor_utils.h"

#include <cmath>
#include <cstring>

namespace dtucker {

Result<Tensor> SubTensor(const Tensor& x, Index mode, Index start,
                         Index len) {
  if (mode < 0 || mode >= x.order()) {
    return Status::InvalidArgument("mode out of range");
  }
  if (start < 0 || len < 0 || start + len > x.dim(mode)) {
    return Status::OutOfRange("sub-tensor range out of bounds");
  }
  std::vector<Index> new_shape = x.shape();
  new_shape[static_cast<std::size_t>(mode)] = len;
  Tensor out(new_shape);

  // Treat the tensor as (front, dim, back): copy `len` contiguous
  // front-sized panels from each back-slab.
  Index front = 1;
  for (Index k = 0; k < mode; ++k) front *= x.dim(k);
  Index back = 1;
  for (Index k = mode + 1; k < x.order(); ++k) back *= x.dim(k);
  const std::size_t src_slab = static_cast<std::size_t>(front * x.dim(mode));
  const std::size_t dst_slab = static_cast<std::size_t>(front * len);
  const std::size_t copy_bytes = dst_slab * sizeof(double);
  for (Index b = 0; b < back; ++b) {
    std::memcpy(out.data() + static_cast<std::size_t>(b) * dst_slab,
                x.data() + static_cast<std::size_t>(b) * src_slab +
                    static_cast<std::size_t>(start * front),
                copy_bytes);
  }
  return out;
}

Result<Tensor> Concatenate(const Tensor& a, const Tensor& b, Index mode) {
  if (a.order() != b.order()) {
    return Status::InvalidArgument("order mismatch in Concatenate");
  }
  if (mode < 0 || mode >= a.order()) {
    return Status::InvalidArgument("mode out of range");
  }
  for (Index k = 0; k < a.order(); ++k) {
    if (k != mode && a.dim(k) != b.dim(k)) {
      return Status::InvalidArgument(
          "shapes must agree on all modes but the concatenation mode");
    }
  }
  std::vector<Index> new_shape = a.shape();
  new_shape[static_cast<std::size_t>(mode)] = a.dim(mode) + b.dim(mode);
  Tensor out(new_shape);

  Index front = 1;
  for (Index k = 0; k < mode; ++k) front *= a.dim(k);
  Index back = 1;
  for (Index k = mode + 1; k < a.order(); ++k) back *= a.dim(k);
  const std::size_t a_slab = static_cast<std::size_t>(front * a.dim(mode));
  const std::size_t b_slab = static_cast<std::size_t>(front * b.dim(mode));
  const std::size_t out_slab = a_slab + b_slab;
  for (Index s = 0; s < back; ++s) {
    std::memcpy(out.data() + static_cast<std::size_t>(s) * out_slab,
                a.data() + static_cast<std::size_t>(s) * a_slab,
                a_slab * sizeof(double));
    std::memcpy(out.data() + static_cast<std::size_t>(s) * out_slab + a_slab,
                b.data() + static_cast<std::size_t>(s) * b_slab,
                b_slab * sizeof(double));
  }
  return out;
}

Result<Tensor> HadamardProduct(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("shape mismatch in HadamardProduct");
  }
  Tensor out = a;
  double* od = out.data();
  const double* bd = b.data();
  for (Index i = 0; i < out.size(); ++i) od[i] *= bd[i];
  return out;
}

bool ContainsNonFinite(const Tensor& x) {
  const double* d = x.data();
  for (Index i = 0; i < x.size(); ++i) {
    if (!std::isfinite(d[i])) return true;
  }
  return false;
}

Status ValidateFinite(const Tensor& x) {
  if (ContainsNonFinite(x)) {
    return Status::InvalidArgument("tensor contains NaN or Inf entries");
  }
  return Status::OK();
}

double MaxAbs(const Tensor& x) {
  double m = 0.0;
  const double* d = x.data();
  for (Index i = 0; i < x.size(); ++i) m = std::max(m, std::fabs(d[i]));
  return m;
}

}  // namespace dtucker
