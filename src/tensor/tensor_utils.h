// General tensor utilities: sub-tensor extraction, concatenation,
// elementwise products, and input validation.
#ifndef DTUCKER_TENSOR_TENSOR_UTILS_H_
#define DTUCKER_TENSOR_TENSOR_UTILS_H_

#include "common/status.h"
#include "tensor/tensor.h"

namespace dtucker {

// Copies the sub-tensor with mode-`mode` indices [start, start+len).
// Generalizes Tensor::LastModeSlice to any mode.
Result<Tensor> SubTensor(const Tensor& x, Index mode, Index start, Index len);

// Concatenates along `mode`; shapes must agree on all other modes.
Result<Tensor> Concatenate(const Tensor& a, const Tensor& b, Index mode);

// Elementwise (Hadamard) product; shapes must match.
Result<Tensor> HadamardProduct(const Tensor& a, const Tensor& b);

// True if any entry is NaN or infinite.
bool ContainsNonFinite(const Tensor& x);

// InvalidArgument when the tensor has NaN/Inf entries; used by solvers
// when TuckerOptions::validate_input is set.
Status ValidateFinite(const Tensor& x);

// Largest absolute entry.
double MaxAbs(const Tensor& x);

}  // namespace dtucker

#endif  // DTUCKER_TENSOR_TENSOR_UTILS_H_
