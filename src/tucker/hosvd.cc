#include "tucker/hosvd.h"

#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "tensor/tensor_ops.h"

namespace dtucker {

Matrix LeadingLeftSingularVectorsViaGram(const Matrix& m, Index k) {
  DT_CHECK_LE(k, m.rows()) << "rank exceeds row count";
  // G = M M^T, I x I symmetric PSD; its top-k eigenvectors are the top-k
  // left singular vectors of M.
  Matrix g(m.rows(), m.rows());
  GemmRaw(Trans::kNo, Trans::kYes, m.rows(), m.rows(), m.cols(), 1.0,
          m.data(), m.rows(), m.data(), m.rows(), 0.0, g.data(), g.rows());
  return TopEigenvectorsSym(g, k);
}

TuckerDecomposition Hosvd(const Tensor& x, const std::vector<Index>& ranks) {
  DT_CHECK_EQ(static_cast<Index>(ranks.size()), x.order())
      << "one rank per mode required";
  TuckerDecomposition out;
  out.factors.resize(static_cast<std::size_t>(x.order()));
  for (Index n = 0; n < x.order(); ++n) {
    Matrix unf = Unfold(x, n);
    out.factors[static_cast<std::size_t>(n)] = LeadingLeftSingularVectorsViaGram(
        unf, ranks[static_cast<std::size_t>(n)]);
  }
  out.core = ModeProductChain(x, out.factors, /*skip_mode=*/-1, Trans::kYes);
  return out;
}

TuckerDecomposition StHosvd(const Tensor& x, const std::vector<Index>& ranks) {
  DT_CHECK_EQ(static_cast<Index>(ranks.size()), x.order())
      << "one rank per mode required";
  TuckerDecomposition out;
  out.factors.resize(static_cast<std::size_t>(x.order()));
  Tensor y = x;
  for (Index n = 0; n < x.order(); ++n) {
    Matrix unf = Unfold(y, n);
    Matrix a = LeadingLeftSingularVectorsViaGram(
        unf, ranks[static_cast<std::size_t>(n)]);
    y = ModeProduct(y, a, n, Trans::kYes);
    out.factors[static_cast<std::size_t>(n)] = std::move(a);
  }
  out.core = std::move(y);
  return out;
}

}  // namespace dtucker
