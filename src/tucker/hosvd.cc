#include "tucker/hosvd.h"

#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/qr.h"
#include "tensor/tensor_ops.h"
#include "tucker/tucker_als.h"

namespace dtucker {

Matrix LeadingLeftSingularVectorsViaGram(const Matrix& m, Index k) {
  DT_CHECK_LE(k, m.rows()) << "rank exceeds row count";
  // G = M M^T, I x I symmetric PSD; its top-k eigenvectors are the top-k
  // left singular vectors of M.
  Matrix g(m.rows(), m.rows());
  GemmRaw(Trans::kNo, Trans::kYes, m.rows(), m.rows(), m.cols(), 1.0,
          m.data(), m.rows(), m.data(), m.rows(), 0.0, g.data(), g.rows());
  return TopEigenvectorsSym(g, k);
}

Matrix LeadingModeVectorsViaGram(const Tensor& x, Index mode, Index k,
                                 Matrix* subspace,
                                 const SubspaceIterationOptions& eig_options) {
  DT_CHECK_LE(k, x.dim(mode)) << "rank exceeds mode dimension";
  const Index n = x.dim(mode);
  const Index m = n > 0 ? x.size() / n : 0;
  if (mode == 0 && m < n && k <= m) {
    // Small-side path. The mode-0 unfolding is the flat buffer itself, an
    // n x m column-major matrix A with m < n (the iteration-phase factor
    // updates land here: n is a tensor dimension, m a product of ranks).
    // Eigendecompose the small Gram C = A^T A (m x m) instead of the large
    // A A^T (n x n): the top-k eigenvectors W are the leading right
    // singular vectors of A, so Q from the QR of A W spans — and, the
    // columns of A W being orthogonal with norms sigma_i, equals up to
    // column signs — the leading left singular basis. Every step is a
    // deterministic dense kernel, so the result is thread-count invariant
    // like the large-Gram path.
    Matrix c = Matrix::Uninitialized(m, m);
    GemmRaw(Trans::kYes, Trans::kNo, m, m, n, 1.0, x.data(), n, x.data(), n,
            0.0, c.data(), m);
    Matrix w = TopEigenvectorsSym(c, k, subspace, eig_options);
    Matrix u = Matrix::Uninitialized(n, k);
    GemmRaw(Trans::kNo, Trans::kNo, n, k, m, 1.0, x.data(), n, w.data(), m,
            0.0, u.data(), n);
    return QrOrthonormalize(u, eig_options.qr);
  }
  Matrix g = ModeGram(x, mode);
  return TopEigenvectorsSym(g, k, subspace, eig_options);
}

Result<TuckerDecomposition> Hosvd(const Tensor& x,
                                  const std::vector<Index>& ranks,
                                  const RunContext* ctx) {
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), ranks));
  DT_TRACE_SPAN("hosvd.solve");
  ScopedPhase phase(&GlobalPhaseTimer(), "hosvd.solve");
  TuckerDecomposition out;
  out.factors.resize(static_cast<std::size_t>(x.order()));
  for (Index n = 0; n < x.order(); ++n) {
    if (ctx != nullptr) DT_RETURN_NOT_OK(ctx->CheckStatus("hosvd mode update"));
    out.factors[static_cast<std::size_t>(n)] = LeadingModeVectorsViaGram(
        x, n, ranks[static_cast<std::size_t>(n)]);
  }
  out.core = ModeProductChain(x, out.factors, /*skip_mode=*/-1, Trans::kYes);
  return out;
}

Result<TuckerDecomposition> StHosvd(const Tensor& x,
                                    const std::vector<Index>& ranks,
                                    const RunContext* ctx) {
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), ranks));
  DT_TRACE_SPAN("sthosvd.solve");
  ScopedPhase phase(&GlobalPhaseTimer(), "sthosvd.solve");
  TuckerDecomposition out;
  out.factors.resize(static_cast<std::size_t>(x.order()));
  Tensor y = x;
  for (Index n = 0; n < x.order(); ++n) {
    if (ctx != nullptr) {
      DT_RETURN_NOT_OK(ctx->CheckStatus("st-hosvd mode update"));
    }
    Matrix a = LeadingModeVectorsViaGram(
        y, n, ranks[static_cast<std::size_t>(n)]);
    y = ModeProduct(y, a, n, Trans::kYes);
    out.factors[static_cast<std::size_t>(n)] = std::move(a);
  }
  out.core = std::move(y);
  return out;
}

}  // namespace dtucker
