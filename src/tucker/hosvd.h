// HOSVD and sequentially-truncated HOSVD (ST-HOSVD).
//
// These serve as (a) initializers for HOOI-style iterations, and (b)
// standalone one-shot decompositions for comparison.
#ifndef DTUCKER_TUCKER_HOSVD_H_
#define DTUCKER_TUCKER_HOSVD_H_

#include "common/run_context.h"
#include "common/status.h"
#include "linalg/eigen_sym.h"
#include "tucker/tucker.h"

namespace dtucker {

// Classic HOSVD: each factor is the leading J_n left singular vectors of
// the mode-n unfolding of the *original* tensor; core is the projection.
// Bad ranks are an InvalidArgument error, never an abort. `ctx` (optional)
// is polled between mode updates; HOSVD is one-shot — no usable partial
// state — so an interruption surfaces as a kCancelled/kDeadlineExceeded
// error.
Result<TuckerDecomposition> Hosvd(const Tensor& x,
                                  const std::vector<Index>& ranks,
                                  const RunContext* ctx = nullptr);

// ST-HOSVD (Vannieuwenhoven et al.): truncates mode-by-mode, shrinking the
// working tensor after each mode. Usually faster and slightly more
// accurate than plain HOSVD. Same error/interruption contract as Hosvd.
Result<TuckerDecomposition> StHosvd(const Tensor& x,
                                    const std::vector<Index>& ranks,
                                    const RunContext* ctx = nullptr);

// Leading k left singular vectors of M computed from the I x I Gram matrix
// M M^T (cheap when M is short-and-wide, the typical unfolding shape).
Matrix LeadingLeftSingularVectorsViaGram(const Matrix& m, Index k);

// Leading k left singular vectors of the mode-n unfolding X_(n), computed
// matricization-free: the Gram X_(n) X_(n)^T is accumulated by ModeGram
// straight from the flat tensor buffer, so no unfolding copy is ever made.
// For mode 0 with a wide-side smaller than the mode dimension (the
// iteration-phase shape: I x prod(ranks)), the Gram is instead formed on
// the small side — X_(0)^T X_(0), prod(ranks) squared — and the left basis
// recovered by one thin QR, which is an order of magnitude cheaper when
// I >> prod(ranks). `subspace` (optional, in/out) is forwarded to
// TopEigenvectorsSym to warm-start its subspace iteration across repeated
// calls on slowly-moving operands (HOOI sweeps); pass nullptr for one-shot
// use. `eig_options` is forwarded to the same routine — outer iterations
// that re-solve every sweep pass a bounded, looser inner solve (inexact
// HOOI) and let the outer loop absorb the slack. The returned basis spans
// the same leading subspace on every path.
Matrix LeadingModeVectorsViaGram(const Tensor& x, Index mode, Index k,
                                 Matrix* subspace = nullptr,
                                 const SubspaceIterationOptions& eig_options = {});

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_HOSVD_H_
