// HOSVD and sequentially-truncated HOSVD (ST-HOSVD).
//
// These serve as (a) initializers for HOOI-style iterations, and (b)
// standalone one-shot decompositions for comparison.
#ifndef DTUCKER_TUCKER_HOSVD_H_
#define DTUCKER_TUCKER_HOSVD_H_

#include "tucker/tucker.h"

namespace dtucker {

// Classic HOSVD: each factor is the leading J_n left singular vectors of
// the mode-n unfolding of the *original* tensor; core is the projection.
TuckerDecomposition Hosvd(const Tensor& x, const std::vector<Index>& ranks);

// ST-HOSVD (Vannieuwenhoven et al.): truncates mode-by-mode, shrinking the
// working tensor after each mode. Usually faster and slightly more
// accurate than plain HOSVD.
TuckerDecomposition StHosvd(const Tensor& x, const std::vector<Index>& ranks);

// Leading k left singular vectors of M computed from the I x I Gram matrix
// M M^T (cheap when M is short-and-wide, the typical unfolding shape).
Matrix LeadingLeftSingularVectorsViaGram(const Matrix& m, Index k);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_HOSVD_H_
