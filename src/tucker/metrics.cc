#include "tucker/metrics.h"

#include <algorithm>
#include <cmath>

#include "linalg/blas.h"
#include "linalg/svd.h"

namespace dtucker {

namespace {

// Singular values of U^T V are the cosines of the principal angles.
Result<std::vector<double>> PrincipalCosines(const Matrix& u,
                                             const Matrix& v) {
  if (u.rows() != v.rows()) {
    return Status::InvalidArgument("subspace row-count mismatch");
  }
  if (u.cols() == 0 || v.cols() == 0) {
    return Status::InvalidArgument("empty subspace");
  }
  Matrix overlap = MultiplyTN(u, v);
  SvdResult svd = ThinSvd(overlap);
  // Numerical clamp: cosines live in [0, 1].
  for (double& s : svd.s) s = std::clamp(s, 0.0, 1.0);
  return svd.s;
}

}  // namespace

Result<double> SubspaceDistance(const Matrix& u, const Matrix& v) {
  DT_ASSIGN_OR_RETURN(std::vector<double> cosines, PrincipalCosines(u, v));
  const double min_cos = cosines.back();  // Descending order.
  return std::sqrt(std::max(0.0, 1.0 - min_cos * min_cos));
}

Result<double> SubspaceSimilarity(const Matrix& u, const Matrix& v) {
  DT_ASSIGN_OR_RETURN(std::vector<double> cosines, PrincipalCosines(u, v));
  double sum = 0;
  for (double c : cosines) sum += c;
  return sum / static_cast<double>(cosines.size());
}

Result<double> FactorMatchScore(const TuckerDecomposition& a,
                                const TuckerDecomposition& b) {
  if (a.order() != b.order()) {
    return Status::InvalidArgument("decomposition order mismatch");
  }
  double score = 1.0;
  for (Index n = 0; n < a.order(); ++n) {
    const Matrix& fa = a.factors[static_cast<std::size_t>(n)];
    const Matrix& fb = b.factors[static_cast<std::size_t>(n)];
    if (fa.rows() != fb.rows() || fa.cols() != fb.cols()) {
      return Status::InvalidArgument("factor shape mismatch at mode " +
                                     std::to_string(n));
    }
    DT_ASSIGN_OR_RETURN(double sim, SubspaceSimilarity(fa, fb));
    score = std::min(score, sim);
  }
  return score;
}

double CoreEnergyRatio(const TuckerDecomposition& dec,
                       double x_squared_norm) {
  if (x_squared_norm <= 0) return 1.0;
  return std::clamp(dec.core.SquaredNorm() / x_squared_norm, 0.0, 1.0);
}

}  // namespace dtucker
