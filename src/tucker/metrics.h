// Comparison metrics between decompositions.
//
// Reconstruction error alone can hide qualitative differences between
// methods (two decompositions can reach similar error through different
// subspaces). These metrics quantify subspace agreement and are used by
// tests and the convergence experiment to check that the fast methods land
// in the same place as the reference HOOI.
#ifndef DTUCKER_TUCKER_METRICS_H_
#define DTUCKER_TUCKER_METRICS_H_

#include "common/status.h"
#include "tucker/tucker.h"

namespace dtucker {

// sin of the largest principal angle between range(U) and range(V); both
// must have orthonormal columns and equal row counts. 0 = identical
// subspaces, 1 = some direction of U orthogonal to all of V.
Result<double> SubspaceDistance(const Matrix& u, const Matrix& v);

// Mean cosine of principal angles in [0, 1] (1 = identical subspaces).
Result<double> SubspaceSimilarity(const Matrix& u, const Matrix& v);

// Tucker factor-match score: the minimum over modes of the per-mode
// SubspaceSimilarity. Conservative: near 1 only when every mode's factor
// subspace matches. Both decompositions must have identical shapes/ranks.
Result<double> FactorMatchScore(const TuckerDecomposition& a,
                                const TuckerDecomposition& b);

// Fraction of the input energy captured by the (orthonormal-factor)
// decomposition: ||G||^2 / ||X||^2, clamped to [0, 1].
double CoreEnergyRatio(const TuckerDecomposition& dec, double x_squared_norm);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_METRICS_H_
