#include "tucker/naive_tucker.h"

#include <cmath>

#include "common/timer.h"
#include "linalg/blas.h"
#include "tensor/tensor_ops.h"
#include "tucker/hosvd.h"

namespace dtucker {

namespace {

// ((x)_{k != skip, descending} factors[k]) with the lowest mode's index
// fastest — the operand of the Kolda unfolding identity.
Matrix KroneckerOfFactorsExcept(const std::vector<Matrix>& factors,
                                Index skip) {
  Matrix k;
  bool first = true;
  for (Index n = static_cast<Index>(factors.size()) - 1; n >= 0; --n) {
    if (n == skip) continue;
    if (first) {
      k = factors[static_cast<std::size_t>(n)];
      first = false;
    } else {
      k = Kronecker(k, factors[static_cast<std::size_t>(n)]);
    }
  }
  DT_CHECK(!first) << "need at least two modes";
  return k;
}

}  // namespace

Result<TuckerDecomposition> TuckerAlsNaiveKronecker(
    const Tensor& x, const TuckerAlsOptions& options, TuckerStats* stats,
    std::size_t* peak_intermediate_bytes) {
  DT_RETURN_NOT_OK(ValidateRanks(x.shape(), options.ranks));
  const Index order = x.order();
  const double x_norm2 = x.SquaredNorm();
  std::size_t peak = 0;

  Timer init_timer;
  DT_ASSIGN_OR_RETURN(TuckerDecomposition dec, StHosvd(x, options.ranks));
  if (stats != nullptr) stats->init_seconds = init_timer.Seconds();

  Timer iterate_timer;
  double prev_error =
      OrthogonalTuckerRelativeError(x_norm2, dec.core.SquaredNorm());
  if (stats != nullptr) stats->error_history.push_back(prev_error);

  int it = 0;
  for (; it < options.max_iterations; ++it) {
    for (Index n = 0; n < order; ++n) {
      // The explicit Kronecker operand — the intermediate whose size the
      // TTM-chain formulation avoids.
      Matrix kron = KroneckerOfFactorsExcept(dec.factors, n);
      Matrix unf = Unfold(x, n);
      peak = std::max(peak, kron.ByteSize() + unf.ByteSize());
      Matrix y = Multiply(unf, kron);  // I_n x prod J_{k != n}.
      dec.factors[static_cast<std::size_t>(n)] =
          LeadingLeftSingularVectorsViaGram(
              y, options.ranks[static_cast<std::size_t>(n)]);
      if (n == order - 1) {
        // Core: G_(n) = A_n^T Y.
        Matrix gn = MultiplyTN(dec.factors[static_cast<std::size_t>(n)], y);
        dec.core = Fold(gn, n, options.ranks);
      }
    }
    const double error =
        OrthogonalTuckerRelativeError(x_norm2, dec.core.SquaredNorm());
    if (stats != nullptr) stats->error_history.push_back(error);
    const double delta = std::fabs(prev_error - error);
    prev_error = error;
    if (delta < options.tolerance) {
      ++it;
      break;
    }
  }
  if (stats != nullptr) {
    stats->iterations = it;
    stats->iterate_seconds = iterate_timer.Seconds();
  }
  if (peak_intermediate_bytes != nullptr) *peak_intermediate_bytes = peak;
  return dec;
}

}  // namespace dtucker
