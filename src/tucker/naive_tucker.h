// Textbook HOOI with explicit Kronecker products.
//
// The factor update A(n) <- leading SVs of X_(n) ((x)_{k != n} A(k))
// evaluated literally: the Kronecker matrix (prod_{k != n} I_k) x
// (prod_{k != n} J_k) is materialized and multiplied. This is the
// "imprudent computation provokes huge intermediate data" strawman that
// motivates D-Tucker's challenge C3 — it exists to be measured (experiment
// E10), not used. Peak intermediate bytes are reported so the blow-up can
// be charted against the TTM-chain implementation in TuckerAls.
#ifndef DTUCKER_TUCKER_NAIVE_TUCKER_H_
#define DTUCKER_TUCKER_NAIVE_TUCKER_H_

#include "tucker/tucker_als.h"

namespace dtucker {

// Identical contract to TuckerAls (same fixed point); additionally reports
// the largest single intermediate allocated during updates via
// `peak_intermediate_bytes` (may be null).
Result<TuckerDecomposition> TuckerAlsNaiveKronecker(
    const Tensor& x, const TuckerAlsOptions& options,
    TuckerStats* stats = nullptr,
    std::size_t* peak_intermediate_bytes = nullptr);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_NAIVE_TUCKER_H_
