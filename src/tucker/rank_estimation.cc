#include "tucker/rank_estimation.h"

#include <algorithm>

#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/eigen_tridiag.h"
#include "tensor/tensor_ops.h"

namespace dtucker {

Result<RankSuggestion> SuggestRanks(const Tensor& x, double energy_threshold,
                                    Index max_rank) {
  if (energy_threshold <= 0.0 || energy_threshold > 1.0) {
    return Status::InvalidArgument("energy_threshold must be in (0, 1]");
  }
  if (x.order() < 1 || x.size() == 0) {
    return Status::InvalidArgument("empty tensor");
  }

  RankSuggestion out;
  out.ranks.resize(static_cast<std::size_t>(x.order()));
  out.spectra.resize(static_cast<std::size_t>(x.order()));
  out.retained_energy.resize(static_cast<std::size_t>(x.order()));

  for (Index n = 0; n < x.order(); ++n) {
    Matrix unf = Unfold(x, n);
    Matrix gram(unf.rows(), unf.rows());
    GemmRaw(Trans::kNo, Trans::kYes, unf.rows(), unf.rows(), unf.cols(), 1.0,
            unf.data(), unf.rows(), unf.data(), unf.rows(), 0.0, gram.data(),
            gram.rows());
    // Full spectrum needed: the QL solver is much faster than Jacobi for
    // large modes; fall back to Jacobi on (pathological) non-convergence.
    EigenSymResult eig;
    Result<EigenSymResult> qr = EigenSymQr(gram);
    if (qr.ok()) {
      eig = std::move(qr).ValueOrDie();
    } else {
      eig = EigenSym(gram);
    }

    double total = 0.0;
    for (double v : eig.values) total += std::max(v, 0.0);
    Index rank = 1;
    double cum = 0.0;
    for (std::size_t i = 0; i < eig.values.size(); ++i) {
      cum += std::max(eig.values[i], 0.0);
      rank = static_cast<Index>(i + 1);
      if (total <= 0.0 || cum >= energy_threshold * total) break;
    }
    if (max_rank > 0) rank = std::min(rank, max_rank);

    // Retained energy at the final (possibly capped) rank.
    double kept = 0.0;
    for (Index i = 0; i < rank; ++i) {
      kept += std::max(eig.values[static_cast<std::size_t>(i)], 0.0);
    }
    out.ranks[static_cast<std::size_t>(n)] = rank;
    out.spectra[static_cast<std::size_t>(n)] = std::move(eig.values);
    out.retained_energy[static_cast<std::size_t>(n)] =
        total > 0.0 ? kept / total : 1.0;
  }
  return out;
}

}  // namespace dtucker
