// Automatic Tucker rank selection from mode-wise energy spectra.
//
// For each mode, the eigenvalues of the Gram matrix of the mode-n
// unfolding are the squared mode-n singular values; the smallest J_n whose
// leading eigenvalues retain `energy_threshold` of the total is the
// suggested rank (the standard HOSVD truncation criterion). Useful when a
// caller knows the accuracy they want but not the ranks.
#ifndef DTUCKER_TUCKER_RANK_ESTIMATION_H_
#define DTUCKER_TUCKER_RANK_ESTIMATION_H_

#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace dtucker {

struct RankSuggestion {
  std::vector<Index> ranks;  // One per mode.
  // spectra[n] holds the mode-n squared singular values, descending.
  std::vector<std::vector<double>> spectra;
  // Fraction of total energy retained at the suggested ranks (per mode).
  std::vector<double> retained_energy;
};

// energy_threshold in (0, 1]; e.g. 0.95 keeps 95% of each mode's energy.
// max_rank caps every suggestion (0 = uncapped).
Result<RankSuggestion> SuggestRanks(const Tensor& x, double energy_threshold,
                                    Index max_rank = 0);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_RANK_ESTIMATION_H_
