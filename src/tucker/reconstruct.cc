#include "tucker/reconstruct.h"

#include <string>

#include "linalg/blas.h"
#include "tensor/tensor_ops.h"

namespace dtucker {

namespace {

// Runs the ascending mode-product chain of TuckerDecomposition::
// Reconstruct() with factor n restricted to row rows[n] (>= 0), or kept
// whole (rows[n] == -1). Restriction only drops output elements of each
// mode product; the per-element contraction order is untouched, so every
// surviving element is bitwise identical to the full reconstruction's.
Tensor ReconstructRestricted(const TuckerDecomposition& dec,
                             const std::vector<Index>& rows) {
  Tensor out = dec.core;
  for (Index n = 0; n < dec.order(); ++n) {
    const Matrix& f = dec.factors[static_cast<std::size_t>(n)];
    const Index r = rows[static_cast<std::size_t>(n)];
    out = ModeProduct(out, r >= 0 ? f.Row(r) : f, n, Trans::kNo);
  }
  return out;
}

Status ValidateElementIndex(const TuckerDecomposition& dec,
                            const std::vector<Index>& idx) {
  const Index order = dec.order();
  if (static_cast<Index>(idx.size()) != order) {
    return Status::InvalidArgument("index order mismatch");
  }
  for (Index n = 0; n < order; ++n) {
    const Matrix& f = dec.factors[static_cast<std::size_t>(n)];
    if (idx[static_cast<std::size_t>(n)] < 0 ||
        idx[static_cast<std::size_t>(n)] >= f.rows()) {
      return Status::OutOfRange("index out of range at mode " +
                                std::to_string(n));
    }
  }
  return Status::OK();
}

}  // namespace

Result<double> ReconstructElement(const TuckerDecomposition& dec,
                                  const std::vector<Index>& idx) {
  DT_RETURN_NOT_OK(ValidateElementIndex(dec, idx));
  return ReconstructRestricted(dec, idx).data()[0];
}

Result<std::vector<double>> ReconstructElements(
    const TuckerDecomposition& dec,
    const std::vector<std::vector<Index>>& indices) {
  std::vector<double> values;
  values.reserve(indices.size());
  for (const std::vector<Index>& idx : indices) {
    DT_RETURN_NOT_OK(ValidateElementIndex(dec, idx));
    values.push_back(ReconstructRestricted(dec, idx).data()[0]);
  }
  return values;
}

Result<std::vector<double>> ReconstructFiber(
    const TuckerDecomposition& dec, Index mode,
    const std::vector<Index>& anchor) {
  const Index order = dec.order();
  if (mode < 0 || mode >= order) {
    return Status::InvalidArgument("fiber mode out of range");
  }
  if (static_cast<Index>(anchor.size()) != order) {
    return Status::InvalidArgument("anchor order mismatch");
  }
  std::vector<Index> rows = anchor;
  rows[static_cast<std::size_t>(mode)] = -1;  // Queried mode stays whole.
  for (Index n = 0; n < order; ++n) {
    if (n == mode) continue;
    const Matrix& f = dec.factors[static_cast<std::size_t>(n)];
    if (rows[static_cast<std::size_t>(n)] < 0 ||
        rows[static_cast<std::size_t>(n)] >= f.rows()) {
      return Status::OutOfRange("anchor out of range at mode " +
                                std::to_string(n));
    }
  }
  const Tensor fiber = ReconstructRestricted(dec, rows);
  // Every dim but `mode` is 1, so the flat buffer is the fiber itself.
  return std::vector<double>(fiber.data(), fiber.data() + fiber.size());
}

Result<Matrix> ReconstructFrontalSlice(const TuckerDecomposition& dec,
                                       Index l) {
  const Index order = dec.order();
  if (order < 3) {
    return Status::InvalidArgument("frontal slices need order >= 3");
  }
  Index num_slices = 1;
  for (Index n = 2; n < order; ++n) {
    num_slices *= dec.factors[static_cast<std::size_t>(n)].rows();
  }
  if (l < 0 || l >= num_slices) {
    return Status::OutOfRange("slice index out of range");
  }
  // Decompose l mode-3-fastest (matching Tensor::FrontalSlice) into one
  // selected row per trailing mode; the two leading modes stay whole.
  std::vector<Index> rows(static_cast<std::size_t>(order), -1);
  Index rem = l;
  for (Index n = 2; n < order; ++n) {
    const Matrix& f = dec.factors[static_cast<std::size_t>(n)];
    rows[static_cast<std::size_t>(n)] = rem % f.rows();
    rem /= f.rows();
  }
  const Tensor slice = ReconstructRestricted(dec, rows);
  return slice.Reshaped({slice.dim(0), slice.dim(1)}).FrontalSlice(0);
}

Result<Tensor> ReconstructLastModeRange(const TuckerDecomposition& dec,
                                        Index start, Index len) {
  const Index order = dec.order();
  if (order < 2) {
    return Status::InvalidArgument("need order >= 2");
  }
  const Matrix& last = dec.factors[static_cast<std::size_t>(order - 1)];
  if (start < 0 || len < 0 || start + len > last.rows()) {
    return Status::OutOfRange("last-mode range out of bounds");
  }
  TuckerDecomposition restricted;
  restricted.core = dec.core;
  restricted.factors = dec.factors;
  restricted.factors[static_cast<std::size_t>(order - 1)] =
      last.Block(start, 0, len, last.cols());
  return restricted.Reconstruct();
}

}  // namespace dtucker
