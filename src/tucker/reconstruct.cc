#include "tucker/reconstruct.h"

#include "linalg/blas.h"
#include "tensor/tensor_ops.h"

namespace dtucker {

Result<double> ReconstructElement(const TuckerDecomposition& dec,
                                  const std::vector<Index>& idx) {
  const Index order = dec.order();
  if (static_cast<Index>(idx.size()) != order) {
    return Status::InvalidArgument("index order mismatch");
  }
  for (Index n = 0; n < order; ++n) {
    const Matrix& f = dec.factors[static_cast<std::size_t>(n)];
    if (idx[static_cast<std::size_t>(n)] < 0 ||
        idx[static_cast<std::size_t>(n)] >= f.rows()) {
      return Status::OutOfRange("index out of range at mode " +
                                std::to_string(n));
    }
  }
  // Contract the core against one factor row per mode, smallest-first
  // would be optimal; ascending order is simple and already O(prod J).
  Tensor cur = dec.core;
  for (Index n = order - 1; n >= 0; --n) {
    const Matrix& f = dec.factors[static_cast<std::size_t>(n)];
    Matrix row = f.Row(idx[static_cast<std::size_t>(n)]);  // 1 x J_n.
    cur = ModeProduct(cur, row, n);
  }
  return cur.data()[0];
}

Result<Matrix> ReconstructFrontalSlice(const TuckerDecomposition& dec,
                                       Index l) {
  const Index order = dec.order();
  if (order < 3) {
    return Status::InvalidArgument("frontal slices need order >= 3");
  }
  Index num_slices = 1;
  for (Index n = 2; n < order; ++n) {
    num_slices *= dec.factors[static_cast<std::size_t>(n)].rows();
  }
  if (l < 0 || l >= num_slices) {
    return Status::OutOfRange("slice index out of range");
  }

  // Contract trailing modes with the factor rows selected by l
  // (mode-3-fastest decomposition of l), leaving a J1 x J2 matrix, then
  // expand the two leading modes.
  Tensor cur = dec.core;
  Index rem = l;
  for (Index n = 2; n < order; ++n) {
    const Matrix& f = dec.factors[static_cast<std::size_t>(n)];
    const Index i_n = rem % f.rows();
    rem /= f.rows();
    Matrix row = f.Row(i_n);  // 1 x J_n.
    cur = ModeProduct(cur, row, n);
  }
  std::vector<Index> small_shape = {dec.core.dim(0), dec.core.dim(1)};
  Tensor small = cur.Reshaped(small_shape);
  Matrix g12 = small.FrontalSlice(0);  // For order-2 tensors: whole matrix.
  return Multiply(dec.factors[0], MultiplyNT(g12, dec.factors[1]));
}

Result<Tensor> ReconstructLastModeRange(const TuckerDecomposition& dec,
                                        Index start, Index len) {
  const Index order = dec.order();
  if (order < 2) {
    return Status::InvalidArgument("need order >= 2");
  }
  const Matrix& last = dec.factors[static_cast<std::size_t>(order - 1)];
  if (start < 0 || len < 0 || start + len > last.rows()) {
    return Status::OutOfRange("last-mode range out of bounds");
  }
  TuckerDecomposition restricted;
  restricted.core = dec.core;
  restricted.factors = dec.factors;
  restricted.factors[static_cast<std::size_t>(order - 1)] =
      last.Block(start, 0, len, last.cols());
  return restricted.Reconstruct();
}

}  // namespace dtucker
