// Partial reconstruction through Tucker factors.
//
// A key operational benefit of keeping data in Tucker form: individual
// elements, fibers, and slices can be reconstructed in O(prod J) time
// without materializing the full tensor. Used by the video and stock
// examples, anomaly-scoring workflows, and the serving layer's factor-space
// query API (serve/server.h).
//
// Bitwise contract: every entry point here computes its answer by running
// the SAME ascending mode-product chain as TuckerDecomposition::
// Reconstruct(), restricted to the requested factor rows. Restricting a
// factor to a subset of rows only removes output elements from each mode
// product — the per-element accumulation (k-ascending over the contracted
// mode, the packed-GEMM contract from DESIGN.md §6) is unchanged — so the
// returned values are bitwise identical to indexing the full
// reconstruction. The serving tests pin this property.
#ifndef DTUCKER_TUCKER_RECONSTRUCT_H_
#define DTUCKER_TUCKER_RECONSTRUCT_H_

#include <vector>

#include "common/status.h"
#include "tucker/tucker.h"

namespace dtucker {

// Single element x(idx) = sum_j G(j) * prod_n A(n)(idx_n, j_n).
// O(prod J_n) per call.
Result<double> ReconstructElement(const TuckerDecomposition& dec,
                                  const std::vector<Index>& idx);

// Batched elements: values[i] = x(indices[i]). The serving layer's
// QueryElement path; one validation + O(prod J) chain per index.
Result<std::vector<double>> ReconstructElements(
    const TuckerDecomposition& dec,
    const std::vector<std::vector<Index>>& indices);

// Mode-`mode` fiber x(anchor_1, ..., :, ..., anchor_N): every index is
// pinned to `anchor` except the queried mode, which runs over its full
// extent. anchor must have one entry per mode; the entry at `mode` is
// ignored. O(prod J + I_mode * J_mode) per call.
Result<std::vector<double>> ReconstructFiber(const TuckerDecomposition& dec,
                                             Index mode,
                                             const std::vector<Index>& anchor);

// Frontal slice X(:,:,i3,...,iN) for the flattened trailing index `l`
// (mode-3 fastest, matching Tensor::FrontalSlice). Requires order >= 3.
// O(I1*I2*J + prod J) time.
Result<Matrix> ReconstructFrontalSlice(const TuckerDecomposition& dec,
                                       Index l);

// Sub-tensor over last-mode indices [start, start+len) — e.g. a frame
// range of a video — without building the rest.
Result<Tensor> ReconstructLastModeRange(const TuckerDecomposition& dec,
                                        Index start, Index len);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_RECONSTRUCT_H_
