// Partial reconstruction through Tucker factors.
//
// A key operational benefit of keeping data in Tucker form: individual
// elements, fibers, and slices can be reconstructed in O(prod J) time
// without materializing the full tensor. Used by the video and stock
// examples and by anomaly-scoring workflows.
#ifndef DTUCKER_TUCKER_RECONSTRUCT_H_
#define DTUCKER_TUCKER_RECONSTRUCT_H_

#include "common/status.h"
#include "tucker/tucker.h"

namespace dtucker {

// Single element x(idx) = sum_j G(j) * prod_n A(n)(idx_n, j_n).
// O(prod J_n) per call.
Result<double> ReconstructElement(const TuckerDecomposition& dec,
                                  const std::vector<Index>& idx);

// Frontal slice X(:,:,i3,...,iN) for the flattened trailing index `l`
// (mode-3 fastest, matching Tensor::FrontalSlice). Requires order >= 3.
// O(I1*I2*J + prod J) time.
Result<Matrix> ReconstructFrontalSlice(const TuckerDecomposition& dec,
                                       Index l);

// Sub-tensor over last-mode indices [start, start+len) — e.g. a frame
// range of a video — without building the rest.
Result<Tensor> ReconstructLastModeRange(const TuckerDecomposition& dec,
                                        Index start, Index len);

}  // namespace dtucker

#endif  // DTUCKER_TUCKER_RECONSTRUCT_H_
