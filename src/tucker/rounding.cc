#include "tucker/rounding.h"

#include <algorithm>

#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "tensor/tensor_ops.h"
#include "tucker/hosvd.h"

namespace dtucker {

Result<TuckerDecomposition> RoundTucker(const TuckerDecomposition& dec,
                                        const std::vector<Index>& new_ranks) {
  const Index order = dec.order();
  if (static_cast<Index>(new_ranks.size()) != order) {
    return Status::InvalidArgument("need one new rank per mode");
  }
  for (Index n = 0; n < order; ++n) {
    const Index k = new_ranks[static_cast<std::size_t>(n)];
    if (k < 1 || k > dec.core.dim(n)) {
      return Status::InvalidArgument(
          "new rank at mode " + std::to_string(n) +
          " must be in [1, " + std::to_string(dec.core.dim(n)) + "]");
    }
  }

  DT_RETURN_NOT_OK(dec.Validate());
  // ST-HOSVD of the (small) core, then absorb the inner factors.
  DT_ASSIGN_OR_RETURN(TuckerDecomposition inner, StHosvd(dec.core, new_ranks));
  TuckerDecomposition out;
  out.core = std::move(inner.core);
  out.factors.reserve(static_cast<std::size_t>(order));
  for (Index n = 0; n < order; ++n) {
    out.factors.push_back(
        Multiply(dec.factors[static_cast<std::size_t>(n)],
                 inner.factors[static_cast<std::size_t>(n)]));
  }
  return out;
}

Result<TuckerDecomposition> RoundTuckerToTolerance(
    const TuckerDecomposition& dec, double tolerance) {
  if (tolerance < 0.0 || tolerance >= 1.0) {
    return Status::InvalidArgument("tolerance must be in [0, 1)");
  }
  const Index order = dec.order();
  const double total = dec.core.SquaredNorm();
  // Per-mode budget: splitting the loss evenly across modes keeps the
  // combined loss below `tolerance` (the HOSVD truncation bound).
  const double per_mode =
      total * tolerance / std::max<Index>(1, order);

  std::vector<Index> ranks(static_cast<std::size_t>(order));
  for (Index n = 0; n < order; ++n) {
    Matrix unf = Unfold(dec.core, n);
    Matrix gram(unf.rows(), unf.rows());
    GemmRaw(Trans::kNo, Trans::kYes, unf.rows(), unf.rows(), unf.cols(), 1.0,
            unf.data(), unf.rows(), unf.data(), unf.rows(), 0.0, gram.data(),
            gram.rows());
    EigenSymResult eig = EigenSym(gram);
    // Keep the smallest prefix whose tail is within the budget.
    double tail = 0;
    Index rank = static_cast<Index>(eig.values.size());
    for (Index i = static_cast<Index>(eig.values.size()) - 1; i >= 1; --i) {
      tail += std::max(eig.values[static_cast<std::size_t>(i)], 0.0);
      if (tail > per_mode) break;
      rank = i;
    }
    ranks[static_cast<std::size_t>(n)] = rank;
  }
  return RoundTucker(dec, ranks);
}

}  // namespace dtucker
